//! Umbrella crate for the FlashGraph reproduction workspace.
//!
//! Re-exports every member crate so examples and integration tests
//! can reach the whole stack through one dependency. Library users
//! should depend on the individual crates instead:
//!
//! * [`flashgraph`] — the semi-external-memory engine (start here),
//! * [`fg_apps`] — the paper's six algorithms plus extensions,
//! * [`fg_graph`] / [`fg_format`] — in-memory graphs and the on-SSD
//!   image + compact index,
//! * [`fg_safs`] / [`fg_ssdsim`] — the user-space filesystem and the
//!   simulated SSD array it mounts,
//! * [`fg_baselines`] — comparator engines for the evaluation,
//! * [`fg_types`] — shared primitives.
//!
//! See `README.md` for the architecture tour and the crate map.

pub use fg_apps;
pub use fg_baselines;
pub use fg_bench;
pub use fg_format;
pub use fg_graph;
pub use fg_safs;
pub use fg_ssdsim;
pub use fg_types;
pub use flashgraph;
