//! Vertex identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A vertex identifier.
///
/// FlashGraph uses dense 32-bit vertex ids: the vertices of a graph
/// with `n` vertices are exactly `0..n`. 32 bits suffice for the
/// paper's largest graph (3.4 billion vertices, below `u32::MAX`),
/// and keeping ids at four bytes halves the size of edge lists on
/// SSDs compared to 64-bit ids — the external-memory representation
/// is deliberately compact (§3.5.2 of the paper).
///
/// `VertexId` is a transparent newtype so it can be reinterpreted as
/// raw `u32` in on-disk edge lists.
///
/// # Example
///
/// ```
/// use fg_types::VertexId;
///
/// let v = VertexId(7);
/// assert_eq!(v.index(), 7usize);
/// assert_eq!(VertexId::from_index(7), v);
/// assert_eq!(format!("{v}"), "7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[repr(transparent)]
pub struct VertexId(pub u32);

/// A sentinel id that never names a real vertex.
///
/// Graphs are bounded by `u32::MAX - 1` vertices so this value is
/// always out of range.
pub const INVALID_VERTEX: VertexId = VertexId(u32::MAX);

impl VertexId {
    /// Returns the id as a `usize` index into per-vertex arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not fit in `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        assert!(idx <= u32::MAX as usize, "vertex index {idx} overflows u32");
        VertexId(idx as u32)
    }

    /// Returns `true` when this id is the [`INVALID_VERTEX`] sentinel.
    #[inline]
    pub fn is_invalid(self) -> bool {
        self == INVALID_VERTEX
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl From<VertexId> for usize {
    fn from(v: VertexId) -> Self {
        v.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for raw in [0u32, 1, 17, u32::MAX - 1] {
            let v = VertexId(raw);
            assert_eq!(VertexId::from_index(v.index()), v);
        }
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(VertexId(0) < INVALID_VERTEX);
    }

    #[test]
    fn invalid_sentinel_detected() {
        assert!(INVALID_VERTEX.is_invalid());
        assert!(!VertexId(0).is_invalid());
    }

    #[test]
    #[should_panic(expected = "overflows u32")]
    fn from_index_panics_on_overflow() {
        let _ = VertexId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn display_matches_raw() {
        assert_eq!(VertexId(42).to_string(), "42");
    }

    #[test]
    fn conversions() {
        let v: VertexId = 9u32.into();
        let raw: u32 = v.into();
        let idx: usize = v.into();
        assert_eq!(raw, 9);
        assert_eq!(idx, 9);
    }

    #[test]
    fn is_transparent_u32() {
        assert_eq!(std::mem::size_of::<VertexId>(), std::mem::size_of::<u32>());
        assert_eq!(
            std::mem::align_of::<VertexId>(),
            std::mem::align_of::<u32>()
        );
    }
}
