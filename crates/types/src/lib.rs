//! Shared primitive types for the FlashGraph reproduction.
//!
//! This crate holds the vocabulary types every other crate in the
//! workspace speaks: [`VertexId`], [`EdgeDir`], the error type
//! [`FgError`], and two bitmap implementations used for vertex
//! frontiers ([`Bitmap`] and the thread-safe [`AtomicBitmap`]).
//!
//! Nothing in here is specific to semi-external memory; these are the
//! kinds of types that in the original C++ FlashGraph live in its
//! `common` library.
//!
//! # Example
//!
//! ```
//! use fg_types::{VertexId, AtomicBitmap};
//!
//! let frontier = AtomicBitmap::new(64);
//! frontier.set(VertexId(3));
//! assert!(frontier.get(VertexId(3)));
//! assert_eq!(frontier.count_ones(), 1);
//! ```

mod bitmap;
mod cancel;
mod dir;
mod error;
mod id;
pub mod sync;

pub use bitmap::{AtomicBitmap, Bitmap};
pub use cancel::{CancelCause, CancelToken};
pub use dir::EdgeDir;
pub use error::{FgError, Result};
pub use id::{VertexId, INVALID_VERTEX};
