//! The workspace-wide error type.

use std::fmt;
use std::io;

/// Convenience alias used across the FlashGraph workspace.
pub type Result<T> = std::result::Result<T, FgError>;

/// Errors surfaced by the FlashGraph reproduction crates.
///
/// The variants are intentionally coarse: components report *what
/// kind* of thing failed plus a human-readable detail string, which
/// mirrors how a storage system reports failures upward.
#[derive(Debug)]
pub enum FgError {
    /// An operation referenced a vertex outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending id.
        vertex: u64,
        /// Number of vertices in the graph.
        num_vertices: u64,
    },
    /// An on-disk image failed validation (bad magic, truncated
    /// section, inconsistent counts...).
    CorruptImage(String),
    /// A configuration value is unusable (zero page size, zero SSDs...).
    InvalidConfig(String),
    /// An I/O request was malformed (zero length, out of device bounds...).
    InvalidRequest(String),
    /// The underlying operating-system I/O failed.
    Io(io::Error),
    /// A graph algorithm was asked to run on input it does not support.
    Unsupported(String),
    /// The query was cancelled cooperatively (its
    /// [`crate::CancelToken`] was triggered) before it converged. Any
    /// partial results are consistent but incomplete.
    Cancelled,
    /// The query's deadline passed — either while it waited for
    /// admission or between iterations of its run.
    DeadlineExpired,
}

impl fmt::Display for FgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FgError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            FgError::CorruptImage(msg) => write!(f, "corrupt graph image: {msg}"),
            FgError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FgError::InvalidRequest(msg) => write!(f, "invalid I/O request: {msg}"),
            FgError::Io(e) => write!(f, "i/o error: {e}"),
            FgError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            FgError::Cancelled => write!(f, "query cancelled before completion"),
            FgError::DeadlineExpired => write!(f, "query deadline expired"),
        }
    }
}

impl std::error::Error for FgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FgError {
    fn from(e: io::Error) -> Self {
        FgError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = FgError::VertexOutOfRange {
            vertex: 10,
            num_vertices: 5,
        };
        assert_eq!(
            e.to_string(),
            "vertex 10 out of range for graph with 5 vertices"
        );
        assert!(FgError::CorruptImage("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(FgError::Cancelled.to_string().contains("cancelled"));
        assert!(FgError::DeadlineExpired.to_string().contains("deadline"));
    }

    #[test]
    fn io_error_round_trips_as_source() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = FgError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FgError>();
    }
}
