//! The workspace's single gateway to `std::sync::atomic`.
//!
//! Every crate in the workspace that needs an atomic imports it from
//! here instead of from `std` — `fg_check --lint` rejects raw
//! `std::sync::atomic` paths outside `fg_types`. Funnelling the
//! imports through one module keeps the audit surface in one place:
//! the lint then only has to police *orderings* (every
//! `Ordering::Relaxed`/`Ordering::SeqCst` site needs an
//! `// ordering:` justification) and `unsafe` hygiene.
//!
//! [`Counter`] exists because by far the most common atomic in this
//! workspace is a monotonic statistic (I/O counters, cache counters,
//! per-run engine counters) whose contract is always the same:
//! exact under concurrent RMW updates, read either racily (progress
//! reporting) or at a quiesced point (barriers, joins) where the
//! happens-before edge comes from the synchronization structure that
//! created the quiesce, not from the counter itself. Encoding that
//! contract once here removes ~100 per-site `Ordering::Relaxed`
//! tokens from the rest of the workspace.

// ordering: this is the one sanctioned raw `std::sync::atomic` import
// of the workspace (see module docs); everything below justifies its
// own orderings.
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// A relaxed statistics counter.
///
/// All operations are atomic read-modify-writes (or plain loads and
/// stores), so concurrent updates never lose increments — atomicity
/// is an RMW property, independent of memory ordering. What `Relaxed`
/// gives up is *publication*: reading a `Counter` does not establish
/// a happens-before edge with its writers. That is the contract:
/// counters are statistics, and every exact read in the workspace
/// happens at a point that is already synchronized by other means
/// (an iteration barrier, a thread join, a quiesced engine).
///
/// Do **not** use a `Counter` as a control-flow gate between threads
/// (termination votes, obligation counts): those need acquire/release
/// pairs and live as explicit atomics with `// ordering:` comments —
/// and have models in the `fg_check` crate proving their protocol.
///
/// # Example
///
/// ```
/// use fg_types::sync::Counter;
///
/// let c = Counter::new(0);
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter holding `v`.
    pub const fn new(v: u64) -> Self {
        Counter(AtomicU64::new(v))
    }

    /// Adds `n`, returning the new value.
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        // ordering: statistic, exactness comes from RMW atomicity; see
        // the type-level contract.
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Adds one, returning the new value.
    #[inline]
    pub fn inc(&self) -> u64 {
        self.add(1)
    }

    /// Subtracts `n`, returning the new value. Wraps like
    /// `fetch_sub`; use [`Counter::dec_saturating`] for gauges that
    /// may see unpaired decrements.
    #[inline]
    pub fn sub(&self, n: u64) -> u64 {
        // ordering: statistic; see the type-level contract.
        self.0.fetch_sub(n, Ordering::Relaxed) - n
    }

    /// Subtracts one, clamping at zero, and returns the *previous*
    /// value (the shape gauge-style callers need to sample the level
    /// they just left).
    #[inline]
    pub fn dec_saturating(&self) -> u64 {
        self.0
            // ordering: statistic; see the type-level contract.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            })
            .expect("update closure never fails")
    }

    /// Raises the counter to at least `v` (a high-watermark).
    #[inline]
    pub fn max(&self, v: u64) {
        // ordering: statistic; see the type-level contract.
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value. Exact only at externally synchronized points;
    /// see the type-level contract.
    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: statistic; see the type-level contract.
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value (reset between measured phases).
    #[inline]
    pub fn set(&self, v: u64) {
        // ordering: statistic; see the type-level contract.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Consumes the counter, returning the final value (exact: sole
    /// ownership proves all writers are done).
    #[inline]
    pub fn into_inner(self) -> u64 {
        self.0.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_arithmetic() {
        let c = Counter::new(5);
        assert_eq!(c.add(10), 15);
        assert_eq!(c.inc(), 16);
        assert_eq!(c.sub(6), 10);
        c.max(3);
        assert_eq!(c.get(), 10, "max never lowers");
        c.max(12);
        assert_eq!(c.get(), 12);
        c.set(0);
        assert_eq!(c.dec_saturating(), 0, "returns previous, clamped");
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let c = std::sync::Arc::new(Counter::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Exactness holds despite Relaxed: RMWs are atomic, and the
        // joins above provide the happens-before edge for this read.
        assert_eq!(c.get(), 80_000);
    }
}
