//! Fixed-size bitmaps used for vertex frontiers and activation.
//!
//! FlashGraph activates vertices with multicast messages whose payload
//! is empty (§3.4.1) — the natural dense representation of "the set of
//! vertices active next iteration" is one bit per vertex. The engine
//! needs a concurrent version ([`AtomicBitmap`], workers activate
//! neighbours in parallel) and a single-threaded version ([`Bitmap`],
//! used for visited sets inside algorithms).

use crate::sync::{AtomicU64, Ordering};
use crate::VertexId;

const BITS: usize = 64;

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(BITS)
}

/// A plain, single-threaded bitmap sized at construction.
///
/// # Example
///
/// ```
/// use fg_types::{Bitmap, VertexId};
///
/// let mut b = Bitmap::new(10);
/// assert!(!b.set(VertexId(4)));
/// assert!(b.set(VertexId(4))); // second set reports it was already on
/// assert_eq!(b.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates a bitmap of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; word_count(len)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the bitmap holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit for `v`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn set(&mut self, v: VertexId) -> bool {
        let i = self.check(v);
        let w = &mut self.words[i / BITS];
        let mask = 1u64 << (i % BITS);
        let old = *w & mask != 0;
        *w |= mask;
        old
    }

    /// Clears the bit for `v`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn clear(&mut self, v: VertexId) -> bool {
        let i = self.check(v);
        let w = &mut self.words[i / BITS];
        let mask = 1u64 << (i % BITS);
        let old = *w & mask != 0;
        *w &= !mask;
        old
    }

    /// Reads the bit for `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn get(&self, v: VertexId) -> bool {
        let i = self.check(v);
        self.words[i / BITS] & (1u64 << (i % BITS)) != 0
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the ids of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            len: self.len,
        }
    }

    #[inline]
    fn check(&self, v: VertexId) -> usize {
        let i = v.index();
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        i
    }
}

/// Iterator over set bits of a [`Bitmap`]; see [`Bitmap::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    len: usize,
}

impl Iterator for IterOnes<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * BITS + bit;
                if idx >= self.len {
                    return None;
                }
                return Some(VertexId::from_index(idx));
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// A thread-safe bitmap: concurrent `set` from many worker threads.
///
/// This is the activation structure behind FlashGraph's multicast
/// vertex activation: every worker ORs bits in without locks, and the
/// engine swaps bitmaps at the iteration barrier.
///
/// # Example
///
/// ```
/// use fg_types::{AtomicBitmap, VertexId};
///
/// let b = AtomicBitmap::new(128);
/// b.set(VertexId(100));
/// assert!(b.get(VertexId(100)));
/// let ones: Vec<_> = b.iter_ones().collect();
/// assert_eq!(ones, vec![VertexId(100)]);
/// ```
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitmap {
    /// Creates a bitmap of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let mut words = Vec::with_capacity(word_count(len));
        words.resize_with(word_count(len), || AtomicU64::new(0));
        AtomicBitmap { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the bitmap holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Atomically sets the bit for `v`, returning the previous value.
    ///
    /// Uses relaxed ordering: activation bits carry no data
    /// dependencies; the iteration barrier provides the necessary
    /// synchronization.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn set(&self, v: VertexId) -> bool {
        let i = self.check(v);
        let mask = 1u64 << (i % BITS);
        // ordering: activation bits carry no payload; the iteration
        // barrier publishes them (doc contract above).
        self.words[i / BITS].fetch_or(mask, Ordering::Relaxed) & mask != 0
    }

    /// Atomically clears the bit for `v`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn clear(&self, v: VertexId) -> bool {
        let i = self.check(v);
        let mask = 1u64 << (i % BITS);
        // ordering: same contract as [`AtomicBitmap::set`].
        self.words[i / BITS].fetch_and(!mask, Ordering::Relaxed) & mask != 0
    }

    /// [`AtomicBitmap::set`] with acquire-release ordering: usable as
    /// a per-bit try-lock. A `false` return means the bit was clear
    /// and this thread now owns it, with a happens-before edge from
    /// the previous owner's [`AtomicBitmap::clear_sync`] — the
    /// pipelined engine guards per-vertex state with exactly this
    /// (relaxed `set`/`clear` only order the bit, not the data the
    /// bit protects).
    ///
    /// The exclusivity-plus-publication contract is model-checked:
    /// `fg_check`'s `busy_bit` protocol model proves it under
    /// exhaustive small-bound interleaving, and its seeded
    /// AcqRel→Relaxed mutation shows the downgrade losing the
    /// publication (`cargo test --test check_models`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn set_sync(&self, v: VertexId) -> bool {
        let i = self.check(v);
        let mask = 1u64 << (i % BITS);
        self.words[i / BITS].fetch_or(mask, Ordering::AcqRel) & mask != 0
    }

    /// [`AtomicBitmap::clear`] with acquire-release ordering: the
    /// unlock half of [`AtomicBitmap::set_sync`], publishing every
    /// write made while the bit was held to its next owner.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn clear_sync(&self, v: VertexId) -> bool {
        let i = self.check(v);
        let mask = 1u64 << (i % BITS);
        self.words[i / BITS].fetch_and(!mask, Ordering::AcqRel) & mask != 0
    }

    /// Reads the bit for `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn get(&self, v: VertexId) -> bool {
        let i = self.check(v);
        // ordering: racy probe by contract; exact reads happen at
        // barriers (doc contract above).
        self.words[i / BITS].load(Ordering::Relaxed) & (1u64 << (i % BITS)) != 0
    }

    /// Clears every bit. Not atomic as a whole; callers run it at
    /// barriers when no other thread touches the map.
    pub fn clear_all(&self) {
        for w in &self.words {
            // ordering: barrier-only operation (doc contract above).
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits (consistent only at barriers).
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            // ordering: barrier-only operation (doc contract above).
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Iterates over set bits in ascending id order (consistent only
    /// at barriers).
    pub fn iter_ones(&self) -> impl Iterator<Item = VertexId> + '_ {
        AtomicIterOnes {
            map: self,
            word_idx: 0,
            current: self
                .words
                .first()
                // ordering: barrier-only operation (doc contract above).
                .map(|w| w.load(Ordering::Relaxed))
                .unwrap_or(0),
        }
    }

    /// Iterates over set bits whose index lies in `range`
    /// (half-open), ascending. Starts scanning at the range's first
    /// word, so iterating a partition's ranges costs time
    /// proportional to the range, not the whole bitmap.
    pub fn iter_ones_in_range(
        &self,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = VertexId> + '_ {
        let lo = range.start.min(self.len);
        let hi = range.end.min(self.len);
        let first_word = lo / BITS;
        let current = if lo < hi {
            // Mask off bits below `lo` in the first word.
            // ordering: barrier-only operation (doc contract above).
            self.words[first_word].load(Ordering::Relaxed) & (u64::MAX << (lo % BITS))
        } else {
            0
        };
        AtomicIterOnes {
            map: self,
            word_idx: first_word,
            current,
        }
        .take_while(move |v| v.index() < hi)
    }

    /// Copies the contents into a plain [`Bitmap`].
    pub fn to_bitmap(&self) -> Bitmap {
        Bitmap {
            words: self
                .words
                .iter()
                // ordering: barrier-only operation (doc contract above).
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            len: self.len,
        }
    }

    #[inline]
    fn check(&self, v: VertexId) -> usize {
        let i = v.index();
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        i
    }
}

struct AtomicIterOnes<'a> {
    map: &'a AtomicBitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for AtomicIterOnes<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * BITS + bit;
                if idx >= self.map.len {
                    return None;
                }
                return Some(VertexId::from_index(idx));
            }
            self.word_idx += 1;
            if self.word_idx >= self.map.words.len() {
                return None;
            }
            // ordering: barrier-only operation (doc contract above).
            self.current = self.map.words[self.word_idx].load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_round_trip() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(VertexId(129)));
        assert!(!b.set(VertexId(129)));
        assert!(b.get(VertexId(129)));
        assert!(b.clear(VertexId(129)));
        assert!(!b.get(VertexId(129)));
    }

    #[test]
    fn iter_ones_crosses_word_boundaries() {
        let mut b = Bitmap::new(200);
        for i in [0usize, 63, 64, 65, 127, 128, 199] {
            b.set(VertexId::from_index(i));
        }
        let got: Vec<usize> = b.iter_ones().map(|v| v.index()).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn count_ones_matches_iter() {
        let mut b = Bitmap::new(77);
        for i in (0..77).step_by(3) {
            b.set(VertexId::from_index(i));
        }
        assert_eq!(b.count_ones(), b.iter_ones().count());
    }

    #[test]
    fn clear_all_resets() {
        let mut b = Bitmap::new(10);
        b.set(VertexId(1));
        b.set(VertexId(9));
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn empty_bitmap_iterates_nothing() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let b = Bitmap::new(8);
        b.get(VertexId(8));
    }

    #[test]
    fn atomic_set_reports_previous() {
        let b = AtomicBitmap::new(66);
        assert!(!b.set(VertexId(65)));
        assert!(b.set(VertexId(65)));
        assert!(b.clear(VertexId(65)));
        assert!(!b.clear(VertexId(65)));
    }

    #[test]
    fn set_sync_is_a_per_bit_mutex() {
        // 8 threads contend on one bit-guarded counter; the total must
        // be exact if set_sync/clear_sync give mutual exclusion and
        // publish the protected writes.
        struct Shared(std::cell::UnsafeCell<u64>);
        // SAFETY: every access happens under the bit in the test body.
        unsafe impl Send for Shared {}
        // SAFETY: same discipline as Send above.
        unsafe impl Sync for Shared {}
        let b = std::sync::Arc::new(AtomicBitmap::new(1));
        let counter = std::sync::Arc::new(Shared(std::cell::UnsafeCell::new(0u64)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = b.clone();
            let c = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    while b.set_sync(VertexId(0)) {
                        std::hint::spin_loop();
                    }
                    // SAFETY: the bit is held; we are the only writer.
                    unsafe { *c.0.get() += 1 };
                    b.clear_sync(VertexId(0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all writer threads are joined; no aliasing remains.
        assert_eq!(unsafe { *counter.0.get() }, 80_000);
    }

    #[test]
    fn atomic_iter_range() {
        let b = AtomicBitmap::new(300);
        for i in (0..300).step_by(10) {
            b.set(VertexId::from_index(i));
        }
        let got: Vec<usize> = b.iter_ones_in_range(95..201).map(|v| v.index()).collect();
        assert_eq!(
            got,
            vec![100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200]
        );
    }

    #[test]
    fn atomic_to_bitmap_snapshot() {
        let b = AtomicBitmap::new(40);
        b.set(VertexId(3));
        b.set(VertexId(39));
        let snap = b.to_bitmap();
        assert!(snap.get(VertexId(3)));
        assert!(snap.get(VertexId(39)));
        assert_eq!(snap.count_ones(), 2);
    }

    #[test]
    fn atomic_parallel_set_is_exact() {
        let b = std::sync::Arc::new(AtomicBitmap::new(10_000));
        let mut handles = Vec::new();
        for t in 0..8 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in (t..10_000).step_by(8) {
                    b.set(VertexId::from_index(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.count_ones(), 10_000);
    }

    #[test]
    fn last_partial_word_bits_beyond_len_ignored() {
        // 70 bits: the second word has 6 valid bits only.
        let mut b = Bitmap::new(70);
        b.set(VertexId(69));
        let got: Vec<usize> = b.iter_ones().map(|v| v.index()).collect();
        assert_eq!(got, vec![69]);
    }
}
