//! Cooperative cancellation and deadlines.
//!
//! A [`CancelToken`] is the handle a serving layer keeps to stop a
//! runaway query: cloning is cheap (one `Arc`), any clone can
//! [`CancelToken::cancel`], and the engine polls
//! [`CancelToken::check`] at iteration boundaries. Cancellation is
//! *cooperative*: nothing is interrupted mid-iteration, so the
//! observable state a cancelled run leaves behind (admission slots,
//! session queues, shared caches) is always a consistent
//! iteration-boundary state.
//!
//! A token may carry a deadline. The deadline is part of the token —
//! not of any configuration struct — so one clock governs both the
//! admission queue wait and the run itself.

use std::sync::Arc;
use std::time::Instant;

use crate::error::{FgError, Result};
use crate::sync::{AtomicBool, Ordering};

/// Why a run stopped before converging — the payload an engine
/// records when a [`CancelToken`] fires at an iteration boundary.
/// Converts into the matching [`FgError`] at the driver layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    DeadlineExpired,
}

impl From<CancelCause> for FgError {
    fn from(c: CancelCause) -> Self {
        match c {
            CancelCause::Cancelled => FgError::Cancelled,
            CancelCause::DeadlineExpired => FgError::DeadlineExpired,
        }
    }
}

/// Shared cancellation flag + optional deadline for one query.
///
/// `Default` builds a token that never fires (no deadline, not
/// cancelled) — the zero-cost stand-in for queries that opted out.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; fires only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation. Idempotent; takes effect at the
    /// target's next [`CancelToken::check`].
    pub fn cancel(&self) {
        // ordering: Release pairs with the Acquire in `is_cancelled`
        // so a run observing the flag also observes everything the
        // canceller wrote before cancelling. The flag itself carries
        // no payload, but keeping the pair costs nothing on x86 and
        // spares every caller a subtle-publication audit.
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called (ignores the
    /// deadline; use [`CancelToken::check`] for both).
    pub fn is_cancelled(&self) -> bool {
        // ordering: Acquire pairs with the Release in `cancel`.
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The deadline, when one was attached.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// How long until the deadline, when one was attached. Zero once
    /// it has passed.
    pub fn time_left(&self) -> Option<std::time::Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Polls the token: `Err(FgError::Cancelled)` after an explicit
    /// cancel, `Err(FgError::DeadlineExpired)` past the deadline,
    /// `Ok(())` otherwise. Explicit cancellation wins when both hold
    /// (the caller acted; the clock merely elapsed).
    pub fn check(&self) -> Result<()> {
        match self.cause() {
            None => Ok(()),
            Some(c) => Err(c.into()),
        }
    }

    /// Like [`CancelToken::check`], but as data: the cause that would
    /// make `check` fail right now, or `None`.
    pub fn cause(&self) -> Option<CancelCause> {
        if self.is_cancelled() {
            return Some(CancelCause::Cancelled);
        }
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                return Some(CancelCause::DeadlineExpired);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_token_never_fires() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), None);
        assert_eq!(t.time_left(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let peer = t.clone();
        peer.cancel();
        assert!(matches!(t.check(), Err(FgError::Cancelled)));
        // Idempotent.
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(matches!(t.check(), Err(FgError::DeadlineExpired)));
        let fresh = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(fresh.check().is_ok());
        assert!(fresh.time_left().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        t.cancel();
        assert!(matches!(t.check(), Err(FgError::Cancelled)));
    }
}
