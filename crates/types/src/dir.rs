//! Edge directions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which edge list of a directed vertex an operation touches.
///
/// FlashGraph stores the in-edge and out-edge lists of a vertex
/// *separately* on SSDs (§3.5.2): many algorithms need only one
/// direction (BFS and PageRank read out-edges only) and storing the
/// lists together would force them to read twice the data. Algorithms
/// that need both (WCC, triangle counting, betweenness centrality)
/// request both lists; FlashGraph's request merging keeps the extra
/// request count manageable.
///
/// # Example
///
/// ```
/// use fg_types::EdgeDir;
///
/// assert_eq!(EdgeDir::In.reverse(), EdgeDir::Out);
/// assert!(EdgeDir::Both.covers(EdgeDir::In));
/// assert!(!EdgeDir::Out.covers(EdgeDir::In));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeDir {
    /// The in-edge list: sources of edges pointing at the vertex.
    In,
    /// The out-edge list: destinations of edges leaving the vertex.
    Out,
    /// Both lists.
    Both,
}

impl EdgeDir {
    /// Flips `In` to `Out` and vice versa; `Both` is its own reverse.
    #[inline]
    pub fn reverse(self) -> Self {
        match self {
            EdgeDir::In => EdgeDir::Out,
            EdgeDir::Out => EdgeDir::In,
            EdgeDir::Both => EdgeDir::Both,
        }
    }

    /// Returns `true` when data for `other` is a subset of data for `self`.
    #[inline]
    pub fn covers(self, other: EdgeDir) -> bool {
        self == EdgeDir::Both || self == other
    }

    /// Iterates over the single directions included in `self`
    /// (`Both` yields `In` then `Out`).
    pub fn singles(self) -> impl Iterator<Item = EdgeDir> {
        let (a, b) = match self {
            EdgeDir::In => (Some(EdgeDir::In), None),
            EdgeDir::Out => (Some(EdgeDir::Out), None),
            EdgeDir::Both => (Some(EdgeDir::In), Some(EdgeDir::Out)),
        };
        a.into_iter().chain(b)
    }
}

impl fmt::Display for EdgeDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeDir::In => "in",
            EdgeDir::Out => "out",
            EdgeDir::Both => "both",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involution() {
        for d in [EdgeDir::In, EdgeDir::Out, EdgeDir::Both] {
            assert_eq!(d.reverse().reverse(), d);
        }
    }

    #[test]
    fn both_covers_everything() {
        for d in [EdgeDir::In, EdgeDir::Out, EdgeDir::Both] {
            assert!(EdgeDir::Both.covers(d));
        }
    }

    #[test]
    fn single_directions_cover_only_themselves() {
        assert!(EdgeDir::In.covers(EdgeDir::In));
        assert!(!EdgeDir::In.covers(EdgeDir::Out));
        assert!(!EdgeDir::In.covers(EdgeDir::Both));
    }

    #[test]
    fn singles_enumerates_components() {
        let got: Vec<_> = EdgeDir::Both.singles().collect();
        assert_eq!(got, vec![EdgeDir::In, EdgeDir::Out]);
        let got: Vec<_> = EdgeDir::Out.singles().collect();
        assert_eq!(got, vec![EdgeDir::Out]);
    }

    #[test]
    fn display_names() {
        assert_eq!(EdgeDir::In.to_string(), "in");
        assert_eq!(EdgeDir::Out.to_string(), "out");
        assert_eq!(EdgeDir::Both.to_string(), "both");
    }
}
