//! Property-based tests: the bitmaps behave like a reference
//! `HashSet<usize>` under arbitrary operation sequences.

use std::collections::BTreeSet;

use fg_types::{AtomicBitmap, Bitmap, VertexId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set(usize),
    Clear(usize),
    ClearAll,
}

fn op_strategy(len: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..len).prop_map(Op::Set),
        (0..len).prop_map(Op::Clear),
        Just(Op::ClearAll),
    ]
}

proptest! {
    // Bounded so tier-1 stays fast; raise via PROPTEST_CASES for
    // deeper soak runs.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_matches_reference_set(
        len in 1usize..500,
        ops in prop::collection::vec(op_strategy(500), 0..200),
    ) {
        let mut bm = Bitmap::new(len);
        let mut model = BTreeSet::new();
        for op in ops {
            match op {
                Op::Set(i) if i < len => {
                    let was = bm.set(VertexId::from_index(i));
                    prop_assert_eq!(was, !model.insert(i));
                }
                Op::Clear(i) if i < len => {
                    let was = bm.clear(VertexId::from_index(i));
                    prop_assert_eq!(was, model.remove(&i));
                }
                Op::ClearAll => {
                    bm.clear_all();
                    model.clear();
                }
                _ => {}
            }
        }
        prop_assert_eq!(bm.count_ones(), model.len());
        let got: Vec<usize> = bm.iter_ones().map(|v| v.index()).collect();
        let want: Vec<usize> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn atomic_bitmap_matches_plain_bitmap(
        len in 1usize..300,
        sets in prop::collection::vec(0usize..300, 0..150),
    ) {
        let atomic = AtomicBitmap::new(len);
        let mut plain = Bitmap::new(len);
        for i in sets {
            if i < len {
                atomic.set(VertexId::from_index(i));
                plain.set(VertexId::from_index(i));
            }
        }
        prop_assert_eq!(atomic.to_bitmap(), plain);
    }

    #[test]
    fn iter_range_is_filtered_iter(
        len in 1usize..300,
        sets in prop::collection::vec(0usize..300, 0..100),
        lo in 0usize..300,
        width in 0usize..300,
    ) {
        let b = AtomicBitmap::new(len);
        for i in sets {
            if i < len {
                b.set(VertexId::from_index(i));
            }
        }
        let hi = lo.saturating_add(width);
        let got: Vec<_> = b.iter_ones_in_range(lo..hi).collect();
        let want: Vec<_> = b
            .iter_ones()
            .filter(|v| v.index() >= lo && v.index() < hi)
            .collect();
        prop_assert_eq!(got, want);
    }
}
