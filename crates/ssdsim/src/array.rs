//! The striped SSD array.

use std::sync::Arc;

use fg_types::{FgError, Result};

use crate::config::ArrayConfig;
use crate::stats::IoStats;
use crate::store::{MemStore, PageStore};

/// A RAID-0-style array of simulated SSDs.
///
/// Logical byte space is striped across drives in units of
/// [`ArrayConfig::stripe_bytes`]. A request that spans stripe
/// boundaries is split into one sub-request per contiguous run on a
/// drive, and each sub-request pays its own setup cost in the
/// virtual-time ledger — exactly why FlashGraph's request merging only
/// helps for *adjacent* pages (§3.6).
///
/// Cloning is cheap: clones share the store, the ledger, and the
/// statistics.
#[derive(Clone)]
pub struct SsdArray {
    inner: Arc<Inner>,
}

struct Inner {
    cfg: ArrayConfig,
    store: Box<dyn PageStore>,
    stats: IoStats,
}

impl std::fmt::Debug for SsdArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdArray")
            .field("cfg", &self.inner.cfg)
            .field("capacity", &self.inner.store.capacity())
            .finish_non_exhaustive()
    }
}

/// One contiguous run of a logical request on a single drive.
#[derive(Debug, PartialEq, Eq)]
struct Extent {
    ssd: usize,
    logical_offset: u64,
    len: u64,
}

impl SsdArray {
    /// Creates an array over an in-memory store of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidConfig`] when `cfg` is invalid.
    pub fn new_mem(cfg: ArrayConfig, capacity: u64) -> Result<Self> {
        Self::with_store(cfg, Box::new(MemStore::new(capacity)))
    }

    /// Creates an array over any [`PageStore`].
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidConfig`] when `cfg` is invalid.
    pub fn with_store(cfg: ArrayConfig, store: Box<dyn PageStore>) -> Result<Self> {
        cfg.validate()?;
        let stats = IoStats::new(cfg.num_ssds);
        Ok(SsdArray {
            inner: Arc::new(Inner { cfg, store, stats }),
        })
    }

    /// The array's configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.inner.cfg
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.store.capacity()
    }

    /// Live statistics (shared with clones).
    pub fn stats(&self) -> &IoStats {
        &self.inner.stats
    }

    /// Reads `buf.len()` bytes at logical `offset`, charging virtual
    /// device time per drive touched.
    ///
    /// The charged page count is the number of *flash pages spanned*,
    /// so an unaligned 1-byte read still pays for a full page — the
    /// simulator, like hardware, has a 4 KB minimum transfer.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidRequest`] for empty or out-of-bounds
    /// ranges.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if buf.is_empty() {
            return Err(FgError::InvalidRequest("zero-length read".into()));
        }
        for e in self.extents(offset, buf.len() as u64)? {
            let pages = self.pages_spanned(e.logical_offset, e.len);
            let service = self.inner.cfg.spec.read_service_ns(pages);
            self.inner
                .stats
                .record_read(e.ssd, pages, pages * self.inner.cfg.page_bytes, service);
            let dst = (e.logical_offset - offset) as usize;
            self.inner
                .store
                .read_at(e.logical_offset, &mut buf[dst..dst + e.len as usize])?;
        }
        Ok(())
    }

    /// Writes `data` at logical `offset`; see [`SsdArray::read`] for
    /// the cost model (writes carry the configured penalty).
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidRequest`] for empty or out-of-bounds
    /// ranges.
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<()> {
        if data.is_empty() {
            return Err(FgError::InvalidRequest("zero-length write".into()));
        }
        for e in self.extents(offset, data.len() as u64)? {
            let pages = self.pages_spanned(e.logical_offset, e.len);
            let service = self.inner.cfg.spec.write_service_ns(pages);
            self.inner
                .stats
                .record_write(e.ssd, pages, pages * self.inner.cfg.page_bytes, service);
            let src = (e.logical_offset - offset) as usize;
            self.inner
                .store
                .write_at(e.logical_offset, &data[src..src + e.len as usize])?;
        }
        Ok(())
    }

    /// Number of flash pages the range `[offset, offset + len)` spans.
    fn pages_spanned(&self, offset: u64, len: u64) -> u64 {
        let pb = self.inner.cfg.page_bytes;
        let first = offset / pb;
        let last = (offset + len - 1) / pb;
        last - first + 1
    }

    /// Splits a logical range into per-drive extents.
    fn extents(&self, offset: u64, len: u64) -> Result<Vec<Extent>> {
        let end = offset
            .checked_add(len)
            .ok_or_else(|| FgError::InvalidRequest("offset + len overflows".into()))?;
        if end > self.capacity() {
            return Err(FgError::InvalidRequest(format!(
                "range [{offset}, {end}) exceeds array capacity {}",
                self.capacity()
            )));
        }
        let sb = self.inner.cfg.stripe_bytes();
        let n = self.inner.cfg.num_ssds as u64;
        let mut out = Vec::new();
        let mut cur = offset;
        while cur < end {
            let stripe = cur / sb;
            let ssd = (stripe % n) as usize;
            let stripe_end = (stripe + 1) * sb;
            let run = end.min(stripe_end) - cur;
            // Merge with previous extent when striping keeps us on the
            // same drive (single-drive arrays, consecutive stripes).
            match out.last_mut() {
                Some(Extent {
                    ssd: last_ssd,
                    logical_offset,
                    len,
                }) if *last_ssd == ssd && *logical_offset + *len == cur => {
                    *len += run;
                }
                _ => out.push(Extent {
                    ssd,
                    logical_offset: cur,
                    len: run,
                }),
            }
            cur += run;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SsdArray {
        SsdArray::new_mem(ArrayConfig::small_test(), 1 << 20).unwrap()
    }

    #[test]
    fn read_write_round_trip() {
        let a = small();
        let data: Vec<u8> = (0..8192).map(|i| (i % 251) as u8).collect();
        a.write(4096, &data).unwrap();
        let mut buf = vec![0u8; 8192];
        a.read(4096, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn single_page_read_costs_one_setup() {
        let a = small();
        let mut buf = [0u8; 4096];
        a.read(0, &mut buf).unwrap();
        let s = a.stats().snapshot();
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.pages_read, 1);
        assert_eq!(s.max_busy_ns, a.config().spec.read_service_ns(1));
    }

    #[test]
    fn unaligned_read_pays_full_pages() {
        let a = small();
        let mut buf = [0u8; 10];
        // 10 bytes straddling a page boundary: 2 pages charged.
        a.read(4090, &mut buf).unwrap();
        let s = a.stats().snapshot();
        assert_eq!(s.pages_read, 2);
        assert_eq!(s.bytes_read, 8192);
    }

    #[test]
    fn stripe_crossing_splits_request() {
        let a = small(); // stripe = 4 pages = 16 KB
        let mut buf = vec![0u8; 32 * 1024];
        a.read(0, &mut buf).unwrap();
        let s = a.stats().snapshot();
        // 32 KB spans 2 stripes on different drives -> 2 requests.
        assert_eq!(s.read_requests, 2);
        assert_eq!(s.pages_read, 8);
        // Each drive has busy time for a 4-page request.
        let busy: Vec<_> = s.per_ssd_busy_ns.iter().filter(|&&b| b > 0).collect();
        assert_eq!(busy.len(), 2);
    }

    #[test]
    fn merged_read_cheaper_than_split_reads() {
        let a = small();
        let mut big = vec![0u8; 16 * 1024];
        a.read(0, &mut big).unwrap();
        let merged = a.stats().snapshot().max_busy_ns;

        let b = small();
        let mut page = vec![0u8; 4096];
        for i in 0..4 {
            b.read(i * 4096, &mut page).unwrap();
        }
        let split = b.stats().snapshot().max_busy_ns;
        assert!(
            split > merged,
            "four 1-page reads ({split} ns) should cost more than one 4-page read ({merged} ns)"
        );
    }

    #[test]
    fn random_vs_sequential_bandwidth_gap() {
        // Read 4 MB sequentially in 64 KB requests vs randomly in
        // 4 KB requests; sequential must be 2-3x faster in busy time.
        let cfg = ArrayConfig {
            num_ssds: 1,
            stripe_pages: 1 << 20, // keep everything on one drive
            ..ArrayConfig::small_test()
        };
        let total: u64 = 4 << 20;
        let seq = SsdArray::new_mem(cfg, total).unwrap();
        let mut buf = vec![0u8; 64 * 1024];
        let mut off = 0;
        while off < total {
            seq.read(off, &mut buf).unwrap();
            off += buf.len() as u64;
        }
        let seq_ns = seq.stats().snapshot().max_busy_ns;

        let rnd = SsdArray::new_mem(cfg, total).unwrap();
        let mut page = vec![0u8; 4096];
        // Deterministic scatter order.
        let pages = total / 4096;
        for i in 0..pages {
            let p = (i * 2654435761) % pages;
            rnd.read(p * 4096, &mut page).unwrap();
        }
        let rnd_ns = rnd.stats().snapshot().max_busy_ns;
        let ratio = rnd_ns as f64 / seq_ns as f64;
        assert!(
            (1.8..3.2).contains(&ratio),
            "random/sequential busy ratio {ratio} outside the paper's 2-3x band"
        );
    }

    #[test]
    fn zero_length_and_oob_rejected() {
        let a = small();
        let mut empty: [u8; 0] = [];
        assert!(a.read(0, &mut empty).is_err());
        let mut buf = [0u8; 8];
        assert!(a.read(a.capacity(), &mut buf).is_err());
        assert!(a.write(a.capacity() - 4, &[0u8; 8]).is_err());
    }

    #[test]
    fn wear_tracked_for_writes() {
        let a = small();
        a.write(0, &[1u8; 4096]).unwrap();
        a.write(4096, &[2u8; 4096]).unwrap();
        assert_eq!(a.stats().snapshot().bytes_written, 8192);
    }

    #[test]
    fn clones_share_state() {
        let a = small();
        let b = a.clone();
        b.write(0, b"shared").unwrap();
        let mut buf = [0u8; 6];
        a.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
        assert_eq!(a.stats().snapshot().write_requests, 1);
    }

    #[test]
    fn striping_balances_round_robin() {
        let a = small(); // 4 drives, 16 KB stripes
        let mut buf = vec![0u8; 16 * 1024];
        for i in 0..8u64 {
            a.read(i * 16 * 1024, &mut buf).unwrap();
        }
        let s = a.stats().snapshot();
        // 8 stripes over 4 drives: each drive saw 2 requests.
        for b in &s.per_ssd_busy_ns {
            assert_eq!(*b, 2 * a.config().spec.read_service_ns(4));
        }
    }
}
