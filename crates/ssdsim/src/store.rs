//! Byte stores backing the simulated drives.

use std::fs::{File, OpenOptions};
use std::path::Path;

use fg_types::{FgError, Result};
use parking_lot::RwLock;

/// Where a simulated drive's bytes actually live.
///
/// Implementations must support concurrent `read_at` from many
/// threads; the simulator never issues overlapping concurrent writes
/// to the same range (the graph image is written once, then read).
pub trait PageStore: Send + Sync {
    /// Capacity in bytes.
    fn capacity(&self) -> u64;

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidRequest`] when the range exceeds
    /// capacity, or [`FgError::Io`] for OS failures.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes `data` starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidRequest`] when the range exceeds
    /// capacity, or [`FgError::Io`] for OS failures.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;
}

fn check_range(capacity: u64, offset: u64, len: usize) -> Result<()> {
    let end = offset
        .checked_add(len as u64)
        .ok_or_else(|| FgError::InvalidRequest("offset + len overflows".into()))?;
    if end > capacity {
        return Err(FgError::InvalidRequest(format!(
            "range [{offset}, {end}) exceeds capacity {capacity}"
        )));
    }
    Ok(())
}

/// An in-RAM store. The default for experiments: the simulator's
/// virtual-time ledger supplies the "device speed", so the backing
/// bytes may as well be fast.
#[derive(Debug)]
pub struct MemStore {
    bytes: RwLock<Box<[u8]>>,
}

impl MemStore {
    /// Allocates a zeroed store of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemStore {
            bytes: RwLock::new(vec![0u8; capacity as usize].into_boxed_slice()),
        }
    }
}

impl PageStore for MemStore {
    fn capacity(&self) -> u64 {
        self.bytes.read().len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let bytes = self.bytes.read();
        check_range(bytes.len() as u64, offset, buf.len())?;
        let start = offset as usize;
        buf.copy_from_slice(&bytes[start..start + buf.len()]);
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let mut bytes = self.bytes.write();
        check_range(bytes.len() as u64, offset, data.len())?;
        let start = offset as usize;
        bytes[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }
}

/// A store backed by a real file, for integration tests that want the
/// graph image to cross a true filesystem boundary.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    capacity: u64,
}

impl FileStore {
    /// Creates (truncating) a file of `capacity` bytes at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::Io`] when the file cannot be created or
    /// sized.
    pub fn create<P: AsRef<Path>>(path: P, capacity: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(capacity)?;
        Ok(FileStore { file, capacity })
    }

    /// Opens an existing file read-write without truncation.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::Io`] when the file cannot be opened.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let capacity = file.metadata()?.len();
        Ok(FileStore { file, capacity })
    }
}

impl PageStore for FileStore {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    #[cfg(unix)]
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        check_range(self.capacity, offset, buf.len())?;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    #[cfg(unix)]
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        check_range(self.capacity, offset, data.len())?;
        self.file.write_all_at(data, offset)?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn read_at(&self, _offset: u64, _buf: &mut [u8]) -> Result<()> {
        Err(FgError::Unsupported("FileStore requires unix".into()))
    }

    #[cfg(not(unix))]
    fn write_at(&self, _offset: u64, _data: &[u8]) -> Result<()> {
        Err(FgError::Unsupported("FileStore requires unix".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_round_trip() {
        let s = MemStore::new(1024);
        s.write_at(100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        s.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn mem_store_rejects_out_of_range() {
        let s = MemStore::new(10);
        let mut buf = [0u8; 4];
        assert!(s.read_at(8, &mut buf).is_err());
        assert!(s.write_at(u64::MAX, b"x").is_err());
    }

    #[test]
    fn mem_store_concurrent_reads() {
        let s = std::sync::Arc::new(MemStore::new(4096));
        s.write_at(0, &[42u8; 4096]).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let mut buf = [0u8; 512];
                for i in 0..8 {
                    s.read_at(i * 512, &mut buf).unwrap();
                    assert!(buf.iter().all(|&b| b == 42));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn file_store_round_trip() {
        let dir = std::env::temp_dir().join(format!("fgstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        let s = FileStore::create(&path, 8192).unwrap();
        s.write_at(4096, b"flash").unwrap();
        let mut buf = [0u8; 5];
        s.read_at(4096, &mut buf).unwrap();
        assert_eq!(&buf, b"flash");
        drop(s);
        let s2 = FileStore::open(&path).unwrap();
        assert_eq!(s2.capacity(), 8192);
        let mut buf2 = [0u8; 5];
        s2.read_at(4096, &mut buf2).unwrap();
        assert_eq!(&buf2, b"flash");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_rejects_out_of_range() {
        let dir = std::env::temp_dir().join(format!("fgstore2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.bin");
        let s = FileStore::create(&path, 100).unwrap();
        let mut buf = [0u8; 8];
        assert!(s.read_at(96, &mut buf).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
