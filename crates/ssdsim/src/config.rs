//! Simulator configuration.

use fg_types::{FgError, Result};
use serde::{Deserialize, Serialize};

/// Performance model of one simulated SSD.
///
/// A request touching `p` pages is charged
/// `setup_ns + p * page_transfer_ns` of device busy time. With the
/// default parameters a random 4 KB read costs 20 µs (50 K IOPS per
/// drive) while large sequential reads approach 4 KB / 8 µs = 512 MB/s
/// — a 2.5× random-vs-sequential gap, inside the 2–3× band the paper
/// cites for commodity SSDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsdSpec {
    /// Fixed cost charged to every request (command overhead, FTL
    /// lookup, flash read latency not overlapped by striping).
    pub setup_ns: u64,
    /// Marginal cost per 4 KB page transferred.
    pub page_transfer_ns: u64,
    /// Multiplier (in percent) applied to writes; flash programs are
    /// slower than reads.
    pub write_penalty_pct: u64,
}

impl SsdSpec {
    /// Model of a 2012-era consumer SATA SSD (OCZ Vertex 4 class).
    pub fn commodity_sata() -> Self {
        SsdSpec {
            setup_ns: 12_000,
            page_transfer_ns: 8_000,
            write_penalty_pct: 150,
        }
    }

    /// Service time of a read touching `pages` pages.
    #[inline]
    pub fn read_service_ns(&self, pages: u64) -> u64 {
        self.setup_ns + pages * self.page_transfer_ns
    }

    /// Service time of a write touching `pages` pages.
    #[inline]
    pub fn write_service_ns(&self, pages: u64) -> u64 {
        self.read_service_ns(pages) * self.write_penalty_pct / 100
    }

    /// Random 4 KB read throughput of one drive, in IOPS.
    pub fn random_iops(&self) -> f64 {
        1e9 / self.read_service_ns(1) as f64
    }

    /// Asymptotic sequential read bandwidth of one drive, bytes/s.
    pub fn seq_bandwidth(&self, page_bytes: u64) -> f64 {
        page_bytes as f64 / (self.page_transfer_ns as f64 / 1e9)
    }
}

impl Default for SsdSpec {
    fn default() -> Self {
        SsdSpec::commodity_sata()
    }
}

/// Configuration of a striped SSD array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Number of drives. The paper's testbed has 15.
    pub num_ssds: usize,
    /// Flash page size in bytes; the minimum I/O unit. 4 KB on real
    /// hardware (§5.5.2 shows 4 KB is also the best choice).
    pub page_bytes: u64,
    /// Stripe width in pages: consecutive runs of this many pages land
    /// on the same drive before striping moves to the next.
    pub stripe_pages: u64,
    /// Per-drive performance model.
    pub spec: SsdSpec,
}

impl ArrayConfig {
    /// The paper-scale array: 15 commodity SSDs, 4 KB pages, 64 KB
    /// stripes.
    pub fn paper_array() -> Self {
        ArrayConfig {
            num_ssds: 15,
            page_bytes: 4096,
            stripe_pages: 16,
            spec: SsdSpec::commodity_sata(),
        }
    }

    /// A small array for unit tests: 4 drives, 4 KB pages.
    pub fn small_test() -> Self {
        ArrayConfig {
            num_ssds: 4,
            page_bytes: 4096,
            stripe_pages: 4,
            spec: SsdSpec::commodity_sata(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidConfig`] when a field is zero or the
    /// page size is not a power of two.
    pub fn validate(&self) -> Result<()> {
        if self.num_ssds == 0 {
            return Err(FgError::InvalidConfig("num_ssds must be > 0".into()));
        }
        if self.page_bytes == 0 || !self.page_bytes.is_power_of_two() {
            return Err(FgError::InvalidConfig(format!(
                "page_bytes {} must be a nonzero power of two",
                self.page_bytes
            )));
        }
        if self.stripe_pages == 0 {
            return Err(FgError::InvalidConfig("stripe_pages must be > 0".into()));
        }
        if self.spec.page_transfer_ns == 0 {
            return Err(FgError::InvalidConfig(
                "page_transfer_ns must be > 0".into(),
            ));
        }
        Ok(())
    }

    /// Bytes per stripe.
    #[inline]
    pub fn stripe_bytes(&self) -> u64 {
        self.page_bytes * self.stripe_pages
    }

    /// Aggregate random-4 KB IOPS of the array.
    pub fn aggregate_iops(&self) -> f64 {
        self.spec.random_iops() * self.num_ssds as f64
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig::paper_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_spec_matches_paper_band() {
        let s = SsdSpec::commodity_sata();
        let iops = s.random_iops();
        assert!((40_000.0..80_000.0).contains(&iops), "iops {iops}");
        let seq = s.seq_bandwidth(4096);
        let rand_bw = iops * 4096.0;
        let ratio = seq / rand_bw;
        assert!(
            (2.0..3.0).contains(&ratio),
            "sequential/random ratio {ratio} outside the paper's 2-3x band"
        );
    }

    #[test]
    fn paper_array_near_900k_iops() {
        let a = ArrayConfig::paper_array();
        let iops = a.aggregate_iops();
        assert!((600_000.0..1_000_000.0).contains(&iops), "iops {iops}");
    }

    #[test]
    fn write_penalty_applies() {
        let s = SsdSpec::commodity_sata();
        assert!(s.write_service_ns(1) > s.read_service_ns(1));
    }

    #[test]
    fn service_time_linear_in_pages() {
        let s = SsdSpec::commodity_sata();
        let one = s.read_service_ns(1);
        let ten = s.read_service_ns(10);
        assert_eq!(ten - one, 9 * s.page_transfer_ns);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = ArrayConfig::small_test();
        c.num_ssds = 0;
        assert!(c.validate().is_err());
        let mut c = ArrayConfig::small_test();
        c.page_bytes = 3000;
        assert!(c.validate().is_err());
        let mut c = ArrayConfig::small_test();
        c.stripe_pages = 0;
        assert!(c.validate().is_err());
        assert!(ArrayConfig::small_test().validate().is_ok());
    }

    #[test]
    fn stripe_bytes_product() {
        let c = ArrayConfig::paper_array();
        assert_eq!(c.stripe_bytes(), 4096 * 16);
    }
}
