//! Atomic I/O accounting shared by all threads touching an array.

use fg_types::sync::Counter;
use serde::Serialize;

/// Live counters for an [`crate::SsdArray`].
///
/// All counters are [`Counter`]s — relaxed statistics, not
/// synchronization (the exact-read points are externally
/// synchronized; see the `Counter` contract). `busy_ns` is per-drive
/// virtual device time — the maximum across drives is the array's
/// I/O critical path, used as the I/O term of the experiments'
/// roofline runtime model.
#[derive(Debug)]
pub struct IoStats {
    read_requests: Counter,
    pages_read: Counter,
    bytes_read: Counter,
    write_requests: Counter,
    pages_written: Counter,
    bytes_written: Counter,
    busy_ns: Vec<Counter>,
    /// Logical read requests currently queued on (or being served by)
    /// the array — a gauge, maintained by the I/O layer above via
    /// [`IoStats::queue_enter`] / [`IoStats::queue_exit`].
    inflight: Counter,
    depth_samples: Counter,
    depth_sum: Counter,
    depth_zero_dips: Counter,
    depth_max: Counter,
    dedup_hits: Counter,
    dedup_bytes: Counter,
}

impl IoStats {
    /// Creates zeroed stats for `num_ssds` drives.
    pub fn new(num_ssds: usize) -> Self {
        let mut busy_ns = Vec::with_capacity(num_ssds);
        busy_ns.resize_with(num_ssds, Counter::default);
        IoStats {
            read_requests: Counter::default(),
            pages_read: Counter::default(),
            bytes_read: Counter::default(),
            write_requests: Counter::default(),
            pages_written: Counter::default(),
            bytes_written: Counter::default(),
            busy_ns,
            inflight: Counter::default(),
            depth_samples: Counter::default(),
            depth_sum: Counter::default(),
            depth_zero_dips: Counter::default(),
            depth_max: Counter::default(),
            dedup_hits: Counter::default(),
            dedup_bytes: Counter::default(),
        }
    }

    /// Books a span of pages that a session *did not* read from the
    /// device because another session's in-flight read already covers
    /// them (the mount-level in-flight table attached it as a waiter).
    /// Device counters (`record_read`) book the bytes once, on the
    /// fetching request; this books the avoided duplicate delivery, so
    /// `bytes_read + dedup_bytes` is total bytes *delivered* to
    /// sessions while `bytes_read` stays total bytes *fetched*.
    pub fn record_dedup(&self, pages: u64, bytes: u64) {
        self.dedup_hits.add(pages);
        self.dedup_bytes.add(bytes);
    }

    /// Books one logical read request entering the device queue and
    /// samples the resulting depth. Called by the I/O layer when it
    /// dispatches a request to an I/O thread (not by `read` itself:
    /// the simulator services reads synchronously, so queue depth is
    /// only observable at the dispatch/completion layer above).
    pub fn queue_enter(&self) {
        let d = self.inflight.inc();
        self.sample_depth(d);
    }

    /// Books one logical read request leaving the device queue,
    /// samples the resulting depth, and counts a *zero dip* when the
    /// queue just drained — the scheduler-idle signal the pipelined
    /// engine exists to eliminate between iteration boundaries.
    pub fn queue_exit(&self) {
        // Clamped at zero: an exit without a paired enter (direct
        // batch serving in tests) must not wrap the gauge.
        let prev = self.inflight.dec_saturating();
        let d = prev.saturating_sub(1);
        self.sample_depth(d);
        if d == 0 {
            self.depth_zero_dips.inc();
        }
    }

    fn sample_depth(&self, d: u64) {
        self.depth_samples.inc();
        self.depth_sum.add(d);
        self.depth_max.max(d);
    }

    pub(crate) fn record_read(&self, ssd: usize, pages: u64, bytes: u64, service_ns: u64) {
        self.read_requests.inc();
        self.pages_read.add(pages);
        self.bytes_read.add(bytes);
        self.busy_ns[ssd].add(service_ns);
    }

    pub(crate) fn record_write(&self, ssd: usize, pages: u64, bytes: u64, service_ns: u64) {
        self.write_requests.inc();
        self.pages_written.add(pages);
        self.bytes_written.add(bytes);
        self.busy_ns[ssd].add(service_ns);
    }

    /// Resets every counter; call between experiment phases so the
    /// measured region excludes graph loading.
    pub fn reset(&self) {
        self.read_requests.set(0);
        self.pages_read.set(0);
        self.bytes_read.set(0);
        self.write_requests.set(0);
        self.pages_written.set(0);
        self.bytes_written.set(0);
        for b in &self.busy_ns {
            b.set(0);
        }
        // The depth trace restarts but the gauge itself does not: a
        // reset taken while requests are queued must not make later
        // `queue_exit` calls underflow.
        self.depth_samples.set(0);
        self.depth_sum.set(0);
        self.depth_zero_dips.set(0);
        self.depth_max.set(0);
        self.dedup_hits.set(0);
        self.dedup_bytes.set(0);
    }

    /// Takes a consistent-enough snapshot (exact when no I/O is in
    /// flight, which is how the harnesses use it).
    pub fn snapshot(&self) -> IoStatsSnapshot {
        let busy: Vec<u64> = self.busy_ns.iter().map(|b| b.get()).collect();
        IoStatsSnapshot {
            read_requests: self.read_requests.get(),
            pages_read: self.pages_read.get(),
            bytes_read: self.bytes_read.get(),
            write_requests: self.write_requests.get(),
            pages_written: self.pages_written.get(),
            bytes_written: self.bytes_written.get(),
            max_busy_ns: busy.iter().copied().max().unwrap_or(0),
            total_busy_ns: busy.iter().copied().sum(),
            per_ssd_busy_ns: busy,
            depth_samples: self.depth_samples.get(),
            depth_sum: self.depth_sum.get(),
            depth_zero_dips: self.depth_zero_dips.get(),
            depth_max: self.depth_max.get(),
            dedup_hits: self.dedup_hits.get(),
            dedup_bytes: self.dedup_bytes.get(),
        }
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct IoStatsSnapshot {
    /// Read requests issued to drives (after any merging upstream).
    pub read_requests: u64,
    /// Pages read.
    pub pages_read: u64,
    /// Bytes read (request payload, page-aligned).
    pub bytes_read: u64,
    /// Write requests issued to drives.
    pub write_requests: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Bytes written — the wearout metric the paper minimizes.
    pub bytes_written: u64,
    /// Virtual busy time of each drive.
    pub per_ssd_busy_ns: Vec<u64>,
    /// Busy time of the most-loaded drive: the I/O critical path.
    pub max_busy_ns: u64,
    /// Sum of all drives' busy time.
    pub total_busy_ns: u64,
    /// Queue-depth samples taken (one per enter/exit transition).
    pub depth_samples: u64,
    /// Sum of sampled depths; `depth_sum / depth_samples` is the mean
    /// device queue depth over the measured phase.
    pub depth_sum: u64,
    /// Times the queue drained to zero — each dip is a window in
    /// which the device sat idle while the scheduler synchronized.
    pub depth_zero_dips: u64,
    /// High-watermark queue depth. Meaningful per measured phase
    /// (after a [`IoStats::reset`]); its `delta_since` is a
    /// saturating difference like every other field, not a windowed
    /// maximum.
    pub depth_max: u64,
    /// Pages a session obtained by attaching to *another* session's
    /// in-flight device read instead of issuing its own (the
    /// mount-level dedup table). Each hit is a device read avoided.
    pub dedup_hits: u64,
    /// Bytes delivered through dedup attachments. Device `bytes_read`
    /// books fetched bytes once; this books the duplicate deliveries,
    /// per tenant, that the device never saw.
    pub dedup_bytes: u64,
}

impl IoStatsSnapshot {
    /// Difference `self - earlier`, counter-wise; used to isolate one
    /// experiment phase.
    ///
    /// Saturating, like `CacheStatsSnapshot::delta_since`: when
    /// [`IoStats::reset`] ran between the two snapshots (easy to hit
    /// once many tenants share one array), each counter clamps at zero
    /// instead of panicking in debug or wrapping in release.
    pub fn delta_since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_requests: self.read_requests.saturating_sub(earlier.read_requests),
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            write_requests: self.write_requests.saturating_sub(earlier.write_requests),
            pages_written: self.pages_written.saturating_sub(earlier.pages_written),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            per_ssd_busy_ns: self
                .per_ssd_busy_ns
                .iter()
                .zip(&earlier.per_ssd_busy_ns)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            max_busy_ns: {
                self.per_ssd_busy_ns
                    .iter()
                    .zip(&earlier.per_ssd_busy_ns)
                    .map(|(a, b)| a.saturating_sub(*b))
                    .max()
                    .unwrap_or(0)
            },
            total_busy_ns: self.total_busy_ns.saturating_sub(earlier.total_busy_ns),
            depth_samples: self.depth_samples.saturating_sub(earlier.depth_samples),
            depth_sum: self.depth_sum.saturating_sub(earlier.depth_sum),
            depth_zero_dips: self.depth_zero_dips.saturating_sub(earlier.depth_zero_dips),
            depth_max: self.depth_max.saturating_sub(earlier.depth_max),
            dedup_hits: self.dedup_hits.saturating_sub(earlier.dedup_hits),
            dedup_bytes: self.dedup_bytes.saturating_sub(earlier.dedup_bytes),
        }
    }

    /// Folds `other` into `self` as the aggregate of *distinct
    /// devices* (e.g. one array per shard): counters sum, per-drive
    /// busy times concatenate (the drives are disjoint), and maxima
    /// take the max. Queue-depth gauges sum sample-wise, so
    /// [`IoStatsSnapshot::mean_queue_depth`] of the aggregate is the
    /// sample-weighted mean across devices.
    pub fn absorb(&mut self, other: &IoStatsSnapshot) {
        self.read_requests += other.read_requests;
        self.pages_read += other.pages_read;
        self.bytes_read += other.bytes_read;
        self.write_requests += other.write_requests;
        self.pages_written += other.pages_written;
        self.bytes_written += other.bytes_written;
        self.per_ssd_busy_ns
            .extend_from_slice(&other.per_ssd_busy_ns);
        self.max_busy_ns = self.max_busy_ns.max(other.max_busy_ns);
        self.total_busy_ns += other.total_busy_ns;
        self.depth_samples += other.depth_samples;
        self.depth_sum += other.depth_sum;
        self.depth_zero_dips += other.depth_zero_dips;
        self.depth_max = self.depth_max.max(other.depth_max);
        self.dedup_hits += other.dedup_hits;
        self.dedup_bytes += other.dedup_bytes;
    }

    /// Mean request size in bytes (0 when no reads happened).
    pub fn mean_read_bytes(&self) -> f64 {
        if self.read_requests == 0 {
            0.0
        } else {
            self.bytes_read as f64 / self.read_requests as f64
        }
    }

    /// Mean sampled device queue depth (0 when never sampled).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let s = IoStats::new(2);
        s.record_read(0, 1, 4096, 100);
        s.record_read(1, 2, 8192, 200);
        s.record_write(0, 1, 4096, 300);
        let snap = s.snapshot();
        assert_eq!(snap.read_requests, 2);
        assert_eq!(snap.pages_read, 3);
        assert_eq!(snap.bytes_read, 12288);
        assert_eq!(snap.write_requests, 1);
        assert_eq!(snap.per_ssd_busy_ns, vec![400, 200]);
        assert_eq!(snap.max_busy_ns, 400);
        assert_eq!(snap.total_busy_ns, 600);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new(1);
        s.record_read(0, 1, 4096, 10);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.read_requests, 0);
        assert_eq!(snap.max_busy_ns, 0);
    }

    #[test]
    fn delta_isolates_a_phase() {
        let s = IoStats::new(2);
        s.record_read(0, 1, 4096, 50);
        let before = s.snapshot();
        s.record_read(1, 4, 16384, 500);
        let after = s.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.read_requests, 1);
        assert_eq!(d.pages_read, 4);
        assert_eq!(d.max_busy_ns, 500);
    }

    #[test]
    fn delta_saturates_across_reset() {
        let s = IoStats::new(2);
        s.record_read(0, 3, 12288, 700);
        let before = s.snapshot();
        s.reset();
        s.record_read(1, 1, 4096, 40);
        let d = s.snapshot().delta_since(&before);
        assert_eq!(d.read_requests, 0, "post-reset counters clamp, not wrap");
        assert_eq!(d.pages_read, 0);
        assert_eq!(d.per_ssd_busy_ns, vec![0, 40]);
        assert_eq!(d.max_busy_ns, 40);
        assert_eq!(d.total_busy_ns, 0);
    }

    #[test]
    fn queue_depth_gauge_and_dips() {
        let s = IoStats::new(1);
        // Two requests enter, drain, one more enters and drains:
        // depths sampled 1,2,1,0,1,0 -> two zero dips, max 2.
        s.queue_enter();
        s.queue_enter();
        s.queue_exit();
        s.queue_exit();
        s.queue_enter();
        s.queue_exit();
        let snap = s.snapshot();
        assert_eq!(snap.depth_samples, 6);
        assert_eq!(snap.depth_sum, 5);
        assert_eq!(snap.depth_zero_dips, 2);
        assert_eq!(snap.depth_max, 2);
        assert!((snap.mean_queue_depth() - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn reset_keeps_inflight_gauge_but_clears_trace() {
        let s = IoStats::new(1);
        s.queue_enter();
        s.reset();
        assert_eq!(s.snapshot().depth_samples, 0);
        // The request entered before the reset still exits cleanly
        // and is counted as a dip of the post-reset trace.
        s.queue_exit();
        let snap = s.snapshot();
        assert_eq!(snap.depth_samples, 1);
        assert_eq!(snap.depth_zero_dips, 1);
    }

    #[test]
    fn dedup_counters_roll_up_like_counters() {
        let s = IoStats::new(1);
        s.record_dedup(2, 8192);
        let before = s.snapshot();
        s.record_dedup(1, 4096);
        let after = s.snapshot();
        assert_eq!(after.dedup_hits, 3);
        assert_eq!(after.dedup_bytes, 12288);
        let d = after.delta_since(&before);
        assert_eq!(d.dedup_hits, 1);
        assert_eq!(d.dedup_bytes, 4096);
        let mut agg = before.clone();
        agg.absorb(&after);
        assert_eq!(agg.dedup_hits, 5, "absorb sums dedup counters");
        s.reset();
        assert_eq!(s.snapshot().dedup_hits, 0);
        assert_eq!(s.snapshot().dedup_bytes, 0);
    }

    #[test]
    fn mean_read_bytes_handles_zero() {
        let s = IoStats::new(1);
        assert_eq!(s.snapshot().mean_read_bytes(), 0.0);
        s.record_read(0, 2, 8192, 10);
        assert_eq!(s.snapshot().mean_read_bytes(), 8192.0);
    }
}
