//! An SSD-array simulator standing in for the paper's hardware.
//!
//! The FlashGraph paper evaluates on 15 OCZ Vertex 4 SSDs behind three
//! host bus adapters — roughly 60 K random-4 KB reads/s per drive and
//! ~900 K IOPS aggregate. This crate substitutes that testbed with a
//! deterministic simulator (see `DESIGN.md` for the substitution
//! argument):
//!
//! * Bytes live in a [`PageStore`] — RAM ([`MemStore`]) or a real file
//!   ([`FileStore`]) — striped across simulated drives like RAID-0.
//! * Every request is charged against a per-drive **virtual-time
//!   ledger** using a two-parameter service model: a fixed per-request
//!   *setup* cost plus a per-page *transfer* cost. The setup cost is
//!   what request merging saves; the ratio of the two reproduces the
//!   paper's observation that random 4 KB throughput on SSDs is only
//!   2–3× below sequential bandwidth (§3, "Design principles").
//! * [`IoStats`] counts requests, pages, and bytes, and exposes the
//!   busiest drive's ledger — the I/O term of the roofline runtime
//!   model used by the benchmark harnesses.
//!
//! # Example
//!
//! ```
//! use fg_ssdsim::{ArrayConfig, SsdArray};
//!
//! let cfg = ArrayConfig::small_test();
//! let array = SsdArray::new_mem(cfg, 1 << 20)?;
//! array.write(0, &[7u8; 4096])?;
//! let mut buf = [0u8; 4096];
//! array.read(0, &mut buf)?;
//! assert_eq!(buf[100], 7);
//! assert_eq!(array.stats().snapshot().read_requests, 1);
//! # Ok::<(), fg_types::FgError>(())
//! ```

mod array;
mod config;
mod stats;
mod store;

pub use array::SsdArray;
pub use config::{ArrayConfig, SsdSpec};
pub use stats::{IoStats, IoStatsSnapshot};
pub use store::{FileStore, MemStore, PageStore};
