//! Direct in-memory algorithms (the Galois stand-in).
//!
//! Hand-written, single-purpose implementations with no framework
//! between the algorithm and the CSR. Two jobs: the "Galois" column
//! of Figure 10, and correctness oracles for every FlashGraph app.

use std::collections::{BinaryHeap, VecDeque};

use fg_graph::Graph;
use fg_types::VertexId;

/// BFS levels from `source`; `None` for unreached vertices.
pub fn bfs_levels(g: &Graph, source: VertexId) -> Vec<Option<u32>> {
    let n = g.num_vertices();
    let mut levels = vec![None; n];
    if source.index() >= n {
        return levels;
    }
    let mut q = VecDeque::new();
    levels[source.index()] = Some(0);
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        let next = levels[v.index()].unwrap() + 1;
        for &u in g.out_neighbors(v) {
            if levels[u.index()].is_none() {
                levels[u.index()] = Some(next);
                q.push_back(u);
            }
        }
    }
    levels
}

/// Single-source betweenness-centrality dependencies (Brandes'
/// accumulation from one source): `delta[v]` for every `v`.
pub fn bc_single_source(g: &Graph, source: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut sigma = vec![0f64; n];
    let mut dist = vec![i64::MAX; n];
    let mut order: Vec<VertexId> = Vec::new();
    let mut delta = vec![0f64; n];
    if source.index() >= n {
        return delta;
    }
    sigma[source.index()] = 1.0;
    dist[source.index()] = 0;
    let mut q = VecDeque::new();
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        order.push(v);
        for &u in g.out_neighbors(v) {
            if dist[u.index()] == i64::MAX {
                dist[u.index()] = dist[v.index()] + 1;
                q.push_back(u);
            }
            if dist[u.index()] == dist[v.index()] + 1 {
                sigma[u.index()] += sigma[v.index()];
            }
        }
    }
    for &v in order.iter().rev() {
        for &u in g.out_neighbors(v) {
            if dist[u.index()] == dist[v.index()] + 1 {
                delta[v.index()] += sigma[v.index()] / sigma[u.index()] * (1.0 + delta[u.index()]);
            }
        }
    }
    delta
}

/// PageRank by power iteration: `rank[v] = (1-d) + d * Σ rank[u]/deg(u)`
/// over in-edges, `iters` rounds (the paper's formulation, scaled so
/// ranks sum to ~n).
pub fn pagerank(g: &Graph, damping: f64, iters: u32) -> Vec<f64> {
    let n = g.num_vertices();
    let mut rank = vec![1.0; n];
    let mut next = vec![0.0; n];
    for _ in 0..iters {
        for x in next.iter_mut() {
            *x = 1.0 - damping;
        }
        for v in g.vertices() {
            let deg = g.out_degree(v);
            if deg == 0 {
                continue;
            }
            let share = damping * rank[v.index()] / deg as f64;
            for &u in g.out_neighbors(v) {
                next[u.index()] += share;
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Weakly connected components by union-find; returns the smallest
/// vertex id in each vertex's component (matching the label-
/// propagation convergence point).
pub fn wcc_labels(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (s, d) in g.edges() {
        let rs = find(&mut parent, s.0);
        let rd = find(&mut parent, d.0);
        if rs != rd {
            // Union by smaller id so roots are component minima.
            if rs < rd {
                parent[rd as usize] = rs;
            } else {
                parent[rs as usize] = rd;
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Total triangle count of an undirected graph, counting each
/// triangle once, by sorted-adjacency intersection.
pub fn triangle_count(g: &Graph) -> u64 {
    let mut total = 0u64;
    for u in g.vertices() {
        let nu = g.out_neighbors(u);
        for &w in nu.iter().filter(|&&w| w > u) {
            total += intersect_above(nu, g.out_neighbors(w), w);
        }
    }
    total
}

/// Per-vertex triangle counts (triangles incident to each vertex).
pub fn triangles_per_vertex(g: &Graph) -> Vec<u64> {
    let mut counts = vec![0u64; g.num_vertices()];
    for u in g.vertices() {
        let nu = g.out_neighbors(u);
        for &w in nu.iter().filter(|&&w| w > u) {
            let nw = g.out_neighbors(w);
            // Enumerate x > w in both lists.
            let (mut i, mut j) = (0, 0);
            while i < nu.len() && j < nw.len() {
                let (a, b) = (nu[i], nw[j]);
                if a < b {
                    i += 1;
                } else if b < a {
                    j += 1;
                } else {
                    if a > w {
                        counts[u.index()] += 1;
                        counts[w.index()] += 1;
                        counts[a.index()] += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    counts
}

/// Exact local clustering coefficient of every vertex of an
/// undirected graph: `2·E(N(v)) / (d·(d-1))` where `E(N(v))` is the
/// number of edges among `v`'s neighbours and `d = |N(v)|`. Vertices
/// of degree < 2 get 0. The oracle for `fg_apps::lcc`'s sampled
/// estimator (which converges to this as its sample size reaches the
/// degree).
pub fn local_clustering(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let mut lcc = vec![0f64; n];
    for v in g.vertices() {
        let nv = g.out_neighbors(v);
        let d = nv.len() as u64;
        if d < 2 {
            continue;
        }
        // Count ordered incidences (u, x): u ∈ N(v), x ∈ N(u) ∩ N(v),
        // x ≠ u — each neighbourhood edge counted once per endpoint.
        let mut incid = 0u64;
        for &u in nv {
            let (mut i, mut j) = (0usize, 0usize);
            let nu = g.out_neighbors(u);
            while i < nv.len() && j < nu.len() {
                match nv[i].cmp(&nu[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if nv[i] != u {
                            incid += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        lcc[v.index()] = incid as f64 / (d * (d - 1)) as f64;
    }
    lcc
}

fn intersect_above(a: &[VertexId], b: &[VertexId], above: VertexId) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if a[i] > above {
                    c += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// The scan statistic (maximum locality statistic): the largest
/// `deg(v) + edges-among-N(v)` over all vertices, with its argmax.
pub fn scan_statistics(g: &Graph) -> (VertexId, u64) {
    let mut best = (VertexId(0), 0u64);
    let tri = triangles_per_vertex(g);
    for v in g.vertices() {
        let stat = g.out_degree(v) as u64 + tri[v.index()];
        if stat > best.1 {
            best = (v, stat);
        }
    }
    best
}

/// Dijkstra single-source shortest paths over edge weights;
/// `f64::INFINITY` for unreachable vertices.
pub fn sssp(g: &Graph, source: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    if source.index() >= n {
        return dist;
    }
    let csr = g.csr(fg_types::EdgeDir::Out);
    dist[source.index()] = 0.0;
    // Max-heap on reversed ordering of (dist, vertex).
    let mut heap: BinaryHeap<(std::cmp::Reverse<ordered_f64>, u32)> = BinaryHeap::new();
    heap.push((std::cmp::Reverse(ordered_f64(0.0)), source.0));
    while let Some((std::cmp::Reverse(ordered_f64(d)), v)) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let vid = VertexId(v);
        let ws = csr.weights_of(vid);
        for (k, &u) in csr.neighbors(vid).iter().enumerate() {
            let w = ws.map(|w| w[k] as f64).unwrap_or(1.0);
            let nd = d + w;
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                heap.push((std::cmp::Reverse(ordered_f64(nd)), u.0));
            }
        }
    }
    dist
}

/// Vertices remaining in the `k`-core (iterative peeling); `true`
/// means the vertex survives. Degree is out+in for directed graphs.
pub fn k_core(g: &Graph, k: u32) -> Vec<bool> {
    let n = g.num_vertices();
    let mut deg: Vec<u32> = g
        .vertices()
        .map(|v| (g.out_degree(v) + if g.is_directed() { g.in_degree(v) } else { 0 }) as u32)
        .collect();
    let mut alive = vec![true; n];
    let mut q: VecDeque<VertexId> = g.vertices().filter(|&v| deg[v.index()] < k).collect();
    for v in &q {
        alive[v.index()] = false;
    }
    while let Some(v) = q.pop_front() {
        let mut drop_neighbor = |u: VertexId| {
            if alive[u.index()] {
                deg[u.index()] -= 1;
                if deg[u.index()] < k {
                    alive[u.index()] = false;
                    q.push_back(u);
                }
            }
        };
        // Collect first to appease the borrow checker.
        let mut ns: Vec<VertexId> = g.out_neighbors(v).to_vec();
        if g.is_directed() {
            ns.extend_from_slice(g.in_neighbors(v));
        }
        for u in ns {
            drop_neighbor(u);
        }
    }
    alive
}

/// Total-order wrapper for f64 heap keys (no NaNs by construction).
#[derive(PartialEq, PartialOrd)]
#[allow(non_camel_case_types)]
struct ordered_f64(f64);

impl Eq for ordered_f64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for ordered_f64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("weights are never NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};

    #[test]
    fn bfs_on_path() {
        let g = fixtures::path(6);
        let levels = bfs_levels(&g, VertexId(0));
        for (i, l) in levels.iter().enumerate() {
            assert_eq!(*l, Some(i as u32));
        }
        // No path back from the tail.
        assert_eq!(bfs_levels(&g, VertexId(5))[0], None);
    }

    #[test]
    fn bc_on_diamond() {
        // 0 -> {1,2} -> 3 -> 4: delta(1) = delta(2) = 0.5*(1+1) = 1,
        // delta(3) = 1 + delta(4) = 1, delta(4) = 0, delta(0) = sum
        // over successors = 2*(0.5*(1+1)) ... delta(0) unused by BC.
        let g = fixtures::diamond();
        let d = bc_single_source(&g, VertexId(0));
        assert!((d[1] - 1.0).abs() < 1e-9);
        assert!((d[2] - 1.0).abs() < 1e-9);
        assert!((d[3] - 1.0).abs() < 1e-9);
        assert_eq!(d[4], 0.0);
    }

    #[test]
    fn pagerank_sums_to_n() {
        let g = gen::rmat(7, 6, gen::RmatSkew::default(), 2);
        let pr = pagerank(&g, 0.85, 50);
        // With no dangling-mass redistribution the sum is ≤ n but
        // every rank at least (1-d).
        assert!(pr.iter().all(|&r| r >= 0.15));
        let hubs = pr.iter().filter(|&&r| r > 2.0).count();
        assert!(hubs > 0, "power-law graph should produce hub ranks");
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let g = fixtures::cycle(8);
        let pr = pagerank(&g, 0.85, 60);
        for r in &pr {
            assert!((r - 1.0).abs() < 1e-6, "cycle ranks are uniform, got {r}");
        }
    }

    #[test]
    fn wcc_two_components() {
        let g = fixtures::two_components(3, 9);
        let labels = wcc_labels(&g);
        assert!(labels[..3].iter().all(|&l| l == 0));
        assert!(labels[3..].iter().all(|&l| l == 3));
    }

    #[test]
    fn triangles_in_complete_graph() {
        let g = fixtures::complete(7);
        assert_eq!(triangle_count(&g), 35); // C(7,3)
        let per = triangles_per_vertex(&g);
        assert!(per.iter().all(|&c| c == 15)); // C(6,2)
    }

    #[test]
    fn no_triangles_in_star() {
        let g = fixtures::star(10);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn scan_stats_of_star_is_center_degree() {
        let g = fixtures::star(9);
        let (argmax, stat) = scan_statistics(&g);
        assert_eq!(argmax, VertexId(0));
        assert_eq!(stat, 9);
    }

    #[test]
    fn scan_stats_complete() {
        let g = fixtures::complete(5);
        let (_, stat) = scan_statistics(&g);
        // deg 4 + C(4,2) = 4 + 6 = 10 edges among neighbours.
        assert_eq!(stat, 10);
    }

    #[test]
    fn sssp_weighted_square() {
        let g = fixtures::weighted_square();
        let d = sssp(&g, VertexId(0));
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0); // through 1, not the 5.0 direct edge
        assert_eq!(d[3], 3.0);
    }

    #[test]
    fn sssp_unreachable_is_infinite() {
        let g = fixtures::path(3);
        let d = sssp(&g, VertexId(2));
        assert!(d[0].is_infinite());
    }

    #[test]
    fn k_core_peels_star() {
        let g = fixtures::star(5);
        // 2-core of a star is empty (leaves have degree 1; removing
        // them leaves the center alone).
        let core = k_core(&g, 2);
        assert!(core.iter().all(|&a| !a));
        // 1-core keeps everything.
        assert!(k_core(&g, 1).iter().all(|&a| a));
    }

    #[test]
    fn k_core_complete_survives() {
        let g = fixtures::complete(6);
        assert!(k_core(&g, 5).iter().all(|&a| a));
        assert!(k_core(&g, 6).iter().all(|&a| !a));
    }

    #[test]
    fn local_clustering_known_shapes() {
        // Complete graph: every neighbourhood is complete → 1.0.
        let g = fixtures::complete(5);
        assert!(local_clustering(&g).iter().all(|&c| c == 1.0));
        // Star: no edges among leaves → 0 everywhere (leaves have
        // degree 1 and default to 0 too).
        let g = fixtures::star(6);
        assert!(local_clustering(&g).iter().all(|&c| c == 0.0));
    }

    #[test]
    fn local_clustering_consistent_with_triangles() {
        // lcc(v) = 2·T(v) / (d·(d-1)) on simple undirected graphs.
        let d = fg_graph::gen::rmat(7, 4, fg_graph::gen::RmatSkew::default(), 8);
        let mut b = fg_graph::GraphBuilder::undirected();
        for (s, t) in d.edges() {
            b.add_edge(s, t);
        }
        let g = b.build();
        let lcc = local_clustering(&g);
        let tri = triangles_per_vertex(&g);
        for v in g.vertices() {
            let deg = g.out_degree(v) as u64;
            let want = if deg < 2 {
                0.0
            } else {
                2.0 * tri[v.index()] as f64 / (deg * (deg - 1)) as f64
            };
            assert!(
                (lcc[v.index()] - want).abs() < 1e-12,
                "vertex {v}: {} vs {want}",
                lcc[v.index()]
            );
        }
    }
}
