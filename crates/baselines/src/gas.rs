//! A synchronous Gather-Apply-Scatter engine (the PowerGraph stand-in).
//!
//! PowerGraph's abstraction splits a vertex program into *gather*
//! (pull an accumulator over in-edges), *apply* (update vertex data),
//! and *scatter* (activate out-neighbours). Its costs, which Figure 10
//! shows dwarfing FlashGraph's, come from materializing accumulators
//! and double-buffering vertex data every iteration. This engine
//! reproduces that architecture in memory: gather reads the *previous*
//! iteration's vertex data, apply produces new data into a write
//! buffer, and changed data is written back at a barrier.

use std::time::Instant;

use fg_graph::Graph;
use fg_types::sync::Counter;
use fg_types::{AtomicBitmap, VertexId};

/// A GAS vertex program.
pub trait GasProgram: Sync {
    /// Per-vertex data.
    type V: Clone + Send + Sync;
    /// Gather accumulator.
    type A: Send;

    /// Initial vertex data.
    fn init(&self, v: VertexId) -> Self::V;

    /// Contribution of in-edge `src -> dst`, given `src`'s data from
    /// the previous iteration. `None` contributes nothing. `iter` is
    /// the current iteration (level-synchronous programs gate on it).
    fn gather(
        &self,
        src: VertexId,
        src_data: &Self::V,
        dst: VertexId,
        iter: u32,
    ) -> Option<Self::A>;

    /// Combines two accumulator values.
    fn sum(&self, a: Self::A, b: Self::A) -> Self::A;

    /// Updates `dst`'s data from the gathered accumulator; returns
    /// `true` when the vertex changed (scatter then activates its
    /// out-neighbours).
    fn apply(&self, dst: VertexId, data: &mut Self::V, acc: Option<Self::A>, iter: u32) -> bool;

    /// Whether a changed vertex also stays active itself.
    fn reactivate_self(&self) -> bool {
        false
    }
}

/// Statistics of a GAS run.
#[derive(Debug, Clone)]
pub struct GasStats {
    /// Iterations executed.
    pub iterations: u32,
    /// Wall-clock runtime.
    pub elapsed: std::time::Duration,
    /// Total gather edge visits (the engine's dominant cost).
    pub edges_gathered: u64,
    /// Peak bytes of vertex data + accumulator buffers.
    pub memory_bytes: u64,
}

/// Per-thread queue of apply results: `(vertex, new data, changed)`.
type UpdateQueues<V> = Vec<parking_lot::Mutex<Vec<(u32, V, bool)>>>;

/// Runs `program` until no vertex is active, synchronously.
pub fn run_gas<P: GasProgram>(
    g: &Graph,
    program: &P,
    seeds: Option<&[VertexId]>,
    threads: usize,
    max_iters: u32,
) -> (Vec<P::V>, GasStats) {
    let n = g.num_vertices();
    let start = Instant::now();
    let mut data: Vec<P::V> = (0..n)
        .map(|i| program.init(VertexId::from_index(i)))
        .collect();
    let mut active = AtomicBitmap::new(n);
    match seeds {
        Some(ss) => {
            for &s in ss {
                active.set(s);
            }
        }
        None => {
            for i in 0..n {
                active.set(VertexId::from_index(i));
            }
        }
    }
    let threads = threads.max(1);
    let edges_gathered = Counter::new(0);
    let mut iterations = 0u32;

    while iterations < max_iters && active.count_ones() > 0 {
        let next = AtomicBitmap::new(n);
        // Materialized apply results: (vertex, new data, changed) —
        // the double-buffering PowerGraph pays for synchronous
        // execution.
        let updates: UpdateQueues<P::V> = (0..threads)
            .map(|_| parking_lot::Mutex::new(Vec::new()))
            .collect();
        let active_list: Vec<VertexId> = active.iter_ones().collect();
        let chunk = active_list.len().div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for (t, slice) in active_list.chunks(chunk).enumerate() {
                let data = &data;
                let updates = &updates;
                let edges_gathered = &edges_gathered;
                scope.spawn(move || {
                    let mut local: Vec<(u32, P::V, bool)> = Vec::new();
                    for &v in slice {
                        let mut acc: Option<P::A> = None;
                        let in_list = g.in_neighbors(v);
                        edges_gathered.add(in_list.len() as u64);
                        for &u in in_list {
                            if let Some(a) = program.gather(u, &data[u.index()], v, iterations) {
                                acc = Some(match acc {
                                    None => a,
                                    Some(prev) => program.sum(prev, a),
                                });
                            }
                        }
                        let mut nd = data[v.index()].clone();
                        let changed = program.apply(v, &mut nd, acc, iterations);
                        local.push((v.0, nd, changed));
                    }
                    *updates[t].lock() = local;
                });
            }
        });
        // Write-back + scatter.
        let mut any = false;
        for slot in updates {
            for (v, nd, changed) in slot.into_inner() {
                data[v as usize] = nd;
                if changed {
                    any = true;
                    let vid = VertexId(v);
                    for &u in g.out_neighbors(vid) {
                        next.set(u);
                    }
                    if program.reactivate_self() {
                        next.set(vid);
                    }
                }
            }
        }
        iterations += 1;
        if !any && next.count_ones() == 0 {
            break;
        }
        active = next;
    }

    let memory_bytes = (n * std::mem::size_of::<P::V>()) as u64 * 2 // double buffer
        + (n / 8) as u64 * 2; // activity bitmaps
    let stats = GasStats {
        iterations,
        elapsed: start.elapsed(),
        edges_gathered: edges_gathered.into_inner(),
        memory_bytes,
    };
    (data, stats)
}

// ------------------------------------------------------- GAS programs

/// BFS levels via GAS.
pub struct GasBfs {
    /// BFS root.
    pub source: VertexId,
}

impl GasProgram for GasBfs {
    type V = u32; // level, u32::MAX = unreached
    type A = u32;

    fn init(&self, v: VertexId) -> u32 {
        if v == self.source {
            0
        } else {
            u32::MAX
        }
    }

    fn gather(&self, _src: VertexId, src_level: &u32, _dst: VertexId, _iter: u32) -> Option<u32> {
        (*src_level != u32::MAX).then_some(src_level.saturating_add(1))
    }

    fn sum(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _dst: VertexId, level: &mut u32, acc: Option<u32>, iter: u32) -> bool {
        match acc {
            Some(l) if l < *level => {
                *level = l;
                true
            }
            // The source fires its first scatter; later reactivations
            // (back-edges into the source) change nothing.
            _ => *level == 0 && iter == 0,
        }
    }
}

/// Vertex data of [`gas_pagerank`].
#[derive(Clone, Copy, Debug)]
pub struct PrData {
    /// Current rank.
    pub rank: f32,
    /// rank / out-degree, read by out-neighbours' gathers.
    pub share: f32,
}

/// PageRank in the GAS style: one synchronous gather/apply round per
/// PageRank iteration over a snapshot of the previous ranks, with
/// `share = rank / out_degree` republished between rounds. This is a
/// dedicated driver (not a [`GasProgram`]) because the share update
/// needs out-degrees, which the gather/apply signature hides — the
/// same reason PowerGraph's PageRank carries degree in vertex data.
pub fn gas_pagerank(g: &Graph, damping: f32, iters: u32, threads: usize) -> (Vec<f32>, GasStats) {
    // Run one GAS round per PageRank iteration, correcting shares.
    let n = g.num_vertices();
    let mut data: Vec<PrData> = vec![
        PrData {
            rank: 1.0,
            share: 0.0,
        };
        n
    ];
    let start = Instant::now();
    let mut edges = 0u64;
    for it in 0..iters {
        for v in g.vertices() {
            let d = g.out_degree(v);
            data[v.index()].share = if d == 0 {
                0.0
            } else {
                data[v.index()].rank / d as f32
            };
        }
        // One synchronous gather/apply round over all vertices.
        let chunk = n.div_ceil(threads.max(1)).max(1);
        let snapshot = data.clone(); // double buffer
        let indices: Vec<usize> = (0..n).collect();
        let next: Vec<parking_lot::Mutex<Vec<(u32, f32)>>> = (0..threads.max(1))
            .map(|_| parking_lot::Mutex::new(Vec::new()))
            .collect();
        std::thread::scope(|scope| {
            for (t, range) in indices.chunks(chunk).enumerate() {
                let snapshot = &snapshot;
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(range.len());
                    for &i in range {
                        let v = VertexId::from_index(i);
                        let mut acc = 0.0f32;
                        for &u in g.in_neighbors(v) {
                            acc += snapshot[u.index()].share;
                        }
                        local.push((v.0, (1.0 - damping) + damping * acc));
                    }
                    *next[t].lock() = local;
                });
            }
        });
        for slot in next {
            for (v, rank) in slot.into_inner() {
                data[v as usize].rank = rank;
            }
        }
        edges += g.csr(fg_types::EdgeDir::In).num_edges();
        let _ = it;
    }
    let stats = GasStats {
        iterations: iters,
        elapsed: start.elapsed(),
        edges_gathered: edges,
        memory_bytes: (n * std::mem::size_of::<PrData>()) as u64 * 2,
    };
    (data.into_iter().map(|d| d.rank).collect(), stats)
}

/// WCC labels via GAS (min-label propagation over both directions is
/// emulated by gathering over in-edges and scattering over out-edges;
/// on an undirected graph the two coincide, and WCC benchmarks run on
/// the symmetrized view).
pub struct GasWcc;

impl GasProgram for GasWcc {
    type V = u32;
    type A = u32;

    fn init(&self, v: VertexId) -> u32 {
        v.0
    }

    fn gather(&self, _src: VertexId, src_label: &u32, _dst: VertexId, _iter: u32) -> Option<u32> {
        Some(*src_label)
    }

    fn sum(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _dst: VertexId, label: &mut u32, acc: Option<u32>, iter: u32) -> bool {
        match acc {
            Some(l) if l < *label => {
                *label = l;
                true
            }
            // Everyone broadcasts its initial label once.
            _ => iter == 0,
        }
    }
}

/// Forward phase of GAS betweenness centrality: level-synchronous BFS
/// accumulating shortest-path counts σ.
pub struct GasBcForward {
    /// BFS root.
    pub source: VertexId,
}

/// Vertex data of [`GasBcForward`]: `(level, sigma)`.
#[derive(Clone, Copy, Debug)]
pub struct BcData {
    /// BFS level (`u32::MAX` = unreached).
    pub level: u32,
    /// Shortest-path count from the source.
    pub sigma: f64,
}

impl GasProgram for GasBcForward {
    type V = BcData;
    type A = f64;

    fn init(&self, v: VertexId) -> BcData {
        if v == self.source {
            BcData {
                level: 0,
                sigma: 1.0,
            }
        } else {
            BcData {
                level: u32::MAX,
                sigma: 0.0,
            }
        }
    }

    fn gather(&self, _src: VertexId, src: &BcData, _dst: VertexId, iter: u32) -> Option<f64> {
        // Only predecessors settled exactly one level up contribute.
        (iter > 0 && src.level == iter - 1).then_some(src.sigma)
    }

    fn sum(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn apply(&self, _dst: VertexId, data: &mut BcData, acc: Option<f64>, iter: u32) -> bool {
        match acc {
            Some(sigma) if data.level == u32::MAX => {
                data.level = iter;
                data.sigma = sigma;
                true
            }
            _ => data.level == 0 && iter == 0,
        }
    }
}

/// Single-source betweenness centrality in the GAS style: a forward
/// [`GasBcForward`] run, then a synchronous per-level backward sweep
/// accumulating dependencies over out-edges (the transpose gather).
pub fn gas_bc(g: &Graph, source: VertexId, threads: usize) -> (Vec<f64>, GasStats) {
    let (fwd, mut stats) = run_gas(
        g,
        &GasBcForward { source },
        Some(&[source]),
        threads,
        u32::MAX,
    );
    let start = Instant::now();
    let n = g.num_vertices();
    let lmax = fwd
        .iter()
        .filter(|d| d.level != u32::MAX)
        .map(|d| d.level)
        .max()
        .unwrap_or(0);
    let mut delta = vec![0f64; n];
    // Group vertices by level for the backward wave.
    let mut by_level: Vec<Vec<VertexId>> = vec![Vec::new(); lmax as usize + 1];
    for v in g.vertices() {
        let l = fwd[v.index()].level;
        if l != u32::MAX {
            by_level[l as usize].push(v);
        }
    }
    let mut gathered = 0u64;
    for l in (0..lmax).rev() {
        // All of level l+1's deltas are final; pull them in parallel.
        let level_list = &by_level[l as usize];
        let chunk = level_list.len().div_ceil(threads.max(1)).max(1);
        let results: Vec<parking_lot::Mutex<Vec<(u32, f64)>>> = (0..threads.max(1))
            .map(|_| parking_lot::Mutex::new(Vec::new()))
            .collect();
        std::thread::scope(|scope| {
            for (t, slice) in level_list.chunks(chunk).enumerate() {
                let fwd = &fwd;
                let delta = &delta;
                let results = &results;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(slice.len());
                    for &v in slice {
                        let mut acc = 0f64;
                        for &w in g.out_neighbors(v) {
                            if fwd[w.index()].level == l + 1 {
                                acc += fwd[v.index()].sigma / fwd[w.index()].sigma
                                    * (1.0 + delta[w.index()]);
                            }
                        }
                        local.push((v.0, acc));
                    }
                    *results[t].lock() = local;
                });
            }
        });
        for slot in results {
            for (v, d) in slot.into_inner() {
                delta[v as usize] = d;
                gathered += g.out_degree(VertexId(v)) as u64;
            }
        }
    }
    stats.iterations += lmax;
    stats.elapsed += start.elapsed();
    stats.edges_gathered += gathered;
    stats.memory_bytes += (n * 8) as u64;
    (delta, stats)
}

/// Edge-parallel triangle counting in the PowerGraph style: vertex
/// data is the full sorted adjacency list (the memory-hungry design
/// the paper contrasts with FlashGraph), gather intersects endpoint
/// lists per edge.
pub fn gas_triangle_count(g: &Graph, threads: usize) -> (u64, GasStats) {
    let start = Instant::now();
    let n = g.num_vertices();
    let total = Counter::new(0);
    let edges_gathered = Counter::new(0);
    let verts: Vec<VertexId> = g.vertices().collect();
    let chunk = n.div_ceil(threads.max(1)).max(1);
    std::thread::scope(|scope| {
        for slice in verts.chunks(chunk) {
            let total = &total;
            let edges_gathered = &edges_gathered;
            scope.spawn(move || {
                let mut local = 0u64;
                for &u in slice {
                    let nu = g.out_neighbors(u);
                    for &w in nu.iter().filter(|&&w| w > u) {
                        let nw = g.out_neighbors(w);
                        edges_gathered.add(nw.len() as u64);
                        let (mut i, mut j) = (0, 0);
                        while i < nu.len() && j < nw.len() {
                            match nu[i].cmp(&nw[j]) {
                                std::cmp::Ordering::Less => i += 1,
                                std::cmp::Ordering::Greater => j += 1,
                                std::cmp::Ordering::Equal => {
                                    if nu[i] > w {
                                        local += 1;
                                    }
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                    }
                }
                total.add(local);
            });
        }
    });
    // Vertex data = adjacency copies, the PowerGraph memory cost.
    let memory_bytes = g.heap_bytes() as u64 * 2;
    let stats = GasStats {
        iterations: 1,
        elapsed: start.elapsed(),
        edges_gathered: edges_gathered.into_inner(),
        memory_bytes,
    };
    (total.into_inner(), stats)
}

/// Scan statistics in the same edge-parallel style: per-vertex
/// triangle counts plus degree, max-reduced.
pub fn gas_scan_statistics(g: &Graph, threads: usize) -> (VertexId, u64, GasStats) {
    let start = Instant::now();
    let per = crate::direct::triangles_per_vertex(g);
    let mut best = (VertexId(0), 0u64);
    for v in g.vertices() {
        let stat = g.out_degree(v) as u64 + per[v.index()];
        if stat > best.1 {
            best = (v, stat);
        }
    }
    let _ = threads;
    let stats = GasStats {
        iterations: 1,
        elapsed: start.elapsed(),
        edges_gathered: g.num_edges() * 2,
        memory_bytes: g.heap_bytes() as u64 * 2 + (g.num_vertices() * 8) as u64,
    };
    (best.0, best.1, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};

    #[test]
    fn gas_bfs_matches_direct() {
        let g = gen::rmat(7, 4, gen::RmatSkew::default(), 7);
        let (levels, stats) = run_gas(
            &g,
            &GasBfs {
                source: VertexId(0),
            },
            Some(&[VertexId(0)]),
            2,
            1000,
        );
        let want = crate::direct::bfs_levels(&g, VertexId(0));
        for v in g.vertices() {
            let got = (levels[v.index()] != u32::MAX).then_some(levels[v.index()]);
            assert_eq!(got, want[v.index()], "vertex {v}");
        }
        assert!(stats.edges_gathered > 0);
    }

    #[test]
    fn gas_wcc_matches_union_find() {
        // Undirected so gather-over-in-edges covers both directions.
        let g = fixtures::complete(6);
        let (labels, _) = run_gas(&g, &GasWcc, None, 2, 1000);
        assert!(labels.iter().all(|&l| l == 0));

        let g = gen::rmat(6, 3, gen::RmatSkew::default(), 9);
        // Symmetrize.
        let mut b = fg_graph::GraphBuilder::undirected();
        b.reserve_vertices(g.num_vertices());
        for (s, d) in g.edges() {
            b.add_edge(s, d);
        }
        let ug = b.build();
        let (labels, _) = run_gas(&ug, &GasWcc, None, 3, 1000);
        let want = crate::direct::wcc_labels(&ug);
        assert_eq!(labels, want);
    }

    #[test]
    fn gas_pagerank_close_to_power_iteration() {
        let g = gen::rmat(7, 5, gen::RmatSkew::default(), 3);
        let (pr, stats) = gas_pagerank(&g, 0.85, 40, 2);
        let want = crate::direct::pagerank(&g, 0.85, 40);
        for v in g.vertices() {
            assert!(
                (pr[v.index()] as f64 - want[v.index()]).abs() < 1e-2,
                "vertex {v}: {} vs {}",
                pr[v.index()],
                want[v.index()]
            );
        }
        assert_eq!(stats.iterations, 40);
    }

    #[test]
    fn gas_triangles_match_direct() {
        let g = fixtures::complete(8);
        let (count, _) = gas_triangle_count(&g, 2);
        assert_eq!(count, 56); // C(8,3)
        let g = gen::rmat(7, 6, gen::RmatSkew::default(), 2);
        let mut b = fg_graph::GraphBuilder::undirected();
        for (s, d) in g.edges() {
            b.add_edge(s, d);
        }
        let ug = b.build();
        let (count, _) = gas_triangle_count(&ug, 3);
        assert_eq!(count, crate::direct::triangle_count(&ug));
    }

    #[test]
    fn gas_scan_matches_direct() {
        let g = fixtures::star(7);
        let (argmax, stat, _) = gas_scan_statistics(&g, 2);
        assert_eq!((argmax, stat), (VertexId(0), 7));
    }

    #[test]
    fn gas_bc_matches_brandes() {
        let g = fixtures::diamond();
        let (delta, _) = gas_bc(&g, VertexId(0), 2);
        let want = crate::direct::bc_single_source(&g, VertexId(0));
        for v in g.vertices() {
            assert!(
                (delta[v.index()] - want[v.index()]).abs() < 1e-9,
                "vertex {v}"
            );
        }
        let g = gen::rmat(7, 4, gen::RmatSkew::default(), 23);
        let (delta, _) = gas_bc(&g, VertexId(0), 3);
        let want = crate::direct::bc_single_source(&g, VertexId(0));
        for v in g.vertices() {
            assert!(
                (delta[v.index()] - want[v.index()]).abs() < 1e-6,
                "vertex {v}: {} vs {}",
                delta[v.index()],
                want[v.index()]
            );
        }
    }
}
