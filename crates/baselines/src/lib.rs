//! Baseline engines the paper compares FlashGraph against (§5.2–§5.3).
//!
//! | Paper baseline | This module | Architecture reproduced |
//! |---|---|---|
//! | Galois (in-memory, low-level API) | [`direct`] | Hand-tuned single-purpose in-memory algorithms with no framework overhead. Also serve as correctness oracles for the FlashGraph apps. |
//! | PowerGraph (distributed GAS) | [`gas`] | Synchronous Gather-Apply-Scatter with materialized per-vertex accumulators and double-buffered vertex data — the framework overheads the paper observes. |
//! | GraphChi (external, magnetic-disk) | [`graphchi_like`] | Full sequential scan of the edge stream every iteration; vertex values in memory. |
//! | X-Stream (external, edge-centric) | [`xstream_like`] | Edge-centric scatter-gather: every iteration streams all edges *and* writes/reads an update stream. |
//!
//! The external baselines do honest I/O through the same
//! [`fg_ssdsim::SsdArray`] as FlashGraph, so the simulated-I/O
//! comparison in Figure 11 is apples-to-apples: FlashGraph issues
//! selective random 4 KB-class requests, these engines issue full
//! sequential scans — and the scans lose exactly when the paper says
//! they do (traversal algorithms touching small frontiers).

pub mod direct;
pub mod gas;
pub mod graphchi_like;
pub mod stream;
pub mod xstream_like;
