//! The X-Stream stand-in: edge-centric scatter-gather with an
//! on-device update stream.
//!
//! X-Stream's model is two sub-phases per iteration: *scatter*
//! streams every edge, and for each edge whose source is active
//! appends an update record to a stream; *gather* streams the updates
//! back and applies them to destination vertices. Compared to the
//! GraphChi-like engine this moves strictly more bytes (edges read +
//! updates written + updates read) and — unlike FlashGraph, which
//! never writes during analysis — it wears the SSDs with update
//! traffic every iteration.

use std::time::Instant;

use fg_ssdsim::SsdArray;
use fg_types::{Result, VertexId};

use crate::graphchi_like::ScanStats;
use crate::stream::{for_each_edge, EdgeStreamMeta, UpdateStream};

/// An edge-centric scatter-gather program.
pub trait EdgeCentricProgram: Sync {
    /// Per-vertex value, in memory.
    type V: Clone + Send;

    /// Initial value of `v`.
    fn init(&self, v: VertexId) -> Self::V;

    /// Scatter along edge `src -> dst`: `Some(payload)` appends an
    /// update record for `dst`.
    fn scatter(&self, src: VertexId, src_val: &Self::V, iter: u32) -> Option<u32>;

    /// Gather one update; returns `true` when `dst` changed.
    fn gather(&self, dst: VertexId, dst_val: &mut Self::V, payload: u32, iter: u32) -> bool;

    /// End-of-iteration hook; `true` continues.
    fn end_iteration(&self, iter: u32, values: &mut [Self::V], changed: u64) -> bool;
}

/// Runs an edge-centric program to convergence.
///
/// # Errors
///
/// Propagates array errors.
pub fn run_edge_centric<P: EdgeCentricProgram>(
    array: &SsdArray,
    meta: &EdgeStreamMeta,
    program: &P,
    max_iters: u32,
) -> Result<(Vec<P::V>, ScanStats)> {
    let start = Instant::now();
    let before = array.stats().snapshot();
    let n = meta.num_vertices as usize;
    let mut values: Vec<P::V> = (0..n)
        .map(|i| program.init(VertexId::from_index(i)))
        .collect();
    let mut iterations = 0u32;
    while iterations < max_iters {
        // Scatter: full edge scan, updates appended to the device.
        let mut updates = UpdateStream::new(array, meta.scratch_base);
        for_each_edge(array, meta, |s, d| {
            if let Some(p) = program.scatter(s, &values[s.index()], iterations) {
                updates
                    .push(d, p)
                    .expect("scratch region sized for worst-case updates");
            }
        })?;
        let emitted = updates.records();
        // Gather: stream updates back, apply.
        let mut changed = 0u64;
        updates.drain(|d, p| {
            if program.gather(d, &mut values[d.index()], p, iterations) {
                changed += 1;
            }
        })?;
        iterations += 1;
        if emitted == 0 || !program.end_iteration(iterations - 1, &mut values, changed) {
            break;
        }
    }
    let stats = ScanStats {
        iterations,
        elapsed: start.elapsed(),
        io: array.stats().snapshot().delta_since(&before),
        memory_bytes: (n * std::mem::size_of::<P::V>()) as u64,
    };
    Ok((values, stats))
}

/// BFS, edge-centric: scatter emits the frontier's level.
pub struct XsBfs {
    /// BFS root.
    pub source: VertexId,
}

impl EdgeCentricProgram for XsBfs {
    type V = u32;

    fn init(&self, v: VertexId) -> u32 {
        if v == self.source {
            0
        } else {
            u32::MAX
        }
    }

    fn scatter(&self, _src: VertexId, sv: &u32, iter: u32) -> Option<u32> {
        (*sv == iter).then_some(iter + 1)
    }

    fn gather(&self, _dst: VertexId, dv: &mut u32, payload: u32, _iter: u32) -> bool {
        if payload < *dv {
            *dv = payload;
            true
        } else {
            false
        }
    }

    fn end_iteration(&self, _iter: u32, _values: &mut [u32], changed: u64) -> bool {
        changed > 0
    }
}

/// WCC, edge-centric: scatter broadcasts labels that changed last
/// iteration (tracked in the value's high bit-free second field).
pub struct XsWcc;

/// Label plus changed flag for [`XsWcc`].
#[derive(Clone, Copy, Debug)]
pub struct XsWccValue {
    /// Current component label.
    pub label: u32,
    /// Whether the label changed last iteration (scatter gate).
    pub dirty: bool,
}

impl EdgeCentricProgram for XsWcc {
    type V = XsWccValue;

    fn init(&self, v: VertexId) -> XsWccValue {
        XsWccValue {
            label: v.0,
            dirty: true,
        }
    }

    fn scatter(&self, _src: VertexId, sv: &XsWccValue, _iter: u32) -> Option<u32> {
        sv.dirty.then_some(sv.label)
    }

    fn gather(&self, _dst: VertexId, dv: &mut XsWccValue, payload: u32, _iter: u32) -> bool {
        if payload < dv.label {
            dv.label = payload;
            dv.dirty = true;
            true
        } else {
            false
        }
    }

    fn end_iteration(&self, _iter: u32, values: &mut [XsWccValue], changed: u64) -> bool {
        // Scatter gates on dirty set during THIS gather; clear flags
        // of vertices that did not change.
        if changed == 0 {
            return false;
        }
        for v in values.iter_mut() {
            if !v.dirty {
                v.dirty = false;
            }
        }
        true
    }
}

/// PageRank, edge-centric: scatter pushes `rank/deg` as f32 bits.
pub struct XsPageRank {
    /// Damping factor.
    pub damping: f32,
    /// Iterations to run.
    pub iters: u32,
    /// Out-degrees for share computation.
    pub out_degrees: Vec<u32>,
}

/// Value for [`XsPageRank`].
#[derive(Clone, Copy, Debug)]
pub struct XsPrValue {
    /// Current rank.
    pub rank: f32,
    /// Incoming accumulator.
    pub acc: f32,
}

impl EdgeCentricProgram for XsPageRank {
    type V = XsPrValue;

    fn init(&self, _v: VertexId) -> XsPrValue {
        XsPrValue {
            rank: 1.0,
            acc: 0.0,
        }
    }

    fn scatter(&self, src: VertexId, sv: &XsPrValue, _iter: u32) -> Option<u32> {
        let d = self.out_degrees[src.index()];
        (d > 0).then(|| (sv.rank / d as f32).to_bits())
    }

    fn gather(&self, _dst: VertexId, dv: &mut XsPrValue, payload: u32, _iter: u32) -> bool {
        dv.acc += f32::from_bits(payload);
        true
    }

    fn end_iteration(&self, iter: u32, values: &mut [XsPrValue], _changed: u64) -> bool {
        for v in values.iter_mut() {
            v.rank = (1.0 - self.damping) + self.damping * v.acc;
            v.acc = 0.0;
        }
        iter + 1 < self.iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{stream_capacity, write_edge_stream};
    use fg_graph::{fixtures, gen, Graph};
    use fg_ssdsim::ArrayConfig;

    fn image(g: &Graph) -> (SsdArray, EdgeStreamMeta) {
        let array = SsdArray::new_mem(ArrayConfig::small_test(), stream_capacity(g)).unwrap();
        let meta = write_edge_stream(g, &array).unwrap();
        array.stats().reset();
        (array, meta)
    }

    #[test]
    fn xs_bfs_matches_direct() {
        let g = gen::rmat(7, 4, gen::RmatSkew::default(), 12);
        let (array, meta) = image(&g);
        let (levels, stats) = run_edge_centric(
            &array,
            &meta,
            &XsBfs {
                source: VertexId(0),
            },
            10_000,
        )
        .unwrap();
        let want = crate::direct::bfs_levels(&g, VertexId(0));
        for v in g.vertices() {
            let got = (levels[v.index()] != u32::MAX).then_some(levels[v.index()]);
            assert_eq!(got, want[v.index()], "vertex {v}");
        }
        // Edge-centric architecture wears the device with updates.
        assert!(stats.io.bytes_written > 0);
    }

    #[test]
    fn xs_wcc_labels_converge() {
        let g = fixtures::complete(6);
        let (array, meta) = image(&g);
        let (values, _) = run_edge_centric(&array, &meta, &XsWcc, 10_000).unwrap();
        assert!(values.iter().all(|v| v.label == 0));
    }

    #[test]
    fn xs_pagerank_close_to_direct() {
        let g = gen::rmat(6, 4, gen::RmatSkew::default(), 15);
        let (array, meta) = image(&g);
        let prog = XsPageRank {
            damping: 0.85,
            iters: 40,
            out_degrees: g.vertices().map(|v| g.out_degree(v) as u32).collect(),
        };
        let (values, _) = run_edge_centric(&array, &meta, &prog, 40).unwrap();
        let want = crate::direct::pagerank(&g, 0.85, 40);
        for v in g.vertices() {
            assert!(
                (values[v.index()].rank as f64 - want[v.index()]).abs() < 2e-2,
                "vertex {v}"
            );
        }
    }

    #[test]
    fn xstream_moves_more_bytes_than_graphchi() {
        // Same BFS, same graph: the edge-centric engine reads edges
        // AND writes/reads updates, so it must move more data.
        let g = gen::rmat(7, 6, gen::RmatSkew::default(), 3);
        let (array, meta) = image(&g);
        let (_, xs) = run_edge_centric(
            &array,
            &meta,
            &XsBfs {
                source: VertexId(0),
            },
            10_000,
        )
        .unwrap();
        array.stats().reset();
        let (_, gc) = crate::graphchi_like::run_scan(
            &array,
            &meta,
            &crate::graphchi_like::ScanBfs {
                source: VertexId(0),
            },
            10_000,
        )
        .unwrap();
        let xs_total = xs.io.bytes_read + xs.io.bytes_written;
        let gc_total = gc.io.bytes_read + gc.io.bytes_written;
        assert!(
            xs_total > gc_total,
            "x-stream {xs_total} should exceed graphchi {gc_total}"
        );
    }
}
