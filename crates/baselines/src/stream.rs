//! Shared substrate for the full-scan external baselines: an on-array
//! edge stream, chunked sequential readers, and the semi-streaming
//! triangle counter.
//!
//! GraphChi and X-Stream are built around one bet — eliminate random
//! I/O by *streaming the entire edge set every iteration* with large
//! sequential requests. These helpers give both stand-ins that data
//! path over the same simulated SSD array FlashGraph uses, so the
//! Figure 11 comparison measures the architectural difference, not a
//! harness difference.

use fg_graph::Graph;
use fg_ssdsim::SsdArray;
use fg_types::{FgError, Result, VertexId};

/// Size of sequential stream requests — megabytes, like the real
/// engines (X-Stream reads streams in large chunks; GraphChi loads
/// whole shards).
pub const STREAM_CHUNK: usize = 8 << 20;

/// Layout of an edge-stream image on an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeStreamMeta {
    /// Vertices in the graph.
    pub num_vertices: u64,
    /// Directed edge records in the stream.
    pub num_edges: u64,
    /// Byte offset of the first record.
    pub base: u64,
    /// Bytes of the stream (8 per record).
    pub bytes: u64,
    /// First byte past the stream (scratch space starts here).
    pub scratch_base: u64,
}

/// Bytes needed for a stream image of `g`, plus scratch space for an
/// update stream of the same magnitude (X-Stream's worst case).
pub fn stream_capacity(g: &Graph) -> u64 {
    let edge_bytes = edge_record_count(g) * 8;
    4096 + edge_bytes + edge_bytes + 4096
}

fn edge_record_count(g: &Graph) -> u64 {
    // Undirected graphs stream each edge once per orientation so the
    // scan sees both directions, like X-Stream's edge list.
    g.csr(fg_types::EdgeDir::Out).num_edges()
}

/// Writes `g` as a flat `(src, dst)` record stream at offset 0.
///
/// # Errors
///
/// Propagates array errors; check [`stream_capacity`] first.
pub fn write_edge_stream(g: &Graph, array: &SsdArray) -> Result<EdgeStreamMeta> {
    let m = edge_record_count(g);
    let meta = EdgeStreamMeta {
        num_vertices: g.num_vertices() as u64,
        num_edges: m,
        base: 4096,
        bytes: m * 8,
        scratch_base: 4096 + m * 8,
    };
    if array.capacity() < meta.scratch_base {
        return Err(FgError::InvalidRequest(format!(
            "array of {} bytes cannot hold {}-byte edge stream",
            array.capacity(),
            meta.scratch_base
        )));
    }
    let mut header = vec![0u8; 4096];
    header[..8].copy_from_slice(&meta.num_vertices.to_le_bytes());
    header[8..16].copy_from_slice(&meta.num_edges.to_le_bytes());
    array.write(0, &header)?;
    let mut buf = Vec::with_capacity(STREAM_CHUNK);
    let mut off = meta.base;
    for (s, d) in g.edges() {
        buf.extend_from_slice(&s.0.to_le_bytes());
        buf.extend_from_slice(&d.0.to_le_bytes());
        if buf.len() >= STREAM_CHUNK {
            array.write(off, &buf)?;
            off += buf.len() as u64;
            buf.clear();
        }
    }
    if !buf.is_empty() {
        array.write(off, &buf)?;
    }
    Ok(meta)
}

/// Streams every edge record sequentially in [`STREAM_CHUNK`] reads,
/// invoking `f(src, dst)` per record — one full pass.
///
/// # Errors
///
/// Propagates array read errors.
pub fn for_each_edge<F>(array: &SsdArray, meta: &EdgeStreamMeta, mut f: F) -> Result<()>
where
    F: FnMut(VertexId, VertexId),
{
    let mut off = meta.base;
    let end = meta.base + meta.bytes;
    let mut buf = vec![0u8; STREAM_CHUNK];
    while off < end {
        let take = ((end - off) as usize).min(buf.len());
        array.read(off, &mut buf[..take])?;
        for rec in buf[..take].chunks_exact(8) {
            let s = u32::from_le_bytes(rec[..4].try_into().unwrap());
            let d = u32::from_le_bytes(rec[4..].try_into().unwrap());
            f(VertexId(s), VertexId(d));
        }
        off += take as u64;
    }
    Ok(())
}

/// An append-only record stream in the scratch region (X-Stream's
/// update stream): buffered sequential writes, then a sequential
/// read-back pass.
#[derive(Debug)]
pub struct UpdateStream<'a> {
    array: &'a SsdArray,
    base: u64,
    len: u64,
    buf: Vec<u8>,
}

impl<'a> UpdateStream<'a> {
    /// Opens an empty stream at `base`.
    pub fn new(array: &'a SsdArray, base: u64) -> Self {
        UpdateStream {
            array,
            base,
            len: 0,
            buf: Vec::with_capacity(STREAM_CHUNK),
        }
    }

    /// Appends one `(dst, payload)` record.
    ///
    /// # Errors
    ///
    /// Propagates array write errors on chunk flush.
    pub fn push(&mut self, dst: VertexId, payload: u32) -> Result<()> {
        self.buf.extend_from_slice(&dst.0.to_le_bytes());
        self.buf.extend_from_slice(&payload.to_le_bytes());
        if self.buf.len() >= STREAM_CHUNK {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if !self.buf.is_empty() {
            self.array.write(self.base + self.len, &self.buf)?;
            self.len += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }

    /// Number of records appended so far.
    pub fn records(&self) -> u64 {
        self.len / 8 + self.buf.len() as u64 / 8
    }

    /// Flushes, then streams every record back through `f`,
    /// consuming the stream.
    ///
    /// # Errors
    ///
    /// Propagates array errors.
    pub fn drain<F>(mut self, mut f: F) -> Result<()>
    where
        F: FnMut(VertexId, u32),
    {
        self.flush()?;
        let mut off = self.base;
        let end = self.base + self.len;
        let mut buf = vec![0u8; STREAM_CHUNK];
        while off < end {
            let take = ((end - off) as usize).min(buf.len());
            self.array.read(off, &mut buf[..take])?;
            for rec in buf[..take].chunks_exact(8) {
                let d = u32::from_le_bytes(rec[..4].try_into().unwrap());
                let p = u32::from_le_bytes(rec[4..].try_into().unwrap());
                f(VertexId(d), p);
            }
            off += take as u64;
        }
        Ok(())
    }
}

/// Semi-streaming triangle counting (Becchetti et al. style, the
/// algorithm X-Stream uses): partition the vertex set so each
/// partition's adjacency fits a memory budget, then for each
/// partition make one full pass over the edge stream, counting
/// triangles whose smallest vertex lies in the partition. I/O cost is
/// `partitions + 1` full scans — the multiplicative factor that makes
/// streaming TC orders of magnitude slower than selective access.
///
/// # Errors
///
/// Propagates array errors.
pub fn semistream_triangles(
    array: &SsdArray,
    meta: &EdgeStreamMeta,
    partitions: usize,
) -> Result<u64> {
    let n = meta.num_vertices as usize;
    let parts = partitions.max(1);
    let span = n.div_ceil(parts).max(1);
    let mut total = 0u64;
    for p in 0..parts {
        let lo = (p * span) as u32;
        let hi = (((p + 1) * span).min(n)) as u32;
        if lo >= hi {
            break;
        }
        // Pass 1: collect adjacency of partition vertices.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); (hi - lo) as usize];
        for_each_edge(array, meta, |s, d| {
            if s.0 >= lo && s.0 < hi {
                adj[(s.0 - lo) as usize].push(d.0);
            }
        })?;
        for a in adj.iter_mut() {
            a.sort_unstable();
            a.dedup();
        }
        // Pass 2: for each edge (w, x) with w < x, count partition
        // vertices u < w adjacent to both.
        let mut rev: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
        for (i, a) in adj.iter().enumerate() {
            let u = lo + i as u32;
            for &w in a {
                if w > u {
                    rev.entry(w).or_default().push(u);
                }
            }
        }
        let mut count = 0u64;
        for_each_edge(array, meta, |w, x| {
            if w >= x {
                return; // each undirected edge once
            }
            if let Some(us) = rev.get(&w.0) {
                for &u in us {
                    debug_assert!(u < w.0);
                    if adj[(u - lo) as usize].binary_search(&x.0).is_ok() {
                        count += 1;
                    }
                }
            }
        })?;
        total += count;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};
    use fg_ssdsim::ArrayConfig;

    fn image(g: &Graph) -> (SsdArray, EdgeStreamMeta) {
        let array = SsdArray::new_mem(ArrayConfig::small_test(), stream_capacity(g)).unwrap();
        let meta = write_edge_stream(g, &array).unwrap();
        array.stats().reset();
        (array, meta)
    }

    #[test]
    fn stream_round_trips_edges() {
        let g = fixtures::diamond();
        let (array, meta) = image(&g);
        let mut got = Vec::new();
        for_each_edge(&array, &meta, |s, d| got.push((s, d))).unwrap();
        assert_eq!(got, g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn stream_reads_are_large_and_sequential() {
        let g = gen::rmat(9, 8, gen::RmatSkew::default(), 1);
        let (array, meta) = image(&g);
        for_each_edge(&array, &meta, |_, _| {}).unwrap();
        let s = array.stats().snapshot();
        // Sequential architecture: every per-drive request covers a
        // full stripe (the array splits logical reads per drive), far
        // above FlashGraph's 4KB-class random requests.
        let stripe = array.config().stripe_bytes() as f64;
        assert!(
            s.mean_read_bytes() >= 0.8 * stripe,
            "expected stripe-sized sequential requests ({} B), mean was {}",
            stripe,
            s.mean_read_bytes()
        );
    }

    #[test]
    fn update_stream_round_trip() {
        let g = fixtures::path(4);
        // Extra scratch capacity: this test pushes far more updates
        // than the graph has edges.
        let array =
            SsdArray::new_mem(ArrayConfig::small_test(), stream_capacity(&g) + (1 << 16)).unwrap();
        let meta = write_edge_stream(&g, &array).unwrap();
        let mut us = UpdateStream::new(&array, meta.scratch_base);
        for i in 0..1000u32 {
            us.push(VertexId(i % 4), i).unwrap();
        }
        assert_eq!(us.records(), 1000);
        let mut seen = 0u32;
        us.drain(|d, p| {
            assert_eq!(d.0, p % 4);
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 1000);
    }

    #[test]
    fn update_stream_charges_wear() {
        // X-Stream's update traffic writes to the device — the
        // wearout cost FlashGraph avoids by design.
        let g = fixtures::path(4);
        let (array, meta) = image(&g);
        let mut us = UpdateStream::new(&array, meta.scratch_base);
        for i in 0..100u32 {
            us.push(VertexId(0), i).unwrap();
        }
        us.drain(|_, _| {}).unwrap();
        assert!(array.stats().snapshot().bytes_written > 0);
    }

    #[test]
    fn semistream_triangles_complete_graph() {
        let g = fixtures::complete(8);
        let (array, meta) = image(&g);
        for parts in [1, 2, 3] {
            assert_eq!(
                semistream_triangles(&array, &meta, parts).unwrap(),
                56,
                "parts={parts}"
            );
        }
    }

    #[test]
    fn semistream_triangles_match_direct_on_rmat() {
        let g = gen::rmat(6, 5, gen::RmatSkew::default(), 4);
        let mut b = fg_graph::GraphBuilder::undirected();
        for (s, d) in g.edges() {
            b.add_edge(s, d);
        }
        let ug = b.build();
        let (array, meta) = image(&ug);
        let want = crate::direct::triangle_count(&ug);
        assert_eq!(semistream_triangles(&array, &meta, 2).unwrap(), want);
    }

    #[test]
    fn more_partitions_mean_more_io() {
        let g = fixtures::complete(12);
        let (array, meta) = image(&g);
        semistream_triangles(&array, &meta, 1).unwrap();
        let one = array.stats().snapshot().bytes_read;
        array.stats().reset();
        semistream_triangles(&array, &meta, 4).unwrap();
        let four = array.stats().snapshot().bytes_read;
        assert!(
            four > 2 * one,
            "4 partitions should scan much more: {four} vs {one}"
        );
    }
}
