//! The GraphChi stand-in: vertex-centric processing by full
//! sequential scans (Parallel Sliding Windows collapses to this on a
//! simulated array — the defining property is *every iteration reads
//! every edge sequentially*, whether or not the frontier is small).

use std::time::Instant;

use fg_ssdsim::SsdArray;
use fg_types::{Result, VertexId};

use crate::stream::{for_each_edge, semistream_triangles, EdgeStreamMeta};

/// A program run by one full edge scan per iteration, GraphChi-style:
/// updates flow along edges and are applied to the destination's
/// in-memory value immediately (GraphChi's asynchronous model).
pub trait ScanProgram: Sync {
    /// Per-vertex value (kept in memory across iterations).
    type V: Clone + Send;

    /// Initial value of vertex `v`.
    fn init(&self, v: VertexId) -> Self::V;

    /// Processes edge `src -> dst` during the scan; returns `true`
    /// when `dst`'s value changed.
    fn edge_update(
        &self,
        src: VertexId,
        src_val: &Self::V,
        dst: VertexId,
        dst_val: &mut Self::V,
        iter: u32,
    ) -> bool;

    /// End-of-iteration hook over all values; returns `true` to run
    /// another iteration.
    fn end_iteration(&self, iter: u32, values: &mut [Self::V], changed: u64) -> bool;
}

/// Statistics of a scan-engine run.
#[derive(Debug, Clone)]
pub struct ScanStats {
    /// Iterations executed (full scans of the edge stream).
    pub iterations: u32,
    /// Wall-clock runtime.
    pub elapsed: std::time::Duration,
    /// Simulated device statistics for the run.
    pub io: fg_ssdsim::IoStatsSnapshot,
    /// Bytes of in-memory vertex values.
    pub memory_bytes: u64,
}

impl ScanStats {
    /// Roofline runtime: max of wall clock and the busiest drive (the
    /// same model the FlashGraph stats use).
    pub fn modeled_runtime_ns(&self) -> u64 {
        (self.elapsed.as_nanos() as u64).max(self.io.max_busy_ns)
    }
}

/// Runs `program` over the edge stream until it declines another
/// iteration.
///
/// # Errors
///
/// Propagates array read errors.
pub fn run_scan<P: ScanProgram>(
    array: &SsdArray,
    meta: &EdgeStreamMeta,
    program: &P,
    max_iters: u32,
) -> Result<(Vec<P::V>, ScanStats)> {
    let start = Instant::now();
    let io_before = array.stats().snapshot();
    let n = meta.num_vertices as usize;
    let mut values: Vec<P::V> = (0..n)
        .map(|i| program.init(VertexId::from_index(i)))
        .collect();
    let mut iterations = 0u32;
    while iterations < max_iters {
        let mut changed = 0u64;
        // The scan mutates dst values while reading src values
        // (GraphChi's asynchronous in-order update); the source value
        // is cloned out to sidestep src/dst aliasing.
        for_each_edge(array, meta, |s, d| {
            if s == d {
                return;
            }
            let src_val = values[s.index()].clone();
            if program.edge_update(s, &src_val, d, &mut values[d.index()], iterations) {
                changed += 1;
            }
        })?;
        iterations += 1;
        if !program.end_iteration(iterations - 1, &mut values, changed) {
            break;
        }
    }
    let stats = ScanStats {
        iterations,
        elapsed: start.elapsed(),
        io: array.stats().snapshot().delta_since(&io_before),
        memory_bytes: (n * std::mem::size_of::<P::V>()) as u64,
    };
    Ok((values, stats))
}

/// BFS on the scan engine: every iteration scans all edges even when
/// the frontier is one vertex — the cost Figure 11 exposes.
pub struct ScanBfs {
    /// BFS root.
    pub source: VertexId,
}

impl ScanProgram for ScanBfs {
    type V = u32;

    fn init(&self, v: VertexId) -> u32 {
        if v == self.source {
            0
        } else {
            u32::MAX
        }
    }

    fn edge_update(&self, _s: VertexId, sv: &u32, _d: VertexId, dv: &mut u32, _i: u32) -> bool {
        if *sv != u32::MAX && sv.saturating_add(1) < *dv {
            *dv = sv + 1;
            true
        } else {
            false
        }
    }

    fn end_iteration(&self, _iter: u32, _values: &mut [u32], changed: u64) -> bool {
        changed > 0
    }
}

/// WCC by min-label propagation on the scan engine.
pub struct ScanWcc;

impl ScanProgram for ScanWcc {
    type V = u32;

    fn init(&self, v: VertexId) -> u32 {
        v.0
    }

    fn edge_update(&self, _s: VertexId, sv: &u32, _d: VertexId, dv: &mut u32, _i: u32) -> bool {
        if sv < dv {
            *dv = *sv;
            true
        } else {
            false
        }
    }

    fn end_iteration(&self, _iter: u32, _values: &mut [u32], changed: u64) -> bool {
        changed > 0
    }
}

/// PageRank value for [`ScanPageRank`].
#[derive(Clone, Copy, Debug)]
pub struct ScanPrValue {
    /// Current rank.
    pub rank: f32,
    /// Share pushed along each out-edge this iteration.
    pub share: f32,
    /// Accumulator for the next rank.
    pub acc: f32,
}

/// PageRank on the scan engine (fixed iteration count; the
/// full-scan cost is identical every iteration, which is why
/// GraphChi is *relatively* least bad at PageRank in Figure 11).
pub struct ScanPageRank {
    /// Damping factor.
    pub damping: f32,
    /// Iterations to run.
    pub iters: u32,
    /// Out-degrees (the scan engine cannot derive them mid-stream).
    pub out_degrees: Vec<u32>,
}

impl ScanProgram for ScanPageRank {
    type V = ScanPrValue;

    fn init(&self, v: VertexId) -> ScanPrValue {
        let d = self.out_degrees[v.index()];
        ScanPrValue {
            rank: 1.0,
            share: if d == 0 { 0.0 } else { 1.0 / d as f32 },
            acc: 0.0,
        }
    }

    fn edge_update(
        &self,
        _s: VertexId,
        sv: &ScanPrValue,
        _d: VertexId,
        dv: &mut ScanPrValue,
        _i: u32,
    ) -> bool {
        dv.acc += sv.share;
        true
    }

    fn end_iteration(&self, iter: u32, values: &mut [ScanPrValue], _changed: u64) -> bool {
        for (i, v) in values.iter_mut().enumerate() {
            v.rank = (1.0 - self.damping) + self.damping * v.acc;
            v.acc = 0.0;
            let d = self.out_degrees[i];
            v.share = if d == 0 { 0.0 } else { v.rank / d as f32 };
        }
        iter + 1 < self.iters
    }
}

/// Triangle counting for the scan engine: the semi-streaming
/// multi-pass algorithm (see [`semistream_triangles`]).
///
/// # Errors
///
/// Propagates array errors.
pub fn scan_triangle_count(
    array: &SsdArray,
    meta: &EdgeStreamMeta,
    partitions: usize,
) -> Result<(u64, ScanStats)> {
    let start = Instant::now();
    let before = array.stats().snapshot();
    let count = semistream_triangles(array, meta, partitions)?;
    let stats = ScanStats {
        iterations: (partitions * 2) as u32,
        elapsed: start.elapsed(),
        io: array.stats().snapshot().delta_since(&before),
        memory_bytes: meta.bytes / partitions.max(1) as u64,
    };
    Ok((count, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{stream_capacity, write_edge_stream};
    use fg_graph::{fixtures, gen, Graph};
    use fg_ssdsim::ArrayConfig;

    fn image(g: &Graph) -> (SsdArray, EdgeStreamMeta) {
        let array = SsdArray::new_mem(ArrayConfig::small_test(), stream_capacity(g)).unwrap();
        let meta = write_edge_stream(g, &array).unwrap();
        array.stats().reset();
        (array, meta)
    }

    #[test]
    fn scan_bfs_matches_direct() {
        let g = gen::rmat(7, 4, gen::RmatSkew::default(), 6);
        let (array, meta) = image(&g);
        let (levels, stats) = run_scan(
            &array,
            &meta,
            &ScanBfs {
                source: VertexId(0),
            },
            10_000,
        )
        .unwrap();
        let want = crate::direct::bfs_levels(&g, VertexId(0));
        for v in g.vertices() {
            let got = (levels[v.index()] != u32::MAX).then_some(levels[v.index()]);
            assert_eq!(got, want[v.index()], "vertex {v}");
        }
        // Full-scan property: bytes read ≈ iterations × stream bytes.
        assert_eq!(
            stats.io.bytes_read / meta.bytes.max(1),
            stats.iterations as u64
        );
    }

    #[test]
    fn scan_wcc_matches_union_find_on_undirected() {
        let g = fixtures::complete(7);
        let (array, meta) = image(&g);
        let (labels, _) = run_scan(&array, &meta, &ScanWcc, 10_000).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn scan_pagerank_close_to_direct() {
        let g = gen::rmat(6, 5, gen::RmatSkew::default(), 8);
        let (array, meta) = image(&g);
        let degrees: Vec<u32> = g.vertices().map(|v| g.out_degree(v) as u32).collect();
        let prog = ScanPageRank {
            damping: 0.85,
            iters: 40,
            out_degrees: degrees,
        };
        let (values, _) = run_scan(&array, &meta, &prog, 40).unwrap();
        let want = crate::direct::pagerank(&g, 0.85, 40);
        for v in g.vertices() {
            assert!(
                (values[v.index()].rank as f64 - want[v.index()]).abs() < 2e-2,
                "vertex {v}: {} vs {}",
                values[v.index()].rank,
                want[v.index()]
            );
        }
    }

    #[test]
    fn scan_tc_matches_direct() {
        let g = fixtures::complete(9);
        let (array, meta) = image(&g);
        let (count, stats) = scan_triangle_count(&array, &meta, 2).unwrap();
        assert_eq!(count, 84);
        assert!(
            stats.io.bytes_read >= 4 * meta.bytes,
            "2 partitions x 2 passes"
        );
    }
}
