//! Property tests: the builder/CSR pipeline preserves the edge set.

use std::collections::BTreeSet;

use fg_graph::{read_edge_list, write_edge_list, GraphBuilder};
use fg_types::VertexId;
use proptest::prelude::*;

fn edge_vec() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..200, 0u32..200), 0..400)
}

proptest! {
    // Bounded so tier-1 stays fast; raise via PROPTEST_CASES for
    // deeper soak runs.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn directed_build_matches_reference(edges in edge_vec()) {
        let mut b = GraphBuilder::directed();
        let mut model: BTreeSet<(u32, u32)> = BTreeSet::new();
        for &(s, d) in &edges {
            b.add_edge(VertexId(s), VertexId(d));
            if s != d {
                model.insert((s, d));
            }
        }
        let g = b.build();
        prop_assert_eq!(g.num_edges(), model.len() as u64);
        // Every modeled edge is present with correct adjacency.
        for &(s, d) in &model {
            prop_assert!(g.out_neighbors(VertexId(s)).contains(&VertexId(d)));
            prop_assert!(g.in_neighbors(VertexId(d)).contains(&VertexId(s)));
        }
        // Adjacency lists sorted strictly ascending (dedup + order).
        for v in g.vertices() {
            let ns = g.out_neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            let ns = g.in_neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn in_out_degree_sums_balance(edges in edge_vec()) {
        let mut b = GraphBuilder::directed();
        for &(s, d) in &edges {
            b.add_edge(VertexId(s), VertexId(d));
        }
        let g = b.build();
        let out_sum: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, in_sum);
        prop_assert_eq!(out_sum as u64, g.num_edges());
    }

    #[test]
    fn undirected_adjacency_is_symmetric(edges in edge_vec()) {
        let mut b = GraphBuilder::undirected();
        for &(s, d) in &edges {
            b.add_edge(VertexId(s), VertexId(d));
        }
        let g = b.build();
        for v in g.vertices() {
            for &u in g.out_neighbors(v) {
                prop_assert!(g.out_neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn text_round_trip_identity(edges in edge_vec()) {
        let mut b = GraphBuilder::directed();
        for &(s, d) in &edges {
            b.add_edge(VertexId(s), VertexId(d));
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), true).unwrap();
        // Vertex count can shrink for trailing isolated vertices; edge
        // sets must match exactly.
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        prop_assert_eq!(e1, e2);
    }
}
