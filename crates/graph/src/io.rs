//! Plain-text edge-list ingestion and export.
//!
//! The format is the de-facto standard for graph datasets (SNAP,
//! WebGraph dumps): one `src dst [weight]` triple per line, `#`
//! comments, blank lines ignored.

use std::io::{BufRead, BufReader, Read, Write};

use fg_types::{FgError, Result, VertexId};

use crate::builder::GraphBuilder;
use crate::csr::Graph;

/// Reads a whitespace-separated edge list into a graph.
///
/// Pass the reader by value or as `&mut reader`.
///
/// # Errors
///
/// Returns [`FgError::CorruptImage`] on a malformed line and
/// [`FgError::Io`] on read failures.
///
/// # Example
///
/// ```
/// use fg_graph::read_edge_list;
///
/// let text = "# a comment\n0 1\n1 2 3.5\n";
/// let g = read_edge_list(text.as_bytes(), true)?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), fg_types::FgError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R, directed: bool) -> Result<Graph> {
    let mut b = if directed {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    let buf = BufReader::new(reader);
    let mut weighted = false;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u32> {
            tok.ok_or_else(|| {
                FgError::CorruptImage(format!("line {}: missing {what}", lineno + 1))
            })?
            .parse::<u32>()
            .map_err(|e| FgError::CorruptImage(format!("line {}: bad {what}: {e}", lineno + 1)))
        };
        let src = parse(it.next(), "source")?;
        let dst = parse(it.next(), "destination")?;
        match it.next() {
            Some(wtok) => {
                let w: f32 = wtok.parse().map_err(|e| {
                    FgError::CorruptImage(format!("line {}: bad weight: {e}", lineno + 1))
                })?;
                weighted = true;
                b.add_weighted_edge(VertexId(src), VertexId(dst), w);
            }
            None => {
                if weighted {
                    return Err(FgError::CorruptImage(format!(
                        "line {}: unweighted edge in weighted list",
                        lineno + 1
                    )));
                }
                b.add_edge(VertexId(src), VertexId(dst));
            }
        }
    }
    Ok(b.build())
}

/// Writes `g` as a text edge list (one orientation per undirected
/// edge). Weights are emitted when present.
///
/// # Errors
///
/// Returns [`FgError::Io`] on write failures.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<()> {
    let csr = g.csr(fg_types::EdgeDir::Out);
    for v in g.vertices() {
        let ws = csr.weights_of(v);
        for (k, &d) in csr.neighbors(v).iter().enumerate() {
            if !g.is_directed() && d < v {
                continue;
            }
            match ws {
                Some(w) => writeln!(writer, "{} {} {}", v, d, w[k])?,
                None => writeln!(writer, "{} {}", v, d)?,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn round_trip_directed() {
        let g = fixtures::diamond();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), true).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_undirected() {
        let g = fixtures::complete(5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), false).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_weighted() {
        let g = fixtures::weighted_square();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), true).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0 1\n   \n# tail\n1 0\n";
        let g = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes(), true).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn missing_destination_rejected() {
        let err = read_edge_list("5\n".as_bytes(), true).unwrap_err();
        assert!(err.to_string().contains("destination"));
    }

    #[test]
    fn mixed_weighted_unweighted_rejected() {
        let text = "0 1 2.0\n1 2\n";
        assert!(read_edge_list(text.as_bytes(), true).is_err());
    }
}
