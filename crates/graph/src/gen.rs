//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on three natural graphs (Twitter, a web
//! subdomain crawl, a 3.4 B-vertex page crawl — Table 1). Those
//! datasets are not redistributable, so the reproduction uses R-MAT
//! generated power-law graphs with the same *relative* structure: see
//! `DESIGN.md` for the substitution argument. Everything here is
//! deterministic given a seed so experiments are repeatable.

use fg_types::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Graph;

/// Quadrant probabilities for the R-MAT recursive generator.
///
/// The defaults `(0.57, 0.19, 0.19, 0.05)` are the Graph500 values and
/// produce a heavy power-law degree distribution similar to social
/// networks such as the paper's Twitter graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatSkew {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
}

impl RmatSkew {
    /// Graph500-style skew (heavy hubs, like a social graph).
    pub fn social() -> Self {
        RmatSkew {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// Milder skew with a longer diameter, web-crawl-like.
    pub fn web() -> Self {
        RmatSkew {
            a: 0.45,
            b: 0.22,
            c: 0.22,
        }
    }

    /// Probability of the bottom-right quadrant.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

impl Default for RmatSkew {
    fn default() -> Self {
        RmatSkew::social()
    }
}

/// Generates a directed R-MAT graph with `2^scale` vertices and about
/// `edge_factor * 2^scale` edges (duplicates and self-loops are
/// dropped, so slightly fewer survive).
///
/// # Example
///
/// ```
/// use fg_graph::gen::{rmat, RmatSkew};
///
/// let g = rmat(8, 8, RmatSkew::default(), 7);
/// assert!(g.is_directed());
/// assert!(g.num_edges() > 0);
/// // Deterministic: same seed, same graph.
/// assert_eq!(g, rmat(8, 8, RmatSkew::default(), 7));
/// ```
pub fn rmat(scale: u32, edge_factor: u32, skew: RmatSkew, seed: u64) -> Graph {
    assert!(
        scale < 31,
        "rmat scale {scale} too large for u32 vertex ids"
    );
    let n: u64 = 1 << scale;
    let m = n * edge_factor as u64;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::directed();
    b.reserve_vertices(n as usize);
    for _ in 0..m {
        let (src, dst) = rmat_edge(scale, skew, &mut rng);
        b.add_edge(VertexId(src), VertexId(dst));
    }
    b.build()
}

/// One recursive R-MAT edge sample.
fn rmat_edge(scale: u32, skew: RmatSkew, rng: &mut SmallRng) -> (u32, u32) {
    let mut src = 0u32;
    let mut dst = 0u32;
    // Small per-level noise keeps the quadrant boundaries from
    // producing exactly self-similar artifacts (standard practice).
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.gen();
        if r < skew.a {
            // top-left: neither bit set
        } else if r < skew.a + skew.b {
            dst |= 1;
        } else if r < skew.a + skew.b + skew.c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src, dst)
}

/// Generates a directed Erdős–Rényi `G(n, m)` graph: `m` edges sampled
/// uniformly (duplicates dropped at build).
pub fn erdos_renyi(n: usize, m: u64, seed: u64) -> Graph {
    assert!(n >= 2, "erdos_renyi needs at least two vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::directed();
    b.reserve_vertices(n);
    for _ in 0..m {
        let s = rng.gen_range(0..n as u32);
        let d = rng.gen_range(0..n as u32);
        b.add_edge(VertexId(s), VertexId(d));
    }
    b.build()
}

/// Generates an undirected Watts–Strogatz ring: `n` vertices each
/// joined to `k` nearest neighbours per side, with rewiring
/// probability `p`. Long diameter at `p = 0`, small-world as `p`
/// rises — useful as a high-diameter counterpoint to R-MAT.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 2 * k, "watts_strogatz needs n > 2k");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected();
    b.reserve_vertices(n);
    for v in 0..n {
        for j in 1..=k {
            let mut d = ((v + j) % n) as u32;
            if rng.gen::<f64>() < p {
                d = rng.gen_range(0..n as u32);
            }
            b.add_edge(VertexId(v as u32), VertexId(d));
        }
    }
    b.build()
}

/// Adds deterministic pseudo-random weights in `(0, max_w]` to every
/// edge of `g`, producing a weighted copy (used by SSSP, which
/// exercises the edge-attribute path of the on-disk format).
pub fn with_random_weights(g: &Graph, max_w: f32, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = if g.is_directed() {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    b.reserve_vertices(g.num_vertices());
    for (s, d) in g.edges() {
        if !g.is_directed() && s > d {
            continue; // one orientation only; builder re-symmetrizes
        }
        let w = rng.gen_range(0.0f32..max_w).max(f32::MIN_POSITIVE);
        b.add_weighted_edge(s, d, w);
    }
    b.build()
}

/// The three evaluation datasets of Table 1, scaled down.
///
/// `scale_bump` raises every graph by that many R-MAT scale steps
/// (a bump of 1 doubles vertices) so the same harness can run
/// laptop-size or larger via the `FG_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Stand-in for the Twitter follower graph (42 M v / 1.5 B e).
    TwitterSim,
    /// Stand-in for the subdomain web graph (89 M v / 2 B e).
    SubdomainSim,
    /// Stand-in for the page-level web graph (3.4 B v / 129 B e) —
    /// the "billion-node" graph of Table 2, kept ~8× the others.
    PageSim,
}

impl Dataset {
    /// Human-readable dataset name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::TwitterSim => "twitter-sim",
            Dataset::SubdomainSim => "subdomain-sim",
            Dataset::PageSim => "page-sim",
        }
    }

    /// Generates the dataset at the default reproduction scale plus
    /// `scale_bump`.
    pub fn generate(self, scale_bump: u32) -> Graph {
        match self {
            // Twitter: dense, hub-heavy, low diameter. Edge factor 32
            // approximates the real graph's mean degree (1.5B/42M≈35).
            Dataset::TwitterSim => rmat(14 + scale_bump, 32, RmatSkew::social(), 0xF1A5),
            // Subdomain: larger vertex set, milder skew, longer
            // diameter; mean degree ≈ 2B/89M ≈ 22.
            Dataset::SubdomainSim => rmat(15 + scale_bump, 22, RmatSkew::web(), 0x5EED),
            // Page: the scaling target — ~8x subdomain edges.
            Dataset::PageSim => rmat(18 + scale_bump, 12, RmatSkew::web(), 0x9A6E),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let g1 = rmat(8, 4, RmatSkew::default(), 99);
        let g2 = rmat(8, 4, RmatSkew::default(), 99);
        assert_eq!(g1, g2);
    }

    #[test]
    fn rmat_different_seeds_differ() {
        let g1 = rmat(8, 4, RmatSkew::default(), 1);
        let g2 = rmat(8, 4, RmatSkew::default(), 2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn rmat_respects_vertex_bound() {
        let g = rmat(6, 4, RmatSkew::default(), 5);
        assert_eq!(g.num_vertices(), 64);
        for (s, d) in g.edges() {
            assert!(s.index() < 64 && d.index() < 64);
        }
    }

    #[test]
    fn rmat_is_skewed() {
        // With social skew, the max degree should far exceed the mean.
        let g = rmat(10, 8, RmatSkew::social(), 3);
        let n = g.num_vertices();
        let mean = g.num_edges() as f64 / n as f64;
        let max = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert!(
            (max as f64) > 8.0 * mean,
            "max degree {max} should be much larger than mean {mean}"
        );
    }

    #[test]
    fn erdos_renyi_roughly_uniform() {
        let g = erdos_renyi(1 << 10, 8 << 10, 17);
        let max = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        // Uniform sampling: max degree stays within a small multiple
        // of the mean (8), unlike R-MAT.
        assert!(max < 40, "unexpected hub in uniform graph: {max}");
    }

    #[test]
    fn watts_strogatz_ring_degree() {
        let g = watts_strogatz(100, 2, 0.0, 1);
        // Unrewired ring: every vertex has exactly 2k neighbours.
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn weighted_copy_preserves_structure() {
        let g = rmat(7, 4, RmatSkew::default(), 11);
        let w = with_random_weights(&g, 10.0, 4);
        assert_eq!(w.num_vertices(), g.num_vertices());
        assert_eq!(w.num_edges(), g.num_edges());
        assert!(w.has_weights());
        for v in w.vertices() {
            assert_eq!(w.out_neighbors(v), g.out_neighbors(v));
            for &wt in w.csr(fg_types::EdgeDir::Out).weights_of(v).unwrap() {
                assert!(wt > 0.0 && wt <= 10.0);
            }
        }
    }

    #[test]
    fn datasets_keep_relative_sizes() {
        let t = Dataset::TwitterSim.generate(0);
        let s = Dataset::SubdomainSim.generate(0);
        let p = Dataset::PageSim.generate(0);
        assert!(s.num_vertices() > t.num_vertices());
        assert!(p.num_vertices() > 4 * s.num_vertices());
        assert!(p.num_edges() > 4 * s.num_edges());
    }
}
