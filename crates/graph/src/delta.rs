//! The in-memory edge-delta layer of mutable graphs (the ROADMAP's
//! LSM-style ingest item).
//!
//! A [`DeltaLog`] accumulates edge additions and removals against a
//! *frozen* base graph (the on-SSD image) as a sequence of sorted
//! runs — one run per applied [`DeltaBatch`], its entries sorted by
//! `(src, dst)` with a per-source directory, so a query can splice a
//! vertex's pending ops into its base edge list in one ordered merge.
//! The vertex set is fixed (ids must stay inside the base graph);
//! only edges mutate, which is exactly the shape FlashGraph's
//! semi-external design wants: vertex state lives in RAM, edge lists
//! on SSD, and an in-memory overlay composes at delivery time.
//!
//! Three invariants make delivery-time merging O(1) amortized and
//! the bookkeeping exact:
//!
//! 1. **Ops are effective.** [`DeltaLog::apply`] canonicalizes each
//!    batch against the current logical graph (base image + earlier
//!    runs, via a [`BaseLists`] oracle): adding a present edge
//!    becomes a weight [`DeltaOp::Update`] (or a no-op), removing an
//!    absent edge is dropped. Every surviving `Add` therefore adds
//!    exactly one edge and every `Remove` removes exactly one, so a
//!    vertex's merged degree is `base_degree + Σ(adds - removes)` —
//!    no membership probe at query time.
//! 2. **Views are composed, not replayed.** [`DeltaLog::view`] folds
//!    the runs at or below a watermark into one sorted op list per
//!    vertex, composing op chains (`Remove` then `Add` ⇒ `Update`,
//!    `Add` then `Remove` ⇒ nothing) so each folded op is *relative
//!    to the base image*: `Add` ⇒ dst absent from the base list,
//!    `Remove`/`Update` ⇒ dst present. The delivery cursor never
//!    needs run order.
//! 3. **Views are materialized.** A [`DeltaView`] owns its folded
//!    ops; once built it is immune to later `apply`/`fold` calls.
//!    That is what gives `GraphService` snapshot isolation without a
//!    pin registry: a query holds an `Arc<DeltaView>` and the log can
//!    compact underneath it freely.
//!
//! Directionality follows [`Graph`]: a directed log mirrors each op
//! into the destination's in-list; an undirected log mirrors it into
//! both endpoints' (single-direction) lists. Self-loops are dropped,
//! matching [`crate::GraphBuilder`]'s default.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use fg_types::{EdgeDir, FgError, Result, VertexId};

use crate::{Csr, Graph};

/// One effective, folded edge operation, relative to the base image
/// (see the module docs for why each kind implies base membership).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaOp {
    /// The edge is absent from the base list: splice it in, with the
    /// given weight (`None` ⇒ the default weight 1.0 on weighted
    /// graphs; ignored on unweighted ones).
    Add(Option<f32>),
    /// The edge is present in the base list with a different weight:
    /// keep it in place, deliver this weight instead. Produced only
    /// by canonicalization — batches carry `Add`/`Remove`.
    Update(f32),
    /// The edge is present in the base list: drop it from delivery.
    Remove,
}

impl DeltaOp {
    /// This op's contribution to the merged degree of its source.
    #[inline]
    fn degree_diff(self) -> i64 {
        match self {
            DeltaOp::Add(_) => 1,
            DeltaOp::Update(_) => 0,
            DeltaOp::Remove => -1,
        }
    }
}

/// What a batch asks for, before canonicalization.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BatchOp {
    Add(Option<f32>),
    Remove,
}

/// A group of edge mutations applied atomically as one run. Entries
/// are replayed in insertion order, so `add(u,v); remove(u,v)` within
/// one batch nets to nothing.
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    entries: Vec<(VertexId, VertexId, BatchOp)>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues the addition of edge `(src, dst)`.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.entries.push((src, dst, BatchOp::Add(None)));
        self
    }

    /// Queues the addition of edge `(src, dst)` with a weight. On an
    /// edge that already exists in a weighted graph this becomes a
    /// weight update; on unweighted graphs the weight is ignored.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, w: f32) -> &mut Self {
        self.entries.push((src, dst, BatchOp::Add(Some(w))));
        self
    }

    /// Queues the removal of edge `(src, dst)` (a no-op if absent).
    pub fn remove_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.entries.push((src, dst, BatchOp::Remove));
        self
    }

    /// Number of queued (uncanonicalized) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The base graph's frozen adjacency, consulted by
/// [`DeltaLog::apply`] to canonicalize batches. Implemented by
/// [`Graph`] (in-memory tests) and by the serving layer (reading the
/// current image generation back through its index).
pub trait BaseLists {
    /// The sorted out-neighbour list of `v` in the base graph.
    ///
    /// # Errors
    ///
    /// Propagates read failures from image-backed implementations.
    fn base_out_list(&self, v: VertexId) -> Result<Vec<u32>>;
}

impl BaseLists for Graph {
    fn base_out_list(&self, v: VertexId) -> Result<Vec<u32>> {
        Ok(self.out_neighbors(v).iter().map(|u| u.0).collect())
    }
}

/// One applied batch, canonicalized: per-direction effective ops,
/// sorted by `(src, dst)` with a per-source directory.
#[derive(Debug)]
struct DeltaRun {
    seq: u64,
    /// Out-direction ops (the only direction for undirected logs).
    out: HashMap<u32, Vec<(u32, DeltaOp)>>,
    /// In-direction mirror (directed logs only).
    in_: HashMap<u32, Vec<(u32, DeltaOp)>>,
}

/// A vertex's folded delta ops in one direction: sorted by
/// destination, each op effective relative to the base image, plus
/// the net degree change they imply.
#[derive(Debug, Clone, Default)]
pub struct DeltaList {
    /// `(dst, op)` sorted ascending by `dst`.
    pub ops: Vec<(u32, DeltaOp)>,
    /// `Σ adds - removes`: merged degree = base degree + `diff`.
    pub diff: i64,
}

/// A materialized, immutable fold of the log's runs in
/// `(folded, watermark]` — the per-query snapshot. Keys are only the
/// vertices with pending ops, so the common no-delta vertex costs one
/// hash probe.
#[derive(Debug, Default)]
pub struct DeltaView {
    watermark: u64,
    directed: bool,
    out: HashMap<u32, Arc<DeltaList>>,
    in_: HashMap<u32, Arc<DeltaList>>,
}

impl DeltaView {
    /// The run sequence number this view folds up to.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Whether the view carries no ops at all (queries skip the
    /// overlay machinery entirely).
    pub fn is_empty(&self) -> bool {
        self.out.is_empty() && self.in_.is_empty()
    }

    /// Number of vertices with pending out-direction ops.
    pub fn touched_vertices(&self) -> usize {
        self.out.len()
    }

    /// The folded ops of `v` in `dir`, if any. Undirected views
    /// resolve every direction to the single stored one, like
    /// [`Graph::csr`].
    pub fn list(&self, v: VertexId, dir: EdgeDir) -> Option<&Arc<DeltaList>> {
        let map = if self.directed && dir == EdgeDir::In {
            &self.in_
        } else {
            &self.out
        };
        map.get(&v.0)
    }

    /// Net degree change of `v` in `dir` (`Both` sums like
    /// `GraphIndex::degree`).
    pub fn degree_diff(&self, v: VertexId, dir: EdgeDir) -> i64 {
        match dir {
            EdgeDir::Both if self.directed => {
                let o = self.out.get(&v.0).map_or(0, |l| l.diff);
                let i = self.in_.get(&v.0).map_or(0, |l| l.diff);
                o + i
            }
            d => self.list(v, d).map_or(0, |l| l.diff),
        }
    }

    /// The merged (base + deltas) edge list of `v` in `dir`, with
    /// weights when `weights` are supplied for the base list — the
    /// reference merge the delivery cursor must agree with.
    pub fn merged_list(
        &self,
        v: VertexId,
        dir: EdgeDir,
        base: &[u32],
        weights: Option<&[f32]>,
    ) -> (Vec<u32>, Option<Vec<f32>>) {
        let Some(list) = self.list(v, dir) else {
            return (base.to_vec(), weights.map(<[f32]>::to_vec));
        };
        let mut ids = Vec::with_capacity((base.len() as i64 + list.diff).max(0) as usize);
        let mut ws = weights.map(|_| Vec::with_capacity(ids.capacity()));
        fn emit(ids: &mut Vec<u32>, ws: &mut Option<Vec<f32>>, id: u32, w: f32) {
            ids.push(id);
            if let Some(ws) = ws {
                ws.push(w);
            }
        }
        let (mut bi, mut oi) = (0usize, 0usize);
        loop {
            let b = base.get(bi).copied();
            let o = list.ops.get(oi).copied();
            let base_w = |i: usize| weights.map_or(0.0, |w| w[i]);
            match (b, o) {
                (None, None) => break,
                (Some(bd), None) => {
                    emit(&mut ids, &mut ws, bd, base_w(bi));
                    bi += 1;
                }
                (bd, Some((od, op))) if bd.is_none_or(|bd| od < bd) => {
                    // Op ahead of the base stream: adds splice in;
                    // stray Remove/Update ops (their base entry is
                    // behind us, i.e. absent) are consumed silently.
                    if let DeltaOp::Add(w) = op {
                        emit(&mut ids, &mut ws, od, w.unwrap_or(1.0));
                    }
                    oi += 1;
                }
                (Some(bd), Some((od, op))) => {
                    if od > bd {
                        emit(&mut ids, &mut ws, bd, base_w(bi));
                        bi += 1;
                        continue;
                    }
                    // od == bd: the op owns this base entry.
                    match op {
                        DeltaOp::Remove => {}
                        DeltaOp::Update(w) => emit(&mut ids, &mut ws, bd, w),
                        DeltaOp::Add(w) => {
                            // Canonicalization forbids this, but fold
                            // it safely: emit once with the weight.
                            emit(&mut ids, &mut ws, bd, w.unwrap_or(1.0));
                            oi += 1;
                        }
                    }
                    bi += 1;
                }
                (None, Some(_)) => unreachable!("guarded arm covers bd = None"),
            }
        }
        (ids, ws)
    }
}

/// Composes a folded op with the next run's effective op on the same
/// edge. `prev == None` means "no net change relative to base yet".
fn compose(prev: Option<DeltaOp>, next: DeltaOp) -> Option<DeltaOp> {
    match (prev, next) {
        (None, op) => Some(op),
        // Edge added by an earlier run...
        (Some(DeltaOp::Add(_)), DeltaOp::Update(w)) => Some(DeltaOp::Add(Some(w))),
        (Some(DeltaOp::Add(_)), DeltaOp::Remove) => None,
        // Edge removed by an earlier run, re-added now: present in
        // base, present after — a weight override (re-adds take the
        // new weight, defaulting to 1.0).
        (Some(DeltaOp::Remove), DeltaOp::Add(w)) => Some(DeltaOp::Update(w.unwrap_or(1.0))),
        // Weight overridden again, or the overridden edge removed.
        (Some(DeltaOp::Update(_)), DeltaOp::Update(w)) => Some(DeltaOp::Update(w)),
        (Some(DeltaOp::Update(_)), DeltaOp::Remove) => Some(DeltaOp::Remove),
        // Remaining pairs (Add∘Add, Remove∘Remove, Update∘Add,
        // Remove∘Update) cannot be produced by canonicalized runs;
        // keep the latest op so a bug degrades instead of panicking.
        (Some(_), op) => Some(op),
    }
}

struct LogInner {
    runs: Vec<Arc<DeltaRun>>,
    /// Sequence the next applied batch gets (`watermark + 1`).
    next_seq: u64,
    /// Runs with `seq <= folded` have been compacted into a new base
    /// image and dropped; views fold only `(folded, watermark]`.
    folded: u64,
    /// Lazily rebuilt full-watermark view (the common pin target);
    /// invalidated by `apply` and `fold`.
    cached: Option<Arc<DeltaView>>,
}

/// The log: an ordered sequence of canonicalized runs over a fixed
/// vertex set. See the module docs for the invariants.
pub struct DeltaLog {
    n: usize,
    directed: bool,
    inner: Mutex<LogInner>,
}

impl std::fmt::Debug for DeltaLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock().unwrap();
        f.debug_struct("DeltaLog")
            .field("vertices", &self.n)
            .field("directed", &self.directed)
            .field("runs", &g.runs.len())
            .field("watermark", &(g.next_seq - 1))
            .finish()
    }
}

impl DeltaLog {
    /// An empty log over `n` vertices.
    pub fn new(n: usize, directed: bool) -> Self {
        DeltaLog {
            n,
            directed,
            inner: Mutex::new(LogInner {
                runs: Vec::new(),
                next_seq: 1,
                folded: 0,
                cached: None,
            }),
        }
    }

    /// An empty log shaped like `g`.
    pub fn for_graph(g: &Graph) -> Self {
        Self::new(g.num_vertices(), g.is_directed())
    }

    /// Vertex count of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Whether ops mirror into in-lists (directed) or into both
    /// endpoints' single lists (undirected).
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Sequence number of the latest applied run (0 = none).
    pub fn watermark(&self) -> u64 {
        self.inner.lock().unwrap().next_seq - 1
    }

    /// Number of effective ops not yet folded into a base image —
    /// the compactor's trigger metric.
    pub fn pending_ops(&self) -> u64 {
        let g = self.inner.lock().unwrap();
        g.runs
            .iter()
            .map(|r| r.out.values().map(|v| v.len() as u64).sum::<u64>())
            .sum()
    }

    /// Canonicalizes `batch` against the current logical graph (the
    /// `base` oracle plus every earlier run) and appends it as one
    /// run. Returns the new watermark. Batches that canonicalize to
    /// nothing still advance the watermark (the run is recorded
    /// empty), so callers can rely on `watermark()` ordering ingests.
    ///
    /// Ingest is serialized on the log's lock; `base` is consulted
    /// inside the critical section so canonicalization and the fold
    /// point (see [`DeltaLog::fold`]) stay coherent under concurrent
    /// compaction.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::VertexOutOfRange`] when an endpoint is
    /// outside the fixed vertex set, and propagates `base` read
    /// errors.
    pub fn apply(&self, base: &dyn BaseLists, batch: &DeltaBatch) -> Result<u64> {
        let mut g = self.inner.lock().unwrap();
        // Per-source canonicalization state: the base list (fetched
        // once per touched source) and the net ops so far (earlier
        // runs folded, then this batch's entries replayed in order).
        let mut bases: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut pending: HashMap<u32, HashMap<u32, Option<DeltaOp>>> = HashMap::new();
        for &(s, d, op) in &batch.entries {
            for v in [s, d] {
                if v.index() >= self.n {
                    return Err(FgError::VertexOutOfRange {
                        vertex: v.0 as u64,
                        num_vertices: self.n as u64,
                    });
                }
            }
            if s == d {
                continue; // self-loops dropped, the builder convention
            }
            // Undirected edges mutate both endpoints' lists; the two
            // mirrored entries canonicalize identically because the
            // base is symmetric.
            let mirrors: &[(u32, u32)] = if self.directed {
                &[(s.0, d.0)]
            } else {
                &[(s.0, d.0), (d.0, s.0)]
            };
            for &(src, dst) in mirrors {
                if let std::collections::hash_map::Entry::Vacant(e) = bases.entry(src) {
                    e.insert(base.base_out_list(VertexId(src))?);
                }
                let list = &bases[&src];
                let ops = pending.entry(src).or_default();
                if let std::collections::hash_map::Entry::Vacant(e) = ops.entry(dst) {
                    // Fold the edge's history from earlier runs so
                    // this batch sees the current logical state.
                    let mut folded = None;
                    for run in &g.runs {
                        if let Some(v) = run.out.get(&src) {
                            if let Ok(i) = v.binary_search_by_key(&dst, |e| e.0) {
                                folded = compose(folded, v[i].1);
                            }
                        }
                    }
                    e.insert(folded);
                }
                let cur = ops.get_mut(&dst).unwrap();
                let in_base = list.binary_search(&dst).is_ok();
                let present = match *cur {
                    None => in_base,
                    Some(DeltaOp::Add(_)) | Some(DeltaOp::Update(_)) => true,
                    Some(DeltaOp::Remove) => false,
                };
                let next = match op {
                    BatchOp::Add(w) if !present => Some(DeltaOp::Add(w)),
                    BatchOp::Add(Some(w)) => Some(DeltaOp::Update(w)),
                    BatchOp::Add(None) => None, // duplicate add: no-op
                    BatchOp::Remove if present => Some(DeltaOp::Remove),
                    BatchOp::Remove => None, // absent: no-op
                };
                if let Some(next) = next {
                    *cur = compose(*cur, next);
                }
            }
        }
        // Extract this batch's *net* effect: the difference between
        // the folded state before the batch and after. Re-fold the
        // prior runs per touched edge and diff.
        let mut out: HashMap<u32, Vec<(u32, DeltaOp)>> = HashMap::new();
        let mut in_: HashMap<u32, Vec<(u32, DeltaOp)>> = HashMap::new();
        for (src, ops) in pending {
            let list = &bases[&src];
            for (dst, after) in ops {
                let mut before = None;
                for run in &g.runs {
                    if let Some(v) = run.out.get(&src) {
                        if let Ok(i) = v.binary_search_by_key(&dst, |e| e.0) {
                            before = compose(before, v[i].1);
                        }
                    }
                }
                let Some(eff) = net_op(before, after, list.binary_search(&dst).is_ok()) else {
                    continue;
                };
                out.entry(src).or_default().push((dst, eff));
                if self.directed {
                    in_.entry(dst).or_default().push((src, eff));
                }
            }
        }
        for v in out.values_mut().chain(in_.values_mut()) {
            v.sort_unstable_by_key(|e| e.0);
        }
        let seq = g.next_seq;
        g.next_seq += 1;
        g.runs.push(Arc::new(DeltaRun { seq, out, in_ }));
        g.cached = None;
        Ok(seq)
    }

    /// A materialized snapshot folding runs `(folded, watermark]`.
    /// The full-watermark view is cached until the next mutation.
    pub fn view(&self, watermark: u64) -> Arc<DeltaView> {
        let mut g = self.inner.lock().unwrap();
        let full = watermark >= g.next_seq - 1;
        if full {
            if let Some(v) = &g.cached {
                return Arc::clone(v);
            }
        }
        let v = Arc::new(Self::build_view(&g.runs, watermark, self.directed));
        if full {
            g.cached = Some(Arc::clone(&v));
        }
        v
    }

    /// The current-watermark snapshot.
    pub fn current_view(&self) -> Arc<DeltaView> {
        self.view(u64::MAX)
    }

    /// Atomically: run `commit` (e.g. flip the serving layer's image
    /// generation), then drop every run with `seq <= up_to` — they
    /// are folded into the new base. Views built before this call
    /// keep their runs alive via `Arc`.
    pub fn fold(&self, up_to: u64, commit: impl FnOnce()) {
        let mut g = self.inner.lock().unwrap();
        commit();
        g.runs.retain(|r| r.seq > up_to);
        g.folded = g.folded.max(up_to);
        g.cached = None;
    }

    /// Snapshot coherent with the log's fold point: `pin` runs under
    /// the log lock, so the base it captures (an image generation)
    /// matches the view's fold floor exactly even under concurrent
    /// [`DeltaLog::fold`].
    pub fn snapshot_with<T>(&self, pin: impl FnOnce() -> T) -> (T, Arc<DeltaView>) {
        let mut g = self.inner.lock().unwrap();
        let pinned = pin();
        let v = match &g.cached {
            Some(v) => Arc::clone(v),
            None => {
                let v = Arc::new(Self::build_view(&g.runs, u64::MAX, self.directed));
                g.cached = Some(Arc::clone(&v));
                v
            }
        };
        (pinned, v)
    }

    fn build_view(runs: &[Arc<DeltaRun>], watermark: u64, directed: bool) -> DeltaView {
        let mut wm = 0;
        let mut out: HashMap<u32, Vec<(u32, Option<DeltaOp>)>> = HashMap::new();
        let mut in_: HashMap<u32, Vec<(u32, Option<DeltaOp>)>> = HashMap::new();
        for run in runs.iter().filter(|r| r.seq <= watermark) {
            wm = wm.max(run.seq);
            for (maps, folded) in [(&run.out, &mut out), (&run.in_, &mut in_)] {
                for (&src, ops) in maps {
                    let acc = folded.entry(src).or_default();
                    for &(dst, op) in ops {
                        match acc.binary_search_by_key(&dst, |e| e.0) {
                            Ok(i) => acc[i].1 = compose(acc[i].1, op),
                            Err(i) => acc.insert(i, (dst, Some(op))),
                        }
                    }
                }
            }
        }
        let finish = |m: HashMap<u32, Vec<(u32, Option<DeltaOp>)>>| {
            m.into_iter()
                .filter_map(|(src, acc)| {
                    let ops: Vec<(u32, DeltaOp)> = acc
                        .into_iter()
                        .filter_map(|(d, op)| op.map(|op| (d, op)))
                        .collect();
                    if ops.is_empty() {
                        return None;
                    }
                    let diff = ops.iter().map(|(_, op)| op.degree_diff()).sum();
                    Some((src, Arc::new(DeltaList { ops, diff })))
                })
                .collect()
        };
        DeltaView {
            watermark: wm,
            directed,
            out: finish(out),
            in_: finish(in_),
        }
    }

    /// The union graph (base + this view) — the oracle the acceptance
    /// tests compare engine deliveries against, and the graph the
    /// compactor writes as the next image generation.
    ///
    /// # Panics
    ///
    /// Panics when `base`'s shape (vertex count, directedness) does
    /// not match the log the view came from.
    pub fn union(base: &Graph, view: &DeltaView) -> Graph {
        let n = base.num_vertices();
        let weighted = base.has_weights();
        let build = |dir: EdgeDir| -> Csr {
            let csr = base.csr(dir);
            let mut offsets = Vec::with_capacity(n + 1);
            let mut neighbors: Vec<VertexId> = Vec::new();
            let mut weights: Option<Vec<f32>> = weighted.then(Vec::new);
            offsets.push(0u64);
            for i in 0..n {
                let v = VertexId::from_index(i);
                let ids: Vec<u32> = csr.neighbors(v).iter().map(|u| u.0).collect();
                let (merged, ws) = view.merged_list(v, dir, &ids, csr.weights_of(v));
                neighbors.extend(merged.into_iter().map(VertexId));
                if let (Some(all), Some(ws)) = (&mut weights, ws) {
                    all.extend(ws);
                }
                offsets.push(neighbors.len() as u64);
            }
            Csr::from_parts(offsets, neighbors, weights).expect("merged CSR is well-formed")
        };
        if base.is_directed() {
            Graph::from_csr(true, build(EdgeDir::Out), Some(build(EdgeDir::In)))
                .expect("merged graph is well-formed")
        } else {
            Graph::from_csr(false, build(EdgeDir::Out), None).expect("merged graph is well-formed")
        }
    }
}

/// The net op of one edge across a batch: `before` is the folded
/// state from earlier runs, `after` the folded state including the
/// batch. Returns what the *run* must record so that folding
/// `before ∘ recorded == after`.
fn net_op(before: Option<DeltaOp>, after: Option<DeltaOp>, in_base: bool) -> Option<DeltaOp> {
    if op_eq(before, after) {
        return None;
    }
    let present_before = match before {
        None => in_base,
        Some(DeltaOp::Add(_)) | Some(DeltaOp::Update(_)) => true,
        Some(DeltaOp::Remove) => false,
    };
    match after {
        // Batch nets to "back to the pre-run state": record the
        // inverse of `before` so composition cancels.
        None => match before {
            Some(DeltaOp::Add(_)) => Some(DeltaOp::Remove),
            // before Remove/Update with after None cannot happen
            // (re-adding yields Update, not None), but stay safe:
            Some(DeltaOp::Remove) => Some(DeltaOp::Add(None)),
            Some(DeltaOp::Update(_)) | None => None,
        },
        Some(DeltaOp::Add(w)) => {
            if present_before {
                Some(DeltaOp::Update(w.unwrap_or(1.0)))
            } else {
                Some(DeltaOp::Add(w))
            }
        }
        Some(DeltaOp::Update(w)) => {
            if present_before {
                Some(DeltaOp::Update(w))
            } else {
                Some(DeltaOp::Add(Some(w)))
            }
        }
        Some(DeltaOp::Remove) => {
            if present_before {
                Some(DeltaOp::Remove)
            } else {
                None
            }
        }
    }
}

fn op_eq(a: Option<DeltaOp>, b: Option<DeltaOp>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fixtures, GraphBuilder};

    fn ids(v: &[u32]) -> Vec<u32> {
        v.to_vec()
    }

    fn merged(g: &Graph, log: &DeltaLog, v: u32, dir: EdgeDir) -> Vec<u32> {
        let view = log.current_view();
        let base: Vec<u32> = g
            .csr(dir)
            .neighbors(VertexId(v))
            .iter()
            .map(|u| u.0)
            .collect();
        view.merged_list(VertexId(v), dir, &base, None).0
    }

    #[test]
    fn add_and_remove_merge_in_order() {
        let g = fixtures::path(6); // directed 0→1→…→5
        let log = DeltaLog::for_graph(&g);
        let mut b = DeltaBatch::new();
        b.add_edge(VertexId(0), VertexId(3))
            .add_edge(VertexId(0), VertexId(5))
            .remove_edge(VertexId(0), VertexId(1));
        assert_eq!(log.apply(&g, &b).unwrap(), 1);
        assert_eq!(merged(&g, &log, 0, EdgeDir::Out), ids(&[3, 5]));
        // In-direction mirrors.
        assert_eq!(merged(&g, &log, 3, EdgeDir::In), ids(&[0, 2]));
        assert_eq!(merged(&g, &log, 1, EdgeDir::In), ids(&[]));
        // Degree diffs agree.
        let view = log.current_view();
        assert_eq!(view.degree_diff(VertexId(0), EdgeDir::Out), 1);
        assert_eq!(view.degree_diff(VertexId(1), EdgeDir::In), -1);
    }

    #[test]
    fn duplicate_and_absent_ops_are_noops() {
        let g = fixtures::path(4);
        let log = DeltaLog::for_graph(&g);
        let mut b = DeltaBatch::new();
        b.add_edge(VertexId(0), VertexId(1)) // already in base
            .remove_edge(VertexId(0), VertexId(3)); // absent
        log.apply(&g, &b).unwrap();
        let view = log.current_view();
        assert!(view.is_empty(), "no effective ops: {view:?}");
        assert_eq!(merged(&g, &log, 0, EdgeDir::Out), ids(&[1]));
    }

    #[test]
    fn add_then_remove_within_batch_cancels() {
        let g = fixtures::path(4);
        let log = DeltaLog::for_graph(&g);
        let mut b = DeltaBatch::new();
        b.add_edge(VertexId(0), VertexId(2))
            .remove_edge(VertexId(0), VertexId(2));
        log.apply(&g, &b).unwrap();
        assert!(log.current_view().is_empty());
    }

    #[test]
    fn remove_then_readd_across_runs_is_update() {
        let g = fixtures::path(4);
        let log = DeltaLog::for_graph(&g);
        let mut b1 = DeltaBatch::new();
        b1.remove_edge(VertexId(1), VertexId(2));
        log.apply(&g, &b1).unwrap();
        assert_eq!(merged(&g, &log, 1, EdgeDir::Out), ids(&[]));
        let mut b2 = DeltaBatch::new();
        b2.add_edge(VertexId(1), VertexId(2));
        log.apply(&g, &b2).unwrap();
        // Present again; count math must give base degree exactly.
        assert_eq!(merged(&g, &log, 1, EdgeDir::Out), ids(&[2]));
        let view = log.current_view();
        assert_eq!(view.degree_diff(VertexId(1), EdgeDir::Out), 0);
    }

    #[test]
    fn undirected_ops_mirror_symmetrically() {
        let g = fixtures::star(4); // undirected: 0 — {1,2,3,4}
        let log = DeltaLog::for_graph(&g);
        let mut b = DeltaBatch::new();
        b.add_edge(VertexId(1), VertexId(2));
        b.remove_edge(VertexId(0), VertexId(3));
        log.apply(&g, &b).unwrap();
        assert_eq!(merged(&g, &log, 1, EdgeDir::Out), ids(&[0, 2]));
        assert_eq!(merged(&g, &log, 2, EdgeDir::Out), ids(&[0, 1]));
        assert_eq!(merged(&g, &log, 0, EdgeDir::Out), ids(&[1, 2, 4]));
        assert_eq!(merged(&g, &log, 3, EdgeDir::Out), ids(&[]));
        // In resolves to the single stored direction.
        assert_eq!(merged(&g, &log, 2, EdgeDir::In), ids(&[0, 1]));
    }

    #[test]
    fn out_of_range_rejected_self_loops_dropped() {
        let g = fixtures::path(3);
        let log = DeltaLog::for_graph(&g);
        let mut b = DeltaBatch::new();
        b.add_edge(VertexId(0), VertexId(9));
        assert!(matches!(
            log.apply(&g, &b),
            Err(FgError::VertexOutOfRange { .. })
        ));
        let mut b = DeltaBatch::new();
        b.add_edge(VertexId(1), VertexId(1));
        log.apply(&g, &b).unwrap();
        assert!(log.current_view().is_empty());
    }

    #[test]
    fn weight_updates_compose() {
        let g = fixtures::weighted_square();
        let log = DeltaLog::for_graph(&g);
        let (v0, v1) = (VertexId(0), VertexId(1));
        let base_ids: Vec<u32> = g.out_neighbors(v0).iter().map(|u| u.0).collect();
        assert!(base_ids.contains(&1));
        let mut b = DeltaBatch::new();
        b.add_weighted_edge(v0, v1, 9.5);
        log.apply(&g, &b).unwrap();
        let view = log.current_view();
        let ws = g.csr(EdgeDir::Out).weights_of(v0).unwrap();
        let (m, mw) = view.merged_list(v0, EdgeDir::Out, &base_ids, Some(ws));
        assert_eq!(m, base_ids, "update keeps the id list");
        let i = m.iter().position(|&d| d == 1).unwrap();
        assert_eq!(mw.unwrap()[i], 9.5);
    }

    #[test]
    fn fold_drops_runs_but_views_survive() {
        let g = fixtures::path(5);
        let log = DeltaLog::for_graph(&g);
        let mut b = DeltaBatch::new();
        b.add_edge(VertexId(0), VertexId(4));
        let w = log.apply(&g, &b).unwrap();
        let pinned = log.current_view();
        log.fold(w, || {});
        assert!(log.current_view().is_empty(), "folded runs drop out");
        // The pinned snapshot still sees the op.
        assert_eq!(pinned.degree_diff(VertexId(0), EdgeDir::Out), 1);
        assert_eq!(log.watermark(), w, "watermark is monotone across folds");
    }

    #[test]
    fn union_matches_builder_on_random_edits() {
        // Base: a small deterministic graph; edits: a scripted mix.
        let g = fixtures::two_components(3, 8);
        let log = DeltaLog::for_graph(&g);
        let mut b = DeltaBatch::new();
        b.add_edge(VertexId(0), VertexId(7))
            .add_edge(VertexId(4), VertexId(6))
            .remove_edge(VertexId(0), VertexId(1))
            .add_edge(VertexId(5), VertexId(3));
        log.apply(&g, &b).unwrap();
        let u = DeltaLog::union(&g, &log.current_view());
        // Rebuild the same union with the builder for comparison.
        let mut bld = GraphBuilder::directed();
        bld.reserve_vertices(g.num_vertices());
        for (s, d) in g.edges() {
            if (s.0, d.0) == (0, 1) {
                continue;
            }
            bld.add_edge(s, d);
        }
        bld.add_edge(VertexId(0), VertexId(7));
        bld.add_edge(VertexId(4), VertexId(6));
        bld.add_edge(VertexId(5), VertexId(3));
        let want = bld.build();
        for v in u.vertices() {
            assert_eq!(u.out_neighbors(v), want.out_neighbors(v), "out list of {v}");
            assert_eq!(u.in_neighbors(v), want.in_neighbors(v), "in list of {v}");
        }
    }

    #[test]
    fn snapshot_with_is_coherent_under_fold() {
        let g = fixtures::path(4);
        let log = DeltaLog::for_graph(&g);
        let mut b = DeltaBatch::new();
        b.add_edge(VertexId(0), VertexId(2));
        let w = log.apply(&g, &b).unwrap();
        let (gen, view) = log.snapshot_with(|| 7u32);
        assert_eq!(gen, 7);
        assert_eq!(view.degree_diff(VertexId(0), EdgeDir::Out), 1);
        log.fold(w, || {});
        let (_, view2) = log.snapshot_with(|| 8u32);
        assert!(view2.is_empty());
    }
}
