//! In-memory graph containers and deterministic generators.
//!
//! FlashGraph's external-memory image (crate `fg-format`) is built
//! from an in-memory graph; its in-memory execution mode reads edge
//! lists straight out of one. This crate provides that in-memory
//! representation — a compressed-sparse-row ([`Csr`]) per direction
//! wrapped in [`Graph`] — plus a [`GraphBuilder`] and the synthetic
//! workload generators used by the evaluation (R-MAT power-law
//! graphs standing in for the paper's Twitter/web crawls, plus
//! Erdős–Rényi and small fixture graphs for tests).
//!
//! # Example
//!
//! ```
//! use fg_graph::{GraphBuilder, gen};
//! use fg_types::VertexId;
//!
//! // A tiny directed triangle.
//! let mut b = GraphBuilder::directed();
//! b.add_edge(VertexId(0), VertexId(1));
//! b.add_edge(VertexId(1), VertexId(2));
//! b.add_edge(VertexId(2), VertexId(0));
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 3);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.out_neighbors(fg_types::VertexId(0)), &[fg_types::VertexId(1)]);
//!
//! // A deterministic power-law graph like the paper's datasets.
//! let rmat = gen::rmat(10, 8, gen::RmatSkew::default(), 42);
//! assert!(rmat.num_vertices() <= 1 << 10);
//! ```

mod builder;
mod csr;
mod delta;
pub mod fixtures;
pub mod gen;
mod io;
mod stats;

pub use builder::GraphBuilder;
pub use csr::{Csr, Graph};
pub use delta::{BaseLists, DeltaBatch, DeltaList, DeltaLog, DeltaOp, DeltaView};
pub use io::{read_edge_list, write_edge_list};
pub use stats::{degree_histogram, estimate_diameter, DegreeStats};
