//! Incremental construction of [`Graph`]s from edge streams.

use fg_types::VertexId;

use crate::csr::{Csr, Graph};

/// Accumulates edges and produces a [`Graph`].
///
/// The builder tolerates edges in any order, duplicate edges, and
/// self-loops; [`GraphBuilder::build`] sorts adjacency lists,
/// deduplicates parallel edges (keeping the first weight seen), and
/// drops self-loops unless [`GraphBuilder::keep_self_loops`] was
/// called. Real-world crawl datasets contain all three artifacts, so
/// ingestion must not choke on them.
///
/// # Example
///
/// ```
/// use fg_graph::GraphBuilder;
/// use fg_types::VertexId;
///
/// let mut b = GraphBuilder::undirected();
/// b.add_edge(VertexId(0), VertexId(2));
/// b.add_edge(VertexId(2), VertexId(0)); // duplicate in reverse: deduped
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    directed: bool,
    keep_self_loops: bool,
    weighted: bool,
    edges: Vec<(VertexId, VertexId, f32)>,
    max_vertex: Option<u32>,
}

impl GraphBuilder {
    /// A builder for a directed graph.
    pub fn directed() -> Self {
        Self::new(true)
    }

    /// A builder for an undirected graph.
    pub fn undirected() -> Self {
        Self::new(false)
    }

    fn new(directed: bool) -> Self {
        GraphBuilder {
            directed,
            keep_self_loops: false,
            weighted: false,
            edges: Vec::new(),
            max_vertex: None,
        }
    }

    /// Keeps self-loops instead of dropping them at build time.
    pub fn keep_self_loops(&mut self) -> &mut Self {
        self.keep_self_loops = true;
        self
    }

    /// Forces the vertex count to at least `n`, so isolated trailing
    /// vertices survive.
    pub fn reserve_vertices(&mut self, n: usize) -> &mut Self {
        if n > 0 {
            let hi = (n - 1) as u32;
            self.max_vertex = Some(self.max_vertex.map_or(hi, |m| m.max(hi)));
        }
        self
    }

    /// Adds an unweighted edge. The graph stays unweighted (no
    /// attribute sections in its on-SSD image) unless some edge is
    /// added through [`GraphBuilder::add_weighted_edge`].
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.push(src, dst, 1.0);
        self
    }

    /// Adds a weighted edge; the graph becomes weighted once any edge
    /// arrives via this method (unweighted-added edges then default to
    /// weight `1.0`).
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, w: f32) -> &mut Self {
        self.weighted = true;
        self.push(src, dst, w);
        self
    }

    fn push(&mut self, src: VertexId, dst: VertexId, w: f32) {
        self.edges.push((src, dst, w));
        let hi = src.0.max(dst.0);
        self.max_vertex = Some(self.max_vertex.map_or(hi, |m| m.max(hi)));
    }

    /// Adds every edge from an iterator of `(src, dst)` pairs.
    /// Unweighted like [`GraphBuilder::add_edge`] — it no longer
    /// clears the weighted flag, so mixing with
    /// [`GraphBuilder::add_weighted_edge`] keeps the graph weighted.
    pub fn extend_edges<I>(&mut self, iter: I) -> &mut Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (s, d) in iter {
            self.push(s, d, 1.0);
        }
        self
    }

    /// Number of raw (pre-dedup) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Builds the graph, consuming nothing (the builder can be reused
    /// after `clone`). Adjacency lists come out sorted by neighbour id
    /// with parallel edges deduplicated.
    pub fn build(&self) -> Graph {
        let n = self.max_vertex.map_or(0, |m| m as usize + 1);
        let mut fwd: Vec<(VertexId, VertexId, f32)> = Vec::with_capacity(self.edges.len());
        for &(s, d, w) in &self.edges {
            if s == d && !self.keep_self_loops {
                continue;
            }
            fwd.push((s, d, w));
            if !self.directed && s != d {
                fwd.push((d, s, w));
            } // self-loop kept: single symmetric entry
        }
        let out = csr_from_sorted(n, &mut fwd, self.weighted);
        if self.directed {
            let mut rev: Vec<(VertexId, VertexId, f32)> =
                fwd.iter().map(|&(s, d, w)| (d, s, w)).collect();
            let in_ = csr_from_sorted(n, &mut rev, self.weighted);
            // fwd was deduped inside csr_from_sorted; rebuild in-CSR
            // from the deduped out-CSR to keep edge counts equal.
            let in_ = if in_.num_edges() == out.num_edges() {
                in_
            } else {
                let mut rev: Vec<(VertexId, VertexId, f32)> = Vec::new();
                for v in 0..n {
                    let vid = VertexId::from_index(v);
                    let ws = out.weights_of(vid);
                    for (k, &d) in out.neighbors(vid).iter().enumerate() {
                        let w = ws.map(|w| w[k]).unwrap_or(1.0);
                        rev.push((d, vid, w));
                    }
                }
                csr_from_sorted(n, &mut rev, self.weighted)
            };
            Graph::from_csr(true, out, Some(in_)).expect("builder output consistent")
        } else {
            Graph::from_csr(false, out, None).expect("builder output consistent")
        }
    }
}

/// Sorts an edge triple list by `(src, dst)`, dedups, and packs a CSR.
fn csr_from_sorted(n: usize, edges: &mut Vec<(VertexId, VertexId, f32)>, weighted: bool) -> Csr {
    edges.sort_unstable_by_key(|&(s, d, _)| (s, d));
    edges.dedup_by_key(|&mut (s, d, _)| (s, d));
    let mut offsets = vec![0u64; n + 1];
    for &(s, _, _) in edges.iter() {
        offsets[s.index() + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let neighbors: Vec<VertexId> = edges.iter().map(|&(_, d, _)| d).collect();
    let weights = weighted.then(|| edges.iter().map(|&(_, _, w)| w).collect());
    Csr::from_parts(offsets, neighbors, weights).expect("constructed offsets are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_build_sorts_and_dedups() {
        let mut b = GraphBuilder::directed();
        b.add_edge(VertexId(2), VertexId(0));
        b.add_edge(VertexId(2), VertexId(0)); // dup
        b.add_edge(VertexId(2), VertexId(1));
        b.add_edge(VertexId(0), VertexId(2));
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(VertexId(2)), &[VertexId(0), VertexId(1)]);
        assert_eq!(g.in_neighbors(VertexId(0)), &[VertexId(2)]);
        assert_eq!(g.in_neighbors(VertexId(2)), &[VertexId(0)]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::directed();
        b.add_edge(VertexId(1), VertexId(1));
        b.add_edge(VertexId(0), VertexId(1));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_kept_on_request() {
        let mut b = GraphBuilder::directed();
        b.keep_self_loops();
        b.add_edge(VertexId(1), VertexId(1));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_neighbors(VertexId(1)), &[VertexId(1)]);
        assert_eq!(g.in_neighbors(VertexId(1)), &[VertexId(1)]);
    }

    #[test]
    fn undirected_symmetric() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(VertexId(0), VertexId(3));
        b.add_edge(VertexId(3), VertexId(1));
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(VertexId(3)), &[VertexId(0), VertexId(1)]);
        assert_eq!(g.out_neighbors(VertexId(0)), &[VertexId(3)]);
    }

    #[test]
    fn reserve_vertices_creates_isolated() {
        let mut b = GraphBuilder::directed();
        b.add_edge(VertexId(0), VertexId(1));
        b.reserve_vertices(10);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(VertexId(9)), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::directed().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn weights_preserved_through_build() {
        let mut b = GraphBuilder::directed();
        b.add_weighted_edge(VertexId(0), VertexId(1), 2.5);
        b.add_weighted_edge(VertexId(0), VertexId(2), 7.0);
        let g = b.build();
        assert!(g.has_weights());
        let w = g
            .csr(fg_types::EdgeDir::Out)
            .weights_of(VertexId(0))
            .unwrap();
        assert_eq!(w, &[2.5, 7.0]);
    }

    #[test]
    fn directed_in_out_edge_counts_match_with_dups() {
        let mut b = GraphBuilder::directed();
        // duplicates that dedup differently per direction ordering
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(1), VertexId(0));
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        let total_in: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        let total_out: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        assert_eq!(total_in, total_out);
    }

    #[test]
    fn extend_edges_bulk() {
        let mut b = GraphBuilder::directed();
        b.extend_edges((0..5u32).map(|i| (VertexId(i), VertexId(i + 1))));
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn undirected_self_loop_kept_single_entry() {
        let mut b = GraphBuilder::undirected();
        b.keep_self_loops();
        b.add_edge(VertexId(2), VertexId(2));
        let g = b.build();
        assert_eq!(g.out_neighbors(VertexId(2)), &[VertexId(2)]);
    }
}
