//! Compressed-sparse-row adjacency and the [`Graph`] container.

use fg_types::{EdgeDir, FgError, Result, VertexId};

/// One direction of adjacency in compressed-sparse-row form.
///
/// `offsets` has `n + 1` entries; the neighbours of vertex `v` are
/// `neighbors[offsets[v]..offsets[v + 1]]`, sorted by id. Optional
/// per-edge `weights` run parallel to `neighbors` — they model
/// FlashGraph's *edge attributes*, which the on-SSD format stores
/// separately from the edges themselves (§3.5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
    weights: Option<Vec<f32>>,
}

impl Csr {
    /// Builds a CSR from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::CorruptImage`] when the parts are
    /// inconsistent: `offsets` empty or not monotone, the last offset
    /// not equal to `neighbors.len()`, or `weights` of a different
    /// length than `neighbors`.
    pub fn from_parts(
        offsets: Vec<u64>,
        neighbors: Vec<VertexId>,
        weights: Option<Vec<f32>>,
    ) -> Result<Self> {
        if offsets.is_empty() {
            return Err(FgError::CorruptImage("csr offsets empty".into()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(FgError::CorruptImage("csr offsets not monotone".into()));
        }
        if *offsets.last().unwrap() != neighbors.len() as u64 {
            return Err(FgError::CorruptImage(format!(
                "csr last offset {} != neighbor count {}",
                offsets.last().unwrap(),
                neighbors.len()
            )));
        }
        if let Some(w) = &weights {
            if w.len() != neighbors.len() {
                return Err(FgError::CorruptImage(format!(
                    "csr weight count {} != neighbor count {}",
                    w.len(),
                    neighbors.len()
                )));
            }
        }
        Ok(Csr {
            offsets,
            neighbors,
            weights,
        })
    }

    /// An empty adjacency over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Csr {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            weights: None,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Degree of `v` in this direction.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Neighbour slice of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Weight slice parallel to [`Csr::neighbors`], if this graph has
    /// edge attributes.
    #[inline]
    pub fn weights_of(&self, v: VertexId) -> Option<&[f32]> {
        let w = self.weights.as_ref()?;
        let i = v.index();
        Some(&w[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Whether edge attributes are attached.
    #[inline]
    pub fn has_weights(&self) -> bool {
        self.weights.is_some()
    }

    /// The raw offset array (`n + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Iterates the per-vertex neighbour slices in id order — the
    /// shape the on-SSD image writer consumes (one block per vertex,
    /// so delta encoders see each sorted list whole instead of the
    /// flat [`Csr::neighbor_array`]).
    pub fn lists(&self) -> impl Iterator<Item = &[VertexId]> + '_ {
        self.offsets
            .windows(2)
            .map(|w| &self.neighbors[w[0] as usize..w[1] as usize])
    }

    /// Whether every adjacency list is sorted ascending — the
    /// invariant [`crate::GraphBuilder::build`] establishes and the
    /// image's delta-varint encoding depends on (gaps must be
    /// non-negative). Construction paths that bypass the builder can
    /// use this to validate before writing a compressed image.
    pub fn lists_sorted(&self) -> bool {
        self.lists().all(|l| l.windows(2).all(|w| w[0].0 <= w[1].0))
    }

    /// The raw neighbour array.
    #[inline]
    pub fn neighbor_array(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Heap bytes held by this CSR (used for memory-footprint rows in
    /// the evaluation tables).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
            + self
                .weights
                .as_ref()
                .map(|w| w.len() * std::mem::size_of::<f32>())
                .unwrap_or(0)
    }
}

/// An in-memory graph: out-adjacency always present, in-adjacency for
/// directed graphs.
///
/// Undirected graphs store each edge in both endpoints' lists of the
/// single (out) CSR, matching how FlashGraph stores an undirected
/// vertex's single edge list.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    directed: bool,
    out: Csr,
    in_: Option<Csr>,
}

impl Graph {
    /// Wraps CSR parts into a graph.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::CorruptImage`] if a directed graph's two
    /// CSRs disagree on vertex count or total edge count, or if an
    /// in-CSR is supplied for an undirected graph.
    pub fn from_csr(directed: bool, out: Csr, in_: Option<Csr>) -> Result<Self> {
        match (&in_, directed) {
            (Some(i), true) => {
                if i.num_vertices() != out.num_vertices() {
                    return Err(FgError::CorruptImage(format!(
                        "in/out vertex counts differ: {} vs {}",
                        i.num_vertices(),
                        out.num_vertices()
                    )));
                }
                if i.num_edges() != out.num_edges() {
                    return Err(FgError::CorruptImage(format!(
                        "in/out edge counts differ: {} vs {}",
                        i.num_edges(),
                        out.num_edges()
                    )));
                }
            }
            (None, true) => {
                return Err(FgError::CorruptImage(
                    "directed graph missing in-adjacency".into(),
                ))
            }
            (Some(_), false) => {
                return Err(FgError::CorruptImage(
                    "undirected graph must not carry a separate in-adjacency".into(),
                ))
            }
            (None, false) => {}
        }
        Ok(Graph { directed, out, in_ })
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of edges: directed edge count, or undirected edge count
    /// (each undirected edge counted once).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        if self.directed {
            self.out.num_edges()
        } else {
            self.out.num_edges() / 2
        }
    }

    /// The adjacency for `dir`.
    ///
    /// For undirected graphs every direction resolves to the single
    /// symmetric adjacency.
    ///
    /// # Panics
    ///
    /// Panics when asked for [`EdgeDir::Both`]; call once per single
    /// direction instead.
    #[inline]
    pub fn csr(&self, dir: EdgeDir) -> &Csr {
        if !self.directed {
            return &self.out;
        }
        match dir {
            EdgeDir::Out => &self.out,
            EdgeDir::In => self.in_.as_ref().expect("directed graph has in-adjacency"),
            EdgeDir::Both => panic!("csr(Both) is ambiguous; query one direction"),
        }
    }

    /// Out-neighbours of `v` (all neighbours for undirected graphs).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// In-neighbours of `v` (all neighbours for undirected graphs).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csr(EdgeDir::In).neighbors(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.csr(EdgeDir::In).degree(v)
    }

    /// Iterates over every vertex id.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterates over every directed edge `(src, dst)` of the out
    /// adjacency (for undirected graphs each edge appears twice, once
    /// per orientation).
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |src| self.out_neighbors(src).iter().map(move |&dst| (src, dst)))
    }

    /// Heap bytes held by the adjacency arrays.
    pub fn heap_bytes(&self) -> usize {
        self.out.heap_bytes() + self.in_.as_ref().map(Csr::heap_bytes).unwrap_or(0)
    }

    /// Whether the graph carries edge weights (attributes).
    pub fn has_weights(&self) -> bool {
        self.out.has_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_directed() -> Graph {
        // 0 -> 1, 0 -> 2, 2 -> 1
        let out = Csr::from_parts(
            vec![0, 2, 2, 3],
            vec![VertexId(1), VertexId(2), VertexId(1)],
            None,
        )
        .unwrap();
        let in_ = Csr::from_parts(
            vec![0, 0, 2, 3],
            vec![VertexId(0), VertexId(2), VertexId(0)],
            None,
        )
        .unwrap();
        Graph::from_csr(true, out, in_.into()).unwrap()
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = tiny_directed();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.in_degree(VertexId(1)), 2);
        assert_eq!(g.out_neighbors(VertexId(2)), &[VertexId(1)]);
        assert_eq!(g.in_neighbors(VertexId(2)), &[VertexId(0)]);
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = tiny_directed();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (VertexId(0), VertexId(1)),
                (VertexId(0), VertexId(2)),
                (VertexId(2), VertexId(1)),
            ]
        );
    }

    #[test]
    fn lists_iterate_per_vertex_slices() {
        let c = Csr::from_parts(
            vec![0, 2, 2, 3],
            vec![VertexId(1), VertexId(2), VertexId(0)],
            None,
        )
        .unwrap();
        let lists: Vec<Vec<u32>> = c.lists().map(|l| l.iter().map(|v| v.0).collect()).collect();
        assert_eq!(lists, vec![vec![1, 2], vec![], vec![0]]);
        assert!(c.lists_sorted());
        // An unsorted list is detected (image compression depends on it).
        let bad = Csr::from_parts(vec![0, 2], vec![VertexId(5), VertexId(3)], None).unwrap();
        assert!(!bad.lists_sorted());
    }

    #[test]
    fn csr_rejects_non_monotone_offsets() {
        let err = Csr::from_parts(vec![0, 2, 1], vec![VertexId(0), VertexId(1)], None);
        assert!(err.is_err());
    }

    #[test]
    fn csr_rejects_mismatched_total() {
        let err = Csr::from_parts(vec![0, 1], vec![], None);
        assert!(err.is_err());
    }

    #[test]
    fn csr_rejects_mismatched_weights() {
        let err = Csr::from_parts(vec![0, 1], vec![VertexId(0)], Some(vec![1.0, 2.0]));
        assert!(err.is_err());
    }

    #[test]
    fn graph_rejects_inconsistent_directions() {
        let out = Csr::from_parts(vec![0, 1], vec![VertexId(0)], None).unwrap();
        let in_ = Csr::from_parts(vec![0, 0, 0], vec![], None).unwrap();
        assert!(Graph::from_csr(true, out, Some(in_)).is_err());
    }

    #[test]
    fn directed_graph_requires_in_adjacency() {
        let out = Csr::from_parts(vec![0, 1], vec![VertexId(0)], None).unwrap();
        assert!(Graph::from_csr(true, out, None).is_err());
    }

    #[test]
    fn undirected_counts_each_edge_once() {
        // 0 -- 1 stored symmetrically.
        let sym = Csr::from_parts(vec![0, 1, 2], vec![VertexId(1), VertexId(0)], None).unwrap();
        let g = Graph::from_csr(false, sym, None).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.in_neighbors(VertexId(0)), g.out_neighbors(VertexId(0)));
    }

    #[test]
    fn weights_run_parallel_to_neighbors() {
        let out = Csr::from_parts(
            vec![0, 2, 2],
            vec![VertexId(0), VertexId(1)],
            Some(vec![0.5, 2.5]),
        )
        .unwrap();
        assert_eq!(out.weights_of(VertexId(0)), Some(&[0.5f32, 2.5][..]));
        assert_eq!(out.weights_of(VertexId(1)), Some(&[][..]));
    }

    #[test]
    fn heap_bytes_counts_arrays() {
        let g = tiny_directed();
        // 2 csrs, each 4 offsets (u64) + 3 neighbors (u32).
        assert_eq!(g.heap_bytes(), 2 * (4 * 8 + 3 * 4));
    }
}
