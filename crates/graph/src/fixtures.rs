//! Tiny hand-checkable graphs used across the workspace's tests.
//!
//! Every fixture documents its exact structure so tests can assert
//! against known answers (BFS levels, triangle counts, component
//! structure, ...).

use fg_types::VertexId;

use crate::builder::GraphBuilder;
use crate::csr::Graph;

/// A directed path `0 -> 1 -> ... -> n-1`.
///
/// BFS from 0 reaches vertex `i` at level `i`; diameter `n - 1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::directed();
    b.reserve_vertices(n);
    for i in 1..n {
        b.add_edge(VertexId((i - 1) as u32), VertexId(i as u32));
    }
    b.build()
}

/// A directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
///
/// Strongly connected; every vertex has in/out degree 1.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::directed();
    for i in 0..n {
        b.add_edge(VertexId(i as u32), VertexId(((i + 1) % n) as u32));
    }
    b.build()
}

/// An undirected star: center `0` joined to `1..=leaves`.
///
/// No triangles; scan statistic of the center is `leaves`.
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::undirected();
    b.reserve_vertices(leaves + 1);
    for i in 1..=leaves {
        b.add_edge(VertexId(0), VertexId(i as u32));
    }
    b.build()
}

/// An undirected complete graph on `n` vertices.
///
/// Contains `C(n, 3)` triangles; every vertex has degree `n - 1`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::undirected();
    b.reserve_vertices(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(VertexId(i as u32), VertexId(j as u32));
        }
    }
    b.build()
}

/// Two disjoint directed cycles: `0..k` and `k..n`.
///
/// Exactly two weakly connected components.
pub fn two_components(k: usize, n: usize) -> Graph {
    assert!(k >= 2 && n >= k + 2);
    let mut b = GraphBuilder::directed();
    for i in 0..k {
        b.add_edge(VertexId(i as u32), VertexId(((i + 1) % k) as u32));
    }
    for i in k..n {
        let next = if i + 1 == n { k } else { i + 1 };
        b.add_edge(VertexId(i as u32), VertexId(next as u32));
    }
    b.build()
}

/// The directed "diamond" used in betweenness tests:
///
/// ```text
///      1
///    /   \
///  0       3 -> 4
///    \   /
///      2
/// ```
///
/// Two shortest 0→3 paths (via 1 and via 2), so BC(1) = BC(2) = 0.5
/// from source 0 plus the dependency of 4: each gets 0.5 * (1 + 1)/2.
pub fn diamond() -> Graph {
    let mut b = GraphBuilder::directed();
    b.add_edge(VertexId(0), VertexId(1));
    b.add_edge(VertexId(0), VertexId(2));
    b.add_edge(VertexId(1), VertexId(3));
    b.add_edge(VertexId(2), VertexId(3));
    b.add_edge(VertexId(3), VertexId(4));
    b.build()
}

/// A weighted directed graph with a known shortest-path structure:
///
/// ```text
/// 0 -(1.0)-> 1 -(1.0)-> 2
/// 0 ---------(5.0)----> 2
/// 2 -(1.0)-> 3
/// ```
///
/// dist(0→2) = 2.0 through vertex 1, dist(0→3) = 3.0.
pub fn weighted_square() -> Graph {
    let mut b = GraphBuilder::directed();
    b.add_weighted_edge(VertexId(0), VertexId(1), 1.0);
    b.add_weighted_edge(VertexId(1), VertexId(2), 1.0);
    b.add_weighted_edge(VertexId(0), VertexId(2), 5.0);
    b.add_weighted_edge(VertexId(2), VertexId(3), 1.0);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(VertexId(4)), 0);
        assert_eq!(g.in_degree(VertexId(0)), 0);
    }

    #[test]
    fn cycle_degrees() {
        let g = cycle(6);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.out_degree(VertexId(0)), 7);
        for i in 1..=7u32 {
            assert_eq!(g.out_neighbors(VertexId(i)), &[VertexId(0)]);
        }
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 5);
        }
    }

    #[test]
    fn two_components_disjoint() {
        let g = two_components(3, 8);
        // no edge crosses the k boundary
        for (s, d) in g.edges() {
            assert_eq!(s.index() < 3, d.index() < 3);
        }
    }

    #[test]
    fn diamond_shape() {
        let g = diamond();
        assert_eq!(g.out_neighbors(VertexId(0)), &[VertexId(1), VertexId(2)]);
        assert_eq!(g.in_neighbors(VertexId(3)), &[VertexId(1), VertexId(2)]);
    }

    #[test]
    fn weighted_square_weights() {
        let g = weighted_square();
        assert!(g.has_weights());
        let w = g
            .csr(fg_types::EdgeDir::Out)
            .weights_of(VertexId(0))
            .unwrap();
        assert_eq!(w, &[1.0, 5.0]);
    }
}
