//! Degree statistics and diameter estimation for experiment tables.

use std::collections::VecDeque;

use fg_types::{EdgeDir, VertexId};

use crate::csr::Graph;

/// Summary degree statistics of one direction of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of vertices with degree zero.
    pub zeros: usize,
    /// Histogram over power-of-two buckets: `buckets[i]` counts
    /// vertices with degree in `[2^i, 2^(i+1))`; bucket 0 counts
    /// degree 1 (zeros are reported separately).
    pub log2_buckets: Vec<usize>,
}

/// Computes [`DegreeStats`] for `dir` of `g`.
///
/// # Example
///
/// ```
/// use fg_graph::{fixtures, degree_histogram};
/// use fg_types::EdgeDir;
///
/// let g = fixtures::star(8);
/// let s = degree_histogram(&g, EdgeDir::Out);
/// assert_eq!(s.max, 8);
/// assert_eq!(s.zeros, 0);
/// ```
pub fn degree_histogram(g: &Graph, dir: EdgeDir) -> DegreeStats {
    let csr = g.csr(dir);
    let n = g.num_vertices();
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut total = 0u64;
    let mut zeros = 0usize;
    let mut buckets: Vec<usize> = Vec::new();
    for v in g.vertices() {
        let d = csr.degree(v);
        min = min.min(d);
        max = max.max(d);
        total += d as u64;
        if d == 0 {
            zeros += 1;
            continue;
        }
        let b = usize::BITS as usize - 1 - d.leading_zeros() as usize;
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    DegreeStats {
        min: if n == 0 { 0 } else { min },
        max,
        mean: if n == 0 { 0.0 } else { total as f64 / n as f64 },
        zeros,
        log2_buckets: buckets,
    }
}

/// Estimates the diameter of `g` ignoring edge direction, the way
/// Table 1 of the paper reports diameters.
///
/// Uses the classic double-sweep lower bound: BFS from `probes` seed
/// vertices, then BFS again from the farthest vertex found, keeping
/// the largest eccentricity seen. Exact on trees and paths; a lower
/// bound elsewhere.
pub fn estimate_diameter(g: &Graph, probes: usize, seed: u64) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut best = 0usize;
    // Deterministic pseudo-random probe sequence (LCG) — avoids a rand
    // dependency here and keeps the estimate reproducible.
    let mut state = seed | 1;
    let mut next_probe = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % n
    };
    for _ in 0..probes.max(1) {
        let start = VertexId::from_index(next_probe());
        let (far, dist) = bfs_farthest_undirected(g, start);
        best = best.max(dist);
        let (_, dist2) = bfs_farthest_undirected(g, far);
        best = best.max(dist2);
    }
    best
}

/// BFS over the union of in- and out-edges; returns the farthest
/// reached vertex and its distance.
fn bfs_farthest_undirected(g: &Graph, start: VertexId) -> (VertexId, usize) {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut q = VecDeque::new();
    dist[start.index()] = 0;
    q.push_back(start);
    let mut far = (start, 0usize);
    while let Some(v) = q.pop_front() {
        let d = dist[v.index()];
        let mut visit = |u: VertexId| {
            if dist[u.index()] == u32::MAX {
                dist[u.index()] = d + 1;
                if (d + 1) as usize > far.1 {
                    far = (u, (d + 1) as usize);
                }
                q.push_back(u);
            }
        };
        for &u in g.out_neighbors(v) {
            visit(u);
        }
        if g.is_directed() {
            for &u in g.in_neighbors(v) {
                visit(u);
            }
        }
    }
    far
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn histogram_of_star() {
        let g = fixtures::star(8);
        let s = degree_histogram(&g, EdgeDir::Out);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 8);
        assert_eq!(s.zeros, 0);
        // 8 leaves of degree 1 in bucket 0; center (degree 8) in bucket 3.
        assert_eq!(s.log2_buckets[0], 8);
        assert_eq!(s.log2_buckets[3], 1);
    }

    #[test]
    fn histogram_counts_zeros() {
        let g = fixtures::path(4); // vertex 3 has out-degree 0
        let s = degree_histogram(&g, EdgeDir::Out);
        assert_eq!(s.zeros, 1);
        assert_eq!(s.mean, 3.0 / 4.0);
    }

    #[test]
    fn diameter_of_path_is_exact() {
        let g = fixtures::path(10);
        assert_eq!(estimate_diameter(&g, 2, 42), 9);
    }

    #[test]
    fn diameter_of_cycle_is_half() {
        let g = fixtures::cycle(10);
        // Undirected view of a 10-cycle has diameter 5.
        assert_eq!(estimate_diameter(&g, 4, 42), 5);
    }

    #[test]
    fn diameter_of_star_is_two() {
        let g = fixtures::star(20);
        assert_eq!(estimate_diameter(&g, 3, 1), 2);
    }

    #[test]
    fn diameter_empty_graph_is_zero() {
        let g = crate::builder::GraphBuilder::directed().build();
        assert_eq!(estimate_diameter(&g, 3, 1), 0);
    }

    #[test]
    fn histogram_sums_to_vertex_count() {
        let g = crate::gen::rmat(8, 4, crate::gen::RmatSkew::default(), 9);
        let s = degree_histogram(&g, EdgeDir::Out);
        let bucketed: usize = s.log2_buckets.iter().sum();
        assert_eq!(bucketed + s.zeros, g.num_vertices());
    }
}
