//! Property tests: any graph round-trips through the on-SSD image
//! (raw *and* delta-varint compressed), the compact index locates
//! every edge list exactly, the codec round-trips arbitrary sorted
//! lists with seekable skip tables, and the decoder survives
//! arbitrary corruption without panicking or reading out of bounds.

use fg_format::codec::{self, decode_list, encode_list, skip_entries, GapDecoder};
use fg_format::{
    load_index, read_list, required_capacity, required_capacity_with, write_image,
    write_image_with, ImageFormat, WriteOptions,
};
use fg_graph::GraphBuilder;
use fg_ssdsim::{ArrayConfig, SsdArray};
use fg_types::{EdgeDir, VertexId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (bool, Vec<(u32, u32)>)> {
    (
        any::<bool>(),
        prop::collection::vec((0u32..120, 0u32..120), 1..300),
    )
}

/// Arbitrary *sorted* neighbour lists spanning the codec's edge
/// cases: empty, single, duplicate-heavy, near-max ids, and
/// hub-sized. The base (offset) stretches some lists toward
/// `u32::MAX`; sorting makes any draw a valid adjacency list.
fn arb_sorted_list() -> impl Strategy<Value = Vec<u32>> {
    (
        prop_oneof![Just(0u32), Just(1u32 << 20), Just(u32::MAX - 4000),],
        prop::collection::vec(0u32..3000, 0..700),
    )
        .prop_map(|(base, mut v)| {
            for x in &mut v {
                *x += base;
            }
            v.sort_unstable();
            v
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn image_round_trips_any_graph((directed, edges) in arb_graph()) {
        let mut b = if directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        for &(s, d) in &edges {
            b.add_edge(VertexId(s), VertexId(d));
        }
        let g = b.build();
        let array =
            SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(&g)).unwrap();
        let meta = write_image(&g, &array).unwrap();
        prop_assert_eq!(meta.num_vertices as usize, g.num_vertices());
        prop_assert_eq!(meta.num_edges, g.num_edges());

        let (_, index) = load_index(&array).unwrap();
        let dirs: &[EdgeDir] = if directed {
            &[EdgeDir::Out, EdgeDir::In]
        } else {
            &[EdgeDir::Out]
        };
        for v in g.vertices() {
            for &dir in dirs {
                let want: Vec<u32> = g.csr(dir).neighbors(v).iter().map(|n| n.0).collect();
                let loc = index.locate(v, dir);
                prop_assert_eq!(loc.degree as usize, want.len());
                let mut got = Vec::new();
                if loc.bytes > 0 {
                    let mut buf = vec![0u8; loc.bytes as usize];
                    array.read(loc.offset, &mut buf).unwrap();
                    got = buf
                        .chunks_exact(4)
                        .map(|q| u32::from_le_bytes(q.try_into().unwrap()))
                        .collect();
                }
                prop_assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn edge_lists_are_densely_packed((directed, edges) in arb_graph()) {
        // Adjacent vertices' lists must touch: offset(v+1) ==
        // offset(v) + bytes(v). This is the invariant the paper's
        // offset recomputation relies on.
        let mut b = if directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        for &(s, d) in &edges {
            b.add_edge(VertexId(s), VertexId(d));
        }
        let g = b.build();
        let array =
            SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(&g)).unwrap();
        write_image(&g, &array).unwrap();
        let (_, index) = load_index(&array).unwrap();
        for v in 0..g.num_vertices().saturating_sub(1) {
            let cur = index.locate(VertexId::from_index(v), EdgeDir::Out);
            let next = index.locate(VertexId::from_index(v + 1), EdgeDir::Out);
            prop_assert_eq!(next.offset, cur.offset + cur.bytes);
        }
    }

    #[test]
    fn compressed_image_round_trips_any_graph(
        (directed, edges) in arb_graph(),
        k in 1u32..80,
    ) {
        // Same property as the raw round trip, but through the v2
        // writer at an arbitrary skip interval and the validating
        // reader (`read_list`) — blocks stay packed densely too.
        let mut b = if directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        for &(s, d) in &edges {
            b.add_edge(VertexId(s), VertexId(d));
        }
        let g = b.build();
        let opts = WriteOptions::compressed().with_skip_interval(k);
        let array =
            SsdArray::new_mem(ArrayConfig::small_test(), required_capacity_with(&g, &opts))
                .unwrap();
        let meta = write_image_with(&g, &array, &opts).unwrap();
        prop_assert_eq!(meta.format, ImageFormat::Compressed);
        prop_assert_eq!(meta.skip_interval, k);
        let (meta, index) = load_index(&array).unwrap();
        let dirs: &[EdgeDir] = if directed {
            &[EdgeDir::Out, EdgeDir::In]
        } else {
            &[EdgeDir::Out]
        };
        for v in g.vertices() {
            for &dir in dirs {
                let want: Vec<u32> = g.csr(dir).neighbors(v).iter().map(|n| n.0).collect();
                prop_assert_eq!(read_list(&array, &meta, &index, v, dir).unwrap(), want);
            }
        }
        for v in 0..g.num_vertices().saturating_sub(1) {
            let cur = index.locate(VertexId::from_index(v), EdgeDir::Out);
            let next = index.locate(VertexId::from_index(v + 1), EdgeDir::Out);
            prop_assert_eq!(next.offset, cur.offset + cur.bytes);
        }
    }

    #[test]
    fn codec_round_trips_arbitrary_sorted_lists(
        list in arb_sorted_list(),
        k in 1u32..80,
    ) {
        let mut block = Vec::new();
        if encode_list(&list, k, &mut block) {
            // Strictly smaller than raw, and decode is exact.
            prop_assert!(block.len() < list.len() * 4);
            prop_assert_eq!(decode_list(&block, list.len() as u64, k).unwrap(), list);
        } else {
            // Raw fallback (tiny or incompressible list): the buffer
            // is untouched, and the raw 4-byte layout is trivially
            // exact — nothing further to decode.
            prop_assert!(block.is_empty());
        }
    }

    #[test]
    fn skip_entries_seek_within_k_of_any_position(
        list in arb_sorted_list(),
        k in 1u32..80,
        pos_seed in 0u64..1 << 30,
    ) {
        let mut block = Vec::new();
        if !encode_list(&list, k, &mut block) {
            return Ok(());
        }
        let d = list.len() as u64;
        let n_skips = skip_entries(d, k);
        let pos = pos_seed % d;
        // The restart at or before `pos` is at most k - 1 edges back,
        // and decoding from its skip-table offset reaches `pos`
        // reproducing the original values.
        let m0 = pos / k as u64;
        prop_assert!((pos - m0 * k as u64) < (k as u64));
        let payload = &block[(n_skips * 4) as usize..];
        let entry_off = if m0 == 0 {
            0
        } else {
            let e = (m0 - 1) as usize * 4;
            u32::from_le_bytes(block[e..e + 4].try_into().unwrap()) as usize
        };
        let mut at = entry_off;
        let mut gaps = GapDecoder::new(m0 * k as u64, k);
        let mut last = 0u32;
        for _ in 0..=(pos - m0 * k as u64) {
            let raw = codec::read_varint(&mut || {
                let b = payload.get(at).copied();
                at += 1;
                b
            })
            .unwrap();
            last = gaps.step(raw).unwrap();
        }
        prop_assert_eq!(last, list[pos as usize]);
    }

    #[test]
    fn decoder_survives_arbitrary_corruption(
        list in arb_sorted_list(),
        k in 1u32..80,
        flip_seed in 0u64..1 << 30,
        cut_seed in 0u64..1 << 30,
    ) {
        // Truncations and bit flips anywhere in a compressed block
        // must yield `Err` or a *different valid* list — never a
        // panic, never an out-of-bounds read (decode_list only ever
        // indexes its input slice).
        let mut block = Vec::new();
        if !encode_list(&list, k, &mut block) {
            return Ok(());
        }
        let d = list.len() as u64;
        // Truncation always fails (payload length is validated).
        let cut = (cut_seed % block.len() as u64) as usize;
        prop_assert!(decode_list(&block[..cut], d, k).is_err());
        // A single bit flip: clean error or a different list.
        let mut flipped = block.clone();
        let byte = (flip_seed % block.len() as u64) as usize;
        let bit = (flip_seed / block.len() as u64) % 8;
        flipped[byte] ^= 1 << bit;
        match decode_list(&flipped, d, k) {
            Err(_) => {}
            Ok(other) => prop_assert_ne!(other, list),
        }
        // Over-long varints are rejected: a payload of continuation
        // bytes can never decode.
        let n_skips = (skip_entries(d, k) * 4) as usize;
        let mut overlong = block.clone();
        for b in overlong[n_skips..].iter_mut().take(6) {
            *b = 0x80;
        }
        prop_assert!(decode_list(&overlong, d, k).is_err());
    }

    #[test]
    fn corrupt_compressed_sections_never_panic_at_read(
        (directed, edges) in arb_graph(),
        victim_seed in 0u64..1 << 30,
    ) {
        // Image-level fuzz next to `bad_magic`/`truncated_image`:
        // flip a byte inside the out-edge section of a compressed
        // image and read every list back — `read_list` must return
        // (Ok or Err), never panic, for every vertex.
        let mut b = if directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        for &(s, d) in &edges {
            b.add_edge(VertexId(s), VertexId(d));
        }
        let g = b.build();
        let opts = WriteOptions::compressed().with_skip_interval(4);
        let array =
            SsdArray::new_mem(ArrayConfig::small_test(), required_capacity_with(&g, &opts))
                .unwrap();
        write_image_with(&g, &array, &opts).unwrap();
        let (meta, index) = load_index(&array).unwrap();
        let section = meta.total_bytes - meta.out_edges_offset;
        if section == 0 {
            return Ok(());
        }
        let at = meta.out_edges_offset + victim_seed % section;
        let mut byte = [0u8; 1];
        array.read(at, &mut byte).unwrap();
        byte[0] ^= 0x41;
        array.write(at, &byte).unwrap();
        for v in g.vertices() {
            // Any outcome but a panic is acceptable; corrupt bytes
            // must surface as CorruptImage, not as wild reads.
            let _ = read_list(&array, &meta, &index, v, EdgeDir::Out);
            let _ = read_list(&array, &meta, &index, v, EdgeDir::In);
        }
    }
}
