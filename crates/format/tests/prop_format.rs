//! Property tests: any graph round-trips through the on-SSD image,
//! and the compact index locates every edge list exactly.

use fg_format::{load_index, required_capacity, write_image};
use fg_graph::GraphBuilder;
use fg_ssdsim::{ArrayConfig, SsdArray};
use fg_types::{EdgeDir, VertexId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (bool, Vec<(u32, u32)>)> {
    (
        any::<bool>(),
        prop::collection::vec((0u32..120, 0u32..120), 1..300),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn image_round_trips_any_graph((directed, edges) in arb_graph()) {
        let mut b = if directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        for &(s, d) in &edges {
            b.add_edge(VertexId(s), VertexId(d));
        }
        let g = b.build();
        let array =
            SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(&g)).unwrap();
        let meta = write_image(&g, &array).unwrap();
        prop_assert_eq!(meta.num_vertices as usize, g.num_vertices());
        prop_assert_eq!(meta.num_edges, g.num_edges());

        let (_, index) = load_index(&array).unwrap();
        let dirs: &[EdgeDir] = if directed {
            &[EdgeDir::Out, EdgeDir::In]
        } else {
            &[EdgeDir::Out]
        };
        for v in g.vertices() {
            for &dir in dirs {
                let want: Vec<u32> = g.csr(dir).neighbors(v).iter().map(|n| n.0).collect();
                let loc = index.locate(v, dir);
                prop_assert_eq!(loc.degree as usize, want.len());
                let mut got = Vec::new();
                if loc.bytes > 0 {
                    let mut buf = vec![0u8; loc.bytes as usize];
                    array.read(loc.offset, &mut buf).unwrap();
                    got = buf
                        .chunks_exact(4)
                        .map(|q| u32::from_le_bytes(q.try_into().unwrap()))
                        .collect();
                }
                prop_assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn edge_lists_are_densely_packed((directed, edges) in arb_graph()) {
        // Adjacent vertices' lists must touch: offset(v+1) ==
        // offset(v) + bytes(v). This is the invariant the paper's
        // offset recomputation relies on.
        let mut b = if directed {
            GraphBuilder::directed()
        } else {
            GraphBuilder::undirected()
        };
        for &(s, d) in &edges {
            b.add_edge(VertexId(s), VertexId(d));
        }
        let g = b.build();
        let array =
            SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(&g)).unwrap();
        write_image(&g, &array).unwrap();
        let (_, index) = load_index(&array).unwrap();
        for v in 0..g.num_vertices().saturating_sub(1) {
            let cur = index.locate(VertexId::from_index(v), EdgeDir::Out);
            let next = index.locate(VertexId::from_index(v + 1), EdgeDir::Out);
            prop_assert_eq!(next.offset, cur.offset + cur.bytes);
        }
    }
}
