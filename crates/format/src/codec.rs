//! Delta-varint edge-list compression for the v2 on-SSD image.
//!
//! Real-world adjacency lists are sorted runs of nearby ids, so the
//! gaps between consecutive neighbours are small; storing each gap as
//! an LEB128 varint shrinks most lists to 40–60 % of their raw
//! `u32`-per-edge size — and since SSD throughput, not CPU, bounds
//! semi-external execution (§3.5 stores the graph compactly for
//! exactly this reason), fewer on-device bytes translate directly
//! into faster iterations.
//!
//! # Block layout
//!
//! A *compressed block* for a list of `d` edges with skip interval
//! `k` is:
//!
//! ```text
//! [ skip table ] skip_entries(d, k) × u32 LE payload offsets
//! [ payload    ] d varints
//! ```
//!
//! The payload is a gap stream with *restarts*: the varint at list
//! position `0` and at every position `m·k` holds the neighbour id
//! itself (absolute); every other position holds the gap from its
//! predecessor (`>= 0`; duplicate neighbours encode as gap `0`).
//! Skip-table entry `m - 1` holds the payload byte offset of the
//! restart at position `m·k`, so a reader can begin decoding at any
//! restart without touching the preceding bytes — that is what lets
//! [`crate::GraphIndex::locate_slice`] resolve a *byte subrange* for
//! a ranged or chunked hub request instead of fetching the whole
//! list.
//!
//! A *raw block* is the v1 layout unchanged: `d` little-endian
//! `u32`s. The encoder falls back to raw for tiny lists (varint
//! framing cannot win below [`TINY_RAW_DEGREE`] edges) and for
//! incompressible lists (worst-case varints are 5 bytes/edge); which
//! encoding a vertex got is recorded in the image's per-vertex length
//! table via [`RAW_LIST_FLAG`], never guessed. Weighted images force
//! every block raw so attribute runs stay positionally aligned with
//! their edges.

use fg_types::{FgError, Result};

/// Top bit of a per-vertex block-length entry: set when the block is
/// raw (4 bytes/edge), clear when it is a compressed block.
pub const RAW_LIST_FLAG: u32 = 1 << 31;

/// Lists below this many edges are always written raw: a varint
/// stream cannot beat 4 bytes/edge by enough to matter, and raw keeps
/// their decode free.
pub const TINY_RAW_DEGREE: usize = 4;

/// Default restart/skip interval in edges — one skip-table entry (4
/// bytes) per this many edges. Mirrors the index's
/// [`crate::CHECKPOINT_INTERVAL`]: fine enough that a ranged hub
/// request over-reads less than one interval per end, coarse enough
/// that the table stays a small fraction of the payload.
pub const DEFAULT_SKIP_INTERVAL: u32 = 32;

/// Number of skip-table entries for a list of `degree` edges at
/// interval `k` — one per restart position `k, 2k, ...` strictly
/// inside the list.
#[inline]
pub fn skip_entries(degree: u64, k: u32) -> u64 {
    debug_assert!(k > 0, "skip interval must be positive");
    degree.saturating_sub(1) / k as u64
}

/// Appends `v` as an LEB128 varint (1–5 bytes).
#[inline]
pub fn push_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 `u32` from `next`, which yields successive bytes
/// (or `None` at end of data). Returns `None` on truncation, on a
/// varint longer than 5 bytes, and on a 5-byte varint whose high bits
/// overflow 32 bits — the over-long encodings the robustness tests
/// feed in.
#[inline]
pub fn read_varint(next: &mut impl FnMut() -> Option<u8>) -> Option<u32> {
    let mut v: u32 = 0;
    for i in 0..5 {
        let b = next()?;
        let payload = (b & 0x7F) as u32;
        if i == 4 && payload > 0x0F {
            return None; // bits 32+ set: not a u32
        }
        v |= payload << (7 * i);
        if b & 0x80 == 0 {
            return Some(v);
        }
    }
    None // continuation bit still set after 5 bytes
}

/// Incremental gap-stream value reconstruction: feed it each decoded
/// varint in payload order and it returns the neighbour id at that
/// position, handling absolute restarts at multiples of `k`.
///
/// `new(stream_pos, k)` starts at full-list position `stream_pos`,
/// which must be a restart position (0 or a multiple of `k`) — the
/// only places a reader may enter the stream.
#[derive(Debug, Clone, Copy)]
pub struct GapDecoder {
    pos: u64,
    prev: u32,
    k: u32,
}

impl GapDecoder {
    /// A decoder entering the stream at restart position `stream_pos`.
    #[inline]
    pub fn new(stream_pos: u64, k: u32) -> Self {
        debug_assert!(k > 0, "skip interval must be positive");
        debug_assert_eq!(
            stream_pos % k as u64,
            0,
            "stream entry must be a restart position"
        );
        GapDecoder {
            pos: stream_pos,
            prev: 0,
            k,
        }
    }

    /// Absorbs the varint decoded at the current position and returns
    /// the neighbour id there; `None` when a gap overflows the id
    /// space (corrupt data — ids are `u32`).
    #[inline]
    pub fn step(&mut self, raw: u32) -> Option<u32> {
        let value = if self.pos.is_multiple_of(self.k as u64) {
            raw
        } else {
            self.prev.checked_add(raw)?
        };
        self.pos += 1;
        self.prev = value;
        Some(value)
    }
}

/// Encodes `list` (sorted ascending, duplicates allowed) as a
/// compressed block — skip table then restart-gap payload — appended
/// to `out`. Returns `false` without touching `out` when the list
/// should stay raw: fewer than [`TINY_RAW_DEGREE`] edges, or a
/// compressed block at least as large as the raw 4 bytes/edge.
///
/// # Panics
///
/// Panics (debug) if `list` is not sorted or `k` is zero.
pub fn encode_list(list: &[u32], k: u32, out: &mut Vec<u8>) -> bool {
    assert!(k > 0, "skip interval must be positive");
    debug_assert!(
        list.windows(2).all(|w| w[0] <= w[1]),
        "edge lists must be sorted before delta encoding"
    );
    if list.len() < TINY_RAW_DEGREE {
        return false;
    }
    let n_skips = skip_entries(list.len() as u64, k) as usize;
    let raw_bytes = list.len() * 4;
    let start = out.len();
    // Reserve the skip table; entries are patched as restarts are
    // reached during the single payload pass.
    out.resize(start + n_skips * 4, 0);
    let payload_base = out.len();
    let mut prev = 0u32;
    for (i, &v) in list.iter().enumerate() {
        if i % k as usize == 0 {
            if i > 0 {
                let entry = i / k as usize - 1;
                let off = (out.len() - payload_base) as u32;
                out[start + entry * 4..start + entry * 4 + 4].copy_from_slice(&off.to_le_bytes());
            }
            push_varint(out, v);
        } else {
            push_varint(out, v - prev);
        }
        prev = v;
        if out.len() - start >= raw_bytes {
            out.truncate(start);
            return false; // incompressible: keep raw
        }
    }
    true
}

/// Fully validates and decodes one compressed block of `degree`
/// edges.
///
/// This is the fallible decode surface: it never panics and never
/// reads outside `block`, making it the oracle for the corrupt-image
/// robustness tests (truncated sections, bit flips, over-long
/// varints). The engine's hot path decodes the same stream
/// incrementally inside `PageVertex` without materialising a vector.
///
/// # Errors
///
/// [`FgError::CorruptImage`] when the skip table does not fit the
/// block, its offsets are not monotone or point outside the payload
/// or at non-restart bytes, a varint is truncated or over-long, a gap
/// overflows the id space, the list comes out unsorted, or the
/// payload length does not match `degree` exactly.
pub fn decode_list(block: &[u8], degree: u64, k: u32) -> Result<Vec<u32>> {
    if k == 0 {
        return Err(FgError::CorruptImage("zero skip interval".into()));
    }
    let n_skips = skip_entries(degree, k) as usize;
    let table_bytes = n_skips.checked_mul(4).filter(|&t| t <= block.len());
    let Some(table_bytes) = table_bytes else {
        return Err(FgError::CorruptImage(format!(
            "skip table of {n_skips} entries exceeds {}-byte block",
            block.len()
        )));
    };
    let payload = &block[table_bytes..];
    let mut skips = Vec::with_capacity(n_skips);
    for e in 0..n_skips {
        let off = u32::from_le_bytes(block[e * 4..e * 4 + 4].try_into().unwrap()) as usize;
        if off >= payload.len() || skips.last().is_some_and(|&p| off <= p) {
            return Err(FgError::CorruptImage(format!(
                "skip entry {e} offset {off} not monotone within {}-byte payload",
                payload.len()
            )));
        }
        skips.push(off);
    }
    let mut at = 0usize;
    let next = |at: &mut usize| -> Option<u8> {
        let b = payload.get(*at).copied();
        *at += 1;
        b
    };
    let mut gaps = GapDecoder::new(0, k);
    let mut list = Vec::with_capacity(degree as usize);
    for i in 0..degree {
        if i > 0 && i % k as u64 == 0 {
            let want = skips[(i / k as u64 - 1) as usize];
            if at != want {
                return Err(FgError::CorruptImage(format!(
                    "restart at position {i} lies at payload byte {at}, skip table says {want}"
                )));
            }
        }
        let raw = read_varint(&mut || next(&mut at)).ok_or_else(|| {
            FgError::CorruptImage(format!("truncated or over-long varint at position {i}"))
        })?;
        let v = gaps
            .step(raw)
            .ok_or_else(|| FgError::CorruptImage(format!("gap overflow at position {i}")))?;
        if list.last().is_some_and(|&p| v < p) {
            return Err(FgError::CorruptImage(format!(
                "decoded list unsorted at position {i}"
            )));
        }
        list.push(v);
    }
    if at != payload.len() {
        return Err(FgError::CorruptImage(format!(
            "payload holds {} bytes, decode consumed {at}",
            payload.len()
        )));
    }
    Ok(list)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(list: &[u32], k: u32) -> Vec<u8> {
        let mut block = Vec::new();
        assert!(encode_list(list, k, &mut block), "list should compress");
        assert_eq!(decode_list(&block, list.len() as u64, k).unwrap(), list);
        block
    }

    #[test]
    fn varint_round_trips_boundary_values() {
        for v in [0u32, 1, 127, 128, 16383, 16384, u32::MAX - 1, u32::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert!(buf.len() <= 5);
            let mut it = buf.iter().copied();
            assert_eq!(read_varint(&mut || it.next()), Some(v), "value {v}");
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        // Truncated: continuation bit with no next byte.
        let mut it = [0x80u8].iter().copied();
        assert_eq!(read_varint(&mut || it.next()), None);
        // Over-long: 5 continuation bytes.
        let mut it = [0x80u8, 0x80, 0x80, 0x80, 0x80].iter().copied();
        assert_eq!(read_varint(&mut || it.next()), None);
        // 5th byte with bits above u32: 0xFF ends the varint but
        // carries payload 0x7F > 0x0F.
        let mut it = [0x80u8, 0x80, 0x80, 0x80, 0x7F].iter().copied();
        assert_eq!(read_varint(&mut || it.next()), None);
    }

    #[test]
    fn gap_stream_round_trips() {
        let list: Vec<u32> = (0..200u32).map(|i| i * 7 + (i % 7)).collect();
        let block = round_trip(&list, 16);
        assert!(block.len() < list.len() * 4, "gaps of ~7 must compress");
    }

    #[test]
    fn duplicates_and_max_ids_round_trip() {
        let list = vec![5, 5, 5, 9, 9, u32::MAX - 1, u32::MAX, u32::MAX];
        round_trip(&list, 4);
    }

    #[test]
    fn tiny_lists_stay_raw() {
        let mut out = Vec::new();
        assert!(!encode_list(&[1, 2, 3], 32, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn incompressible_lists_fall_back_to_raw() {
        // Gaps near 2^29 need 5-byte varints: worse than raw.
        let list: Vec<u32> = (0..8u32).map(|i| i << 29).collect();
        let mut out = Vec::new();
        out.push(0xEE); // pre-existing bytes must survive the rollback
        assert!(!encode_list(&list, 32, &mut out));
        assert_eq!(out, vec![0xEE]);
    }

    #[test]
    fn skip_table_counts_restarts() {
        assert_eq!(skip_entries(0, 32), 0);
        assert_eq!(skip_entries(32, 32), 0); // positions 0..32: no restart inside
        assert_eq!(skip_entries(33, 32), 1);
        assert_eq!(skip_entries(65, 32), 2);
    }

    #[test]
    fn skip_entries_land_on_decodable_restarts() {
        let list: Vec<u32> = (0..100u32).map(|i| i * 2).collect();
        let k = 8u32;
        let mut block = Vec::new();
        assert!(encode_list(&list, k, &mut block));
        let n_skips = skip_entries(list.len() as u64, k) as usize;
        let payload = &block[n_skips * 4..];
        for m in 1..=n_skips {
            let off = u32::from_le_bytes(block[(m - 1) * 4..m * 4].try_into().unwrap()) as usize;
            // Decoding from the restart reproduces the list's tail.
            let mut at = off;
            let mut gaps = GapDecoder::new((m * k as usize) as u64, k);
            let mut got = Vec::new();
            while got.len() < list.len() - m * k as usize {
                let raw = read_varint(&mut || {
                    let b = payload.get(at).copied();
                    at += 1;
                    b
                })
                .unwrap();
                got.push(gaps.step(raw).unwrap());
            }
            assert_eq!(got, &list[m * k as usize..], "restart {m}");
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let list: Vec<u32> = (0..64u32).map(|i| i * 5).collect();
        let mut block = Vec::new();
        assert!(encode_list(&list, 8, &mut block));
        let d = list.len() as u64;
        // Truncation anywhere must error, never panic.
        for cut in 0..block.len() {
            assert!(decode_list(&block[..cut], d, 8).is_err(), "cut {cut}");
        }
        // Wrong degree: payload length mismatch.
        assert!(decode_list(&block, d - 1, 8).is_err());
        assert!(decode_list(&block, d + 1, 8).is_err());
    }
}
