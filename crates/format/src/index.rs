//! The compact in-memory graph index (§3.5.1 of the paper).

use std::collections::HashMap;

use fg_types::{EdgeDir, VertexId};

use crate::codec::{skip_entries, RAW_LIST_FLAG};

/// Degrees at or above this value overflow into a hash table; the
/// per-vertex byte then holds [`u8::MAX`] as a sentinel. Real-world
/// power-law graphs put only a tiny fraction of vertices there.
pub const LARGE_DEGREE: u64 = 255;

/// An explicit byte offset is stored once per this many vertices; the
/// paper found 32 makes the recomputation overhead "almost
/// unnoticeable while the amortized memory overhead is small".
pub const CHECKPOINT_INTERVAL: usize = 32;

/// Location of one vertex's edge list inside the on-SSD image.
///
/// For raw (v1) images `bytes` is always `4 * degree`. For compressed
/// (v2) images it is the vertex's *block* length — codec framing
/// included — and `degree` still counts edges, so the two fields are
/// no longer proportional; code that needs to know how a fetched
/// range decodes uses [`GraphIndex::locate_slice`], which pairs the
/// location with a [`SliceDecode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeListLoc {
    /// Absolute byte offset of the first edge.
    pub offset: u64,
    /// Length in bytes of the edge list.
    pub bytes: u64,
    /// Number of edges in the list.
    pub degree: u64,
}

/// How the bytes of a located slice turn back into neighbour ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceDecode {
    /// Little-endian `u32` per edge; byte `4 * i` starts edge `i`.
    Raw,
    /// A delta-varint stream (see [`crate::codec`]); decoding starts
    /// at a restart point and skips forward to the requested range.
    Varint(VarintSlice),
}

/// Decode parameters for one varint-compressed slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarintSlice {
    /// Bytes of skip-table framing at the start of the fetched range
    /// (non-zero only for whole-block fetches).
    pub header_bytes: u32,
    /// Full-list position of the first varint after the header —
    /// always a restart position, so decoding may begin there.
    pub stream_pos: u64,
    /// Edges to decode and discard before the delivered range starts.
    pub skip: u64,
    /// Restart interval `k` the block was encoded with.
    pub k: u32,
}

/// A located slice: the device byte range to fetch plus how to decode
/// it. `loc.degree` counts the edges the slice *delivers* (after the
/// decoder's skip), which is what request accounting uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListSlice {
    /// Byte range on the device.
    pub loc: EdgeListLoc,
    /// Decode recipe for the fetched bytes.
    pub decode: SliceDecode,
}

/// Compressed-image per-direction extension: on-disk block lengths
/// (offsets are no longer `4 * degree` sums) and the payload skip
/// tables of hub lists.
#[derive(Debug, Clone, Default)]
struct PackedDir {
    /// Per-vertex block length in bytes; top bit ([`RAW_LIST_FLAG`])
    /// marks a raw-encoded block.
    blocks: Vec<u32>,
    /// Payload-relative restart offsets of large-degree compressed
    /// lists (entry `m - 1` = byte offset of the restart at position
    /// `m * k`), keyed by vertex id. Loaded at init so ranged hub
    /// requests resolve byte subranges without reading a prefix.
    skips: HashMap<u32, Box<[u32]>>,
}

/// Per-direction compact index: degrees + sparse offset checkpoints.
#[derive(Debug, Clone)]
struct DirIndex {
    /// One byte per vertex; `u8::MAX` redirects to `large`.
    small_degrees: Vec<u8>,
    /// Degrees of vertices with degree >= [`LARGE_DEGREE`].
    large: HashMap<u32, u64>,
    /// Absolute byte offset of the edge list of vertex
    /// `i * CHECKPOINT_INTERVAL`.
    checkpoints: Vec<u64>,
    /// Start of this direction's attribute section, if weighted.
    attr_base: Option<u64>,
    /// Start of this direction's edge section (for attr offset math).
    edge_base: u64,
    /// Compressed-image extension; `None` for raw images, where block
    /// length is always `degree * edge_width`.
    packed: Option<PackedDir>,
}

impl DirIndex {
    fn build(degrees: &[u64], edge_base: u64, attr_base: Option<u64>, edge_width: u64) -> Self {
        Self::build_inner(degrees, edge_base, attr_base, |_, d| d * edge_width)
    }

    fn build_packed(
        degrees: &[u64],
        blocks: Vec<u32>,
        skips: HashMap<u32, Box<[u32]>>,
        edge_base: u64,
        attr_base: Option<u64>,
    ) -> Self {
        assert_eq!(
            degrees.len(),
            blocks.len(),
            "one block length per vertex required"
        );
        let packed = PackedDir { blocks, skips };
        let mut built = Self::build_inner(degrees, edge_base, attr_base, |i, _| {
            (packed.blocks[i] & !RAW_LIST_FLAG) as u64
        });
        built.packed = Some(packed);
        built
    }

    fn build_inner(
        degrees: &[u64],
        edge_base: u64,
        attr_base: Option<u64>,
        block_len: impl Fn(usize, u64) -> u64,
    ) -> Self {
        let mut small_degrees = Vec::with_capacity(degrees.len());
        let mut large = HashMap::new();
        let mut checkpoints =
            Vec::with_capacity(degrees.len().div_ceil(CHECKPOINT_INTERVAL).max(1));
        let mut offset = edge_base;
        for (i, &d) in degrees.iter().enumerate() {
            if i % CHECKPOINT_INTERVAL == 0 {
                checkpoints.push(offset);
            }
            if d >= LARGE_DEGREE {
                small_degrees.push(u8::MAX);
                large.insert(i as u32, d);
            } else {
                small_degrees.push(d as u8);
            }
            offset += block_len(i, d);
        }
        if degrees.is_empty() {
            checkpoints.push(edge_base);
        }
        DirIndex {
            small_degrees,
            large,
            checkpoints,
            attr_base,
            edge_base,
            packed: None,
        }
    }

    #[inline]
    fn degree(&self, v: VertexId) -> u64 {
        let b = self.small_degrees[v.index()];
        if b == u8::MAX {
            self.large[&v.0]
        } else {
            b as u64
        }
    }

    /// On-disk block length of `v`'s list in bytes.
    #[inline]
    fn block_bytes(&self, v: VertexId, edge_width: u64) -> u64 {
        match &self.packed {
            Some(p) => (p.blocks[v.index()] & !RAW_LIST_FLAG) as u64,
            None => self.degree(v) * edge_width,
        }
    }

    /// Whether `v`'s block is raw-encoded (always true on raw images).
    #[inline]
    fn is_raw(&self, v: VertexId) -> bool {
        match &self.packed {
            Some(p) => p.blocks[v.index()] & RAW_LIST_FLAG != 0,
            None => true,
        }
    }

    fn locate(&self, v: VertexId, edge_width: u64) -> EdgeListLoc {
        let i = v.index();
        let cp = i / CHECKPOINT_INTERVAL;
        let mut offset = self.checkpoints[cp];
        for j in (cp * CHECKPOINT_INTERVAL)..i {
            offset += self.block_bytes(VertexId::from_index(j), edge_width);
        }
        EdgeListLoc {
            offset,
            bytes: self.block_bytes(v, edge_width),
            degree: self.degree(v),
        }
    }

    fn heap_bytes(&self) -> usize {
        let packed = match &self.packed {
            Some(p) => {
                p.blocks.len() * std::mem::size_of::<u32>()
                    + p.skips
                        .values()
                        .map(|t| {
                            std::mem::size_of::<u32>() * (t.len() + 1)
                                + std::mem::size_of::<usize>()
                        })
                        .sum::<usize>()
            }
            None => 0,
        };
        self.small_degrees.len()
            + self.large.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<u64>())
            + self.checkpoints.len() * std::mem::size_of::<u64>()
            + packed
    }
}

/// Per-direction inputs for [`GraphIndex::build_packed`].
pub struct PackedDirInput<'a> {
    /// Per-vertex degrees.
    pub degrees: &'a [u64],
    /// Per-vertex block lengths with [`RAW_LIST_FLAG`] top bits, as
    /// stored in the image's length section.
    pub blocks: Vec<u32>,
    /// In-memory skip tables of large compressed lists, keyed by
    /// vertex id.
    pub skips: HashMap<u32, Box<[u32]>>,
    /// Absolute byte offset of this direction's edge section.
    pub edge_base: u64,
    /// Absolute byte offset of this direction's attribute section
    /// (weighted images only — all their blocks must be raw).
    pub attr_base: Option<u64>,
}

/// The in-memory index over an on-SSD graph image.
///
/// Holds, per direction, one degree byte per vertex and one explicit
/// offset per [`CHECKPOINT_INTERVAL`] vertices. Everything else —
/// edge-list location, size, attribute location — is computed on
/// demand, trading a handful of adds for DRAM (§3.5.1: "we choose to
/// compute some vertex information at runtime").
///
/// Over a *compressed* (v2) image the index additionally holds each
/// vertex's on-disk block length (blocks are variable-length under
/// delta-varint encoding, so offsets can no longer be recomputed from
/// degrees) and the skip tables of hub lists; the extra cost is 4
/// bytes/vertex/direction — far below what the compressed image saves
/// in device reads.
#[derive(Debug, Clone)]
pub struct GraphIndex {
    num_vertices: usize,
    edge_width: u64,
    /// Restart interval of the image's compressed blocks; 0 on raw
    /// images.
    skip_k: u32,
    out: DirIndex,
    in_: Option<DirIndex>,
}

impl GraphIndex {
    /// Builds an index from per-direction degree arrays (raw images:
    /// every list is `degree * edge_width` bytes).
    ///
    /// `out_base`/`in_base` are the absolute byte offsets of the edge
    /// sections in the image; `attr` bases likewise for weighted
    /// graphs. `in_degrees` is `None` for undirected graphs.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        out_degrees: &[u64],
        in_degrees: Option<&[u64]>,
        edge_width: u64,
        out_base: u64,
        in_base: u64,
        out_attr_base: Option<u64>,
        in_attr_base: Option<u64>,
    ) -> Self {
        GraphIndex {
            num_vertices: out_degrees.len(),
            edge_width,
            skip_k: 0,
            out: DirIndex::build(out_degrees, out_base, out_attr_base, edge_width),
            in_: in_degrees.map(|d| DirIndex::build(d, in_base, in_attr_base, edge_width)),
        }
    }

    /// Builds an index over a compressed (v2) image from per-direction
    /// degrees, flagged block lengths, and hub skip tables. `k` is the
    /// restart interval the image was encoded with.
    pub fn build_packed(k: u32, out: PackedDirInput<'_>, in_: Option<PackedDirInput<'_>>) -> Self {
        assert!(k > 0, "compressed images need a positive skip interval");
        GraphIndex {
            num_vertices: out.degrees.len(),
            edge_width: 4,
            skip_k: k,
            out: DirIndex::build_packed(
                out.degrees,
                out.blocks,
                out.skips,
                out.edge_base,
                out.attr_base,
            ),
            in_: in_.map(|d| {
                DirIndex::build_packed(d.degrees, d.blocks, d.skips, d.edge_base, d.attr_base)
            }),
        }
    }

    /// Number of vertices indexed.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Whether the index covers a directed image (separate in-lists).
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.in_.is_some()
    }

    /// Bytes per edge entry in *raw* lists (4: a `u32` neighbour id).
    #[inline]
    pub fn edge_width(&self) -> u64 {
        self.edge_width
    }

    /// The image's restart/skip interval in edges; 0 for raw images
    /// (the index then never produces [`SliceDecode::Varint`]).
    #[inline]
    pub fn skip_interval(&self) -> u32 {
        self.skip_k
    }

    fn dir(&self, dir: EdgeDir) -> &DirIndex {
        match (dir, &self.in_) {
            (EdgeDir::Out, _) | (_, None) => &self.out,
            (EdgeDir::In, Some(i)) => i,
            (EdgeDir::Both, _) => panic!("locate(Both) is ambiguous; query one direction"),
        }
    }

    /// Degree of `v` in `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `dir` is [`EdgeDir::Both`].
    #[inline]
    pub fn degree(&self, v: VertexId, dir: EdgeDir) -> u64 {
        assert!(v.index() < self.num_vertices, "vertex {v} out of range");
        self.dir(dir).degree(v)
    }

    /// Locates the on-disk block of `v`'s edge list in `dir`: computes
    /// the offset from the nearest checkpoint by summing at most
    /// `CHECKPOINT_INTERVAL - 1` block lengths.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `dir` is [`EdgeDir::Both`].
    pub fn locate(&self, v: VertexId, dir: EdgeDir) -> EdgeListLoc {
        assert!(v.index() < self.num_vertices, "vertex {v} out of range");
        self.dir(dir).locate(v, self.edge_width)
    }

    /// Locates a *sub-range* of `v`'s edge list in `dir` — the device
    /// byte range plus decode recipe for edge positions
    /// `[start, start + len)`.
    ///
    /// The range is clamped to the list: `start` past the end yields a
    /// zero-byte location (callers complete such requests without
    /// I/O), and `len` is truncated at the list's last edge. This is
    /// the location primitive behind partial edge-list requests (the
    /// engine's `Request::edges(dir).range(start, len)`) and chunked
    /// hub delivery.
    ///
    /// On raw images (and raw-flagged blocks of compressed images) the
    /// byte range is exact: `4 * len` bytes at `4 * start` into the
    /// list. On a compressed block the range is aligned outward to the
    /// enclosing *restarts*: with the vertex's skip table resident
    /// (large-degree lists) at most `k - 1` extra edges decode at each
    /// end; without one the whole block is fetched and the decoder
    /// skips — such lists are small by construction (degree <
    /// [`LARGE_DEGREE`]), so the block rarely exceeds a page.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `dir` is [`EdgeDir::Both`].
    pub fn locate_slice(&self, v: VertexId, dir: EdgeDir, start: u64, len: u64) -> ListSlice {
        let d = self.dir(dir);
        let block = self.locate(v, dir);
        let start = start.min(block.degree);
        let len = len.min(block.degree - start);
        if d.is_raw(v) {
            // Raw blocks are positional whether the image is v1 or v2.
            return ListSlice {
                loc: EdgeListLoc {
                    offset: block.offset + start * self.edge_width,
                    bytes: len * self.edge_width,
                    degree: len,
                },
                decode: SliceDecode::Raw,
            };
        }
        let k = self.skip_k;
        debug_assert!(k > 0, "compressed block on an index without an interval");
        let n_skips = skip_entries(block.degree, k);
        let header = n_skips * 4;
        if len == 0 {
            return ListSlice {
                loc: EdgeListLoc {
                    offset: block.offset,
                    bytes: 0,
                    degree: 0,
                },
                decode: SliceDecode::Raw,
            };
        }
        if start == 0 && len == block.degree {
            // Whole list: fetch the whole block, skip its table.
            return ListSlice {
                loc: block,
                decode: SliceDecode::Varint(VarintSlice {
                    header_bytes: header as u32,
                    stream_pos: 0,
                    skip: 0,
                    k,
                }),
            };
        }
        let table = d.packed.as_ref().and_then(|p| p.skips.get(&v.0));
        match table {
            Some(table) => {
                // Restart-aligned subrange of the payload.
                debug_assert_eq!(table.len() as u64, n_skips, "table matches degree");
                let m0 = start / k as u64;
                let p0 = if m0 == 0 {
                    0
                } else {
                    table[m0 as usize - 1] as u64
                };
                let m1 = (start + len).div_ceil(k as u64);
                let p1 = if m1 > n_skips {
                    block.bytes - header
                } else {
                    table[m1 as usize - 1] as u64
                };
                ListSlice {
                    loc: EdgeListLoc {
                        offset: block.offset + header + p0,
                        bytes: p1 - p0,
                        degree: len,
                    },
                    decode: SliceDecode::Varint(VarintSlice {
                        header_bytes: 0,
                        stream_pos: m0 * k as u64,
                        skip: start - m0 * k as u64,
                        k,
                    }),
                }
            }
            None => ListSlice {
                // No resident table: fetch the block, decode-skip.
                loc: EdgeListLoc {
                    offset: block.offset,
                    bytes: block.bytes,
                    degree: len,
                },
                decode: SliceDecode::Varint(VarintSlice {
                    header_bytes: header as u32,
                    stream_pos: 0,
                    skip: start,
                    k,
                }),
            },
        }
    }

    /// The device byte range of [`GraphIndex::locate_slice`] without
    /// the decode recipe. On raw images this is the exact positional
    /// sub-range; on compressed images the range carries codec framing
    /// and `degree` counts *delivered* edges, not `bytes / 4`.
    pub fn locate_range(&self, v: VertexId, dir: EdgeDir, start: u64, len: u64) -> EdgeListLoc {
        self.locate_slice(v, dir, start, len).loc
    }

    /// Locates the contiguous byte extent covering the edge lists of
    /// the id-range `[first, first + count)` in `dir` — the partition
    /// primitive behind the engine's dense-iteration streaming scan:
    /// a worker whose partition is mostly active sweeps each of its
    /// id-ranges' extents with large sequential reads instead of
    /// issuing one request per vertex.
    ///
    /// Edge lists are laid out in id order, so the extent runs from
    /// the first vertex's block to the end of the last vertex's block;
    /// `degree` reports the total number of edges inside it. The
    /// range is clamped to the vertex count, and an empty range
    /// yields a zero-byte location.
    pub fn locate_extent(&self, first: VertexId, count: u64, dir: EdgeDir) -> EdgeListLoc {
        let lo = first.index().min(self.num_vertices);
        let hi = (lo as u64 + count).min(self.num_vertices as u64) as usize;
        if lo >= hi {
            let offset = if lo < self.num_vertices {
                self.locate(VertexId::from_index(lo), dir).offset
            } else {
                self.dir(dir).edge_base
            };
            return EdgeListLoc {
                offset,
                bytes: 0,
                degree: 0,
            };
        }
        let start = self.locate(VertexId::from_index(lo), dir);
        let end = self.locate(VertexId::from_index(hi - 1), dir);
        let bytes = end.offset + end.bytes - start.offset;
        let degree = if self.skip_k == 0 {
            bytes / self.edge_width
        } else {
            // Variable-length blocks: bytes no longer imply an edge
            // count, so sum the degrees of the range.
            (lo..hi)
                .map(|i| self.dir(dir).degree(VertexId::from_index(i)))
                .sum()
        };
        EdgeListLoc {
            offset: start.offset,
            bytes,
            degree,
        }
    }

    /// Locates the attribute run parallel to `v`'s edge list, if the
    /// image carries attributes for `dir`.
    ///
    /// Attribute entries are 4 bytes (f32) like edges, so the run sits
    /// at the same relative offset inside the attribute section.
    /// (Weighted images keep every block raw — enforced at write and
    /// load — precisely so this positional correspondence holds.)
    pub fn locate_attrs(&self, v: VertexId, dir: EdgeDir) -> Option<EdgeListLoc> {
        let d = self.dir(dir);
        let attr_base = d.attr_base?;
        let edges = self.locate(v, dir);
        Some(EdgeListLoc {
            offset: attr_base + (edges.offset - d.edge_base),
            bytes: edges.bytes,
            degree: edges.degree,
        })
    }

    /// The attribute run parallel to [`GraphIndex::locate_range`]:
    /// attribute positions `[start, start + len)` of `v` in `dir`,
    /// clamped exactly like the edge sub-range (entries are 4 bytes on
    /// both sides, so the two sub-ranges stay in lockstep).
    pub fn locate_attrs_range(
        &self,
        v: VertexId,
        dir: EdgeDir,
        start: u64,
        len: u64,
    ) -> Option<EdgeListLoc> {
        let d = self.dir(dir);
        let attr_base = d.attr_base?;
        debug_assert!(
            d.is_raw(v),
            "attribute-bearing blocks are always raw-encoded"
        );
        let edges = self.locate_range(v, dir, start, len);
        Some(EdgeListLoc {
            offset: attr_base + (edges.offset - d.edge_base),
            bytes: edges.bytes,
            degree: edges.degree,
        })
    }

    /// Heap bytes of the index — the quantity behind the paper's
    /// "slightly more than 1.25 bytes per vertex (2.5 directed)"
    /// claim. Compressed images add their block-length tables (4
    /// bytes/vertex/direction) and hub skip tables on top.
    pub fn heap_bytes(&self) -> usize {
        self.out.heap_bytes() + self.in_.as_ref().map(DirIndex::heap_bytes).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_base_index(degrees: &[u64]) -> GraphIndex {
        GraphIndex::build(degrees, None, 4, 1000, 0, None, None)
    }

    /// A packed index whose blocks/skip tables come straight from the
    /// codec, without an image behind them (offsets only).
    fn packed_index(lists: &[Vec<u32>], k: u32, load_skips: bool) -> GraphIndex {
        let degrees: Vec<u64> = lists.iter().map(|l| l.len() as u64).collect();
        let mut blocks = Vec::new();
        let mut skips = HashMap::new();
        let mut scratch = Vec::new();
        for (i, l) in lists.iter().enumerate() {
            scratch.clear();
            if crate::codec::encode_list(l, k, &mut scratch) {
                blocks.push(scratch.len() as u32);
                let n = skip_entries(l.len() as u64, k) as usize;
                if load_skips && n > 0 {
                    let table: Box<[u32]> = (0..n)
                        .map(|e| u32::from_le_bytes(scratch[e * 4..e * 4 + 4].try_into().unwrap()))
                        .collect();
                    skips.insert(i as u32, table);
                }
            } else {
                blocks.push((l.len() as u32 * 4) | RAW_LIST_FLAG);
            }
        }
        GraphIndex::build_packed(
            k,
            PackedDirInput {
                degrees: &degrees,
                blocks,
                skips,
                edge_base: 1000,
                attr_base: None,
            },
            None,
        )
    }

    #[test]
    fn locate_sums_degrees_from_checkpoint() {
        let degrees = vec![3u64, 0, 5, 2, 1];
        let idx = seq_base_index(&degrees);
        let mut expect = 1000u64;
        for (i, &d) in degrees.iter().enumerate() {
            let loc = idx.locate(VertexId(i as u32), EdgeDir::Out);
            assert_eq!(loc.offset, expect, "vertex {i}");
            assert_eq!(loc.degree, d);
            assert_eq!(loc.bytes, d * 4);
            expect += d * 4;
        }
    }

    #[test]
    fn checkpoints_every_interval() {
        // 100 vertices of degree 2: offsets should be exact at every
        // checkpoint without scanning.
        let degrees = vec![2u64; 100];
        let idx = seq_base_index(&degrees);
        for i in (0..100).step_by(CHECKPOINT_INTERVAL) {
            let loc = idx.locate(VertexId(i as u32), EdgeDir::Out);
            assert_eq!(loc.offset, 1000 + (i as u64) * 8);
        }
        // ... and vertices just before a checkpoint require the
        // longest scan; verify correctness there too.
        let loc = idx.locate(VertexId(31), EdgeDir::Out);
        assert_eq!(loc.offset, 1000 + 31 * 8);
    }

    #[test]
    fn large_degrees_overflow_to_hash_table() {
        let mut degrees = vec![1u64; 40];
        degrees[7] = 300; // >= 255
        degrees[20] = 255; // boundary: exactly 255 must overflow
        let idx = seq_base_index(&degrees);
        assert_eq!(idx.degree(VertexId(7), EdgeDir::Out), 300);
        assert_eq!(idx.degree(VertexId(20), EdgeDir::Out), 255);
        assert_eq!(idx.degree(VertexId(0), EdgeDir::Out), 1);
        // Offsets past the hubs stay correct.
        let loc = idx.locate(VertexId(39), EdgeDir::Out);
        let expect: u64 = 1000 + degrees[..39].iter().sum::<u64>() * 4;
        assert_eq!(loc.offset, expect);
    }

    #[test]
    fn degree_254_stays_small() {
        let degrees = vec![254u64];
        let idx = seq_base_index(&degrees);
        assert_eq!(idx.degree(VertexId(0), EdgeDir::Out), 254);
        assert_eq!(idx.heap_bytes(), 1 + 8); // 1 degree byte + 1 checkpoint
    }

    #[test]
    fn directed_index_separates_directions() {
        let out = vec![2u64, 0];
        let in_ = vec![0u64, 2];
        let idx = GraphIndex::build(&out, Some(&in_), 4, 100, 500, None, None);
        assert!(idx.is_directed());
        assert_eq!(idx.degree(VertexId(0), EdgeDir::Out), 2);
        assert_eq!(idx.degree(VertexId(0), EdgeDir::In), 0);
        assert_eq!(idx.locate(VertexId(0), EdgeDir::Out).offset, 100);
        assert_eq!(idx.locate(VertexId(1), EdgeDir::In).offset, 500);
    }

    #[test]
    fn undirected_in_queries_resolve_to_out() {
        let idx = seq_base_index(&[1, 1]);
        assert_eq!(
            idx.locate(VertexId(1), EdgeDir::In),
            idx.locate(VertexId(1), EdgeDir::Out)
        );
    }

    #[test]
    fn attr_location_parallels_edges() {
        let degrees = vec![3u64, 2];
        let idx = GraphIndex::build(&degrees, None, 4, 100, 0, Some(10_000), None);
        let e = idx.locate(VertexId(1), EdgeDir::Out);
        let a = idx.locate_attrs(VertexId(1), EdgeDir::Out).unwrap();
        assert_eq!(a.offset - 10_000, e.offset - 100);
        assert_eq!(a.bytes, e.bytes);
    }

    #[test]
    fn attrs_absent_when_unweighted() {
        let idx = seq_base_index(&[1]);
        assert!(idx.locate_attrs(VertexId(0), EdgeDir::Out).is_none());
    }

    #[test]
    fn memory_footprint_matches_paper_claim() {
        // A power-law-ish degree sequence with few hubs.
        let n = 100_000usize;
        let degrees: Vec<u64> = (0..n)
            .map(|i| {
                if i % 10_000 == 0 {
                    1000
                } else {
                    (i % 7) as u64
                }
            })
            .collect();
        let undirected = GraphIndex::build(&degrees, None, 4, 0, 0, None, None);
        let per_vertex = undirected.heap_bytes() as f64 / n as f64;
        assert!(
            per_vertex < 1.32,
            "undirected index uses {per_vertex} B/vertex; paper claims ~1.25"
        );
        let directed = GraphIndex::build(&degrees, Some(&degrees), 4, 0, 0, None, None);
        let per_vertex = directed.heap_bytes() as f64 / n as f64;
        assert!(
            per_vertex < 2.64,
            "directed index uses {per_vertex} B/vertex; paper claims ~2.5"
        );
    }

    #[test]
    fn locate_range_slices_within_list() {
        let degrees = vec![3u64, 10, 2];
        let idx = seq_base_index(&degrees);
        let full = idx.locate(VertexId(1), EdgeDir::Out);
        let sub = idx.locate_range(VertexId(1), EdgeDir::Out, 4, 3);
        assert_eq!(sub.offset, full.offset + 4 * 4);
        assert_eq!(sub.bytes, 3 * 4);
        assert_eq!(sub.degree, 3);
        // A full-width range reproduces locate() exactly.
        assert_eq!(idx.locate_range(VertexId(1), EdgeDir::Out, 0, 10), full);
        // ... and raw images always decode raw.
        assert_eq!(
            idx.locate_slice(VertexId(1), EdgeDir::Out, 4, 3).decode,
            SliceDecode::Raw
        );
    }

    #[test]
    fn locate_range_clamps_to_list_end() {
        let idx = seq_base_index(&[5]);
        // Tail-truncated: positions [3, 9) clamp to [3, 5).
        let tail = idx.locate_range(VertexId(0), EdgeDir::Out, 3, 6);
        assert_eq!(tail.degree, 2);
        assert_eq!(tail.bytes, 8);
        // Start past the end: zero bytes at the list's end offset.
        let past = idx.locate_range(VertexId(0), EdgeDir::Out, 7, 2);
        assert_eq!(past.degree, 0);
        assert_eq!(past.bytes, 0);
        // Zero-length range: zero bytes, offset at the position.
        let zero = idx.locate_range(VertexId(0), EdgeDir::Out, 2, 0);
        assert_eq!(zero.degree, 0);
        assert_eq!(zero.offset, 1000 + 2 * 4);
    }

    #[test]
    fn attr_range_parallels_edge_range() {
        let degrees = vec![3u64, 8];
        let idx = GraphIndex::build(&degrees, None, 4, 100, 0, Some(10_000), None);
        let e = idx.locate_range(VertexId(1), EdgeDir::Out, 2, 4);
        let a = idx
            .locate_attrs_range(VertexId(1), EdgeDir::Out, 2, 4)
            .unwrap();
        assert_eq!(a.offset - 10_000, e.offset - 100);
        assert_eq!(a.bytes, e.bytes);
        assert_eq!(a.degree, e.degree);
        // Clamping stays in lockstep too.
        let e = idx.locate_range(VertexId(1), EdgeDir::Out, 6, 99);
        let a = idx
            .locate_attrs_range(VertexId(1), EdgeDir::Out, 6, 99)
            .unwrap();
        assert_eq!(a.bytes, e.bytes);
        assert_eq!(e.degree, 2);
    }

    #[test]
    fn locate_extent_spans_id_range() {
        let degrees = vec![3u64, 0, 5, 2, 1];
        let idx = seq_base_index(&degrees);
        // Whole graph.
        let all = idx.locate_extent(VertexId(0), 5, EdgeDir::Out);
        assert_eq!(all.offset, 1000);
        assert_eq!(all.bytes, degrees.iter().sum::<u64>() * 4);
        assert_eq!(all.degree, degrees.iter().sum::<u64>());
        // Interior range [1, 4): vertices 1..=3.
        let mid = idx.locate_extent(VertexId(1), 3, EdgeDir::Out);
        assert_eq!(mid.offset, 1000 + 3 * 4);
        assert_eq!(mid.bytes, (5 + 2) * 4);
        assert_eq!(mid.degree, 7);
        // Concatenated sub-extents tile the full extent exactly.
        let a = idx.locate_extent(VertexId(0), 2, EdgeDir::Out);
        let b = idx.locate_extent(VertexId(2), 3, EdgeDir::Out);
        assert_eq!(a.offset + a.bytes, b.offset);
        assert_eq!(a.bytes + b.bytes, all.bytes);
    }

    #[test]
    fn locate_extent_clamps_and_empties() {
        let idx = seq_base_index(&[2, 4]);
        // Count past the end clamps.
        let clamped = idx.locate_extent(VertexId(1), 99, EdgeDir::Out);
        assert_eq!(clamped.offset, 1000 + 8);
        assert_eq!(clamped.bytes, 16);
        // Empty and fully-out-of-range extents are zero bytes.
        assert_eq!(idx.locate_extent(VertexId(0), 0, EdgeDir::Out).bytes, 0);
        assert_eq!(idx.locate_extent(VertexId(9), 4, EdgeDir::Out).bytes, 0);
    }

    #[test]
    fn attr_range_absent_when_unweighted() {
        let idx = seq_base_index(&[4]);
        assert!(idx
            .locate_attrs_range(VertexId(0), EdgeDir::Out, 0, 2)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_out_of_range_panics() {
        let idx = seq_base_index(&[1]);
        idx.locate(VertexId(1), EdgeDir::Out);
    }

    #[test]
    fn empty_graph_index() {
        let idx = seq_base_index(&[]);
        assert_eq!(idx.num_vertices(), 0);
        assert!(idx.heap_bytes() >= 8); // the single checkpoint
    }

    // ---- packed (compressed-image) behaviour ----

    #[test]
    fn packed_offsets_follow_block_lengths() {
        // Lists: raw (tiny), compressed, raw (tiny), compressed.
        let lists = vec![
            vec![7u32],
            (0..40u32).map(|i| i * 2).collect(),
            vec![],
            (100..160u32).collect(),
        ];
        let idx = packed_index(&lists, 8, true);
        assert_eq!(idx.skip_interval(), 8);
        let mut expect = 1000u64;
        for (i, l) in lists.iter().enumerate() {
            let loc = idx.locate(VertexId(i as u32), EdgeDir::Out);
            assert_eq!(loc.offset, expect, "vertex {i}");
            assert_eq!(loc.degree, l.len() as u64);
            expect += loc.bytes;
        }
        // Compressed blocks beat raw.
        assert!(idx.locate(VertexId(1), EdgeDir::Out).bytes < 40 * 4);
    }

    #[test]
    fn packed_full_list_slice_covers_block() {
        let lists = vec![(0..40u32).map(|i| i * 3).collect::<Vec<_>>()];
        let idx = packed_index(&lists, 8, true);
        let block = idx.locate(VertexId(0), EdgeDir::Out);
        let s = idx.locate_slice(VertexId(0), EdgeDir::Out, 0, 40);
        assert_eq!(s.loc, block);
        let SliceDecode::Varint(v) = s.decode else {
            panic!("compressed block must decode as varint");
        };
        assert_eq!(v.header_bytes as u64, skip_entries(40, 8) * 4);
        assert_eq!((v.stream_pos, v.skip, v.k), (0, 0, 8));
    }

    #[test]
    fn packed_hub_slice_is_restart_aligned_and_partial() {
        let lists = vec![(0..300u32).map(|i| i * 2 + 1).collect::<Vec<_>>()];
        let idx = packed_index(&lists, 8, true);
        let block = idx.locate(VertexId(0), EdgeDir::Out);
        // Positions [50, 70): restarts bound it to [48, 72).
        let s = idx.locate_slice(VertexId(0), EdgeDir::Out, 50, 20);
        assert_eq!(s.loc.degree, 20);
        assert!(s.loc.bytes < block.bytes, "subrange must not fetch all");
        assert!(s.loc.offset > block.offset);
        let SliceDecode::Varint(v) = s.decode else {
            panic!("varint expected");
        };
        assert_eq!(v.header_bytes, 0);
        assert_eq!(v.stream_pos, 48);
        assert_eq!(v.skip, 2);
        // Adjacent restart-aligned chunks tile the payload exactly.
        let a = idx.locate_slice(VertexId(0), EdgeDir::Out, 0, 80);
        let b = idx.locate_slice(VertexId(0), EdgeDir::Out, 80, 220);
        assert_eq!(a.loc.offset + a.loc.bytes, b.loc.offset);
        let hdr = skip_entries(300, 8) * 4;
        assert_eq!(a.loc.bytes + b.loc.bytes + hdr, block.bytes);
    }

    #[test]
    fn packed_slice_without_table_fetches_whole_block() {
        let lists = vec![(0..100u32).map(|i| i * 2).collect::<Vec<_>>()];
        let idx = packed_index(&lists, 8, false);
        let block = idx.locate(VertexId(0), EdgeDir::Out);
        let s = idx.locate_slice(VertexId(0), EdgeDir::Out, 30, 10);
        assert_eq!(s.loc.offset, block.offset);
        assert_eq!(s.loc.bytes, block.bytes);
        assert_eq!(s.loc.degree, 10);
        let SliceDecode::Varint(v) = s.decode else {
            panic!("varint expected");
        };
        assert_eq!(v.header_bytes as u64, skip_entries(100, 8) * 4);
        assert_eq!(v.skip, 30);
    }

    #[test]
    fn packed_raw_fallback_blocks_slice_positionally() {
        // Tiny lists stay raw inside a packed image.
        let lists = vec![vec![1u32, 2, 3], vec![9u32, 10, 11]];
        let idx = packed_index(&lists, 8, true);
        let s = idx.locate_slice(VertexId(1), EdgeDir::Out, 1, 2);
        assert_eq!(s.decode, SliceDecode::Raw);
        let block = idx.locate(VertexId(1), EdgeDir::Out);
        assert_eq!(s.loc.offset, block.offset + 4);
        assert_eq!(s.loc.bytes, 8);
    }

    #[test]
    fn packed_extent_counts_edges_not_bytes() {
        let lists = vec![
            (0..40u32).collect::<Vec<_>>(),
            vec![5u32],
            (0..64u32).map(|i| i * 7).collect(),
        ];
        let idx = packed_index(&lists, 8, true);
        let all = idx.locate_extent(VertexId(0), 3, EdgeDir::Out);
        assert_eq!(all.degree, 40 + 1 + 64);
        let total: u64 = (0..3)
            .map(|i| idx.locate(VertexId(i), EdgeDir::Out).bytes)
            .sum();
        assert_eq!(all.bytes, total);
        assert_ne!(all.bytes, all.degree * 4, "blocks really are compressed");
    }

    #[test]
    fn packed_slice_clamps_like_raw() {
        let lists = vec![(0..50u32).map(|i| i * 2).collect::<Vec<_>>()];
        let idx = packed_index(&lists, 8, true);
        let past = idx.locate_slice(VertexId(0), EdgeDir::Out, 60, 5);
        assert_eq!(past.loc.bytes, 0);
        assert_eq!(past.loc.degree, 0);
        let tail = idx.locate_slice(VertexId(0), EdgeDir::Out, 45, 99);
        assert_eq!(tail.loc.degree, 5);
    }
}
