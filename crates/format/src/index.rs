//! The compact in-memory graph index (§3.5.1 of the paper).

use std::collections::HashMap;

use fg_types::{EdgeDir, VertexId};

/// Degrees at or above this value overflow into a hash table; the
/// per-vertex byte then holds [`u8::MAX`] as a sentinel. Real-world
/// power-law graphs put only a tiny fraction of vertices there.
pub const LARGE_DEGREE: u64 = 255;

/// An explicit byte offset is stored once per this many vertices; the
/// paper found 32 makes the recomputation overhead "almost
/// unnoticeable while the amortized memory overhead is small".
pub const CHECKPOINT_INTERVAL: usize = 32;

/// Location of one vertex's edge list inside the on-SSD image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeListLoc {
    /// Absolute byte offset of the first edge.
    pub offset: u64,
    /// Length in bytes of the edge list.
    pub bytes: u64,
    /// Number of edges in the list.
    pub degree: u64,
}

/// Per-direction compact index: degrees + sparse offset checkpoints.
#[derive(Debug, Clone)]
struct DirIndex {
    /// One byte per vertex; `u8::MAX` redirects to `large`.
    small_degrees: Vec<u8>,
    /// Degrees of vertices with degree >= [`LARGE_DEGREE`].
    large: HashMap<u32, u64>,
    /// Absolute byte offset of the edge list of vertex
    /// `i * CHECKPOINT_INTERVAL`.
    checkpoints: Vec<u64>,
    /// Start of this direction's attribute section, if weighted.
    attr_base: Option<u64>,
    /// Start of this direction's edge section (for attr offset math).
    edge_base: u64,
}

impl DirIndex {
    fn build(degrees: &[u64], edge_base: u64, attr_base: Option<u64>, edge_width: u64) -> Self {
        let mut small_degrees = Vec::with_capacity(degrees.len());
        let mut large = HashMap::new();
        let mut checkpoints =
            Vec::with_capacity(degrees.len().div_ceil(CHECKPOINT_INTERVAL).max(1));
        let mut offset = edge_base;
        for (i, &d) in degrees.iter().enumerate() {
            if i % CHECKPOINT_INTERVAL == 0 {
                checkpoints.push(offset);
            }
            if d >= LARGE_DEGREE {
                small_degrees.push(u8::MAX);
                large.insert(i as u32, d);
            } else {
                small_degrees.push(d as u8);
            }
            offset += d * edge_width;
        }
        if degrees.is_empty() {
            checkpoints.push(edge_base);
        }
        DirIndex {
            small_degrees,
            large,
            checkpoints,
            attr_base,
            edge_base,
        }
    }

    #[inline]
    fn degree(&self, v: VertexId) -> u64 {
        let b = self.small_degrees[v.index()];
        if b == u8::MAX {
            self.large[&v.0]
        } else {
            b as u64
        }
    }

    fn locate(&self, v: VertexId, edge_width: u64) -> EdgeListLoc {
        let i = v.index();
        let cp = i / CHECKPOINT_INTERVAL;
        let mut offset = self.checkpoints[cp];
        for j in (cp * CHECKPOINT_INTERVAL)..i {
            offset += self.degree(VertexId::from_index(j)) * edge_width;
        }
        let degree = self.degree(v);
        EdgeListLoc {
            offset,
            bytes: degree * edge_width,
            degree,
        }
    }

    fn heap_bytes(&self) -> usize {
        self.small_degrees.len()
            + self.large.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<u64>())
            + self.checkpoints.len() * std::mem::size_of::<u64>()
    }
}

/// The in-memory index over an on-SSD graph image.
///
/// Holds, per direction, one degree byte per vertex and one explicit
/// offset per [`CHECKPOINT_INTERVAL`] vertices. Everything else —
/// edge-list location, size, attribute location — is computed on
/// demand, trading a handful of adds for DRAM (§3.5.1: "we choose to
/// compute some vertex information at runtime").
#[derive(Debug, Clone)]
pub struct GraphIndex {
    num_vertices: usize,
    edge_width: u64,
    out: DirIndex,
    in_: Option<DirIndex>,
}

impl GraphIndex {
    /// Builds an index from per-direction degree arrays.
    ///
    /// `out_base`/`in_base` are the absolute byte offsets of the edge
    /// sections in the image; `attr` bases likewise for weighted
    /// graphs. `in_degrees` is `None` for undirected graphs.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        out_degrees: &[u64],
        in_degrees: Option<&[u64]>,
        edge_width: u64,
        out_base: u64,
        in_base: u64,
        out_attr_base: Option<u64>,
        in_attr_base: Option<u64>,
    ) -> Self {
        GraphIndex {
            num_vertices: out_degrees.len(),
            edge_width,
            out: DirIndex::build(out_degrees, out_base, out_attr_base, edge_width),
            in_: in_degrees.map(|d| DirIndex::build(d, in_base, in_attr_base, edge_width)),
        }
    }

    /// Number of vertices indexed.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Whether the index covers a directed image (separate in-lists).
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.in_.is_some()
    }

    /// Bytes per edge entry in the image (4: a `u32` neighbour id).
    #[inline]
    pub fn edge_width(&self) -> u64 {
        self.edge_width
    }

    fn dir(&self, dir: EdgeDir) -> &DirIndex {
        match (dir, &self.in_) {
            (EdgeDir::Out, _) | (_, None) => &self.out,
            (EdgeDir::In, Some(i)) => i,
            (EdgeDir::Both, _) => panic!("locate(Both) is ambiguous; query one direction"),
        }
    }

    /// Degree of `v` in `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `dir` is [`EdgeDir::Both`].
    #[inline]
    pub fn degree(&self, v: VertexId, dir: EdgeDir) -> u64 {
        assert!(v.index() < self.num_vertices, "vertex {v} out of range");
        self.dir(dir).degree(v)
    }

    /// Locates the edge list of `v` in `dir`: computes the offset from
    /// the nearest checkpoint by summing at most
    /// `CHECKPOINT_INTERVAL - 1` degrees.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `dir` is [`EdgeDir::Both`].
    pub fn locate(&self, v: VertexId, dir: EdgeDir) -> EdgeListLoc {
        assert!(v.index() < self.num_vertices, "vertex {v} out of range");
        self.dir(dir).locate(v, self.edge_width)
    }

    /// Locates a *sub-range* of `v`'s edge list in `dir`: the byte
    /// range covering edge positions `[start, start + len)`.
    ///
    /// The range is clamped to the list: `start` past the end yields a
    /// zero-byte location (callers complete such requests without
    /// I/O), and `len` is truncated at the list's last edge. This is
    /// the location primitive behind partial edge-list requests (the
    /// engine's `Request::edges(dir).range(start, len)`), which let
    /// algorithms touching high-degree hubs pay only for the slice
    /// they will use.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `dir` is [`EdgeDir::Both`].
    pub fn locate_range(&self, v: VertexId, dir: EdgeDir, start: u64, len: u64) -> EdgeListLoc {
        let full = self.locate(v, dir);
        let start = start.min(full.degree);
        let len = len.min(full.degree - start);
        EdgeListLoc {
            offset: full.offset + start * self.edge_width,
            bytes: len * self.edge_width,
            degree: len,
        }
    }

    /// Locates the contiguous byte extent covering the edge lists of
    /// the id-range `[first, first + count)` in `dir` — the partition
    /// primitive behind the engine's dense-iteration streaming scan:
    /// a worker whose partition is mostly active sweeps each of its
    /// id-ranges' extents with large sequential reads instead of
    /// issuing one request per vertex.
    ///
    /// Edge lists are laid out in id order, so the extent runs from
    /// the first vertex's list to the end of the last vertex's list;
    /// `degree` reports the total number of edges inside it. The
    /// range is clamped to the vertex count, and an empty range
    /// yields a zero-byte location.
    pub fn locate_extent(&self, first: VertexId, count: u64, dir: EdgeDir) -> EdgeListLoc {
        let lo = first.index().min(self.num_vertices);
        let hi = (lo as u64 + count).min(self.num_vertices as u64) as usize;
        if lo >= hi {
            let offset = if lo < self.num_vertices {
                self.locate(VertexId::from_index(lo), dir).offset
            } else {
                self.dir(dir).edge_base
            };
            return EdgeListLoc {
                offset,
                bytes: 0,
                degree: 0,
            };
        }
        let start = self.locate(VertexId::from_index(lo), dir);
        let end = self.locate(VertexId::from_index(hi - 1), dir);
        let bytes = end.offset + end.bytes - start.offset;
        EdgeListLoc {
            offset: start.offset,
            bytes,
            degree: bytes / self.edge_width,
        }
    }

    /// Locates the attribute run parallel to `v`'s edge list, if the
    /// image carries attributes for `dir`.
    ///
    /// Attribute entries are 4 bytes (f32) like edges, so the run sits
    /// at the same relative offset inside the attribute section.
    pub fn locate_attrs(&self, v: VertexId, dir: EdgeDir) -> Option<EdgeListLoc> {
        let d = self.dir(dir);
        let attr_base = d.attr_base?;
        let edges = self.locate(v, dir);
        Some(EdgeListLoc {
            offset: attr_base + (edges.offset - d.edge_base),
            bytes: edges.bytes,
            degree: edges.degree,
        })
    }

    /// The attribute run parallel to [`GraphIndex::locate_range`]:
    /// attribute positions `[start, start + len)` of `v` in `dir`,
    /// clamped exactly like the edge sub-range (entries are 4 bytes on
    /// both sides, so the two sub-ranges stay in lockstep).
    pub fn locate_attrs_range(
        &self,
        v: VertexId,
        dir: EdgeDir,
        start: u64,
        len: u64,
    ) -> Option<EdgeListLoc> {
        let d = self.dir(dir);
        let attr_base = d.attr_base?;
        let edges = self.locate_range(v, dir, start, len);
        Some(EdgeListLoc {
            offset: attr_base + (edges.offset - d.edge_base),
            bytes: edges.bytes,
            degree: edges.degree,
        })
    }

    /// Heap bytes of the index — the quantity behind the paper's
    /// "slightly more than 1.25 bytes per vertex (2.5 directed)"
    /// claim.
    pub fn heap_bytes(&self) -> usize {
        self.out.heap_bytes() + self.in_.as_ref().map(DirIndex::heap_bytes).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_base_index(degrees: &[u64]) -> GraphIndex {
        GraphIndex::build(degrees, None, 4, 1000, 0, None, None)
    }

    #[test]
    fn locate_sums_degrees_from_checkpoint() {
        let degrees = vec![3u64, 0, 5, 2, 1];
        let idx = seq_base_index(&degrees);
        let mut expect = 1000u64;
        for (i, &d) in degrees.iter().enumerate() {
            let loc = idx.locate(VertexId(i as u32), EdgeDir::Out);
            assert_eq!(loc.offset, expect, "vertex {i}");
            assert_eq!(loc.degree, d);
            assert_eq!(loc.bytes, d * 4);
            expect += d * 4;
        }
    }

    #[test]
    fn checkpoints_every_interval() {
        // 100 vertices of degree 2: offsets should be exact at every
        // checkpoint without scanning.
        let degrees = vec![2u64; 100];
        let idx = seq_base_index(&degrees);
        for i in (0..100).step_by(CHECKPOINT_INTERVAL) {
            let loc = idx.locate(VertexId(i as u32), EdgeDir::Out);
            assert_eq!(loc.offset, 1000 + (i as u64) * 8);
        }
        // ... and vertices just before a checkpoint require the
        // longest scan; verify correctness there too.
        let loc = idx.locate(VertexId(31), EdgeDir::Out);
        assert_eq!(loc.offset, 1000 + 31 * 8);
    }

    #[test]
    fn large_degrees_overflow_to_hash_table() {
        let mut degrees = vec![1u64; 40];
        degrees[7] = 300; // >= 255
        degrees[20] = 255; // boundary: exactly 255 must overflow
        let idx = seq_base_index(&degrees);
        assert_eq!(idx.degree(VertexId(7), EdgeDir::Out), 300);
        assert_eq!(idx.degree(VertexId(20), EdgeDir::Out), 255);
        assert_eq!(idx.degree(VertexId(0), EdgeDir::Out), 1);
        // Offsets past the hubs stay correct.
        let loc = idx.locate(VertexId(39), EdgeDir::Out);
        let expect: u64 = 1000 + degrees[..39].iter().sum::<u64>() * 4;
        assert_eq!(loc.offset, expect);
    }

    #[test]
    fn degree_254_stays_small() {
        let degrees = vec![254u64];
        let idx = seq_base_index(&degrees);
        assert_eq!(idx.degree(VertexId(0), EdgeDir::Out), 254);
        assert_eq!(idx.heap_bytes(), 1 + 8); // 1 degree byte + 1 checkpoint
    }

    #[test]
    fn directed_index_separates_directions() {
        let out = vec![2u64, 0];
        let in_ = vec![0u64, 2];
        let idx = GraphIndex::build(&out, Some(&in_), 4, 100, 500, None, None);
        assert!(idx.is_directed());
        assert_eq!(idx.degree(VertexId(0), EdgeDir::Out), 2);
        assert_eq!(idx.degree(VertexId(0), EdgeDir::In), 0);
        assert_eq!(idx.locate(VertexId(0), EdgeDir::Out).offset, 100);
        assert_eq!(idx.locate(VertexId(1), EdgeDir::In).offset, 500);
    }

    #[test]
    fn undirected_in_queries_resolve_to_out() {
        let idx = seq_base_index(&[1, 1]);
        assert_eq!(
            idx.locate(VertexId(1), EdgeDir::In),
            idx.locate(VertexId(1), EdgeDir::Out)
        );
    }

    #[test]
    fn attr_location_parallels_edges() {
        let degrees = vec![3u64, 2];
        let idx = GraphIndex::build(&degrees, None, 4, 100, 0, Some(10_000), None);
        let e = idx.locate(VertexId(1), EdgeDir::Out);
        let a = idx.locate_attrs(VertexId(1), EdgeDir::Out).unwrap();
        assert_eq!(a.offset - 10_000, e.offset - 100);
        assert_eq!(a.bytes, e.bytes);
    }

    #[test]
    fn attrs_absent_when_unweighted() {
        let idx = seq_base_index(&[1]);
        assert!(idx.locate_attrs(VertexId(0), EdgeDir::Out).is_none());
    }

    #[test]
    fn memory_footprint_matches_paper_claim() {
        // A power-law-ish degree sequence with few hubs.
        let n = 100_000usize;
        let degrees: Vec<u64> = (0..n)
            .map(|i| {
                if i % 10_000 == 0 {
                    1000
                } else {
                    (i % 7) as u64
                }
            })
            .collect();
        let undirected = GraphIndex::build(&degrees, None, 4, 0, 0, None, None);
        let per_vertex = undirected.heap_bytes() as f64 / n as f64;
        assert!(
            per_vertex < 1.32,
            "undirected index uses {per_vertex} B/vertex; paper claims ~1.25"
        );
        let directed = GraphIndex::build(&degrees, Some(&degrees), 4, 0, 0, None, None);
        let per_vertex = directed.heap_bytes() as f64 / n as f64;
        assert!(
            per_vertex < 2.64,
            "directed index uses {per_vertex} B/vertex; paper claims ~2.5"
        );
    }

    #[test]
    fn locate_range_slices_within_list() {
        let degrees = vec![3u64, 10, 2];
        let idx = seq_base_index(&degrees);
        let full = idx.locate(VertexId(1), EdgeDir::Out);
        let sub = idx.locate_range(VertexId(1), EdgeDir::Out, 4, 3);
        assert_eq!(sub.offset, full.offset + 4 * 4);
        assert_eq!(sub.bytes, 3 * 4);
        assert_eq!(sub.degree, 3);
        // A full-width range reproduces locate() exactly.
        assert_eq!(idx.locate_range(VertexId(1), EdgeDir::Out, 0, 10), full);
    }

    #[test]
    fn locate_range_clamps_to_list_end() {
        let idx = seq_base_index(&[5]);
        // Tail-truncated: positions [3, 9) clamp to [3, 5).
        let tail = idx.locate_range(VertexId(0), EdgeDir::Out, 3, 6);
        assert_eq!(tail.degree, 2);
        assert_eq!(tail.bytes, 8);
        // Start past the end: zero bytes at the list's end offset.
        let past = idx.locate_range(VertexId(0), EdgeDir::Out, 7, 2);
        assert_eq!(past.degree, 0);
        assert_eq!(past.bytes, 0);
        // Zero-length range: zero bytes, offset at the position.
        let zero = idx.locate_range(VertexId(0), EdgeDir::Out, 2, 0);
        assert_eq!(zero.degree, 0);
        assert_eq!(zero.offset, 1000 + 2 * 4);
    }

    #[test]
    fn attr_range_parallels_edge_range() {
        let degrees = vec![3u64, 8];
        let idx = GraphIndex::build(&degrees, None, 4, 100, 0, Some(10_000), None);
        let e = idx.locate_range(VertexId(1), EdgeDir::Out, 2, 4);
        let a = idx
            .locate_attrs_range(VertexId(1), EdgeDir::Out, 2, 4)
            .unwrap();
        assert_eq!(a.offset - 10_000, e.offset - 100);
        assert_eq!(a.bytes, e.bytes);
        assert_eq!(a.degree, e.degree);
        // Clamping stays in lockstep too.
        let e = idx.locate_range(VertexId(1), EdgeDir::Out, 6, 99);
        let a = idx
            .locate_attrs_range(VertexId(1), EdgeDir::Out, 6, 99)
            .unwrap();
        assert_eq!(a.bytes, e.bytes);
        assert_eq!(e.degree, 2);
    }

    #[test]
    fn locate_extent_spans_id_range() {
        let degrees = vec![3u64, 0, 5, 2, 1];
        let idx = seq_base_index(&degrees);
        // Whole graph.
        let all = idx.locate_extent(VertexId(0), 5, EdgeDir::Out);
        assert_eq!(all.offset, 1000);
        assert_eq!(all.bytes, degrees.iter().sum::<u64>() * 4);
        assert_eq!(all.degree, degrees.iter().sum::<u64>());
        // Interior range [1, 4): vertices 1..=3.
        let mid = idx.locate_extent(VertexId(1), 3, EdgeDir::Out);
        assert_eq!(mid.offset, 1000 + 3 * 4);
        assert_eq!(mid.bytes, (5 + 2) * 4);
        assert_eq!(mid.degree, 7);
        // Concatenated sub-extents tile the full extent exactly.
        let a = idx.locate_extent(VertexId(0), 2, EdgeDir::Out);
        let b = idx.locate_extent(VertexId(2), 3, EdgeDir::Out);
        assert_eq!(a.offset + a.bytes, b.offset);
        assert_eq!(a.bytes + b.bytes, all.bytes);
    }

    #[test]
    fn locate_extent_clamps_and_empties() {
        let idx = seq_base_index(&[2, 4]);
        // Count past the end clamps.
        let clamped = idx.locate_extent(VertexId(1), 99, EdgeDir::Out);
        assert_eq!(clamped.offset, 1000 + 8);
        assert_eq!(clamped.bytes, 16);
        // Empty and fully-out-of-range extents are zero bytes.
        assert_eq!(idx.locate_extent(VertexId(0), 0, EdgeDir::Out).bytes, 0);
        assert_eq!(idx.locate_extent(VertexId(9), 4, EdgeDir::Out).bytes, 0);
    }

    #[test]
    fn attr_range_absent_when_unweighted() {
        let idx = seq_base_index(&[4]);
        assert!(idx
            .locate_attrs_range(VertexId(0), EdgeDir::Out, 0, 2)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_out_of_range_panics() {
        let idx = seq_base_index(&[1]);
        idx.locate(VertexId(1), EdgeDir::Out);
    }

    #[test]
    fn empty_graph_index() {
        let idx = seq_base_index(&[]);
        assert_eq!(idx.num_vertices(), 0);
        assert!(idx.heap_bytes() >= 8); // the single checkpoint
    }
}
