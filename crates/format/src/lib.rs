//! FlashGraph's external-memory graph image and compact in-memory index.
//!
//! Section 3.5 of the paper describes two data representations:
//!
//! * **On SSDs** (§3.5.2): a single image per graph holding every
//!   vertex's edge lists, sorted by vertex id, with in-edge and
//!   out-edge lists in *separate* sections (so algorithms needing one
//!   direction read half the data) and edge attributes in further
//!   separate sections (so unweighted algorithms never touch them).
//!   The image is written once — FlashGraph minimizes SSD wearout by
//!   using one representation for all algorithms. Two encodings of
//!   the edge sections exist ([`ImageFormat`]): the raw v1 layout (4
//!   bytes per edge) and the delta-varint compressed v2 layout
//!   ([`codec`]), which shrinks typical sorted lists to roughly 40 %
//!   of raw so every semi-external iteration moves fewer device
//!   bytes.
//! * **In memory** (§3.5.1): a compact [`GraphIndex`] that stores one
//!   byte of degree per vertex per direction (with an overflow hash
//!   table for degrees ≥ 255) and an explicit byte offset only every
//!   32 vertices; the location of any edge list is *recomputed* by
//!   summing at most 31 degrees. This costs ~1.25 bytes/vertex for
//!   undirected and ~2.5 bytes/vertex for directed graphs —
//!   [`GraphIndex::heap_bytes`] lets tests verify the claim.
//!
//! # Example
//!
//! ```
//! use fg_format::{required_capacity, write_image, load_index};
//! use fg_graph::fixtures;
//! use fg_ssdsim::{ArrayConfig, SsdArray};
//! use fg_types::{EdgeDir, VertexId};
//!
//! let g = fixtures::diamond();
//! let array = SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(&g))?;
//! write_image(&g, &array)?;
//! let (meta, index) = load_index(&array)?;
//! assert_eq!(meta.num_vertices, 5);
//! assert_eq!(index.degree(VertexId(0), EdgeDir::Out), 2);
//! # Ok::<(), fg_types::FgError>(())
//! ```

pub mod codec;
mod image;
mod index;
mod sharded;

pub use image::{
    load_index, read_graph, read_list, read_meta, required_capacity, required_capacity_with,
    required_shard_capacities, shard_bounds, write_image, write_image_window, write_image_with,
    write_sharded_image, ImageFormat, ImageMeta, WriteOptions, SECTION_ALIGN,
};
pub use index::{
    EdgeListLoc, GraphIndex, ListSlice, PackedDirInput, SliceDecode, VarintSlice,
    CHECKPOINT_INTERVAL, LARGE_DEGREE,
};
pub use sharded::ShardedIndex;
