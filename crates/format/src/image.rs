//! Writing and loading the on-SSD graph image (§3.5.2 of the paper).
//!
//! Image layout (all sections start page-aligned):
//!
//! ```text
//! [ header page    ] magic, flags, counts, section table
//! [ degree section ] out-degrees as u32, then in-degrees (directed)
//! [ out-edge lists ] per vertex, ascending id: neighbour ids as u32
//! [ in-edge lists  ] (directed graphs only)
//! [ out-attributes ] per-edge f32 runs parallel to out-edges (weighted)
//! [ in-attributes  ] (directed + weighted)
//! ```
//!
//! Edge lists inside a section are *packed* — a vertex's list starts
//! wherever the previous one ended. The in-memory [`GraphIndex`]
//! recomputes those byte offsets from degrees, so no per-vertex
//! location table exists on disk or in RAM. The degree section exists
//! only to rebuild the index at load time ("init time" in the paper's
//! Table 2); edge traversal never touches it.

use fg_graph::Graph;
use fg_ssdsim::SsdArray;
use fg_types::{EdgeDir, FgError, Result, VertexId};

use crate::index::GraphIndex;

/// Alignment of every section start, independent of the SAFS page
/// size an engine later chooses.
pub const SECTION_ALIGN: u64 = 4096;

const MAGIC: &[u8; 8] = b"FGIMG10\0";
const FLAG_DIRECTED: u32 = 1;
const FLAG_WEIGHTED: u32 = 2;
/// Chunk size for streaming sections to the array during the write.
const WRITE_CHUNK: usize = 4 << 20;

/// Parsed image header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageMeta {
    /// Vertex count.
    pub num_vertices: u64,
    /// Edge count (directed edges; undirected images store each edge
    /// in both endpoint lists and report the undirected count).
    pub num_edges: u64,
    /// Whether in-edge lists exist.
    pub directed: bool,
    /// Whether attribute sections exist.
    pub weighted: bool,
    /// Byte offset of the degree section.
    pub deg_offset: u64,
    /// Byte offset of the out-edge section.
    pub out_edges_offset: u64,
    /// Byte offset of the in-edge section (directed only, else 0).
    pub in_edges_offset: u64,
    /// Byte offset of the out-attribute section (weighted only, else 0).
    pub out_attrs_offset: u64,
    /// Byte offset of the in-attribute section (directed+weighted, else 0).
    pub in_attrs_offset: u64,
    /// Total image size in bytes.
    pub total_bytes: u64,
}

fn align_up(x: u64) -> u64 {
    x.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Computes the section layout for `g` without writing anything.
fn layout(g: &Graph) -> ImageMeta {
    let n = g.num_vertices() as u64;
    let directed = g.is_directed();
    let weighted = g.has_weights();
    let out_csr = g.csr(EdgeDir::Out);
    let out_entries = out_csr.num_edges();
    let in_entries = if directed {
        g.csr(EdgeDir::In).num_edges()
    } else {
        0
    };

    let deg_offset = SECTION_ALIGN; // header occupies page 0
    let deg_bytes = n * 4 * if directed { 2 } else { 1 };
    let out_edges_offset = align_up(deg_offset + deg_bytes);
    let out_bytes = out_entries * 4;
    let in_edges_offset = if directed {
        align_up(out_edges_offset + out_bytes)
    } else {
        0
    };
    let in_bytes = in_entries * 4;
    let after_edges = if directed {
        in_edges_offset + in_bytes
    } else {
        out_edges_offset + out_bytes
    };
    let out_attrs_offset = if weighted { align_up(after_edges) } else { 0 };
    let in_attrs_offset = if weighted && directed {
        align_up(out_attrs_offset + out_bytes)
    } else {
        0
    };
    let total_bytes = if weighted {
        if directed {
            align_up(in_attrs_offset + in_bytes)
        } else {
            align_up(out_attrs_offset + out_bytes)
        }
    } else {
        align_up(after_edges)
    };
    ImageMeta {
        num_vertices: n,
        num_edges: g.num_edges(),
        directed,
        weighted,
        deg_offset,
        out_edges_offset,
        in_edges_offset,
        out_attrs_offset,
        in_attrs_offset,
        total_bytes,
    }
}

/// Bytes of array capacity needed to hold the image of `g`.
pub fn required_capacity(g: &Graph) -> u64 {
    layout(g).total_bytes
}

/// Streams one section to the array in [`WRITE_CHUNK`]-sized writes.
fn write_stream<F>(array: &SsdArray, offset: u64, total: u64, mut fill: F) -> Result<()>
where
    F: FnMut(&mut Vec<u8>),
{
    let mut written = 0u64;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(total as usize));
    while written < total {
        buf.clear();
        fill(&mut buf);
        if buf.is_empty() {
            return Err(FgError::CorruptImage("section producer ended early".into()));
        }
        array.write(offset + written, &buf)?;
        written += buf.len() as u64;
    }
    if written != total {
        return Err(FgError::CorruptImage(format!(
            "section wrote {written} bytes, expected {total}"
        )));
    }
    Ok(())
}

/// Chunked writer over per-vertex u32 runs.
fn write_u32_section<'a, I>(array: &SsdArray, offset: u64, total: u64, iter: I) -> Result<()>
where
    I: IntoIterator<Item = u32> + 'a,
{
    let mut it = iter.into_iter();
    write_stream(array, offset, total, |buf| {
        for v in it.by_ref() {
            buf.extend_from_slice(&v.to_le_bytes());
            if buf.len() >= WRITE_CHUNK {
                break;
            }
        }
    })
}

/// Writes the image of `g` at logical offset 0 of `array`.
///
/// This is the single write pass of a graph's life ("the only write
/// required by FlashGraph is to load a new graph to SSDs", §5.4); all
/// analysis afterwards is read-only.
///
/// # Errors
///
/// Returns [`FgError::InvalidRequest`] when the array is too small
/// (check [`required_capacity`]) and propagates store errors.
pub fn write_image(g: &Graph, array: &SsdArray) -> Result<ImageMeta> {
    let meta = layout(g);
    if array.capacity() < meta.total_bytes {
        return Err(FgError::InvalidRequest(format!(
            "array capacity {} below image size {}",
            array.capacity(),
            meta.total_bytes
        )));
    }

    // Header page.
    let mut header = vec![0u8; SECTION_ALIGN as usize];
    header[..8].copy_from_slice(MAGIC);
    let mut flags = 0u32;
    if meta.directed {
        flags |= FLAG_DIRECTED;
    }
    if meta.weighted {
        flags |= FLAG_WEIGHTED;
    }
    header[8..12].copy_from_slice(&flags.to_le_bytes());
    let fields = [
        meta.num_vertices,
        meta.num_edges,
        meta.deg_offset,
        meta.out_edges_offset,
        meta.in_edges_offset,
        meta.out_attrs_offset,
        meta.in_attrs_offset,
        meta.total_bytes,
    ];
    for (i, f) in fields.iter().enumerate() {
        let at = 16 + i * 8;
        header[at..at + 8].copy_from_slice(&f.to_le_bytes());
    }
    array.write(0, &header)?;

    let n = g.num_vertices();
    let out_csr = g.csr(EdgeDir::Out);

    // Degree section.
    let dirs: u64 = if meta.directed { 2 } else { 1 };
    let deg_total = meta.num_vertices * 4 * dirs;
    if deg_total > 0 {
        let out_degs = (0..n).map(|i| out_csr.degree(VertexId::from_index(i)) as u32);
        if meta.directed {
            let in_csr = g.csr(EdgeDir::In);
            let in_degs = (0..n).map(|i| in_csr.degree(VertexId::from_index(i)) as u32);
            write_u32_section(array, meta.deg_offset, deg_total, out_degs.chain(in_degs))?;
        } else {
            write_u32_section(array, meta.deg_offset, deg_total, out_degs)?;
        }
    }

    // Edge sections.
    let out_bytes = out_csr.num_edges() * 4;
    if out_bytes > 0 {
        write_u32_section(
            array,
            meta.out_edges_offset,
            out_bytes,
            out_csr.neighbor_array().iter().map(|v| v.0),
        )?;
    }
    if meta.directed {
        let in_csr = g.csr(EdgeDir::In);
        let in_bytes = in_csr.num_edges() * 4;
        if in_bytes > 0 {
            write_u32_section(
                array,
                meta.in_edges_offset,
                in_bytes,
                in_csr.neighbor_array().iter().map(|v| v.0),
            )?;
        }
    }

    // Attribute sections (f32 bit patterns as u32).
    if meta.weighted {
        let weights = |dir: EdgeDir| {
            let csr = g.csr(dir);
            (0..n).flat_map(move |i| {
                csr.weights_of(VertexId::from_index(i))
                    .expect("weighted graph has weights")
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>()
            })
        };
        if out_bytes > 0 {
            write_u32_section(
                array,
                meta.out_attrs_offset,
                out_bytes,
                weights(EdgeDir::Out),
            )?;
        }
        if meta.directed {
            let in_bytes = g.csr(EdgeDir::In).num_edges() * 4;
            if in_bytes > 0 {
                write_u32_section(array, meta.in_attrs_offset, in_bytes, weights(EdgeDir::In))?;
            }
        }
    }

    Ok(meta)
}

/// Reads and validates the header page.
///
/// # Errors
///
/// Returns [`FgError::CorruptImage`] on a bad magic, impossible
/// section table, or counts that do not fit the array.
pub fn read_meta(array: &SsdArray) -> Result<ImageMeta> {
    let mut header = vec![0u8; SECTION_ALIGN as usize];
    array.read(0, &mut header)?;
    if &header[..8] != MAGIC {
        return Err(FgError::CorruptImage("bad magic".into()));
    }
    let flags = u32::from_le_bytes(header[8..12].try_into().unwrap());
    let mut fields = [0u64; 8];
    for (i, f) in fields.iter_mut().enumerate() {
        let at = 16 + i * 8;
        *f = u64::from_le_bytes(header[at..at + 8].try_into().unwrap());
    }
    let meta = ImageMeta {
        num_vertices: fields[0],
        num_edges: fields[1],
        directed: flags & FLAG_DIRECTED != 0,
        weighted: flags & FLAG_WEIGHTED != 0,
        deg_offset: fields[2],
        out_edges_offset: fields[3],
        in_edges_offset: fields[4],
        out_attrs_offset: fields[5],
        in_attrs_offset: fields[6],
        total_bytes: fields[7],
    };
    if meta.total_bytes > array.capacity() {
        return Err(FgError::CorruptImage(format!(
            "image claims {} bytes, array holds {}",
            meta.total_bytes,
            array.capacity()
        )));
    }
    if meta.num_vertices > u32::MAX as u64 {
        return Err(FgError::CorruptImage(format!(
            "vertex count {} exceeds u32 id space",
            meta.num_vertices
        )));
    }
    if meta.deg_offset != SECTION_ALIGN || meta.out_edges_offset < meta.deg_offset {
        return Err(FgError::CorruptImage("section table out of order".into()));
    }
    Ok(meta)
}

/// Loads the header and rebuilds the compact [`GraphIndex`] by
/// streaming the degree section — the "init" phase of Table 2.
///
/// # Errors
///
/// Propagates [`read_meta`] failures and degree-section reads.
pub fn load_index(array: &SsdArray) -> Result<(ImageMeta, GraphIndex)> {
    let meta = read_meta(array)?;
    let n = meta.num_vertices as usize;
    let read_degrees = |offset: u64| -> Result<Vec<u64>> {
        let mut degs = Vec::with_capacity(n);
        let total = n * 4;
        let mut done = 0usize;
        let mut buf = vec![0u8; WRITE_CHUNK.min(total.max(1))];
        while done < total {
            let chunk = (total - done).min(buf.len());
            array.read(offset + done as u64, &mut buf[..chunk])?;
            for quad in buf[..chunk].chunks_exact(4) {
                degs.push(u32::from_le_bytes(quad.try_into().unwrap()) as u64);
            }
            done += chunk;
        }
        Ok(degs)
    };
    let out_degrees = if n > 0 {
        read_degrees(meta.deg_offset)?
    } else {
        Vec::new()
    };
    let in_degrees = if meta.directed && n > 0 {
        Some(read_degrees(meta.deg_offset + n as u64 * 4)?)
    } else if meta.directed {
        Some(Vec::new())
    } else {
        None
    };
    let index = GraphIndex::build(
        &out_degrees,
        in_degrees.as_deref(),
        4,
        meta.out_edges_offset,
        meta.in_edges_offset,
        meta.weighted.then_some(meta.out_attrs_offset),
        (meta.weighted && meta.directed).then_some(meta.in_attrs_offset),
    );
    Ok((meta, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};
    use fg_ssdsim::ArrayConfig;

    fn image_of(g: &Graph) -> (SsdArray, ImageMeta, GraphIndex) {
        let array = SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(g)).unwrap();
        let meta = write_image(g, &array).unwrap();
        let (meta2, index) = load_index(&array).unwrap();
        assert_eq!(meta, meta2);
        (array, meta, index)
    }

    /// Reads the edge list of `v` back from the raw image.
    fn read_edges(array: &SsdArray, index: &GraphIndex, v: VertexId, dir: EdgeDir) -> Vec<u32> {
        let loc = index.locate(v, dir);
        if loc.bytes == 0 {
            return Vec::new();
        }
        let mut buf = vec![0u8; loc.bytes as usize];
        array.read(loc.offset, &mut buf).unwrap();
        buf.chunks_exact(4)
            .map(|q| u32::from_le_bytes(q.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn round_trip_directed_edges() {
        let g = fixtures::diamond();
        let (array, meta, index) = image_of(&g);
        assert!(meta.directed);
        for v in g.vertices() {
            let out: Vec<u32> = g.out_neighbors(v).iter().map(|n| n.0).collect();
            assert_eq!(read_edges(&array, &index, v, EdgeDir::Out), out, "out {v}");
            let inn: Vec<u32> = g.in_neighbors(v).iter().map(|n| n.0).collect();
            assert_eq!(read_edges(&array, &index, v, EdgeDir::In), inn, "in {v}");
        }
    }

    #[test]
    fn round_trip_undirected() {
        let g = fixtures::complete(9);
        let (array, meta, index) = image_of(&g);
        assert!(!meta.directed);
        for v in g.vertices() {
            let want: Vec<u32> = g.out_neighbors(v).iter().map(|n| n.0).collect();
            assert_eq!(read_edges(&array, &index, v, EdgeDir::Out), want);
            // In == out for undirected images.
            assert_eq!(read_edges(&array, &index, v, EdgeDir::In), want);
        }
    }

    #[test]
    fn round_trip_rmat_spot_checks() {
        let g = gen::rmat(9, 8, gen::RmatSkew::default(), 33);
        let (array, _meta, index) = image_of(&g);
        for raw in [0u32, 1, 100, 511] {
            let v = VertexId(raw);
            let want: Vec<u32> = g.out_neighbors(v).iter().map(|n| n.0).collect();
            assert_eq!(read_edges(&array, &index, v, EdgeDir::Out), want);
            let want: Vec<u32> = g.in_neighbors(v).iter().map(|n| n.0).collect();
            assert_eq!(read_edges(&array, &index, v, EdgeDir::In), want);
        }
        // Index degrees match the graph everywhere.
        for v in g.vertices() {
            assert_eq!(index.degree(v, EdgeDir::Out) as usize, g.out_degree(v));
        }
    }

    #[test]
    fn weighted_image_round_trips_attrs() {
        let g = fixtures::weighted_square();
        let (array, meta, index) = image_of(&g);
        assert!(meta.weighted);
        let loc = index.locate_attrs(VertexId(0), EdgeDir::Out).unwrap();
        let mut buf = vec![0u8; loc.bytes as usize];
        array.read(loc.offset, &mut buf).unwrap();
        let ws: Vec<f32> = buf
            .chunks_exact(4)
            .map(|q| f32::from_bits(u32::from_le_bytes(q.try_into().unwrap())))
            .collect();
        assert_eq!(ws, vec![1.0, 5.0]);
    }

    #[test]
    fn sections_are_aligned_and_ordered() {
        let g = gen::rmat(8, 4, gen::RmatSkew::default(), 5);
        let meta = layout(&g);
        for off in [meta.deg_offset, meta.out_edges_offset, meta.in_edges_offset] {
            assert_eq!(off % SECTION_ALIGN, 0);
        }
        assert!(meta.out_edges_offset > meta.deg_offset);
        assert!(meta.in_edges_offset > meta.out_edges_offset);
        assert!(meta.total_bytes >= meta.in_edges_offset);
    }

    #[test]
    fn bad_magic_rejected() {
        let array = SsdArray::new_mem(ArrayConfig::small_test(), 1 << 16).unwrap();
        array.write(0, &[0xFFu8; 4096]).unwrap();
        assert!(matches!(read_meta(&array), Err(FgError::CorruptImage(_))));
    }

    #[test]
    fn truncated_image_rejected() {
        let g = fixtures::complete(9);
        let full = SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(&g)).unwrap();
        write_image(&g, &full).unwrap();
        // Copy only the header into a smaller array.
        let small = SsdArray::new_mem(ArrayConfig::small_test(), SECTION_ALIGN).unwrap();
        let mut header = vec![0u8; SECTION_ALIGN as usize];
        full.read(0, &mut header).unwrap();
        small.write(0, &header).unwrap();
        assert!(read_meta(&small).is_err());
    }

    #[test]
    fn too_small_array_rejected_at_write() {
        let g = fixtures::complete(9);
        let array = SsdArray::new_mem(ArrayConfig::small_test(), 4096).unwrap();
        assert!(write_image(&g, &array).is_err());
    }

    #[test]
    fn empty_graph_image() {
        let g = fg_graph::GraphBuilder::directed().build();
        let (_array, meta, index) = image_of(&g);
        assert_eq!(meta.num_vertices, 0);
        assert_eq!(index.num_vertices(), 0);
    }

    #[test]
    fn image_write_is_the_only_write() {
        // Wearout check: loading + reading back causes no writes.
        let g = fixtures::complete(6);
        let array = SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(&g)).unwrap();
        write_image(&g, &array).unwrap();
        let wear_after_load = array.stats().snapshot().bytes_written;
        let (_, index) = load_index(&array).unwrap();
        for v in g.vertices() {
            read_edges(&array, &index, v, EdgeDir::Out);
        }
        assert_eq!(array.stats().snapshot().bytes_written, wear_after_load);
    }
}
