//! Writing and loading the on-SSD graph image (§3.5.2 of the paper).
//!
//! Two image formats share one section skeleton (all sections start
//! page-aligned):
//!
//! ```text
//! [ header page    ] magic, flags, counts, section table
//! [ degree section ] out-degrees as u32, then in-degrees (directed)
//! [ length section ] v2 only: per-vertex block lengths (see below)
//! [ out-edge lists ] per vertex, ascending id
//! [ in-edge lists  ] (directed graphs only)
//! [ out-attributes ] per-edge f32 runs parallel to out-edges (weighted)
//! [ in-attributes  ] (directed + weighted)
//! ```
//!
//! **v1 (`Raw`)** stores every edge as a `u32`; a vertex's list starts
//! wherever the previous one ended, and the in-memory [`GraphIndex`]
//! recomputes byte offsets from degrees alone — no per-vertex location
//! table exists on disk or in RAM.
//!
//! **v2 (`Compressed`)** stores each vertex's list as a *block*:
//! either raw (identical bytes to v1) or delta-varint compressed with
//! a restart skip table (see [`crate::codec`]). Block lengths are
//! variable, so the image adds a length section — one `u32` per
//! vertex per direction, top bit ([`crate::codec::RAW_LIST_FLAG`])
//! recording which encoding the block got — from which the index
//! rebuilds offsets at load time and learns, without guessing, how
//! each block decodes. Weighted graphs force every block raw so the
//! attribute sections stay positionally aligned with their edges.
//!
//! The degree (and v2 length) sections exist only to rebuild the
//! index at load time ("init time" in the paper's Table 2); edge
//! traversal never touches them.

use std::collections::HashMap;

use fg_graph::Graph;
use fg_ssdsim::SsdArray;
use fg_types::{EdgeDir, FgError, Result, VertexId};

use crate::codec::{self, skip_entries, DEFAULT_SKIP_INTERVAL, RAW_LIST_FLAG, TINY_RAW_DEGREE};
use crate::index::{GraphIndex, PackedDirInput, SliceDecode};

/// Alignment of every section start, independent of the SAFS page
/// size an engine later chooses.
pub const SECTION_ALIGN: u64 = 4096;

const MAGIC_V1: &[u8; 8] = b"FGIMG10\0";
const MAGIC_V2: &[u8; 8] = b"FGIMG20\0";
const FLAG_DIRECTED: u32 = 1;
const FLAG_WEIGHTED: u32 = 2;
/// Chunk size for streaming sections to the array during the write.
const WRITE_CHUNK: usize = 4 << 20;
/// Upper bound accepted for a v2 image's skip interval — far above
/// any useful value, low enough to reject corrupt headers.
const MAX_SKIP_INTERVAL: u32 = 1 << 20;

/// Which on-SSD encoding [`write_image_with`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImageFormat {
    /// v1: 4 bytes per edge, offsets recomputed from degrees.
    #[default]
    Raw,
    /// v2: per-vertex delta-varint blocks with raw fallback.
    Compressed,
}

impl ImageFormat {
    /// Reads `FG_IMAGE_FORMAT` (`raw` | `compressed`, default `raw`) —
    /// how the CI stress jobs run the whole test pyramid under both
    /// formats without per-test plumbing.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value, so a typo in a CI matrix
    /// fails loudly instead of silently testing the default.
    pub fn from_env() -> Self {
        match std::env::var("FG_IMAGE_FORMAT") {
            Err(_) => ImageFormat::Raw,
            Ok(s) => match s.to_ascii_lowercase().as_str() {
                "" | "raw" | "v1" => ImageFormat::Raw,
                "compressed" | "v2" => ImageFormat::Compressed,
                other => panic!("FG_IMAGE_FORMAT={other:?}: expected \"raw\" or \"compressed\""),
            },
        }
    }
}

/// Knobs of one image write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOptions {
    /// Target format.
    pub format: ImageFormat,
    /// Restart/skip interval `k` in edges for compressed blocks: one
    /// skip-table entry (4 bytes) per `k` edges, and ranged hub reads
    /// over-fetch at most `k - 1` edges per end. Smaller `k` = finer
    /// ranged reads, larger tables. Ignored for [`ImageFormat::Raw`].
    pub skip_interval: u32,
    /// Image generation stamped into the header (bytes 12..16).
    /// Frozen images stay at 0; the serving layer's compactor bumps
    /// it for each rewrite so an atomic index flip can assert which
    /// image it switched to. Old images read back as generation 0.
    pub generation: u32,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            format: ImageFormat::Raw,
            skip_interval: DEFAULT_SKIP_INTERVAL,
            generation: 0,
        }
    }
}

impl WriteOptions {
    /// Compressed at the default skip interval.
    pub fn compressed() -> Self {
        WriteOptions {
            format: ImageFormat::Compressed,
            ..Self::default()
        }
    }

    /// Options honouring `FG_IMAGE_FORMAT` (see
    /// [`ImageFormat::from_env`]).
    pub fn from_env() -> Self {
        WriteOptions {
            format: ImageFormat::from_env(),
            ..Self::default()
        }
    }

    /// Builder-style: sets the skip interval.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn with_skip_interval(mut self, k: u32) -> Self {
        assert!(k > 0, "skip interval must be positive");
        self.skip_interval = k;
        self
    }

    /// Builder-style: stamps an image generation into the header.
    pub fn with_generation(mut self, generation: u32) -> Self {
        self.generation = generation;
        self
    }
}

/// Parsed image header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageMeta {
    /// Vertex count.
    pub num_vertices: u64,
    /// Edge count (directed edges; undirected images store each edge
    /// in both endpoint lists and report the undirected count).
    pub num_edges: u64,
    /// Whether in-edge lists exist.
    pub directed: bool,
    /// Whether attribute sections exist.
    pub weighted: bool,
    /// On-SSD encoding of the edge sections.
    pub format: ImageFormat,
    /// Byte offset of the degree section.
    pub deg_offset: u64,
    /// Byte offset of the per-vertex block-length section
    /// (v2/compressed only, else 0).
    pub len_offset: u64,
    /// Byte offset of the out-edge section.
    pub out_edges_offset: u64,
    /// Byte offset of the in-edge section (directed only, else 0).
    pub in_edges_offset: u64,
    /// Byte offset of the out-attribute section (weighted only, else 0).
    pub out_attrs_offset: u64,
    /// Byte offset of the in-attribute section (directed+weighted, else 0).
    pub in_attrs_offset: u64,
    /// Total image size in bytes.
    pub total_bytes: u64,
    /// Restart interval of compressed blocks (v2 only, else 0).
    pub skip_interval: u32,
    /// Image generation (see [`WriteOptions::generation`]); 0 for
    /// frozen images and images written before generations existed.
    pub generation: u32,
}

fn align_up(x: u64) -> u64 {
    x.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// One write's fully computed plan: the header fields plus, for v2,
/// the per-direction flagged block lengths the encode pass produced.
struct Plan {
    meta: ImageMeta,
    out_blocks: Option<Vec<u32>>,
    in_blocks: Option<Vec<u32>>,
    /// Unpadded byte size of the out-edge section (sum of masked
    /// block lengths for v2, `edges * 4` for v1) — computed once here
    /// so the writer streams exactly what the layout promised.
    out_bytes: u64,
    /// Likewise for the in-edge section (0 when undirected).
    in_bytes: u64,
}

/// Computes the flagged block lengths of one direction's lists.
///
/// Weighted graphs force raw blocks (attribute runs must stay
/// positionally aligned); otherwise each list ≥ [`TINY_RAW_DEGREE`]
/// edges is delta-varint encoded unless that would not shrink it.
///
/// # Panics
///
/// Panics with a clear message when a list's raw encoding reaches
/// [`RAW_LIST_FLAG`] bytes (degree ≥ 2²⁹): v2 block lengths
/// are `u31` + flag bit, so such a vertex cannot be represented —
/// write a raw (v1) image instead. Without this guard the degree
/// would silently collide with the flag bit and corrupt the length
/// table.
fn plan_blocks(g: &Graph, dir: EdgeDir, k: u32, force_raw: bool, lo: usize, hi: usize) -> Vec<u32> {
    let csr = g.csr(dir);
    let mut blocks = Vec::with_capacity(hi - lo);
    let mut ids = Vec::new();
    let mut scratch = Vec::new();
    for i in lo..hi {
        let list = csr.neighbors(VertexId::from_index(i));
        assert!(
            (list.len() as u64 * 4) < u64::from(RAW_LIST_FLAG),
            "vertex {i}: degree {} exceeds the v2 per-block length limit \
             ({} bytes raw ≥ 2^31); use ImageFormat::Raw for this graph",
            list.len(),
            list.len() as u64 * 4,
        );
        let raw_bytes = list.len() as u32 * 4;
        if force_raw {
            blocks.push(raw_bytes | RAW_LIST_FLAG);
            continue;
        }
        ids.clear();
        ids.extend(list.iter().map(|v| v.0));
        scratch.clear();
        if codec::encode_list(&ids, k, &mut scratch) {
            debug_assert!((scratch.len() as u64) < u64::from(RAW_LIST_FLAG));
            blocks.push(scratch.len() as u32);
        } else {
            blocks.push(raw_bytes | RAW_LIST_FLAG);
        }
    }
    blocks
}

/// Computes the section layout (and, for v2, block lengths) for `g`
/// without writing anything.
fn plan(g: &Graph, opts: &WriteOptions) -> Plan {
    plan_window(g, opts, 0, g.num_vertices())
}

/// Windowed [`plan`]: the layout of an image holding only vertices
/// `[lo, hi)` of `g` — the per-shard building block of
/// [`write_sharded_image`]. Vertex `lo + i` becomes local id `i` in
/// the shard image (section positions are local); edge *values* stay
/// global vertex ids, so shard lists splice back losslessly.
fn plan_window(g: &Graph, opts: &WriteOptions, lo: usize, hi: usize) -> Plan {
    assert!(opts.skip_interval > 0, "skip interval must be positive");
    assert!(
        lo <= hi && hi <= g.num_vertices(),
        "window [{lo}, {hi}) outside graph of {} vertices",
        g.num_vertices()
    );
    let whole = lo == 0 && hi == g.num_vertices();
    let n = (hi - lo) as u64;
    let directed = g.is_directed();
    let weighted = g.has_weights();
    let compressed = opts.format == ImageFormat::Compressed;

    let (out_blocks, in_blocks) = if compressed {
        let k = opts.skip_interval;
        (
            Some(plan_blocks(g, EdgeDir::Out, k, weighted, lo, hi)),
            directed.then(|| plan_blocks(g, EdgeDir::In, k, weighted, lo, hi)),
        )
    } else {
        (None, None)
    };
    // Edge-list entries the window covers in one direction (a byte
    // extent of the CSR, like `GraphIndex::locate_extent` over the
    // on-SSD image).
    let entries = |dir: EdgeDir| -> u64 {
        let off = g.csr(dir).offsets();
        off[hi] - off[lo]
    };
    let section_bytes = |blocks: &Option<Vec<u32>>, dir: EdgeDir| -> u64 {
        match blocks {
            Some(b) => b.iter().map(|&l| (l & !RAW_LIST_FLAG) as u64).sum(),
            None => entries(dir) * 4,
        }
    };
    let out_bytes = section_bytes(&out_blocks, EdgeDir::Out);
    let in_bytes = if directed {
        section_bytes(&in_blocks, EdgeDir::In)
    } else {
        0
    };
    let out_attr_bytes = entries(EdgeDir::Out) * 4;
    let in_attr_bytes = if directed {
        entries(EdgeDir::In) * 4
    } else {
        0
    };

    let dirs: u64 = if directed { 2 } else { 1 };
    let deg_offset = SECTION_ALIGN; // header occupies page 0
    let deg_bytes = n * 4 * dirs;
    let (len_offset, after_fixed) = if compressed {
        let len_offset = align_up(deg_offset + deg_bytes);
        (len_offset, len_offset + n * 4 * dirs)
    } else {
        (0, deg_offset + deg_bytes)
    };
    let out_edges_offset = align_up(after_fixed);
    let in_edges_offset = if directed {
        align_up(out_edges_offset + out_bytes)
    } else {
        0
    };
    let after_edges = if directed {
        in_edges_offset + in_bytes
    } else {
        out_edges_offset + out_bytes
    };
    let out_attrs_offset = if weighted { align_up(after_edges) } else { 0 };
    let in_attrs_offset = if weighted && directed {
        align_up(out_attrs_offset + out_attr_bytes)
    } else {
        0
    };
    let total_bytes = if weighted {
        if directed {
            align_up(in_attrs_offset + in_attr_bytes)
        } else {
            align_up(out_attrs_offset + out_attr_bytes)
        }
    } else {
        align_up(after_edges)
    };
    Plan {
        meta: ImageMeta {
            num_vertices: n,
            // Shard windows report the edge-list entries they store
            // (out direction); only the whole image knows the graph's
            // undirected edge count.
            num_edges: if whole {
                g.num_edges()
            } else {
                entries(EdgeDir::Out)
            },
            directed,
            weighted,
            format: opts.format,
            deg_offset,
            len_offset,
            out_edges_offset,
            in_edges_offset,
            out_attrs_offset,
            in_attrs_offset,
            total_bytes,
            skip_interval: if compressed { opts.skip_interval } else { 0 },
            generation: opts.generation,
        },
        out_blocks,
        in_blocks,
        out_bytes,
        in_bytes,
    }
}

/// Bytes of array capacity needed to hold the raw (v1) image of `g`.
pub fn required_capacity(g: &Graph) -> u64 {
    required_capacity_with(g, &WriteOptions::default())
}

/// Bytes of array capacity needed for the image of `g` under `opts`.
/// For compressed images this runs the encode pass to size the
/// variable-length blocks (the write runs it again; the whole-graph
/// write is a once-per-graph event — §5.4).
pub fn required_capacity_with(g: &Graph, opts: &WriteOptions) -> u64 {
    plan(g, opts).meta.total_bytes
}

/// Streams one section to the array in [`WRITE_CHUNK`]-sized writes.
fn write_stream<F>(array: &SsdArray, offset: u64, total: u64, mut fill: F) -> Result<()>
where
    F: FnMut(&mut Vec<u8>),
{
    let mut written = 0u64;
    let mut buf = Vec::with_capacity(WRITE_CHUNK.min(total as usize));
    while written < total {
        buf.clear();
        fill(&mut buf);
        if buf.is_empty() {
            return Err(FgError::CorruptImage("section producer ended early".into()));
        }
        array.write(offset + written, &buf)?;
        written += buf.len() as u64;
    }
    if written != total {
        return Err(FgError::CorruptImage(format!(
            "section wrote {written} bytes, expected {total}"
        )));
    }
    Ok(())
}

/// Chunked writer over per-vertex u32 runs.
fn write_u32_section<'a, I>(array: &SsdArray, offset: u64, total: u64, iter: I) -> Result<()>
where
    I: IntoIterator<Item = u32> + 'a,
{
    let mut it = iter.into_iter();
    write_stream(array, offset, total, |buf| {
        for v in it.by_ref() {
            buf.extend_from_slice(&v.to_le_bytes());
            if buf.len() >= WRITE_CHUNK {
                break;
            }
        }
    })
}

/// Streams one direction's v2 blocks: per vertex of the window
/// starting at `lo`, either the raw `u32` run or the compressed
/// block, exactly as sized by `blocks`.
#[allow(clippy::too_many_arguments)] // internal writer plumbing, all call sites in this file
fn write_block_section(
    array: &SsdArray,
    offset: u64,
    total: u64,
    g: &Graph,
    dir: EdgeDir,
    blocks: &[u32],
    k: u32,
    lo: usize,
) -> Result<()> {
    let csr = g.csr(dir);
    let mut lists = (0..blocks.len()).map(|i| (i, csr.neighbors(VertexId::from_index(lo + i))));
    let mut ids = Vec::new();
    write_stream(array, offset, total, |buf| {
        for (i, list) in lists.by_ref() {
            let before = buf.len();
            if blocks[i] & RAW_LIST_FLAG != 0 {
                for v in list {
                    buf.extend_from_slice(&v.0.to_le_bytes());
                }
            } else {
                ids.clear();
                ids.extend(list.iter().map(|v| v.0));
                let compressed = codec::encode_list(&ids, k, buf);
                debug_assert!(compressed, "encode decision is deterministic");
            }
            debug_assert_eq!(
                (buf.len() - before) as u32,
                blocks[i] & !RAW_LIST_FLAG,
                "block {i} sized differently than planned"
            );
            if buf.len() >= WRITE_CHUNK {
                break;
            }
        }
    })
}

/// Writes the raw (v1) image of `g` at logical offset 0 of `array` —
/// shorthand for [`write_image_with`] and the default options.
///
/// # Errors
///
/// See [`write_image_with`].
pub fn write_image(g: &Graph, array: &SsdArray) -> Result<ImageMeta> {
    write_image_with(g, array, &WriteOptions::default())
}

/// Writes the image of `g` at logical offset 0 of `array` in the
/// format `opts` selects.
///
/// This is the single write pass of a graph's life ("the only write
/// required by FlashGraph is to load a new graph to SSDs", §5.4); all
/// analysis afterwards is read-only.
///
/// # Errors
///
/// Returns [`FgError::InvalidRequest`] when the array is too small
/// (check [`required_capacity_with`]) and propagates store errors.
///
/// # Panics
///
/// Panics if a compressed write is asked for a graph whose adjacency
/// lists are not sorted (the [`fg_graph::GraphBuilder`] invariant;
/// see [`fg_graph::Csr::lists_sorted`]).
pub fn write_image_with(g: &Graph, array: &SsdArray, opts: &WriteOptions) -> Result<ImageMeta> {
    write_image_window(g, array, opts, 0, g.num_vertices())
}

/// Writes the image of vertices `[lo, hi)` of `g` — one shard of a
/// sharded image. Local id `i` in the shard is global vertex
/// `lo + i`; edge values stay global ids. `write_image_with` is the
/// `[0, n)` case.
///
/// # Errors
///
/// See [`write_image_with`].
pub fn write_image_window(
    g: &Graph,
    array: &SsdArray,
    opts: &WriteOptions,
    lo: usize,
    hi: usize,
) -> Result<ImageMeta> {
    if opts.format == ImageFormat::Compressed {
        assert!(
            g.csr(EdgeDir::Out).lists_sorted()
                && (!g.is_directed() || g.csr(EdgeDir::In).lists_sorted()),
            "delta encoding requires sorted adjacency lists"
        );
    }
    let Plan {
        meta,
        out_blocks,
        in_blocks,
        out_bytes,
        in_bytes,
    } = plan_window(g, opts, lo, hi);
    if array.capacity() < meta.total_bytes {
        return Err(FgError::InvalidRequest(format!(
            "array capacity {} below image size {}",
            array.capacity(),
            meta.total_bytes
        )));
    }

    // Header page.
    let mut header = vec![0u8; SECTION_ALIGN as usize];
    let v2 = meta.format == ImageFormat::Compressed;
    header[..8].copy_from_slice(if v2 { MAGIC_V2 } else { MAGIC_V1 });
    let mut flags = 0u32;
    if meta.directed {
        flags |= FLAG_DIRECTED;
    }
    if meta.weighted {
        flags |= FLAG_WEIGHTED;
    }
    header[8..12].copy_from_slice(&flags.to_le_bytes());
    header[12..16].copy_from_slice(&meta.generation.to_le_bytes());
    let mut fields = vec![
        meta.num_vertices,
        meta.num_edges,
        meta.deg_offset,
        meta.out_edges_offset,
        meta.in_edges_offset,
        meta.out_attrs_offset,
        meta.in_attrs_offset,
        meta.total_bytes,
    ];
    if v2 {
        fields.push(meta.len_offset);
        fields.push(meta.skip_interval as u64);
    }
    for (i, f) in fields.iter().enumerate() {
        let at = 16 + i * 8;
        header[at..at + 8].copy_from_slice(&f.to_le_bytes());
    }
    array.write(0, &header)?;

    let out_csr = g.csr(EdgeDir::Out);

    // Degree section.
    let dirs: u64 = if meta.directed { 2 } else { 1 };
    let deg_total = meta.num_vertices * 4 * dirs;
    if deg_total > 0 {
        let out_degs = (lo..hi).map(|i| out_csr.degree(VertexId::from_index(i)) as u32);
        if meta.directed {
            let in_csr = g.csr(EdgeDir::In);
            let in_degs = (lo..hi).map(|i| in_csr.degree(VertexId::from_index(i)) as u32);
            write_u32_section(array, meta.deg_offset, deg_total, out_degs.chain(in_degs))?;
        } else {
            write_u32_section(array, meta.deg_offset, deg_total, out_degs)?;
        }
    }

    // Length section (v2): flagged block lengths, out then in.
    if v2 && deg_total > 0 {
        let out_it = out_blocks.as_deref().unwrap().iter().copied();
        match in_blocks.as_deref() {
            Some(in_b) => write_u32_section(
                array,
                meta.len_offset,
                deg_total,
                out_it.chain(in_b.iter().copied()),
            )?,
            None => write_u32_section(array, meta.len_offset, deg_total, out_it)?,
        }
    }

    // Edge sections — sized by the plan, so the writer streams
    // exactly the bytes the header's section table promised.
    let window_entries = |dir: EdgeDir| {
        let csr = g.csr(dir);
        let off = csr.offsets();
        &csr.neighbor_array()[off[lo] as usize..off[hi] as usize]
    };
    let out_total = out_bytes;
    if out_total > 0 {
        match &out_blocks {
            Some(b) => write_block_section(
                array,
                meta.out_edges_offset,
                out_total,
                g,
                EdgeDir::Out,
                b,
                meta.skip_interval,
                lo,
            )?,
            None => write_u32_section(
                array,
                meta.out_edges_offset,
                out_total,
                window_entries(EdgeDir::Out).iter().map(|v| v.0),
            )?,
        }
    }
    if meta.directed {
        let in_total = in_bytes;
        if in_total > 0 {
            match &in_blocks {
                Some(b) => write_block_section(
                    array,
                    meta.in_edges_offset,
                    in_total,
                    g,
                    EdgeDir::In,
                    b,
                    meta.skip_interval,
                    lo,
                )?,
                None => write_u32_section(
                    array,
                    meta.in_edges_offset,
                    in_total,
                    window_entries(EdgeDir::In).iter().map(|v| v.0),
                )?,
            }
        }
    }

    // Attribute sections (f32 bit patterns as u32). Weighted images
    // keep every edge block raw, so the runs stay positionally
    // aligned in both formats.
    if meta.weighted {
        let weights = |dir: EdgeDir| {
            let csr = g.csr(dir);
            (lo..hi).flat_map(move |i| {
                csr.weights_of(VertexId::from_index(i))
                    .expect("weighted graph has weights")
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>()
            })
        };
        let attr_bytes = |dir: EdgeDir| {
            let off = g.csr(dir).offsets();
            (off[hi] - off[lo]) * 4
        };
        let out_attr_bytes = attr_bytes(EdgeDir::Out);
        if out_attr_bytes > 0 {
            write_u32_section(
                array,
                meta.out_attrs_offset,
                out_attr_bytes,
                weights(EdgeDir::Out),
            )?;
        }
        if meta.directed {
            let in_attr_bytes = attr_bytes(EdgeDir::In);
            if in_attr_bytes > 0 {
                write_u32_section(
                    array,
                    meta.in_attrs_offset,
                    in_attr_bytes,
                    weights(EdgeDir::In),
                )?;
            }
        }
    }

    Ok(meta)
}

/// Even contiguous vertex-range split of `n` vertices into `shards`
/// parts: `shards + 1` ascending bounds with `bounds[s]..bounds[s+1]`
/// the global id range of shard `s`. The first `n % shards` shards
/// take one extra vertex.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_bounds(n: usize, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "at least one shard");
    let base = n / shards;
    let extra = n % shards;
    let mut bounds = Vec::with_capacity(shards + 1);
    let mut at = 0usize;
    bounds.push(0);
    for s in 0..shards {
        at += base + usize::from(s < extra);
        bounds.push(at);
    }
    bounds
}

/// Bytes of array capacity each of `shards` arrays needs for the
/// sharded image of `g` under `opts` (same split as
/// [`write_sharded_image`]).
pub fn required_shard_capacities(g: &Graph, opts: &WriteOptions, shards: usize) -> Vec<u64> {
    let bounds = shard_bounds(g.num_vertices(), shards);
    (0..shards)
        .map(|s| {
            plan_window(g, opts, bounds[s], bounds[s + 1])
                .meta
                .total_bytes
        })
        .collect()
}

/// Writes `g` as one image per array, each holding an even contiguous
/// vertex range ([`shard_bounds`]) — the on-SSD layout of sharded
/// execution: shard `s` serves global vertices
/// `bounds[s]..bounds[s+1]` as local ids `0..len`, with edge values
/// kept global so cross-shard edges need no translation. Every shard
/// is itself a complete, self-validating image
/// ([`load_index`]-compatible); `ShardedIndex::load` reassembles the
/// global view.
///
/// # Errors
///
/// See [`write_image_with`] — per shard, against its own array.
pub fn write_sharded_image(
    g: &Graph,
    arrays: &[SsdArray],
    opts: &WriteOptions,
) -> Result<Vec<ImageMeta>> {
    let bounds = shard_bounds(g.num_vertices(), arrays.len());
    arrays
        .iter()
        .enumerate()
        .map(|(s, array)| write_image_window(g, array, opts, bounds[s], bounds[s + 1]))
        .collect()
}

/// Reads and validates the header page.
///
/// # Errors
///
/// Returns [`FgError::CorruptImage`] on a bad magic, impossible
/// section table, or counts that do not fit the array.
pub fn read_meta(array: &SsdArray) -> Result<ImageMeta> {
    let mut header = vec![0u8; SECTION_ALIGN as usize];
    array.read(0, &mut header)?;
    let format = match &header[..8] {
        m if m == MAGIC_V1 => ImageFormat::Raw,
        m if m == MAGIC_V2 => ImageFormat::Compressed,
        _ => return Err(FgError::CorruptImage("bad magic".into())),
    };
    let flags = u32::from_le_bytes(header[8..12].try_into().unwrap());
    let generation = u32::from_le_bytes(header[12..16].try_into().unwrap());
    let nfields = if format == ImageFormat::Compressed {
        10
    } else {
        8
    };
    let mut fields = vec![0u64; nfields];
    for (i, f) in fields.iter_mut().enumerate() {
        let at = 16 + i * 8;
        *f = u64::from_le_bytes(header[at..at + 8].try_into().unwrap());
    }
    let meta = ImageMeta {
        num_vertices: fields[0],
        num_edges: fields[1],
        directed: flags & FLAG_DIRECTED != 0,
        weighted: flags & FLAG_WEIGHTED != 0,
        format,
        deg_offset: fields[2],
        len_offset: if format == ImageFormat::Compressed {
            fields[8]
        } else {
            0
        },
        out_edges_offset: fields[3],
        in_edges_offset: fields[4],
        out_attrs_offset: fields[5],
        in_attrs_offset: fields[6],
        total_bytes: fields[7],
        skip_interval: if format == ImageFormat::Compressed {
            fields[9] as u32
        } else {
            0
        },
        generation,
    };
    if meta.total_bytes > array.capacity() {
        return Err(FgError::CorruptImage(format!(
            "image claims {} bytes, array holds {}",
            meta.total_bytes,
            array.capacity()
        )));
    }
    if meta.num_vertices > u32::MAX as u64 {
        return Err(FgError::CorruptImage(format!(
            "vertex count {} exceeds u32 id space",
            meta.num_vertices
        )));
    }
    if meta.deg_offset != SECTION_ALIGN || meta.out_edges_offset < meta.deg_offset {
        return Err(FgError::CorruptImage("section table out of order".into()));
    }
    if meta.format == ImageFormat::Compressed {
        if fields[9] == 0 || fields[9] > MAX_SKIP_INTERVAL as u64 {
            return Err(FgError::CorruptImage(format!(
                "skip interval {} out of range",
                fields[9]
            )));
        }
        if meta.len_offset < meta.deg_offset || meta.len_offset > meta.out_edges_offset {
            return Err(FgError::CorruptImage("length section out of order".into()));
        }
    }
    Ok(meta)
}

/// Reads `count` little-endian `u32`s starting at `offset`.
fn read_u32s(array: &SsdArray, offset: u64, count: usize) -> Result<Vec<u32>> {
    let mut vals = Vec::with_capacity(count);
    let total = count * 4;
    let mut done = 0usize;
    let mut buf = vec![0u8; WRITE_CHUNK.min(total.max(1))];
    while done < total {
        let chunk = (total - done).min(buf.len());
        array.read(offset + done as u64, &mut buf[..chunk])?;
        for quad in buf[..chunk].chunks_exact(4) {
            vals.push(u32::from_le_bytes(quad.try_into().unwrap()));
        }
        done += chunk;
    }
    Ok(vals)
}

/// One direction's validated block-length table plus the skip tables
/// of its large compressed lists, keyed by vertex id.
type PackedDirTables = (Vec<u32>, HashMap<u32, Box<[u32]>>);

/// Validates one direction's v2 block table against its degrees and
/// section bounds, and loads the skip tables of its large compressed
/// lists. Returns the inputs [`GraphIndex::build_packed`] needs.
fn load_packed_dir(
    array: &SsdArray,
    meta: &ImageMeta,
    which: &str,
    degrees: &[u64],
    blocks: Vec<u32>,
    edge_base: u64,
    section_end: u64,
) -> Result<PackedDirTables> {
    let k = meta.skip_interval;
    let mut offset = edge_base;
    let mut skips = HashMap::new();
    for (i, (&d, &b)) in degrees.iter().zip(&blocks).enumerate() {
        let len = (b & !RAW_LIST_FLAG) as u64;
        if b & RAW_LIST_FLAG != 0 {
            if len != d * 4 {
                return Err(FgError::CorruptImage(format!(
                    "{which} vertex {i}: raw block of {len} bytes for degree {d}"
                )));
            }
        } else {
            if meta.weighted {
                return Err(FgError::CorruptImage(format!(
                    "{which} vertex {i}: compressed block in a weighted image"
                )));
            }
            let table = skip_entries(d, k) * 4;
            if (d as usize) < TINY_RAW_DEGREE || len <= table || len >= d * 4 {
                return Err(FgError::CorruptImage(format!(
                    "{which} vertex {i}: compressed block of {len} bytes for degree {d}"
                )));
            }
            if d >= crate::index::LARGE_DEGREE && table > 0 {
                let entries = read_u32s(array, offset, (table / 4) as usize)?;
                let payload = len - table;
                let mut prev = 0u64;
                for (e, &off) in entries.iter().enumerate() {
                    if (off as u64) <= prev && e > 0 || (off as u64) >= payload || off == 0 {
                        return Err(FgError::CorruptImage(format!(
                            "{which} vertex {i}: skip entry {e} offset {off} invalid"
                        )));
                    }
                    prev = off as u64;
                }
                skips.insert(i as u32, entries.into_boxed_slice());
            }
        }
        offset += len;
        if offset > section_end {
            return Err(FgError::CorruptImage(format!(
                "{which} blocks overrun their section ({offset} past {section_end})"
            )));
        }
    }
    Ok((blocks, skips))
}

/// Loads the header and rebuilds the compact [`GraphIndex`] by
/// streaming the degree section — plus, for compressed images, the
/// length section and the skip tables of large lists — the "init"
/// phase of Table 2.
///
/// # Errors
///
/// Propagates [`read_meta`] failures and section reads, and returns
/// [`FgError::CorruptImage`] when a v2 length table contradicts the
/// degrees or overruns its section.
pub fn load_index(array: &SsdArray) -> Result<(ImageMeta, GraphIndex)> {
    let meta = read_meta(array)?;
    let n = meta.num_vertices as usize;
    let read_degrees = |offset: u64| -> Result<Vec<u64>> {
        Ok(read_u32s(array, offset, n)?
            .into_iter()
            .map(|d| d as u64)
            .collect())
    };
    let out_degrees = if n > 0 {
        read_degrees(meta.deg_offset)?
    } else {
        Vec::new()
    };
    let in_degrees = if meta.directed && n > 0 {
        Some(read_degrees(meta.deg_offset + n as u64 * 4)?)
    } else if meta.directed {
        Some(Vec::new())
    } else {
        None
    };
    if meta.format == ImageFormat::Raw {
        let index = GraphIndex::build(
            &out_degrees,
            in_degrees.as_deref(),
            4,
            meta.out_edges_offset,
            meta.in_edges_offset,
            meta.weighted.then_some(meta.out_attrs_offset),
            (meta.weighted && meta.directed).then_some(meta.in_attrs_offset),
        );
        return Ok((meta, index));
    }

    // v2: block lengths, then per-direction validation + hub tables.
    let out_blocks = read_u32s(array, meta.len_offset, n)?;
    let out_end = if meta.directed {
        meta.in_edges_offset
    } else if meta.weighted {
        meta.out_attrs_offset
    } else {
        meta.total_bytes
    };
    let (out_blocks, out_skips) = load_packed_dir(
        array,
        &meta,
        "out",
        &out_degrees,
        out_blocks,
        meta.out_edges_offset,
        out_end,
    )?;
    let in_input = match &in_degrees {
        Some(in_degrees) => {
            let in_blocks = read_u32s(array, meta.len_offset + n as u64 * 4, n)?;
            let in_end = if meta.weighted {
                meta.out_attrs_offset
            } else {
                meta.total_bytes
            };
            Some(load_packed_dir(
                array,
                &meta,
                "in",
                in_degrees,
                in_blocks,
                meta.in_edges_offset,
                in_end,
            )?)
        }
        None => None,
    };
    let index = GraphIndex::build_packed(
        meta.skip_interval,
        PackedDirInput {
            degrees: &out_degrees,
            blocks: out_blocks,
            skips: out_skips,
            edge_base: meta.out_edges_offset,
            attr_base: meta.weighted.then_some(meta.out_attrs_offset),
        },
        in_input.map(|(blocks, skips)| PackedDirInput {
            degrees: in_degrees.as_deref().unwrap(),
            blocks,
            skips,
            edge_base: meta.in_edges_offset,
            attr_base: (meta.weighted && meta.directed).then_some(meta.in_attrs_offset),
        }),
    );
    Ok((meta, index))
}

/// Reads back and fully validates one vertex's edge list from the
/// image — the fallible decode surface the corrupt-image robustness
/// tests drive. The engine's hot path instead decodes incrementally
/// out of the page cache (`flashgraph::PageVertex`); this helper is
/// for tools, tests, and verification passes.
///
/// # Errors
///
/// Propagates store read failures and returns
/// [`FgError::CorruptImage`] when the block does not decode to
/// exactly `degree` sorted edges (truncated or bit-flipped sections,
/// over-long varints, inconsistent skip tables).
///
/// # Panics
///
/// Panics if `v` is out of range (same contract as
/// [`GraphIndex::locate`]).
pub fn read_list(
    array: &SsdArray,
    meta: &ImageMeta,
    index: &GraphIndex,
    v: VertexId,
    dir: EdgeDir,
) -> Result<Vec<u32>> {
    let slice = index.locate_slice(v, dir, 0, u64::MAX);
    if slice.loc.bytes == 0 {
        return Ok(Vec::new());
    }
    if slice.loc.offset + slice.loc.bytes > meta.total_bytes {
        return Err(FgError::CorruptImage(format!(
            "list of {v} ends at {} past image of {} bytes",
            slice.loc.offset + slice.loc.bytes,
            meta.total_bytes
        )));
    }
    let mut buf = vec![0u8; slice.loc.bytes as usize];
    array.read(slice.loc.offset, &mut buf)?;
    match slice.decode {
        SliceDecode::Raw => {
            if buf.len() as u64 != slice.loc.degree * 4 {
                return Err(FgError::CorruptImage(format!(
                    "raw list of {v}: {} bytes for degree {}",
                    buf.len(),
                    slice.loc.degree
                )));
            }
            Ok(buf
                .chunks_exact(4)
                .map(|q| u32::from_le_bytes(q.try_into().unwrap()))
                .collect())
        }
        SliceDecode::Varint(p) => codec::decode_list(&buf, slice.loc.degree, p.k),
    }
}

/// Reads the whole graph back out of an image — edge lists via
/// [`read_list`] plus, for weighted images, the parallel attribute
/// runs. This is the compactor's input path: it unions the read-back
/// base with a delta view and writes the result as the next image
/// generation. Like [`read_list`] it is a cold-path tool: one
/// sequential pass per direction, every block fully validated.
///
/// # Errors
///
/// Propagates store read failures and [`FgError::CorruptImage`] from
/// block validation.
pub fn read_graph(array: &SsdArray, meta: &ImageMeta, index: &GraphIndex) -> Result<Graph> {
    let n = meta.num_vertices as usize;
    let read_dir = |dir: EdgeDir| -> Result<fg_graph::Csr> {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut neighbors: Vec<VertexId> = Vec::new();
        let mut weights: Option<Vec<f32>> = meta.weighted.then(Vec::new);
        for i in 0..n {
            let v = VertexId::from_index(i);
            let ids = read_list(array, meta, index, v, dir)?;
            if let Some(ws) = &mut weights {
                let d = ids.len() as u64;
                if d > 0 {
                    let loc = index.locate_attrs_range(v, dir, 0, d).ok_or_else(|| {
                        FgError::CorruptImage(format!(
                            "weighted image has no attribute run for {v}"
                        ))
                    })?;
                    let mut buf = vec![0u8; loc.bytes as usize];
                    array.read(loc.offset, &mut buf)?;
                    ws.extend(
                        buf.chunks_exact(4)
                            .map(|q| f32::from_le_bytes(q.try_into().unwrap())),
                    );
                }
            }
            neighbors.extend(ids.into_iter().map(VertexId));
            offsets.push(neighbors.len() as u64);
        }
        fg_graph::Csr::from_parts(offsets, neighbors, weights)
    };
    let out = read_dir(EdgeDir::Out)?;
    let in_ = if meta.directed {
        Some(read_dir(EdgeDir::In)?)
    } else {
        None
    };
    Graph::from_csr(meta.directed, out, in_)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};
    use fg_ssdsim::ArrayConfig;

    fn image_of_with(g: &Graph, opts: &WriteOptions) -> (SsdArray, ImageMeta, GraphIndex) {
        let array =
            SsdArray::new_mem(ArrayConfig::small_test(), required_capacity_with(g, opts)).unwrap();
        let meta = write_image_with(g, &array, opts).unwrap();
        let (meta2, index) = load_index(&array).unwrap();
        assert_eq!(meta, meta2);
        (array, meta, index)
    }

    fn image_of(g: &Graph) -> (SsdArray, ImageMeta, GraphIndex) {
        image_of_with(g, &WriteOptions::default())
    }

    /// Reads the edge list of `v` back from the image, validated.
    fn read_edges(
        array: &SsdArray,
        meta: &ImageMeta,
        index: &GraphIndex,
        v: VertexId,
        dir: EdgeDir,
    ) -> Vec<u32> {
        read_list(array, meta, index, v, dir).unwrap()
    }

    fn both_formats() -> [WriteOptions; 2] {
        [WriteOptions::default(), WriteOptions::compressed()]
    }

    #[test]
    fn generation_round_trips_and_defaults_to_zero() {
        let g = fixtures::diamond();
        let (_, meta, _) = image_of(&g);
        assert_eq!(meta.generation, 0);
        for opts in both_formats() {
            let opts = opts.with_generation(7);
            let (array, meta, _) = image_of_with(&g, &opts);
            assert_eq!(meta.generation, 7);
            assert_eq!(read_meta(&array).unwrap().generation, 7);
        }
    }

    #[test]
    fn read_graph_round_trips_both_formats() {
        for opts in both_formats() {
            for g in [
                fixtures::diamond(),
                fixtures::complete(9),
                gen::rmat(7, 6, gen::RmatSkew::default(), 11),
            ] {
                let (array, meta, index) = image_of_with(&g, &opts);
                let back = read_graph(&array, &meta, &index).unwrap();
                assert_eq!(back.num_vertices(), g.num_vertices());
                assert_eq!(back.is_directed(), g.is_directed());
                for v in g.vertices() {
                    assert_eq!(back.out_neighbors(v), g.out_neighbors(v), "{v}");
                    if g.is_directed() {
                        assert_eq!(back.in_neighbors(v), g.in_neighbors(v), "{v}");
                    }
                }
            }
        }
    }

    #[test]
    fn read_graph_preserves_weights() {
        let g = fixtures::weighted_square();
        let (array, meta, index) = image_of(&g);
        assert!(meta.weighted);
        let back = read_graph(&array, &meta, &index).unwrap();
        for v in g.vertices() {
            assert_eq!(back.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(
                back.csr(EdgeDir::Out).weights_of(v),
                g.csr(EdgeDir::Out).weights_of(v),
                "{v}"
            );
        }
    }

    #[test]
    fn round_trip_directed_edges() {
        for opts in both_formats() {
            let g = fixtures::diamond();
            let (array, meta, index) = image_of_with(&g, &opts);
            assert!(meta.directed);
            for v in g.vertices() {
                let out: Vec<u32> = g.out_neighbors(v).iter().map(|n| n.0).collect();
                assert_eq!(
                    read_edges(&array, &meta, &index, v, EdgeDir::Out),
                    out,
                    "out {v} ({:?})",
                    opts.format
                );
                let inn: Vec<u32> = g.in_neighbors(v).iter().map(|n| n.0).collect();
                assert_eq!(read_edges(&array, &meta, &index, v, EdgeDir::In), inn);
            }
        }
    }

    #[test]
    fn round_trip_undirected() {
        for opts in both_formats() {
            let g = fixtures::complete(9);
            let (array, meta, index) = image_of_with(&g, &opts);
            assert!(!meta.directed);
            for v in g.vertices() {
                let want: Vec<u32> = g.out_neighbors(v).iter().map(|n| n.0).collect();
                assert_eq!(read_edges(&array, &meta, &index, v, EdgeDir::Out), want);
                // In == out for undirected images.
                assert_eq!(read_edges(&array, &meta, &index, v, EdgeDir::In), want);
            }
        }
    }

    #[test]
    fn round_trip_rmat_spot_checks() {
        for opts in both_formats() {
            let g = gen::rmat(9, 8, gen::RmatSkew::default(), 33);
            let (array, meta, index) = image_of_with(&g, &opts);
            for raw in [0u32, 1, 100, 511] {
                let v = VertexId(raw);
                let want: Vec<u32> = g.out_neighbors(v).iter().map(|n| n.0).collect();
                assert_eq!(read_edges(&array, &meta, &index, v, EdgeDir::Out), want);
                let want: Vec<u32> = g.in_neighbors(v).iter().map(|n| n.0).collect();
                assert_eq!(read_edges(&array, &meta, &index, v, EdgeDir::In), want);
            }
            // Index degrees match the graph everywhere.
            for v in g.vertices() {
                assert_eq!(index.degree(v, EdgeDir::Out) as usize, g.out_degree(v));
            }
        }
    }

    #[test]
    fn compressed_rmat_round_trips_everywhere() {
        let g = gen::rmat(9, 8, gen::RmatSkew::default(), 77);
        let (array, meta, index) = image_of_with(&g, &WriteOptions::compressed());
        assert_eq!(meta.format, ImageFormat::Compressed);
        assert_eq!(meta.skip_interval, DEFAULT_SKIP_INTERVAL);
        for v in g.vertices() {
            for dir in [EdgeDir::Out, EdgeDir::In] {
                let want: Vec<u32> = match dir {
                    EdgeDir::Out => g.out_neighbors(v).iter().map(|n| n.0).collect(),
                    _ => g.in_neighbors(v).iter().map(|n| n.0).collect(),
                };
                assert_eq!(
                    read_edges(&array, &meta, &index, v, dir),
                    want,
                    "{v} {dir:?}"
                );
            }
        }
    }

    #[test]
    fn compressed_image_shrinks_edge_sections() {
        let g = gen::rmat(10, 8, gen::RmatSkew::default(), 5);
        let raw = plan(&g, &WriteOptions::default()).meta;
        let v2 = plan(&g, &WriteOptions::compressed()).meta;
        let raw_out = raw.in_edges_offset - raw.out_edges_offset;
        let v2_out = v2.in_edges_offset - v2.out_edges_offset;
        assert!(
            v2_out < raw_out,
            "compressed out section {v2_out} not below raw {raw_out}"
        );
        // Whole image shrinks too (the length section costs less than
        // delta encoding saves at R-MAT densities).
        assert!(v2.total_bytes < raw.total_bytes);
    }

    #[test]
    fn compressed_weighted_image_keeps_blocks_raw_and_attrs_aligned() {
        let g = fixtures::weighted_square();
        let (array, meta, index) = image_of_with(&g, &WriteOptions::compressed());
        assert!(meta.weighted);
        assert_eq!(meta.format, ImageFormat::Compressed);
        // Every list reads back exactly; every block is raw (enforced
        // at load — a compressed block would fail validation).
        for v in g.vertices() {
            let want: Vec<u32> = g.out_neighbors(v).iter().map(|n| n.0).collect();
            assert_eq!(read_edges(&array, &meta, &index, v, EdgeDir::Out), want);
        }
        let loc = index.locate_attrs(VertexId(0), EdgeDir::Out).unwrap();
        let mut buf = vec![0u8; loc.bytes as usize];
        array.read(loc.offset, &mut buf).unwrap();
        let ws: Vec<f32> = buf
            .chunks_exact(4)
            .map(|q| f32::from_bits(u32::from_le_bytes(q.try_into().unwrap())))
            .collect();
        assert_eq!(ws, vec![1.0, 5.0]);
    }

    #[test]
    fn weighted_image_round_trips_attrs() {
        let g = fixtures::weighted_square();
        let (array, meta, index) = image_of(&g);
        assert!(meta.weighted);
        let loc = index.locate_attrs(VertexId(0), EdgeDir::Out).unwrap();
        let mut buf = vec![0u8; loc.bytes as usize];
        array.read(loc.offset, &mut buf).unwrap();
        let ws: Vec<f32> = buf
            .chunks_exact(4)
            .map(|q| f32::from_bits(u32::from_le_bytes(q.try_into().unwrap())))
            .collect();
        assert_eq!(ws, vec![1.0, 5.0]);
    }

    #[test]
    fn sections_are_aligned_and_ordered() {
        for opts in both_formats() {
            let g = gen::rmat(8, 4, gen::RmatSkew::default(), 5);
            let meta = plan(&g, &opts).meta;
            for off in [meta.deg_offset, meta.out_edges_offset, meta.in_edges_offset] {
                assert_eq!(off % SECTION_ALIGN, 0);
            }
            assert!(meta.out_edges_offset > meta.deg_offset);
            assert!(meta.in_edges_offset > meta.out_edges_offset);
            assert!(meta.total_bytes >= meta.in_edges_offset);
            if opts.format == ImageFormat::Compressed {
                assert_eq!(meta.len_offset % SECTION_ALIGN, 0);
                assert!(meta.len_offset > meta.deg_offset);
                assert!(meta.out_edges_offset > meta.len_offset);
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let array = SsdArray::new_mem(ArrayConfig::small_test(), 1 << 16).unwrap();
        array.write(0, &[0xFFu8; 4096]).unwrap();
        assert!(matches!(read_meta(&array), Err(FgError::CorruptImage(_))));
    }

    #[test]
    fn truncated_image_rejected() {
        for opts in both_formats() {
            let g = fixtures::complete(9);
            let full =
                SsdArray::new_mem(ArrayConfig::small_test(), required_capacity_with(&g, &opts))
                    .unwrap();
            write_image_with(&g, &full, &opts).unwrap();
            // Copy only the header into a smaller array.
            let small = SsdArray::new_mem(ArrayConfig::small_test(), SECTION_ALIGN).unwrap();
            let mut header = vec![0u8; SECTION_ALIGN as usize];
            full.read(0, &mut header).unwrap();
            small.write(0, &header).unwrap();
            assert!(read_meta(&small).is_err());
        }
    }

    #[test]
    fn corrupt_length_table_rejected_at_load() {
        let g = gen::rmat(8, 6, gen::RmatSkew::default(), 9);
        let (array, meta, _) = image_of_with(&g, &WriteOptions::compressed());
        // A length that contradicts its degree (raw flag, wrong size).
        let tampered = (8u32 | RAW_LIST_FLAG).to_le_bytes();
        array.write(meta.len_offset, &tampered).unwrap();
        assert!(matches!(load_index(&array), Err(FgError::CorruptImage(_))));
    }

    #[test]
    fn corrupt_skip_interval_rejected() {
        let g = gen::rmat(7, 4, gen::RmatSkew::default(), 9);
        let (array, _, _) = image_of_with(&g, &WriteOptions::compressed());
        // Field 9 (skip interval) at header offset 16 + 9*8 = 88.
        array.write(88, &0u64.to_le_bytes()).unwrap();
        assert!(read_meta(&array).is_err());
        array
            .write(88, &((MAX_SKIP_INTERVAL as u64 + 1).to_le_bytes()))
            .unwrap();
        assert!(read_meta(&array).is_err());
    }

    #[test]
    fn too_small_array_rejected_at_write() {
        for opts in both_formats() {
            let g = fixtures::complete(9);
            let array = SsdArray::new_mem(ArrayConfig::small_test(), 4096).unwrap();
            assert!(write_image_with(&g, &array, &opts).is_err());
        }
    }

    #[test]
    fn empty_graph_image() {
        for opts in both_formats() {
            let g = fg_graph::GraphBuilder::directed().build();
            let (_array, meta, index) = image_of_with(&g, &opts);
            assert_eq!(meta.num_vertices, 0);
            assert_eq!(index.num_vertices(), 0);
        }
    }

    #[test]
    fn image_write_is_the_only_write() {
        // Wearout check: loading + reading back causes no writes.
        for opts in both_formats() {
            let g = fixtures::complete(6);
            let array =
                SsdArray::new_mem(ArrayConfig::small_test(), required_capacity_with(&g, &opts))
                    .unwrap();
            write_image_with(&g, &array, &opts).unwrap();
            let wear_after_load = array.stats().snapshot().bytes_written;
            let (meta, index) = load_index(&array).unwrap();
            for v in g.vertices() {
                read_edges(&array, &meta, &index, v, EdgeDir::Out);
            }
            assert_eq!(array.stats().snapshot().bytes_written, wear_after_load);
        }
    }

    #[test]
    fn format_from_env_parses() {
        // Not set in the test environment by default.
        if std::env::var("FG_IMAGE_FORMAT").is_err() {
            assert_eq!(ImageFormat::from_env(), ImageFormat::Raw);
        }
    }

    #[test]
    fn hub_skip_tables_are_loaded_and_aligned() {
        // A star-heavy graph guarantees a hub above LARGE_DEGREE.
        let g = fixtures::star(400);
        let (array, meta, index) = image_of_with(&g, &WriteOptions::compressed());
        let hub = VertexId(0);
        assert!(index.degree(hub, EdgeDir::Out) >= crate::index::LARGE_DEGREE);
        // A ranged slice of the hub resolves to a strict subrange.
        let block = index.locate(hub, EdgeDir::Out);
        let slice = index.locate_slice(hub, EdgeDir::Out, 100, 50);
        assert!(slice.loc.bytes < block.bytes);
        // ... and decoding the subrange yields exactly those edges.
        let mut buf = vec![0u8; slice.loc.bytes as usize];
        array.read(slice.loc.offset, &mut buf).unwrap();
        let SliceDecode::Varint(p) = slice.decode else {
            panic!("hub block must be compressed");
        };
        let mut at = p.header_bytes as usize;
        let mut gaps = codec::GapDecoder::new(p.stream_pos, p.k);
        let mut got = Vec::new();
        while got.len() < (p.skip + 50) as usize {
            let raw = codec::read_varint(&mut || {
                let b = buf.get(at).copied();
                at += 1;
                b
            })
            .unwrap();
            got.push(gaps.step(raw).unwrap());
        }
        let want: Vec<u32> = g.out_neighbors(hub)[100..150].iter().map(|n| n.0).collect();
        assert_eq!(&got[p.skip as usize..], want);
        let _ = meta;
    }
}
