//! Global routing over a sharded image: one [`GraphIndex`] per shard
//! plus the contiguous vertex-range bounds the shards were written
//! with ([`crate::shard_bounds`]).
//!
//! A shard image indexes its vertices *locally* (global vertex
//! `bounds[s] + i` is local id `i` of shard `s`), so every byte
//! offset a shard's index produces is an offset into that shard's own
//! array/mount. [`ShardedIndex`] is the seam that hides this: it
//! routes a global [`VertexId`] to `(shard, local location)` and
//! mirrors the [`GraphIndex`] query surface — `degree`,
//! `locate_slice`, `locate_attrs_range` — with the shard made
//! explicit in the return value, since the caller must direct the
//! read at the right mount.

use std::ops::Range;
use std::sync::Arc;

use fg_ssdsim::SsdArray;
use fg_types::{EdgeDir, FgError, Result, VertexId};

use crate::image::{load_index, ImageMeta};
use crate::index::{EdgeListLoc, GraphIndex, ListSlice};

/// Routes global vertex ids across the per-shard indexes of a sharded
/// image (see [`crate::write_sharded_image`]).
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    /// `shards + 1` ascending global bounds; shard `s` owns
    /// `bounds[s]..bounds[s + 1]`.
    bounds: Vec<u32>,
    shards: Vec<Arc<GraphIndex>>,
}

impl ShardedIndex {
    /// Assembles the router from already-loaded shard indexes, in
    /// shard order. Bounds are reconstructed from each shard's vertex
    /// count — the count is the only extra fact a shard image needs
    /// to rejoin the global id space.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, the shards disagree on
    /// directedness, or the total vertex count exceeds the `u32` id
    /// space.
    pub fn new(shards: Vec<Arc<GraphIndex>>) -> Self {
        assert!(!shards.is_empty(), "at least one shard");
        let directed = shards[0].is_directed();
        let mut bounds = Vec::with_capacity(shards.len() + 1);
        let mut at = 0u64;
        bounds.push(0);
        for idx in &shards {
            assert_eq!(idx.is_directed(), directed, "shards disagree on direction");
            at += idx.num_vertices() as u64;
            assert!(at <= u32::MAX as u64, "sharded image exceeds u32 id space");
            bounds.push(at as u32);
        }
        ShardedIndex { bounds, shards }
    }

    /// Loads every shard's index from its array (in shard order) and
    /// assembles the router.
    ///
    /// # Errors
    ///
    /// Propagates [`load_index`] failures of any shard.
    pub fn load(arrays: &[SsdArray]) -> Result<(Vec<ImageMeta>, ShardedIndex)> {
        let mut metas = Vec::with_capacity(arrays.len());
        let mut shards = Vec::with_capacity(arrays.len());
        for array in arrays {
            let (meta, index) = load_index(array)?;
            metas.push(meta);
            shards.push(Arc::new(index));
        }
        if let Some(first) = metas.first() {
            for m in &metas[1..] {
                if m.directed != first.directed
                    || m.weighted != first.weighted
                    || m.format != first.format
                {
                    return Err(FgError::CorruptImage(
                        "shards disagree on image flags/format".into(),
                    ));
                }
            }
        }
        Ok((metas, ShardedIndex::new(shards)))
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total vertices across all shards.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        *self.bounds.last().unwrap() as usize
    }

    /// Whether the image carries in-edge lists.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.shards[0].is_directed()
    }

    /// The global id bounds, `num_shards() + 1` ascending values.
    #[inline]
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// Global id range shard `s` owns.
    #[inline]
    pub fn shard_range(&self, s: usize) -> Range<u32> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// One shard's local index.
    #[inline]
    pub fn shard(&self, s: usize) -> &Arc<GraphIndex> {
        &self.shards[s]
    }

    /// The shard owning global vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        assert!(
            (v.0 as usize) < self.num_vertices(),
            "{v} out of sharded image of {} vertices",
            self.num_vertices()
        );
        // bounds is ascending with bounds[0] == 0: the owning shard is
        // the last bound <= v.
        self.bounds.partition_point(|&b| b <= v.0) - 1
    }

    /// Routes `v` to `(shard, local id within that shard)`.
    #[inline]
    pub fn local(&self, v: VertexId) -> (usize, VertexId) {
        let s = self.shard_of(v);
        (s, VertexId(v.0 - self.bounds[s]))
    }

    /// Degree of global vertex `v` — any vertex, any shard (request
    /// clamping needs degrees of foreign subjects too).
    #[inline]
    pub fn degree(&self, v: VertexId, dir: EdgeDir) -> u64 {
        let (s, local) = self.local(v);
        self.shards[s].degree(local, dir)
    }

    /// [`GraphIndex::locate_slice`] of global `v`, with the shard the
    /// returned byte range lives on.
    #[inline]
    pub fn locate_slice(
        &self,
        v: VertexId,
        dir: EdgeDir,
        start: u64,
        len: u64,
    ) -> (usize, ListSlice) {
        let (s, local) = self.local(v);
        (s, self.shards[s].locate_slice(local, dir, start, len))
    }

    /// [`GraphIndex::locate_attrs_range`] of global `v`, with its
    /// shard.
    #[inline]
    pub fn locate_attrs_range(
        &self,
        v: VertexId,
        dir: EdgeDir,
        start: u64,
        len: u64,
    ) -> Option<(usize, EdgeListLoc)> {
        let (s, local) = self.local(v);
        self.shards[s]
            .locate_attrs_range(local, dir, start, len)
            .map(|loc| (s, loc))
    }

    /// Sum of the shard indexes' heap footprints.
    pub fn heap_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{
        read_list, required_capacity_with, required_shard_capacities, shard_bounds,
        write_image_with, write_sharded_image, ImageFormat, WriteOptions,
    };
    use fg_graph::{gen, Graph};
    use fg_ssdsim::ArrayConfig;

    fn shard_arrays(g: &Graph, opts: &WriteOptions, shards: usize) -> Vec<SsdArray> {
        required_shard_capacities(g, opts, shards)
            .into_iter()
            .map(|cap| SsdArray::new_mem(ArrayConfig::small_test(), cap.max(4096)).unwrap())
            .collect()
    }

    fn both_formats() -> [WriteOptions; 2] {
        [WriteOptions::default(), WriteOptions::compressed()]
    }

    #[test]
    fn shard_bounds_cover_evenly() {
        assert_eq!(shard_bounds(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(shard_bounds(3, 4), vec![0, 1, 2, 3, 3]);
        assert_eq!(shard_bounds(0, 2), vec![0, 0, 0]);
        assert_eq!(shard_bounds(7, 1), vec![0, 7]);
    }

    #[test]
    fn sharded_image_round_trips_every_list() {
        let g = gen::rmat(8, 6, gen::RmatSkew::default(), 42);
        for opts in both_formats() {
            for shards in [1usize, 2, 3, 4] {
                let arrays = shard_arrays(&g, &opts, shards);
                let metas = write_sharded_image(&g, &arrays, &opts).unwrap();
                let (metas2, sharded) = ShardedIndex::load(&arrays).unwrap();
                assert_eq!(metas, metas2);
                assert_eq!(sharded.num_shards(), shards);
                assert_eq!(sharded.num_vertices(), g.num_vertices());
                for v in g.vertices() {
                    let (s, local) = sharded.local(v);
                    for dir in [EdgeDir::Out, EdgeDir::In] {
                        let want: Vec<u32> = match dir {
                            EdgeDir::Out => g.out_neighbors(v).iter().map(|n| n.0).collect(),
                            _ => g.in_neighbors(v).iter().map(|n| n.0).collect(),
                        };
                        assert_eq!(
                            sharded.degree(v, dir),
                            want.len() as u64,
                            "{v} {dir:?} degree"
                        );
                        let got =
                            read_list(&arrays[s], &metas[s], sharded.shard(s), local, dir).unwrap();
                        assert_eq!(
                            got, want,
                            "{v} {dir:?} ({:?}, {shards} shards)",
                            opts.format
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn one_shard_image_is_bitwise_the_unsharded_image() {
        let g = gen::rmat(7, 5, gen::RmatSkew::default(), 7);
        for opts in both_formats() {
            let single =
                SsdArray::new_mem(ArrayConfig::small_test(), required_capacity_with(&g, &opts))
                    .unwrap();
            let meta = write_image_with(&g, &single, &opts).unwrap();
            let arrays = shard_arrays(&g, &opts, 1);
            let metas = write_sharded_image(&g, &arrays, &opts).unwrap();
            assert_eq!(metas[0], meta);
            let mut a = vec![0u8; meta.total_bytes as usize];
            let mut b = vec![0u8; meta.total_bytes as usize];
            single.read(0, &mut a).unwrap();
            arrays[0].read(0, &mut b).unwrap();
            assert_eq!(a, b, "1-shard image differs from the unsharded write");
        }
    }

    #[test]
    fn shard_extents_reassemble_the_global_extent() {
        // `locate_extent` over each shard's full local range must
        // account for exactly the edges of its global vertex range —
        // the shard-extent invariant the streaming scan relies on.
        let g = gen::rmat(8, 4, gen::RmatSkew::default(), 11);
        let opts = WriteOptions::compressed();
        let arrays = shard_arrays(&g, &opts, 3);
        write_sharded_image(&g, &arrays, &opts).unwrap();
        let (_, sharded) = ShardedIndex::load(&arrays).unwrap();
        let mut total_edges = 0u64;
        for s in 0..sharded.num_shards() {
            let range = sharded.shard_range(s);
            let count = u64::from(range.end - range.start);
            let extent = sharded
                .shard(s)
                .locate_extent(VertexId(0), count, EdgeDir::Out);
            total_edges += extent.degree;
        }
        assert_eq!(total_edges, g.csr(EdgeDir::Out).num_edges());
    }

    #[test]
    fn compressed_shards_stay_compressed() {
        // Large enough that edge sections dominate the per-shard
        // section-alignment overhead.
        let g = gen::rmat(10, 16, gen::RmatSkew::default(), 3);
        let opts = WriteOptions::compressed();
        let arrays = shard_arrays(&g, &opts, 2);
        let metas = write_sharded_image(&g, &arrays, &opts).unwrap();
        for m in &metas {
            assert_eq!(m.format, ImageFormat::Compressed);
        }
        let raw: u64 = required_shard_capacities(&g, &WriteOptions::default(), 2)
            .iter()
            .sum();
        let v2: u64 = metas.iter().map(|m| m.total_bytes).sum();
        assert!(v2 < raw, "compressed shards {v2} not below raw {raw}");
    }

    #[test]
    fn shard_of_routes_bounds_exactly() {
        let g = gen::rmat(6, 4, gen::RmatSkew::default(), 9);
        let arrays = shard_arrays(&g, &WriteOptions::default(), 4);
        write_sharded_image(&g, &arrays, &WriteOptions::default()).unwrap();
        let (_, sharded) = ShardedIndex::load(&arrays).unwrap();
        for s in 0..sharded.num_shards() {
            let r = sharded.shard_range(s);
            if r.is_empty() {
                continue;
            }
            assert_eq!(sharded.shard_of(VertexId(r.start)), s);
            assert_eq!(sharded.shard_of(VertexId(r.end - 1)), s);
            assert_eq!(sharded.local(VertexId(r.start)), (s, VertexId(0)));
        }
    }
}
