//! Weakly connected components by min-label propagation (§4): every
//! vertex starts as its own component, broadcasts its id to all
//! neighbours (both edge directions — WCC ignores orientation), and
//! adopts the smallest label it hears. A vertex that learns nothing
//! new stays quiet.

use fg_types::{EdgeDir, Result, VertexId};
use flashgraph::{GraphEngine, Init, PageVertex, Request, RunStats, VertexContext, VertexProgram};

/// The WCC vertex program.
#[derive(Debug, Clone, Copy, Default)]
pub struct WccProgram;

/// Per-vertex WCC state: the current component label (4 bytes).
#[derive(Debug, Default, Clone, Copy)]
pub struct WccState {
    /// Smallest vertex id known in this vertex's component.
    pub label: u32,
}

impl VertexProgram for WccProgram {
    type State = WccState;
    type Msg = u32;

    fn init_state(&self, v: VertexId) -> WccState {
        WccState { label: v.0 }
    }

    fn run(&self, v: VertexId, _state: &mut WccState, ctx: &mut VertexContext<'_, u32>) {
        // Active means: label changed last iteration (or iteration 0).
        // Broadcast to both directions.
        ctx.request(v, Request::edges(EdgeDir::Both));
    }

    fn run_on_vertex(
        &self,
        _v: VertexId,
        state: &mut WccState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, u32>,
    ) {
        let neighbors: Vec<VertexId> = vertex.edges().collect();
        ctx.multicast(&neighbors, state.label);
    }

    fn run_on_message(
        &self,
        v: VertexId,
        state: &mut WccState,
        msg: &u32,
        ctx: &mut VertexContext<'_, u32>,
    ) {
        if *msg < state.label {
            state.label = *msg;
            ctx.activate(v);
        }
    }
}

/// Runs WCC; returns each vertex's component label (the smallest
/// vertex id in its weakly connected component).
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Example
///
/// ```
/// use fg_graph::fixtures;
/// use flashgraph::{Engine, EngineConfig};
///
/// let g = fixtures::two_components(3, 7);
/// let engine = Engine::new_mem(&g, EngineConfig::default());
/// let (labels, _) = fg_apps::wcc(&engine)?;
/// assert_eq!(labels, vec![0, 0, 0, 3, 3, 3, 3]);
/// # Ok::<(), fg_types::FgError>(())
/// ```
pub fn wcc<E: GraphEngine>(engine: &E) -> Result<(Vec<u32>, RunStats)> {
    let (states, stats) = engine.run(&WccProgram, Init::All)?;
    Ok((states.into_iter().map(|s| s.label).collect(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};
    use flashgraph::{Engine, EngineConfig};
    #[test]
    fn matches_union_find_on_rmat() {
        let g = gen::rmat(8, 3, gen::RmatSkew::default(), 19);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (labels, _) = wcc(&engine).unwrap();
        assert_eq!(labels, fg_baselines::direct::wcc_labels(&g));
    }

    #[test]
    fn direction_is_ignored() {
        // A path is one weak component even though it is one-way.
        let g = fixtures::path(9);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (labels, _) = wcc(&engine).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn isolated_vertices_form_singletons() {
        let mut b = fg_graph::GraphBuilder::directed();
        b.add_edge(VertexId(0), VertexId(1));
        b.reserve_vertices(5);
        let g = b.build();
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (labels, _) = wcc(&engine).unwrap();
        assert_eq!(labels, vec![0, 0, 2, 3, 4]);
    }
}
