//! Breadth-first search — the paper's Figure 4 example, verbatim in
//! structure: an unvisited vertex requests its own out-edge list in
//! `run`, and activates its neighbours in `run_on_vertex`.

use fg_types::{EdgeDir, Result, VertexId};
use flashgraph::{GraphEngine, Init, PageVertex, Request, RunStats, VertexContext, VertexProgram};

/// The BFS vertex program.
#[derive(Debug, Clone, Copy)]
pub struct BfsProgram {
    /// Which edge direction to traverse (the paper's BFS uses out).
    pub dir: EdgeDir,
}

/// Per-vertex BFS state: one byte of `visited` plus the level — the
/// paper highlights that BFS needs only a byte per vertex; the level
/// here is output, not algorithmic necessity.
#[derive(Debug, Default, Clone, Copy)]
pub struct BfsState {
    /// BFS depth; valid when `visited`.
    pub level: u32,
    /// Whether the vertex was reached.
    pub visited: bool,
}

impl VertexProgram for BfsProgram {
    type State = BfsState;
    type Msg = ();

    fn run(&self, v: VertexId, state: &mut BfsState, ctx: &mut VertexContext<'_, ()>) {
        if !state.visited {
            state.visited = true;
            state.level = ctx.iteration();
            ctx.request(v, Request::edges(self.dir));
        }
    }

    fn run_on_vertex(
        &self,
        _v: VertexId,
        _state: &mut BfsState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, ()>,
    ) {
        for dst in vertex.edges() {
            ctx.activate(dst);
        }
    }
}

/// Runs BFS from `source`; returns per-vertex levels (`None` =
/// unreached) and run statistics.
///
/// # Errors
///
/// Propagates engine errors (bad source, I/O failures).
///
/// # Example
///
/// ```
/// use fg_graph::fixtures;
/// use fg_types::VertexId;
/// use flashgraph::{Engine, EngineConfig};
///
/// let g = fixtures::path(4);
/// let engine = Engine::new_mem(&g, EngineConfig::default());
/// let (levels, _) = fg_apps::bfs(&engine, VertexId(0))?;
/// assert_eq!(levels, vec![Some(0), Some(1), Some(2), Some(3)]);
/// # Ok::<(), fg_types::FgError>(())
/// ```
pub fn bfs<E: GraphEngine>(engine: &E, source: VertexId) -> Result<(Vec<Option<u32>>, RunStats)> {
    let program = BfsProgram { dir: EdgeDir::Out };
    let (states, stats) = engine.run(&program, Init::Seeds(vec![source]))?;
    Ok((
        states
            .into_iter()
            .map(|s| s.visited.then_some(s.level))
            .collect(),
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};
    use flashgraph::{Engine, EngineConfig};
    #[test]
    fn matches_direct_bfs_on_rmat() {
        let g = gen::rmat(9, 5, gen::RmatSkew::default(), 77);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (levels, _) = bfs(&engine, VertexId(3)).unwrap();
        assert_eq!(levels, fg_baselines::direct::bfs_levels(&g, VertexId(3)));
    }

    #[test]
    fn unreachable_stay_none() {
        let g = fixtures::two_components(3, 8);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (levels, _) = bfs(&engine, VertexId(5)).unwrap();
        assert!(levels[..3].iter().all(|l| l.is_none()));
        assert!(levels[3..].iter().all(|l| l.is_some()));
    }

    #[test]
    fn frontier_trace_shows_wavefront() {
        let g = fixtures::path(6);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (_, stats) = bfs(&engine, VertexId(0)).unwrap();
        let fronts: Vec<u64> = stats.per_iteration.iter().map(|i| i.frontier).collect();
        assert_eq!(fronts, vec![1, 1, 1, 1, 1, 1]);
    }
}
