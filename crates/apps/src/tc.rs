//! Triangle counting (§4): the paper's less-common I/O pattern — a
//! vertex reads the edge lists of *many other vertices*. Each vertex
//! `u` intersects its own list with each higher-id neighbour `w`'s
//! list; a triangle `u < w < x` is counted exactly once, at `u`, and
//! `u` notifies `w` and `x` by message so every vertex learns its own
//! triangle count (the paper's design).
//!
//! With vertical partitioning configured
//! ([`flashgraph::EngineConfig::vertical_parts`] > 1), pass `j`
//! restricts `u`'s requests to neighbours in the `j`-th slice of the
//! id space, so concurrently running hubs touch the same region of
//! SSDs and share page-cache hits (§3.8, Figure 7).

use fg_types::{EdgeDir, Result, VertexId};
use flashgraph::{
    EngineConfig, GraphEngine, Init, PageVertex, Request, RunStats, SchedulerKind, VertexContext,
    VertexProgram,
};

use crate::assembly::OwnListAssembly;

/// The triangle-counting vertex program (undirected graphs).
#[derive(Debug, Clone, Copy)]
pub struct TcProgram {
    /// Whether to notify the other two corners of each triangle via
    /// messages (needed for per-vertex counts; the global total works
    /// without).
    pub notify: bool,
}

/// Per-vertex TC state.
///
/// `own` holds the vertex's adjacency only while its intersections
/// are in flight — and only the entries that can still close a
/// triangle (ids above `v`), so the transient copy shrinks with the
/// filter instead of mirroring the hub's whole list. Neighbour lists
/// arrive as bounded slices under chunked delivery
/// (`EngineConfig::max_request_edges`), so the per-callback working
/// set is bounded by the chunk size, not the neighbour's degree.
///
/// The state is *pass-order independent*: under the pipelined
/// scheduler a vertex's vertical passes may interleave with the
/// deliveries of earlier passes (only per-callback atomicity is
/// guaranteed), so the own list is requested and assembled exactly
/// once, passes that run before it lands park themselves in
/// `deferred`, and `pending_edges` accumulates across passes instead
/// of being re-armed per pass.
#[derive(Debug, Default)]
pub struct TcState {
    /// Triangles counted at or reported to this vertex.
    pub triangles: u64,
    /// Transient filtered adjacency (entries `> v`), held until every
    /// pass has fanned out and all intersections finished.
    own: Option<Box<[u32]>>,
    /// Reassembly of the own list across chunked deliveries.
    own_assembly: OwnListAssembly,
    /// Neighbour-list edges still to arrive, over all passes in
    /// flight.
    pending_edges: u64,
    /// Passes whose `run` happened before the own list arrived.
    deferred: Vec<u32>,
    /// Passes that have fanned out their neighbour requests.
    fanned: u32,
}

impl TcProgram {
    /// Fans out pass `part`'s neighbour requests against the
    /// assembled own list. The intersection filter keeps ids above v
    /// only: a triangle u < w < x is counted at u, so entries ≤ v
    /// can never match; pass `part` additionally restricts the
    /// requests to the `part`-th slice of the id space (§3.8).
    fn fan_out(&self, state: &mut TcState, part: u32, ctx: &mut VertexContext<'_, u32>) {
        let (_, parts) = ctx.vertical_part();
        let n = ctx.num_vertices() as u64;
        let span = n.div_ceil(parts as u64).max(1);
        let lo = (part as u64 * span) as u32;
        let hi = ((part as u64 + 1) * span).min(n) as u32;
        let own = state.own.as_deref().expect("own assembled before fan-out");
        let wanted: Vec<u32> = own.iter().copied().filter(|&w| w >= lo && w < hi).collect();
        state.fanned += 1;
        state.pending_edges += wanted
            .iter()
            .map(|&w| ctx.degree(VertexId(w), EdgeDir::Out))
            .sum::<u64>();
        for &w in &wanted {
            ctx.request(VertexId(w), Request::edges(EdgeDir::Out));
        }
        Self::maybe_release(state, ctx);
    }

    /// Releases the transient adjacency once every pass has fanned
    /// out and no neighbour slice is outstanding.
    fn maybe_release(state: &mut TcState, ctx: &VertexContext<'_, u32>) {
        let (_, parts) = ctx.vertical_part();
        if state.fanned >= parts && state.pending_edges == 0 {
            state.own = None;
        }
    }
}

impl VertexProgram for TcProgram {
    type State = TcState;
    type Msg = u32; // triangle-count increments for a corner

    fn run(&self, v: VertexId, state: &mut TcState, ctx: &mut VertexContext<'_, u32>) {
        // Skip vertices that cannot close a triangle.
        let d = ctx.degree(v, EdgeDir::Out);
        if d < 2 {
            return;
        }
        let (part, _) = ctx.vertical_part();
        if state.own.is_some() {
            // The own list already arrived (an earlier pass fetched
            // it): fan this pass's slice out directly.
            self.fan_out(state, part, ctx);
        } else {
            // First pass to run requests the own list, once; every
            // pass that runs before it lands (later passes always do
            // under the pipelined scheduler) defers its fan-out to
            // the assembly-completion callback.
            if !state.own_assembly.expecting() {
                state.own_assembly.begin(d);
                ctx.request(v, Request::edges(EdgeDir::Out));
            }
            state.deferred.push(part);
        }
    }

    fn run_on_vertex(
        &self,
        v: VertexId,
        state: &mut TcState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, u32>,
    ) {
        if vertex.id() == v && state.own_assembly.expecting() {
            // A slice of the own list (whole in the common case,
            // chunked by offset for hubs). On completion, run the
            // fan-out of every pass that executed while it was in
            // flight.
            if let Some(own) = state.own_assembly.absorb(vertex) {
                let above: Vec<u32> = own.into_iter().filter(|&w| w > v.0).collect();
                state.own = Some(above.into_boxed_slice());
                for part in std::mem::take(&mut state.deferred) {
                    self.fan_out(state, part, ctx);
                }
            }
        } else {
            // A slice of a neighbour's list: count common neighbours
            // above w against the filtered own copy.
            let w = vertex.id();
            let own = state.own.as_deref().expect("own list held while pending");
            let mut i = 0usize;
            for x in vertex.edges() {
                if x <= w {
                    continue;
                }
                while i < own.len() && own[i] < x.0 {
                    i += 1;
                }
                if i < own.len() && own[i] == x.0 {
                    state.triangles += 1;
                    if self.notify {
                        ctx.send(w, 1);
                        ctx.send(x, 1);
                    }
                    i += 1;
                }
            }
            state.pending_edges -= vertex.degree() as u64;
            Self::maybe_release(state, ctx);
        }
    }

    fn run_on_message(
        &self,
        _v: VertexId,
        state: &mut TcState,
        msg: &u32,
        _ctx: &mut VertexContext<'_, u32>,
    ) {
        state.triangles += *msg as u64;
    }
}

/// Counts triangles; returns `(total, per_vertex, stats)`. Per-vertex
/// counts (each triangle at all three corners) are only meaningful
/// with `notify` true.
///
/// # Errors
///
/// Propagates engine errors.
pub fn triangle_count<E: GraphEngine>(
    engine: &E,
    notify: bool,
) -> Result<(u64, Vec<u64>, RunStats)> {
    // Hubs first, ranked by the out-degree TC actually reads (§3.7):
    // the heaviest intersections start — and their neighbour-list I/O
    // overlaps — while the long low-degree tail computes.
    let cfg = EngineConfig {
        scheduler: SchedulerKind::DegreeDescending(EdgeDir::Out),
        ..*engine.config()
    };
    let tuned = engine.reconfigured(cfg);
    let (states, stats) = tuned.run(&TcProgram { notify }, Init::All)?;
    let per: Vec<u64> = states.iter().map(|s| s.triangles).collect();
    // Each triangle was counted once at its smallest corner; with
    // notify, corners got +1 each, so the raw sum counts each triangle
    // three times.
    let total = if notify {
        per.iter().sum::<u64>() / 3
    } else {
        per.iter().sum()
    };
    Ok((total, per, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};
    use flashgraph::{Engine, EngineConfig};
    #[test]
    fn complete_graph_counts() {
        let g = fixtures::complete(8);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (total, per, _) = triangle_count(&engine, true).unwrap();
        assert_eq!(total, 56); // C(8,3)
        assert!(per.iter().all(|&c| c == 21)); // C(7,2)
    }

    #[test]
    fn star_has_no_triangles() {
        let g = fixtures::star(12);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (total, per, _) = triangle_count(&engine, true).unwrap();
        assert_eq!(total, 0);
        assert!(per.iter().all(|&c| c == 0));
    }

    #[test]
    fn matches_direct_on_symmetrized_rmat() {
        let d = gen::rmat(7, 6, gen::RmatSkew::default(), 31);
        let mut b = fg_graph::GraphBuilder::undirected();
        for (s, t) in d.edges() {
            b.add_edge(s, t);
        }
        let g = b.build();
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (total, per, _) = triangle_count(&engine, true).unwrap();
        assert_eq!(total, fg_baselines::direct::triangle_count(&g));
        assert_eq!(per, fg_baselines::direct::triangles_per_vertex(&g));
    }

    #[test]
    fn vertical_partitioning_same_answer() {
        let g = fixtures::complete(10);
        for parts in [1u32, 2, 4] {
            let cfg = EngineConfig::small().with_vertical_parts(parts);
            let engine = Engine::new_mem(&g, cfg);
            let (total, _, _) = triangle_count(&engine, false).unwrap();
            assert_eq!(total, 120, "parts={parts}"); // C(10,3)
        }
    }

    #[test]
    fn chunked_delivery_same_answer() {
        // Chunk bounds below, at, and above typical degrees: the
        // engine splits hub lists into chunked deliveries and TC
        // reassembles/intersects per chunk.
        let g = fixtures::complete(10);
        for chunk in [1u64, 3, 8, 64] {
            let cfg = EngineConfig::small().with_max_request_edges(chunk);
            let engine = Engine::new_mem(&g, cfg);
            let (total, per, _) = triangle_count(&engine, true).unwrap();
            assert_eq!(total, 120, "chunk={chunk}");
            assert!(per.iter().all(|&c| c == 36), "chunk={chunk}");
        }
    }

    #[test]
    fn chunked_matches_direct_on_rmat_both_modes() {
        let d = gen::rmat(7, 6, gen::RmatSkew::default(), 31);
        let mut b = fg_graph::GraphBuilder::undirected();
        for (s, t) in d.edges() {
            b.add_edge(s, t);
        }
        let g = b.build();
        let want = fg_baselines::direct::triangle_count(&g);
        let cfg = EngineConfig::small().with_max_request_edges(5);
        let engine = Engine::new_mem(&g, cfg);
        let (total, _, _) = triangle_count(&engine, false).unwrap();
        assert_eq!(total, want);
    }

    #[test]
    fn no_notify_total_matches() {
        let g = fixtures::complete(6);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (total, _, _) = triangle_count(&engine, false).unwrap();
        assert_eq!(total, 20);
    }
}
