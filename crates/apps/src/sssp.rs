//! Single-source shortest paths over weighted edges — an extension
//! app exercising the *edge attribute* path of the on-SSD format:
//! FlashGraph stores attributes separately from edges (§3.5.2), so
//! SSSP requests both runs while unweighted algorithms never pay for
//! attribute bytes.
//!
//! The algorithm is label-correcting (Bellman-Ford by wavefront):
//! whenever a vertex's distance improves it pushes `dist + w(e)` to
//! its out-neighbours.

use fg_types::{EdgeDir, Result, VertexId};
use flashgraph::{GraphEngine, Init, PageVertex, Request, RunStats, VertexContext, VertexProgram};

/// The SSSP vertex program.
#[derive(Debug, Clone, Copy)]
pub struct SsspProgram {
    /// Source vertex.
    pub source: VertexId,
}

/// Per-vertex SSSP state.
#[derive(Debug, Clone, Copy)]
pub struct SsspState {
    /// Best distance found so far (`f32::INFINITY` = unreached).
    pub dist: f32,
    /// Distance already propagated to neighbours.
    settled: f32,
}

impl Default for SsspState {
    fn default() -> Self {
        SsspState {
            dist: f32::INFINITY,
            settled: f32::INFINITY,
        }
    }
}

impl VertexProgram for SsspProgram {
    type State = SsspState;
    type Msg = f32;

    fn init_state(&self, v: VertexId) -> SsspState {
        if v == self.source {
            SsspState {
                dist: 0.0,
                settled: f32::INFINITY,
            }
        } else {
            SsspState::default()
        }
    }

    fn run(&self, v: VertexId, state: &mut SsspState, ctx: &mut VertexContext<'_, f32>) {
        if state.dist < state.settled {
            state.settled = state.dist;
            ctx.request(v, Request::edges(EdgeDir::Out).with_attrs());
        }
    }

    fn run_on_vertex(
        &self,
        _v: VertexId,
        state: &mut SsspState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, f32>,
    ) {
        for i in 0..vertex.degree() {
            let w = vertex.attr(i).expect("sssp needs a weighted graph image");
            ctx.send(vertex.edge(i), state.settled + w);
        }
    }

    fn run_on_message(
        &self,
        v: VertexId,
        state: &mut SsspState,
        msg: &f32,
        ctx: &mut VertexContext<'_, f32>,
    ) {
        if *msg < state.dist {
            state.dist = *msg;
            ctx.activate(v);
        }
    }
}

/// Runs SSSP from `source` on a weighted graph; distances are
/// `f32::INFINITY` for unreachable vertices.
///
/// # Errors
///
/// Propagates engine errors. Panics inside the run if the graph has
/// no edge attributes.
pub fn sssp<E: GraphEngine>(engine: &E, source: VertexId) -> Result<(Vec<f32>, RunStats)> {
    let (states, stats) = engine.run(&SsspProgram { source }, Init::Seeds(vec![source]))?;
    Ok((states.into_iter().map(|s| s.dist).collect(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};
    use flashgraph::{Engine, EngineConfig};
    #[test]
    fn weighted_square_distances() {
        let g = fixtures::weighted_square();
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (dist, _) = sssp(&engine, VertexId(0)).unwrap();
        assert_eq!(dist, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn matches_dijkstra_on_weighted_rmat() {
        let base = gen::rmat(7, 5, gen::RmatSkew::default(), 3);
        let g = gen::with_random_weights(&base, 10.0, 7);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (dist, _) = sssp(&engine, VertexId(0)).unwrap();
        let want = fg_baselines::direct::sssp(&g, VertexId(0));
        for v in g.vertices() {
            let (got, expect) = (dist[v.index()] as f64, want[v.index()]);
            if expect.is_infinite() {
                assert!(got.is_infinite(), "vertex {v} should be unreachable");
            } else {
                assert!((got - expect).abs() < 1e-3, "vertex {v}: {got} vs {expect}");
            }
        }
    }

    #[test]
    fn unreachable_vertices_infinite() {
        let g = fixtures::weighted_square();
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (dist, _) = sssp(&engine, VertexId(3)).unwrap();
        assert_eq!(dist[3], 0.0);
        assert!(dist[0].is_infinite());
    }
}
