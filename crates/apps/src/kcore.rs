//! k-core: iterative peeling of vertices with degree below `k` — an
//! extension app whose access pattern (waves of removals, like the
//! paper's Louvain example) exercises messaging to vertices that are
//! *not* neighbours of the sender's request subject.

use fg_types::{EdgeDir, Result, VertexId};
use flashgraph::{GraphEngine, Init, PageVertex, Request, RunStats, VertexContext, VertexProgram};

/// The k-core vertex program.
#[derive(Debug, Clone, Copy)]
pub struct KCoreProgram {
    /// Minimum degree to stay in the core.
    pub k: u32,
}

/// Per-vertex k-core state.
#[derive(Debug, Default, Clone, Copy)]
pub struct KCoreState {
    /// Remaining degree after peeling.
    pub degree: u32,
    /// Whether the vertex has been peeled off.
    pub removed: bool,
    init: bool,
}

impl VertexProgram for KCoreProgram {
    type State = KCoreState;
    type Msg = u32;

    fn run(&self, v: VertexId, state: &mut KCoreState, ctx: &mut VertexContext<'_, u32>) {
        if !state.init {
            state.init = true;
            state.degree = ctx.degree(v, EdgeDir::Both) as u32;
        }
        if !state.removed && state.degree < self.k {
            state.removed = true;
            // Tell every neighbour it lost an edge.
            ctx.request(v, Request::edges(EdgeDir::Both));
        }
    }

    fn run_on_vertex(
        &self,
        _v: VertexId,
        _state: &mut KCoreState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, u32>,
    ) {
        let neighbors: Vec<VertexId> = vertex.edges().collect();
        ctx.multicast(&neighbors, 1);
    }

    fn run_on_message(
        &self,
        v: VertexId,
        state: &mut KCoreState,
        msg: &u32,
        ctx: &mut VertexContext<'_, u32>,
    ) {
        if !state.removed {
            state.degree = state.degree.saturating_sub(*msg);
            if state.degree < self.k {
                ctx.activate(v);
            }
        }
    }
}

/// Computes the `k`-core membership: `true` for vertices surviving
/// the peeling. Degree counts out+in edges for directed graphs.
///
/// # Errors
///
/// Propagates engine errors.
pub fn k_core<E: GraphEngine>(engine: &E, k: u32) -> Result<(Vec<bool>, RunStats)> {
    let (states, stats) = engine.run(&KCoreProgram { k }, Init::All)?;
    Ok((states.into_iter().map(|s| !s.removed).collect(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};
    use flashgraph::{Engine, EngineConfig};
    #[test]
    fn star_peels_completely_at_two() {
        let g = fixtures::star(6);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (core, _) = k_core(&engine, 2).unwrap();
        assert!(core.iter().all(|&c| !c));
        let (core1, _) = k_core(&engine, 1).unwrap();
        assert!(core1.iter().all(|&c| c));
    }

    #[test]
    fn complete_graph_threshold() {
        let g = fixtures::complete(6);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        assert!(k_core(&engine, 5).unwrap().0.iter().all(|&c| c));
        assert!(k_core(&engine, 6).unwrap().0.iter().all(|&c| !c));
    }

    #[test]
    fn matches_direct_peeling_on_rmat() {
        let g = gen::rmat(8, 4, gen::RmatSkew::default(), 29);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        for k in [2u32, 3, 5, 8] {
            let (core, _) = k_core(&engine, k).unwrap();
            assert_eq!(core, fg_baselines::direct::k_core(&g, k), "k={k}");
        }
    }

    #[test]
    fn cascade_peeling_takes_waves() {
        // A path peels from both ends inward with k=2.
        let g = fixtures::path(9);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (core, stats) = k_core(&engine, 2).unwrap();
        assert!(core.iter().all(|&c| !c));
        assert!(stats.iterations >= 4, "peeling should cascade in waves");
    }
}
