//! Diameter estimation by BFS probing — the method behind Table 1's
//! diameter column. Runs the engine's BFS from a probe set, then
//! re-probes from the farthest vertex found (double sweep), treating
//! edges as undirected like the paper ("the diameter estimation
//! ignores the edge direction").

use fg_types::{EdgeDir, Result, VertexId};
use flashgraph::{GraphEngine, Init, PageVertex, Request, RunStats, VertexContext, VertexProgram};

/// BFS over the union of in- and out-edges.
struct UndirectedBfs;

#[derive(Debug, Default, Clone, Copy)]
struct UbState {
    level: u32,
    visited: bool,
}

impl VertexProgram for UndirectedBfs {
    type State = UbState;
    type Msg = ();

    fn run(&self, v: VertexId, state: &mut UbState, ctx: &mut VertexContext<'_, ()>) {
        if !state.visited {
            state.visited = true;
            state.level = ctx.iteration();
            ctx.request(v, Request::edges(EdgeDir::Both));
        }
    }

    fn run_on_vertex(
        &self,
        _v: VertexId,
        _state: &mut UbState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, ()>,
    ) {
        for dst in vertex.edges() {
            ctx.activate(dst);
        }
    }
}

/// Estimates the diameter with `probes` double sweeps from
/// deterministic pseudo-random seeds. A lower bound, like all
/// sweep-based estimates.
///
/// # Errors
///
/// Propagates engine errors.
pub fn estimate_diameter<E: GraphEngine>(
    engine: &E,
    probes: usize,
    seed: u64,
) -> Result<(usize, RunStats)> {
    let n = engine.num_vertices();
    let mut best = 0usize;
    let mut agg: Option<RunStats> = None;
    if n == 0 {
        let (_, stats) = engine.run(&UndirectedBfs, Init::Seeds(Vec::new()))?;
        return Ok((0, stats));
    }
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % n
    };
    for _ in 0..probes.max(1) {
        let start = VertexId::from_index(next());
        let (far, d1, s1) = sweep(engine, start)?;
        let (_, d2, s2) = sweep(engine, far)?;
        best = best.max(d1).max(d2);
        agg = Some(match agg {
            None => s1,
            Some(mut a) => {
                a.iterations += s1.iterations + s2.iterations;
                a.elapsed += s1.elapsed + s2.elapsed;
                a.engine_requests += s1.engine_requests + s2.engine_requests;
                a
            }
        });
    }
    Ok((best, agg.expect("at least one probe ran")))
}

fn sweep<E: GraphEngine>(engine: &E, start: VertexId) -> Result<(VertexId, usize, RunStats)> {
    let (states, stats) = engine.run(&UndirectedBfs, Init::Seeds(vec![start]))?;
    let mut far = (start, 0usize);
    for (i, s) in states.iter().enumerate() {
        if s.visited && s.level as usize > far.1 {
            far = (VertexId::from_index(i), s.level as usize);
        }
    }
    Ok((far.0, far.1, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::fixtures;
    use flashgraph::{Engine, EngineConfig};
    #[test]
    fn path_diameter_exact() {
        let g = fixtures::path(15);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (d, _) = estimate_diameter(&engine, 2, 9).unwrap();
        assert_eq!(d, 14);
    }

    #[test]
    fn cycle_diameter_half() {
        let g = fixtures::cycle(12);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (d, _) = estimate_diameter(&engine, 3, 4).unwrap();
        assert_eq!(d, 6);
    }

    #[test]
    fn matches_graph_crate_estimator() {
        let g = fg_graph::gen::rmat(7, 4, fg_graph::gen::RmatSkew::web(), 77);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (d_engine, _) = estimate_diameter(&engine, 4, 1).unwrap();
        let d_ref = fg_graph::estimate_diameter(&g, 4, 1);
        // Both are lower bounds from the same family; they rarely
        // differ by much. Allow slack but require the same ballpark.
        let hi = d_engine.max(d_ref);
        let lo = d_engine.min(d_ref);
        assert!(
            hi <= lo * 2 + 2,
            "estimates diverged: {d_engine} vs {d_ref}"
        );
    }
}
