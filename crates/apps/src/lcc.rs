//! Approximate local clustering coefficient by *sampled partial
//! edge-list reads* — the showcase app for first-class vertex I/O
//! requests ([`flashgraph::Request`]).
//!
//! The exact LCC of `v` needs `v`'s whole adjacency plus every
//! neighbour's list — the scan-statistics access pattern, dominated
//! by hub vertices whose multi-MB lists cost I/O roughly quadratic in
//! their degree. The sampled estimator reads partial lists on *both*
//! sides instead:
//!
//! 1. it draws `k` *edge positions* of `v`'s list uniformly without
//!    replacement via `Request::edges(dir).range(pos, 1)` — each a
//!    4-byte read served from a single page — giving a neighbour
//!    sample `S` (every neighbour included with probability `k/d`);
//! 2. for each `u ∈ S` it probes `min(k, deg(u))` sampled positions
//!    of *u's* list the same way, and counts probed entries that land
//!    back in `S`, weighting each hit by `deg(u)/k_u` to undo the
//!    second-stage sampling rate.
//!
//! Dividing the weighted count by `|S|·(|S|-1)` gives an unbiased
//! estimate of the LCC, and at `k ≥ d` both stages read whole lists
//! and the estimate is exact — the estimator *is* the exact algorithm
//! restricted to a sub-sample of positions. Crucially, no list is
//! ever read past its sampled positions, so a hub's multi-page
//! interior is touched only where probes land — the selective-I/O
//! win `fig_partial` in `fg_bench` measures against full-list
//! execution with `IoStats`.

use std::collections::HashSet;

use fg_types::{EdgeDir, Result, VertexId};
use flashgraph::{GraphEngine, Init, PageVertex, Request, RunStats, VertexContext, VertexProgram};

/// The sampled-LCC vertex program (undirected graphs).
#[derive(Debug, Clone, Copy)]
pub struct LccProgram {
    /// Sample size: edge positions drawn per list (own list and each
    /// sampled neighbour's). Where `k` covers a list's degree the
    /// whole list is read; `k ≥` the maximum degree computes the
    /// exact coefficient everywhere.
    pub k: u32,
    /// Seed of the deterministic per-vertex sampling streams.
    pub seed: u64,
}

/// Per-vertex LCC state.
#[derive(Debug, Default)]
pub struct LccState {
    /// The (estimated) local clustering coefficient.
    pub lcc: f32,
    /// Sorted sampled neighbours, held while their lists are probed.
    sample: Option<Box<[u32]>>,
    /// Sampled neighbours as they arrive (positions may complete in
    /// any order).
    collecting: Vec<u32>,
    /// Sampled own-list edges still to arrive.
    own_pending: u64,
    /// Probed neighbour-list edges still to arrive.
    pending_edges: u64,
    /// Weighted incidences (u, x) observed inside the sample: each
    /// probed hit counts `deg(u) / k_u` to undo the probe rate.
    weighted_matches: f64,
    /// Effective sample size (distinct neighbours drawn).
    s_eff: u64,
}

/// `s` distinct uniform positions in `[0, d)` (Floyd's algorithm over
/// a per-(vertex, subject) xorshift stream), sorted ascending so the
/// resulting single-position requests issue in offset order and merge
/// well.
fn sample_positions(seed: u64, v: VertexId, subject: VertexId, d: u64, s: u64) -> Vec<u64> {
    let mut x = seed
        ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(v.0 as u64 + 1)
        ^ 0xD1B5_4A32_D192_ED03u64.wrapping_mul(subject.0 as u64 + 1);
    if x == 0 {
        x = 0x9E37_79B9_7F4A_7C15;
    }
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut chosen: HashSet<u64> = HashSet::with_capacity(s as usize);
    for j in (d - s)..d {
        let t = next() % (j + 1);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut out: Vec<u64> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

impl VertexProgram for LccProgram {
    type State = LccState;
    type Msg = ();

    fn run(&self, v: VertexId, state: &mut LccState, ctx: &mut VertexContext<'_, ()>) {
        let d = ctx.degree(v, EdgeDir::Out);
        if d < 2 {
            return; // degree < 2 has no pairs; lcc stays 0
        }
        let s = (self.k as u64).min(d);
        state.own_pending = s;
        if s == d {
            // Sample = whole list: one full request (exact LCC).
            ctx.request(v, Request::edges(EdgeDir::Out));
        } else {
            for p in sample_positions(self.seed, v, v, d, s) {
                ctx.request(v, Request::edges(EdgeDir::Out).range(p, 1));
            }
        }
    }

    fn run_on_vertex(
        &self,
        v: VertexId,
        state: &mut LccState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, ()>,
    ) {
        if vertex.id() == v && state.own_pending > 0 {
            // A sampled position (or the full list / a chunk of it).
            state.collecting.extend(vertex.edges().map(|e| e.0));
            state.own_pending -= vertex.degree() as u64;
            if state.own_pending > 0 {
                return;
            }
            let mut sample = std::mem::take(&mut state.collecting);
            sample.sort_unstable();
            sample.dedup();
            sample.retain(|&u| u != v.0);
            state.s_eff = sample.len() as u64;
            if state.s_eff < 2 {
                return;
            }
            // Second stage: probe min(k, deg(u)) sampled positions of
            // each sampled neighbour's list — never the whole list.
            state.pending_edges = sample
                .iter()
                .map(|&u| (self.k as u64).min(ctx.degree(VertexId(u), EdgeDir::Out)))
                .sum();
            if state.pending_edges == 0 {
                return; // isolated sampled neighbours: no pairs adjacent
            }
            let targets: Vec<u32> = sample.clone();
            state.sample = Some(sample.into_boxed_slice());
            for u in targets {
                let u = VertexId(u);
                let du = ctx.degree(u, EdgeDir::Out);
                let su = (self.k as u64).min(du);
                if su == du {
                    ctx.request(u, Request::edges(EdgeDir::Out));
                } else {
                    for p in sample_positions(self.seed, v, u, du, su) {
                        ctx.request(u, Request::edges(EdgeDir::Out).range(p, 1));
                    }
                }
            }
        } else {
            // Probed entries of a sampled neighbour's list: count the
            // ones landing back in the sample, weighted by the probe
            // rate so the estimate stays unbiased.
            let u = vertex.id();
            let du = ctx.degree(u, EdgeDir::Out);
            let su = (self.k as u64).min(du);
            let weight = du as f64 / su as f64;
            let sample = state.sample.as_deref().expect("sample held while pending");
            let mut i = 0usize;
            for x in vertex.edges() {
                while i < sample.len() && sample[i] < x.0 {
                    i += 1;
                }
                if i < sample.len() && sample[i] == x.0 && x != u {
                    state.weighted_matches += weight;
                    i += 1;
                }
            }
            state.pending_edges -= vertex.degree() as u64;
            if state.pending_edges == 0 {
                // Clamp the unbiased estimate into the coefficient's
                // range: probe-rate weights can overshoot on hubs.
                let est = state.weighted_matches / (state.s_eff * (state.s_eff - 1)) as f64;
                state.lcc = est.clamp(0.0, 1.0) as f32;
                state.sample = None;
                state.weighted_matches = 0.0;
            }
        }
    }
}

/// Estimates every vertex's local clustering coefficient from `k`
/// sampled edge positions per list (exact where `k` covers the
/// degrees involved); deterministic for a given `seed`.
///
/// # Errors
///
/// Propagates engine errors.
pub fn lcc<E: GraphEngine>(engine: &E, k: u32, seed: u64) -> Result<(Vec<f32>, RunStats)> {
    let (states, stats) = engine.run(&LccProgram { k, seed }, Init::All)?;
    Ok((states.into_iter().map(|s| s.lcc).collect(), stats))
}

/// Like [`lcc`] but for the given query vertices only — the per-query
/// form a serving deployment uses ("how clustered is *this* user's
/// neighbourhood?"). Non-queried entries of the result stay 0. This
/// is where partial requests shine: an exact per-hub answer reads the
/// hub's whole multi-page list plus every neighbour's list, while the
/// sampled estimator touches `k + k²` probed positions regardless of
/// the hub's degree.
///
/// # Errors
///
/// Propagates engine errors (including out-of-range query vertices).
pub fn lcc_of<E: GraphEngine>(
    engine: &E,
    queries: &[VertexId],
    k: u32,
    seed: u64,
) -> Result<(Vec<f32>, RunStats)> {
    let (states, stats) = engine.run(&LccProgram { k, seed }, Init::Seeds(queries.to_vec()))?;
    Ok((states.into_iter().map(|s| s.lcc).collect(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen, GraphBuilder};
    use flashgraph::{Engine, EngineConfig};
    fn symmetrized_rmat(scale: u32, factor: u32, seed: u64) -> fg_graph::Graph {
        let d = gen::rmat(scale, factor, gen::RmatSkew::default(), seed);
        let mut b = GraphBuilder::undirected();
        for (s, t) in d.edges() {
            b.add_edge(s, t);
        }
        b.build()
    }

    fn max_degree(g: &fg_graph::Graph) -> u32 {
        g.vertices()
            .map(|v| g.out_degree(v) as u32)
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn exact_on_complete_graph() {
        let g = fixtures::complete(8);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (coeffs, _) = lcc(&engine, 32, 1).unwrap();
        assert!(coeffs.iter().all(|&c| c == 1.0), "{coeffs:?}");
    }

    #[test]
    fn star_is_zero() {
        let g = fixtures::star(9);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (coeffs, _) = lcc(&engine, 4, 7).unwrap();
        assert!(coeffs.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn matches_oracle_when_k_covers_degree() {
        let g = symmetrized_rmat(7, 4, 99);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (coeffs, _) = lcc(&engine, max_degree(&g), 5).unwrap();
        let want = fg_baselines::direct::local_clustering(&g);
        for v in g.vertices() {
            assert!(
                (coeffs[v.index()] as f64 - want[v.index()]).abs() < 1e-6,
                "vertex {v}: {} vs {}",
                coeffs[v.index()],
                want[v.index()]
            );
        }
    }

    #[test]
    fn sampled_estimates_converge_to_oracle() {
        let g = symmetrized_rmat(8, 4, 3);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let want = fg_baselines::direct::local_clustering(&g);
        let mean_err = |k: u32| {
            let (coeffs, _) = lcc(&engine, k, 11).unwrap();
            let (mut err, mut cnt) = (0f64, 0u64);
            for v in g.vertices() {
                if g.out_degree(v) >= 2 {
                    err += (coeffs[v.index()] as f64 - want[v.index()]).abs();
                    cnt += 1;
                }
            }
            err / cnt as f64
        };
        let coarse = mean_err(2);
        let fine = mean_err(16);
        let exact = mean_err(max_degree(&g));
        assert!(
            exact < 1e-6,
            "k >= degree must be exact up to f32 rounding: {exact}"
        );
        assert!(
            fine < coarse,
            "larger samples should track the oracle better: k=16 err {fine} vs k=2 err {coarse}"
        );
    }

    #[test]
    fn sampling_reads_fewer_edges_than_exact() {
        let g = symmetrized_rmat(8, 6, 17);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (_, sampled) = lcc(&engine, 3, 11).unwrap();
        let (_, full) = lcc(&engine, max_degree(&g), 11).unwrap();
        assert!(
            sampled.edges_delivered < full.edges_delivered / 2,
            "sampled {} vs full {}",
            sampled.edges_delivered,
            full.edges_delivered
        );
    }
}
