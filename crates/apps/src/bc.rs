//! Betweenness centrality from a single source (§4): Brandes'
//! algorithm as two engine phases — a forward BFS accumulating
//! shortest-path counts (out-edges), then a level-by-level backward
//! dependency propagation (in-edges). This is the paper's BC: "BFS
//! from a vertex, followed by a back propagation", needing both edge
//! directions.

use fg_types::{EdgeDir, Result, VertexId};
use flashgraph::{GraphEngine, Init, PageVertex, Request, RunStats, VertexContext, VertexProgram};

/// Level marker for unreached vertices.
const UNREACHED: u32 = u32::MAX;

/// Per-vertex BC state, shared by both phases.
#[derive(Debug, Clone, Copy)]
pub struct BcState {
    /// BFS level from the source (`u32::MAX` if unreached).
    pub level: u32,
    /// Number of shortest paths from the source through this vertex.
    pub sigma: f64,
    /// Accumulated dependency (the single-source BC contribution).
    pub delta: f64,
}

impl Default for BcState {
    fn default() -> Self {
        BcState {
            level: UNREACHED,
            sigma: 0.0,
            delta: 0.0,
        }
    }
}

/// Phase 1: level-synchronous BFS carrying σ along tree edges.
struct BcForward {
    source: VertexId,
}

impl VertexProgram for BcForward {
    type State = BcState;
    type Msg = f64; // σ contribution from a predecessor

    fn run(&self, v: VertexId, state: &mut BcState, ctx: &mut VertexContext<'_, f64>) {
        if state.level != UNREACHED {
            return; // already settled in an earlier iteration
        }
        state.level = ctx.iteration();
        if v == self.source && ctx.iteration() == 0 {
            state.sigma = 1.0;
        }
        // σ was accumulated by run_on_message before this run.
        ctx.request(v, Request::edges(EdgeDir::Out));
    }

    fn run_on_vertex(
        &self,
        _v: VertexId,
        state: &mut BcState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, f64>,
    ) {
        for dst in vertex.edges() {
            ctx.send(dst, state.sigma);
            ctx.activate(dst);
        }
    }

    fn run_on_message(
        &self,
        _v: VertexId,
        state: &mut BcState,
        msg: &f64,
        _ctx: &mut VertexContext<'_, f64>,
    ) {
        // Only contributions arriving before the vertex settles are
        // from true shortest-path predecessors.
        if state.level == UNREACHED {
            state.sigma += *msg;
        }
    }
}

/// A backward contribution: the sender's level, σ, and δ.
#[derive(Debug, Clone, Copy)]
struct BackMsg {
    level: u32,
    sigma: f64,
    delta: f64,
}

/// Phase 2: dependency accumulation, deepest level first. A vertex at
/// level `l` takes its turn at iteration `lmax - l`, by which time
/// every successor (level `l+1`, turn `lmax - l - 1`) has delivered
/// its contribution.
struct BcBackward {
    lmax: u32,
}

impl VertexProgram for BcBackward {
    type State = BcState;
    type Msg = BackMsg;

    fn run(&self, v: VertexId, state: &mut BcState, ctx: &mut VertexContext<'_, BackMsg>) {
        if state.level == UNREACHED {
            return;
        }
        let turn = self.lmax - state.level;
        if ctx.iteration() < turn {
            ctx.activate(v); // wait for our level's wave
            return;
        }
        if ctx.iteration() == turn && state.level > 0 {
            ctx.request(v, Request::edges(EdgeDir::In));
        }
    }

    fn run_on_vertex(
        &self,
        _v: VertexId,
        state: &mut BcState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, BackMsg>,
    ) {
        let msg = BackMsg {
            level: state.level,
            sigma: state.sigma,
            delta: state.delta,
        };
        let preds: Vec<VertexId> = vertex.edges().collect();
        ctx.multicast(&preds, msg);
    }

    fn run_on_message(
        &self,
        _v: VertexId,
        state: &mut BcState,
        msg: &BackMsg,
        _ctx: &mut VertexContext<'_, BackMsg>,
    ) {
        // Accept only true tree-successor contributions.
        if state.level != UNREACHED && msg.level == state.level + 1 {
            state.delta += state.sigma / msg.sigma * (1.0 + msg.delta);
        }
    }
}

/// Runs single-source betweenness centrality from `source`; returns
/// each vertex's dependency δ (its BC contribution from this source)
/// and the combined statistics of both phases.
///
/// # Errors
///
/// Propagates engine errors.
pub fn bc_single_source<E: GraphEngine>(
    engine: &E,
    source: VertexId,
) -> Result<(Vec<f64>, RunStats)> {
    let (states, mut stats) = engine.run(&BcForward { source }, Init::Seeds(vec![source]))?;
    let lmax = states
        .iter()
        .filter(|s| s.level != UNREACHED)
        .map(|s| s.level)
        .max()
        .unwrap_or(0);
    let (states, back_stats) = engine.run_with_states(&BcBackward { lmax }, Init::All, states)?;
    // Combine phase statistics into one report.
    stats.iterations += back_stats.iterations;
    stats.elapsed += back_stats.elapsed;
    stats.compute_ns += back_stats.compute_ns;
    stats.wait_ns += back_stats.wait_ns;
    stats.activations += back_stats.activations;
    stats.messages_sent += back_stats.messages_sent;
    stats.vertices_processed += back_stats.vertices_processed;
    stats.engine_requests += back_stats.engine_requests;
    stats.issued_requests += back_stats.issued_requests;
    stats.bytes_requested += back_stats.bytes_requested;
    stats.edges_delivered += back_stats.edges_delivered;
    if let (Some(a), Some(b)) = (&mut stats.io, &back_stats.io) {
        a.read_requests += b.read_requests;
        a.pages_read += b.pages_read;
        a.bytes_read += b.bytes_read;
        a.max_busy_ns += b.max_busy_ns;
        a.total_busy_ns += b.total_busy_ns;
    }
    stats
        .per_iteration
        .extend(back_stats.per_iteration.iter().cloned());
    Ok((states.into_iter().map(|s| s.delta).collect(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};
    use flashgraph::{Engine, EngineConfig};
    fn assert_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < 1e-9, "vertex {i}: {g} vs {w}");
        }
    }

    #[test]
    fn diamond_dependencies() {
        let g = fixtures::diamond();
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (delta, _) = bc_single_source(&engine, VertexId(0)).unwrap();
        assert_close(
            &delta,
            &fg_baselines::direct::bc_single_source(&g, VertexId(0)),
        );
        // Known values: each middle vertex carries half of two paths.
        assert_eq!(delta[1], 1.0);
        assert_eq!(delta[2], 1.0);
        assert_eq!(delta[4], 0.0);
    }

    #[test]
    fn path_dependencies() {
        // On a path, delta(v_i) = number of vertices after i.
        let g = fixtures::path(6);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (delta, _) = bc_single_source(&engine, VertexId(0)).unwrap();
        assert_close(&delta, &[5.0, 4.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn matches_brandes_on_rmat() {
        let g = gen::rmat(7, 4, gen::RmatSkew::default(), 23);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        for src in [0u32, 5, 50] {
            let (delta, _) = bc_single_source(&engine, VertexId(src)).unwrap();
            let want = fg_baselines::direct::bc_single_source(&g, VertexId(src));
            for v in g.vertices() {
                assert!(
                    (delta[v.index()] - want[v.index()]).abs() < 1e-6,
                    "src {src} vertex {v}: {} vs {}",
                    delta[v.index()],
                    want[v.index()]
                );
            }
        }
    }

    #[test]
    fn unreached_vertices_zero() {
        let g = fixtures::two_components(3, 8);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (delta, _) = bc_single_source(&engine, VertexId(0)).unwrap();
        assert!(delta[3..].iter().all(|&d| d == 0.0));
    }
}
