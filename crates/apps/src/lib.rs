//! Graph algorithms on the FlashGraph engine (§4 of the paper).
//!
//! The six applications the paper evaluates, expressed in the
//! vertex-centric interface, plus extensions exercising the parts of
//! the system the core six do not touch (edge attributes, resumable
//! multi-phase runs):
//!
//! | App | Paper | I/O pattern (paper's taxonomy) | Edge lists |
//! |---|---|---|---|
//! | [`bfs`](mod@bfs) | §4 BFS | frontier subset per iteration → random I/O | out |
//! | [`bc`] | §4 Betweenness centrality | BFS + back-propagation | out + in |
//! | [`pagerank`](mod@pagerank) | §4 PageRank (delta-based) | all vertices, narrowing | out |
//! | [`wcc`](mod@wcc) | §4 Weakly connected components | all vertices, narrowing | out + in |
//! | [`tc`] | §4 Triangle counting | vertices read *neighbours'* lists | own + neighbours |
//! | [`scan`] | §4 Scan statistics | degree-descending custom scheduler, pruning | own + neighbours |
//! | [`sssp`](mod@sssp) | extension | frontier subset, weighted | out + attributes |
//! | [`kcore`] | extension | peeling waves | out + in |
//! | [`diameter`] | extension | repeated BFS probes | out + in |
//! | [`lcc`](mod@lcc) | extension | sampled partial-range reads | own positions + sampled neighbours |
//!
//! Every app runs unchanged in both engine modes; tests validate each
//! against the hand-written oracles in `fg_baselines::direct`.

mod assembly;

pub mod bc;
pub mod bfs;
pub mod diameter;
pub mod kcore;
pub mod lcc;
pub mod pagerank;
pub mod scan;
pub mod sssp;
pub mod tc;
pub mod wcc;

pub use bc::bc_single_source;
pub use bfs::bfs;
pub use diameter::estimate_diameter;
pub use kcore::k_core;
pub use lcc::{lcc, lcc_of};
pub use pagerank::pagerank;
pub use scan::scan_statistics;
pub use sssp::sssp;
pub use tc::triangle_count;
pub use wcc::wcc;
