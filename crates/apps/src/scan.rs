//! Scan statistics (§4): find the maximum *locality statistic* —
//! edges in a vertex's closed 1-neighbourhood — over the whole graph.
//!
//! This is the paper's showcase for custom vertex scheduling: a
//! degree-descending scheduler starts with the strongest candidates,
//! a shared running maximum lets every later vertex compare its cheap
//! upper bounds against the incumbent, and most vertices are pruned
//! before doing any I/O beyond (at most) their own edge list. The
//! Wang et al. active-community paper the authors cite reports
//! exactly this structure.

use fg_types::sync::Counter;
use fg_types::{EdgeDir, Result, VertexId};
use flashgraph::{
    EngineConfig, GraphEngine, Init, PageVertex, Request, RunStats, SchedulerKind, VertexContext,
    VertexProgram,
};

use crate::assembly::OwnListAssembly;

/// The scan-statistics vertex program (undirected graphs).
#[derive(Debug, Default)]
pub struct ScanProgram {
    /// Running maximum of the locality statistic (shared incumbent).
    /// A relaxed [`Counter`] even though it gates the pruning
    /// decisions: a stale read only weakens a prune bound (more work,
    /// never a wrong answer), and `max` is an atomic RMW so the
    /// incumbent itself is never lost.
    best: Counter,
    /// Vertices that skipped all work thanks to the degree bound.
    pruned_no_io: Counter,
    /// Vertices pruned after reading only their own list.
    pruned_after_own: Counter,
}

impl ScanProgram {
    fn raise(&self, candidate: u64) {
        self.best.max(candidate);
    }

    fn best(&self) -> u64 {
        self.best.get()
    }
}

/// Per-vertex scan state.
#[derive(Debug, Default)]
pub struct ScanState {
    /// The vertex's locality statistic, when computed (pruned
    /// vertices keep `None`).
    pub scan: Option<u64>,
    own: Option<Box<[u32]>>,
    /// Reassembly of the own list across chunked deliveries.
    own_assembly: OwnListAssembly,
    /// Neighbour-list edges still to arrive.
    pending_edges: u64,
    edges_in_neighborhood: u64,
}

impl ScanProgram {
    /// Own list fully assembled: apply bound 2 or fan out
    /// neighbourhood requests.
    fn finish_own(&self, own: Vec<u32>, state: &mut ScanState, ctx: &mut VertexContext<'_, ()>) {
        let deg = own.len() as u64;
        // Bound 2 (index only): each neighbour u contributes at
        // most min(deg(u)-1, deg(v)-1) neighbourhood edges; the
        // sum double-counts, so halve it.
        let mut cap = 0u64;
        for &u in &own {
            let du = ctx.degree(VertexId(u), EdgeDir::Out);
            cap += du.saturating_sub(1).min(deg.saturating_sub(1));
        }
        let bound = deg + cap / 2;
        if bound <= self.best() {
            self.pruned_after_own.inc();
            return;
        }
        state.pending_edges = own
            .iter()
            .map(|&u| ctx.degree(VertexId(u), EdgeDir::Out))
            .sum();
        state.edges_in_neighborhood = 0;
        state.own = Some(own.into_boxed_slice());
        let targets: Vec<VertexId> = state
            .own
            .as_deref()
            .unwrap()
            .iter()
            .map(|&u| VertexId(u))
            .collect();
        for u in targets {
            ctx.request(u, Request::edges(EdgeDir::Out));
        }
    }
}

impl VertexProgram for ScanProgram {
    type State = ScanState;
    type Msg = ();

    fn run(&self, v: VertexId, state: &mut ScanState, ctx: &mut VertexContext<'_, ()>) {
        let deg = ctx.degree(v, EdgeDir::Out);
        // Bound 1 (free): the neighbourhood cannot hold more than
        // deg + C(deg, 2) edges. With hubs scheduled first, this
        // prunes the long power-law tail without any I/O.
        let bound = deg + deg.saturating_mul(deg.saturating_sub(1)) / 2;
        if bound <= self.best() {
            self.pruned_no_io.inc();
            return;
        }
        if deg > 0 {
            state.own_assembly.begin(deg);
            ctx.request(v, Request::edges(EdgeDir::Out));
        }
    }

    fn run_on_vertex(
        &self,
        v: VertexId,
        state: &mut ScanState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, ()>,
    ) {
        if vertex.id() == v && state.own_assembly.expecting() {
            // A slice of the own list (whole in the common case,
            // chunked by offset for hubs).
            if let Some(own) = state.own_assembly.absorb(vertex) {
                self.finish_own(own, state, ctx);
            }
        } else {
            // Count edges from this neighbour slice into the
            // neighbourhood; each undirected neighbourhood edge is
            // seen from both ends, so halve at the end.
            let own = state.own.as_deref().expect("own list held while pending");
            let mut i = 0usize;
            for x in vertex.edges() {
                while i < own.len() && own[i] < x.0 {
                    i += 1;
                }
                if i < own.len() && own[i] == x.0 {
                    state.edges_in_neighborhood += 1;
                    i += 1;
                }
            }
            state.pending_edges -= vertex.degree() as u64;
            if state.pending_edges == 0 {
                let own_len = own.len() as u64;
                let scan = own_len + state.edges_in_neighborhood / 2;
                state.scan = Some(scan);
                state.own = None;
                self.raise(scan);
            }
        }
    }
}

/// Result of [`scan_statistics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// The maximum locality statistic.
    pub max_scan: u64,
    /// A vertex achieving it.
    pub argmax: VertexId,
    /// Vertices pruned before any I/O.
    pub pruned_no_io: u64,
    /// Vertices pruned after reading only their own edge list.
    pub pruned_after_own: u64,
}

/// Computes the scan statistic with the paper's degree-descending
/// scheduler and pruning; returns the maximum, its vertex, and prune
/// counters (the measure of how much work the scheduler saved).
///
/// # Errors
///
/// Propagates engine errors.
pub fn scan_statistics<E: GraphEngine>(engine: &E) -> Result<(ScanResult, RunStats)> {
    let cfg = EngineConfig {
        // Scan statistics reads out-lists only (the undirected image
        // keeps one list per vertex), so hubs are ranked by the
        // degree that actually drives their I/O and pruning power.
        scheduler: SchedulerKind::DegreeDescending(EdgeDir::Out),
        // A short pipeline is the point of the custom schedule: the
        // first (largest) vertices must *finish* before the long tail
        // starts, so the rising incumbent can prune the tail. A deep
        // pipeline would start thousands of vertices against an
        // incumbent of zero and read their neighbourhoods for nothing.
        max_pending: 16,
        ..*engine.config()
    };
    let tuned = engine.reconfigured(cfg);
    let program = ScanProgram::default();
    let (states, stats) = tuned.run(&program, Init::All)?;
    let mut best = (VertexId(0), 0u64);
    for (i, s) in states.iter().enumerate() {
        if let Some(scan) = s.scan {
            if scan > best.1 {
                best = (VertexId::from_index(i), scan);
            }
        }
    }
    Ok((
        ScanResult {
            max_scan: best.1,
            argmax: best.0,
            pruned_no_io: program.pruned_no_io.get(),
            pruned_after_own: program.pruned_after_own.get(),
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};
    use flashgraph::Engine;

    #[test]
    fn star_max_is_center_degree() {
        let g = fixtures::star(9);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (res, _) = scan_statistics(&engine).unwrap();
        assert_eq!(res.max_scan, 9);
        assert_eq!(res.argmax, VertexId(0));
    }

    #[test]
    fn complete_graph_scan() {
        let g = fixtures::complete(6);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (res, _) = scan_statistics(&engine).unwrap();
        // deg 5 + C(5,2) = 15 edges in every closed neighbourhood.
        assert_eq!(res.max_scan, 15);
    }

    #[test]
    fn matches_direct_on_symmetrized_rmat() {
        let d = gen::rmat(7, 5, gen::RmatSkew::default(), 55);
        let mut b = fg_graph::GraphBuilder::undirected();
        for (s, t) in d.edges() {
            b.add_edge(s, t);
        }
        let g = b.build();
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (res, _) = scan_statistics(&engine).unwrap();
        let (_, want) = fg_baselines::direct::scan_statistics(&g);
        assert_eq!(res.max_scan, want);
    }

    #[test]
    fn pruning_skips_most_of_a_power_law_graph() {
        let d = gen::rmat(9, 6, gen::RmatSkew::social(), 3);
        let mut b = fg_graph::GraphBuilder::undirected();
        for (s, t) in d.edges() {
            b.add_edge(s, t);
        }
        let g = b.build();
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (res, _) = scan_statistics(&engine).unwrap();
        let pruned = res.pruned_no_io + res.pruned_after_own;
        assert!(
            pruned > g.num_vertices() as u64 / 2,
            "degree-first scheduling should prune most vertices ({pruned} of {})",
            g.num_vertices()
        );
        // Pruning must not change the answer.
        let (_, want) = fg_baselines::direct::scan_statistics(&g);
        assert_eq!(res.max_scan, want);
    }
}
