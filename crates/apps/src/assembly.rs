//! Shared helper for apps that need a vertex's *whole* adjacency even
//! when the engine delivers it as chunked slices
//! (`EngineConfig::max_request_edges`): reassemble deliveries by
//! [`PageVertex::offset`] into one sorted list.
//!
//! Everything here counts **edges, never bytes**: a delivered chunk's
//! byte length is not proportional to its edge count on compressed
//! (delta-varint) images, so progress is tracked via
//! [`PageVertex::degree`] / [`PageVertex::offset`] — which report
//! edge positions on both image formats — and completion means the
//! armed degree's worth of *edges* has arrived.

use flashgraph::PageVertex;

/// Reassembly state for one vertex's own list, embedded in a
/// program's per-vertex state. `begin(degree)` before requesting the
/// list, then feed every delivery to [`OwnListAssembly::absorb`];
/// the full list comes back exactly once, when the last chunk lands.
#[derive(Debug, Default)]
pub(crate) struct OwnListAssembly {
    /// Offset-indexed buffer, allocated only when the list actually
    /// arrives in more than one chunk.
    buf: Option<Box<[u32]>>,
    /// Edges still to arrive (0 = idle).
    pending: u64,
}

impl OwnListAssembly {
    /// Arms the assembly for a list of `degree` edges.
    pub(crate) fn begin(&mut self, degree: u64) {
        self.pending = degree;
    }

    /// Whether a list is still being assembled — the discriminator
    /// between own-list and neighbour-list deliveries.
    pub(crate) fn expecting(&self) -> bool {
        self.pending > 0
    }

    /// Absorbs one delivered slice; returns the complete list when
    /// (and only when) its last chunk lands. The common whole-list
    /// delivery never allocates the assembly buffer, and completing
    /// a chunked list hands the buffer over without copying.
    pub(crate) fn absorb(&mut self, vertex: &PageVertex<'_>) -> Option<Vec<u32>> {
        let got = vertex.degree() as u64;
        if self.buf.is_none() && got == self.pending {
            self.pending = 0;
            return Some(vertex.edges().map(|e| e.0).collect());
        }
        let total = self.pending as usize; // armed with the full degree
        let buf = self
            .buf
            .get_or_insert_with(|| vec![0u32; total].into_boxed_slice());
        for (k, e) in vertex.edges().enumerate() {
            buf[vertex.offset() as usize + k] = e.0;
        }
        self.pending -= got;
        if self.pending == 0 {
            Some(self.buf.take().expect("buffer just filled").into_vec())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::fixtures;
    use fg_types::{EdgeDir, VertexId};
    use flashgraph::{Engine, EngineConfig, Init, Request, VertexContext, VertexProgram};

    struct Collect;

    #[derive(Default)]
    struct CState {
        asm: OwnListAssembly,
        done: Option<Vec<u32>>,
        completions: u32,
    }

    impl VertexProgram for Collect {
        type State = CState;
        type Msg = ();

        fn run(&self, v: VertexId, state: &mut CState, ctx: &mut VertexContext<'_, ()>) {
            if state.done.is_none() && state.completions == 0 {
                state.asm.begin(ctx.degree(v, EdgeDir::Out));
                ctx.request(v, Request::edges(EdgeDir::Out));
            }
        }

        fn run_on_vertex(
            &self,
            _v: VertexId,
            state: &mut CState,
            vertex: &PageVertex<'_>,
            _ctx: &mut VertexContext<'_, ()>,
        ) {
            if let Some(list) = state.asm.absorb(vertex) {
                state.done = Some(list);
                state.completions += 1;
            }
        }
    }

    #[test]
    fn assembles_once_chunked_or_not() {
        let g = fixtures::complete(9);
        for chunk in [0u64, 1, 3, 100] {
            let cfg = EngineConfig::small().with_max_request_edges(chunk);
            let engine = Engine::new_mem(&g, cfg);
            let (states, _) = engine.run(&Collect, Init::All).unwrap();
            for v in g.vertices() {
                let want: Vec<u32> = g.out_neighbors(v).iter().map(|e| e.0).collect();
                let st = &states[v.index()];
                assert_eq!(st.completions, 1, "chunk={chunk} vertex {v}");
                assert_eq!(st.done.as_deref(), Some(&want[..]), "chunk={chunk}");
            }
        }
    }
}
