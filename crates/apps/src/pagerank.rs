//! Delta-based PageRank (§4): a vertex pushes only the *change* of
//! its rank to its neighbours (the Maiter-style formulation the paper
//! cites), so as the algorithm converges fewer vertices stay active —
//! the narrowing access pattern PR shares with WCC.

use fg_types::{EdgeDir, Result, VertexId};
use flashgraph::{
    EngineConfig, GraphEngine, Init, PageVertex, Request, RunStats, VertexContext, VertexProgram,
};

/// The delta-PageRank vertex program.
#[derive(Debug, Clone, Copy)]
pub struct PageRankProgram {
    /// Damping factor; the paper (and Pregel) use 0.85.
    pub damping: f32,
    /// Deltas below this threshold are not propagated.
    pub threshold: f32,
}

impl Default for PageRankProgram {
    fn default() -> Self {
        PageRankProgram {
            damping: 0.85,
            threshold: 1e-3,
        }
    }
}

/// Per-vertex PageRank state.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrState {
    /// Converged rank so far.
    pub rank: f32,
    /// Accumulated un-propagated delta.
    pub delta: f32,
    /// Damped delta awaiting the edge list (set in `run`, spent in
    /// `run_on_vertex`).
    push: f32,
}

impl PrState {
    /// The vertex's rank estimate including the unpropagated residue.
    pub fn estimate(&self) -> f32 {
        self.rank + self.delta
    }
}

impl VertexProgram for PageRankProgram {
    type State = PrState;
    type Msg = f32;

    fn init_state(&self, _v: VertexId) -> PrState {
        PrState {
            rank: 0.0,
            delta: 1.0 - self.damping,
            push: 0.0,
        }
    }

    fn run(&self, v: VertexId, state: &mut PrState, ctx: &mut VertexContext<'_, f32>) {
        let delta = state.delta;
        if delta < self.threshold {
            return;
        }
        state.rank += delta;
        state.delta = 0.0;
        state.push = delta * self.damping;
        if ctx.degree(v, EdgeDir::Out) > 0 {
            ctx.request(v, Request::edges(EdgeDir::Out));
        }
    }

    fn run_on_vertex(
        &self,
        _v: VertexId,
        state: &mut PrState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, f32>,
    ) {
        // Divide by the *full* out-degree, not the slice length: with
        // chunked delivery (`EngineConfig::max_request_edges`) this
        // callback may cover only part of the list.
        let share = state.push / ctx.degree(vertex.id(), EdgeDir::Out) as f32;
        for dst in vertex.edges() {
            ctx.send(dst, share);
        }
    }

    fn run_on_message(
        &self,
        v: VertexId,
        state: &mut PrState,
        msg: &f32,
        ctx: &mut VertexContext<'_, f32>,
    ) {
        state.delta += *msg;
        if state.delta >= self.threshold {
            ctx.activate(v);
        }
    }
}

/// Runs delta-PageRank for at most `max_iters` iterations (the paper
/// caps at 30, matching Pregel); returns per-vertex ranks.
///
/// Ranks converge to the un-normalized fixed point
/// `rank(v) = (1-d) + d * Σ rank(u)/outdeg(u)` — the same quantity
/// `fg_baselines::direct::pagerank` iterates.
///
/// # Errors
///
/// Propagates engine errors.
pub fn pagerank<E: GraphEngine>(
    engine: &E,
    damping: f32,
    threshold: f32,
    max_iters: u32,
) -> Result<(Vec<f32>, RunStats)> {
    let program = PageRankProgram { damping, threshold };
    let cfg = EngineConfig {
        max_iterations: max_iters,
        ..*engine.config()
    };
    let capped = engine.reconfigured(cfg);
    let (states, stats) = capped.run(&program, Init::All)?;
    Ok((states.into_iter().map(|s| s.estimate()).collect(), stats))
}

/// Default-parameter convenience used by benches: damping 0.85,
/// threshold 1e-3, 30 iterations.
pub fn pagerank_default<E: GraphEngine>(engine: &E) -> Result<(Vec<f32>, RunStats)> {
    pagerank(engine, 0.85, 1e-3, 30)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{fixtures, gen};
    use flashgraph::{Engine, EngineConfig};
    #[test]
    fn uniform_on_cycle() {
        let g = fixtures::cycle(10);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (ranks, _) = pagerank(&engine, 0.85, 1e-6, 100).unwrap();
        for r in &ranks {
            assert!((r - 1.0).abs() < 1e-3, "cycle rank {r}");
        }
    }

    #[test]
    fn close_to_power_iteration_on_rmat() {
        let g = gen::rmat(8, 5, gen::RmatSkew::default(), 42);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (ranks, _) = pagerank(&engine, 0.85, 1e-5, 200).unwrap();
        let want = fg_baselines::direct::pagerank(&g, 0.85, 100);
        for v in g.vertices() {
            let got = ranks[v.index()] as f64;
            let expect = want[v.index()];
            assert!(
                (got - expect).abs() < 0.02 * expect.max(1.0),
                "vertex {v}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn narrowing_frontier() {
        // The paper's observation: PR starts with all vertices and
        // narrows as ranks converge.
        let g = gen::rmat(8, 5, gen::RmatSkew::default(), 11);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (_, stats) = pagerank(&engine, 0.85, 1e-3, 30).unwrap();
        let first = stats.per_iteration.first().unwrap().frontier;
        let last = stats.per_iteration.last().unwrap().frontier;
        assert_eq!(first, g.num_vertices() as u64);
        assert!(
            last < first / 4,
            "frontier should narrow: {first} -> {last}"
        );
    }

    #[test]
    fn iteration_cap_respected() {
        let g = gen::rmat(7, 5, gen::RmatSkew::default(), 1);
        let engine = Engine::new_mem(&g, EngineConfig::small());
        let (_, stats) = pagerank(&engine, 0.85, 1e-9, 5).unwrap();
        assert_eq!(stats.iterations, 5);
    }
}
