//! Every application must produce identical results in semi-external
//! memory (over the SSD simulator + SAFS) and in memory — the paper's
//! two execution modes differ only in where edge lists come from.

use fg_format::{load_index, required_capacity_with, write_image_with, WriteOptions};
use fg_graph::{gen, Graph, GraphBuilder};
use fg_safs::{Safs, SafsConfig};
use fg_ssdsim::{ArrayConfig, SsdArray};
use fg_types::VertexId;
use flashgraph::{Engine, EngineConfig};

/// Every equivalence below must hold for both image formats: the CI
/// stress job re-runs this suite with `FG_IMAGE_FORMAT=compressed`
/// (delta-varint edge blocks), which this fixture honours.
fn sem_fixture(g: &Graph) -> (Safs, fg_format::GraphIndex) {
    let opts = WriteOptions::from_env();
    let array =
        SsdArray::new_mem(ArrayConfig::small_test(), required_capacity_with(g, &opts)).unwrap();
    write_image_with(g, &array, &opts).unwrap();
    let (_, index) = load_index(&array).unwrap();
    let safs = Safs::new(SafsConfig::default(), array).unwrap();
    (safs, index)
}

fn directed_graph() -> Graph {
    gen::rmat(9, 5, gen::RmatSkew::default(), 1234)
}

fn undirected_graph() -> Graph {
    let d = gen::rmat(8, 5, gen::RmatSkew::default(), 99);
    let mut b = GraphBuilder::undirected();
    for (s, t) in d.edges() {
        b.add_edge(s, t);
    }
    b.build()
}

#[test]
fn bfs_equivalent() {
    let g = directed_graph();
    let mem = Engine::new_mem(&g, EngineConfig::small());
    let (want, _) = fg_apps::bfs(&mem, VertexId(0)).unwrap();
    let (safs, index) = sem_fixture(&g);
    let sem = Engine::new_sem(&safs, index, EngineConfig::small());
    let (got, stats) = fg_apps::bfs(&sem, VertexId(0)).unwrap();
    assert_eq!(got, want);
    assert!(stats.io.unwrap().read_requests > 0, "sem mode must do I/O");
}

#[test]
fn pagerank_equivalent() {
    let g = directed_graph();
    let mem = Engine::new_mem(&g, EngineConfig::small());
    let (want, _) = fg_apps::pagerank(&mem, 0.85, 1e-4, 60).unwrap();
    let (safs, index) = sem_fixture(&g);
    let sem = Engine::new_sem(&safs, index, EngineConfig::small());
    let (got, _) = fg_apps::pagerank(&sem, 0.85, 1e-4, 60).unwrap();
    for v in g.vertices() {
        // Message application order differs between runs, so floats
        // may differ in the last bits; ranks must agree closely.
        assert!(
            (got[v.index()] - want[v.index()]).abs() < 1e-3,
            "vertex {v}: {} vs {}",
            got[v.index()],
            want[v.index()]
        );
    }
}

#[test]
fn wcc_equivalent() {
    let g = directed_graph();
    let mem = Engine::new_mem(&g, EngineConfig::small());
    let (want, _) = fg_apps::wcc(&mem).unwrap();
    let (safs, index) = sem_fixture(&g);
    let sem = Engine::new_sem(&safs, index, EngineConfig::small());
    let (got, _) = fg_apps::wcc(&sem).unwrap();
    assert_eq!(got, want);
}

#[test]
fn bc_equivalent() {
    let g = directed_graph();
    let mem = Engine::new_mem(&g, EngineConfig::small());
    let (want, _) = fg_apps::bc_single_source(&mem, VertexId(0)).unwrap();
    let (safs, index) = sem_fixture(&g);
    let sem = Engine::new_sem(&safs, index, EngineConfig::small());
    let (got, _) = fg_apps::bc_single_source(&sem, VertexId(0)).unwrap();
    for v in g.vertices() {
        assert!(
            (got[v.index()] - want[v.index()]).abs() < 1e-9,
            "vertex {v}: {} vs {}",
            got[v.index()],
            want[v.index()]
        );
    }
}

#[test]
fn tc_equivalent_and_correct() {
    let g = undirected_graph();
    let want = fg_baselines::direct::triangle_count(&g);
    let (safs, index) = sem_fixture(&g);
    let sem = Engine::new_sem(&safs, index, EngineConfig::small());
    let (got, per, _) = fg_apps::triangle_count(&sem, true).unwrap();
    assert_eq!(got, want);
    assert_eq!(per, fg_baselines::direct::triangles_per_vertex(&g));
}

#[test]
fn tc_with_vertical_partitioning_equivalent() {
    let g = undirected_graph();
    let want = fg_baselines::direct::triangle_count(&g);
    let (safs, index) = sem_fixture(&g);
    let cfg = EngineConfig::small().with_vertical_parts(4);
    let sem = Engine::new_sem(&safs, index, cfg);
    let (got, _, _) = fg_apps::triangle_count(&sem, false).unwrap();
    assert_eq!(got, want);
}

#[test]
fn scan_statistics_equivalent() {
    let g = undirected_graph();
    let (_, want) = fg_baselines::direct::scan_statistics(&g);
    let (safs, index) = sem_fixture(&g);
    let sem = Engine::new_sem(&safs, index, EngineConfig::small());
    let (res, _) = fg_apps::scan_statistics(&sem).unwrap();
    assert_eq!(res.max_scan, want);
}

#[test]
fn sssp_equivalent() {
    let base = directed_graph();
    let g = gen::with_random_weights(&base, 8.0, 5);
    let want = fg_baselines::direct::sssp(&g, VertexId(0));
    let (safs, index) = sem_fixture(&g);
    let sem = Engine::new_sem(&safs, index, EngineConfig::small());
    let (got, _) = fg_apps::sssp(&sem, VertexId(0)).unwrap();
    for v in g.vertices() {
        if want[v.index()].is_infinite() {
            assert!(got[v.index()].is_infinite(), "vertex {v}");
        } else {
            assert!(
                (got[v.index()] as f64 - want[v.index()]).abs() < 1e-3,
                "vertex {v}: {} vs {}",
                got[v.index()],
                want[v.index()]
            );
        }
    }
}

#[test]
fn kcore_equivalent() {
    let g = directed_graph();
    let (safs, index) = sem_fixture(&g);
    let sem = Engine::new_sem(&safs, index, EngineConfig::small());
    for k in [2u32, 4] {
        let (got, _) = fg_apps::k_core(&sem, k).unwrap();
        assert_eq!(got, fg_baselines::direct::k_core(&g, k), "k={k}");
    }
}

#[test]
fn diameter_equivalent() {
    let g = directed_graph();
    let mem = Engine::new_mem(&g, EngineConfig::small());
    let (want, _) = fg_apps::estimate_diameter(&mem, 2, 3).unwrap();
    let (safs, index) = sem_fixture(&g);
    let sem = Engine::new_sem(&safs, index, EngineConfig::small());
    let (got, _) = fg_apps::estimate_diameter(&sem, 2, 3).unwrap();
    assert_eq!(got, want);
}

#[test]
fn lcc_equivalent_exact_and_sampled() {
    // Same sampling seed → same positions → bit-identical estimates
    // in both modes, at both full and sampled k.
    let g = undirected_graph();
    let mem = Engine::new_mem(&g, EngineConfig::small());
    let (safs, index) = sem_fixture(&g);
    let sem = Engine::new_sem(&safs, index, EngineConfig::small());
    for k in [3u32, 1000] {
        let (want, _) = fg_apps::lcc(&mem, k, 42).unwrap();
        let (got, stats) = fg_apps::lcc(&sem, k, 42).unwrap();
        assert_eq!(got, want, "k={k}");
        // The second run may be served entirely from the warm page
        // cache, but it always touches it.
        assert!(stats.cache.unwrap().lookups > 0);
    }
    // And at covering k the estimate is the oracle.
    let (exact, _) = fg_apps::lcc(&mem, 1000, 42).unwrap();
    let oracle = fg_baselines::direct::local_clustering(&g);
    for v in g.vertices() {
        assert!(
            (exact[v.index()] as f64 - oracle[v.index()]).abs() < 1e-6,
            "vertex {v}"
        );
    }
}

#[test]
fn tc_equivalent_under_chunked_delivery() {
    // The chunked request pipeline (hub lists split into bounded
    // slices) must not change results in either mode.
    let g = undirected_graph();
    let cfg = EngineConfig::small().with_max_request_edges(4);
    let mem = Engine::new_mem(&g, cfg);
    let (want_total, want_per, _) = fg_apps::triangle_count(&mem, true).unwrap();
    assert_eq!(want_total, fg_baselines::direct::triangle_count(&g));
    let (safs, index) = sem_fixture(&g);
    let sem = Engine::new_sem(&safs, index, cfg);
    let (got_total, got_per, _) = fg_apps::triangle_count(&sem, true).unwrap();
    assert_eq!(got_total, want_total);
    assert_eq!(got_per, want_per);
}

#[test]
fn analysis_never_writes_to_ssds() {
    // The paper's wearout principle: after the image is loaded, no
    // application writes a single byte.
    let g = directed_graph();
    let (safs, index) = sem_fixture(&g);
    let wear_before = safs.array().stats().snapshot().bytes_written;
    let sem = Engine::new_sem(&safs, index, EngineConfig::small());
    fg_apps::bfs(&sem, VertexId(0)).unwrap();
    fg_apps::wcc(&sem).unwrap();
    fg_apps::pagerank(&sem, 0.85, 1e-3, 10).unwrap();
    fg_apps::bc_single_source(&sem, VertexId(0)).unwrap();
    assert_eq!(safs.array().stats().snapshot().bytes_written, wear_before);
}
