//! Mount-level in-flight read dedup (the serving-layer tentpole).
//!
//! The page cache only helps a second tenant *after* a page lands.
//! Two concurrent sessions missing the same page would both issue a
//! device read for it — the window is exactly the device service
//! time, and under many tenants over a hot vertex set it is hit
//! constantly. This table closes the window: the first session to
//! miss a page *claims* it and becomes its fetcher; any later session
//! missing the same page while the claim is open *attaches* as a
//! waiter instead of dispatching its own run. When an I/O thread
//! finishes the fetching read it resolves the claim, fanning the
//! landed page out to every waiter — one device read, N completions.
//!
//! Ownership discipline: claims are created on application threads at
//! submit time, but they are only ever *resolved on I/O threads*, as
//! part of serving the claiming run. A session that panics or is
//! cancelled mid-wait therefore cannot wedge anyone: its claimed runs
//! are already queued on the I/O thread (which serves every queued
//! run, even across shutdown), and waiter fan-out happens there, not
//! on the dying tenant's thread. A waiter that dies merely makes the
//! fan-out `send` a no-op (the reply channel is disconnected).
//!
//! The protocol (one fetcher, N waiters, cancellation mid-wait) is
//! model-checked in `fg_check::models::inflight_waiter`.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::Sender;
use parking_lot::Mutex;

use crate::io_thread::RunDone;
use crate::page::Page;

/// One session waiting for another session's in-flight read of a
/// single page.
#[derive(Debug)]
pub(crate) struct PageWaiter {
    /// Session-local id of the waiter's logical request.
    pub req_id: u64,
    /// Slot within that request where the page belongs.
    pub slot: u32,
    /// The waiter session's completion mailbox.
    pub reply: Sender<RunDone>,
}

/// The mount-wide table of pages currently being fetched from the
/// device, keyed by page number. An entry's presence *is* the claim;
/// the `Vec` holds only the waiters (the fetcher serves itself
/// through its own run reply).
#[derive(Debug, Default)]
pub(crate) struct InflightTable {
    map: Mutex<HashMap<u64, Vec<PageWaiter>>>,
}

impl InflightTable {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// For each `(pageno, slot)` miss of one logical request, either
    /// attaches to an open claim (another session is already fetching
    /// that page) or opens a new claim (the caller becomes the
    /// fetcher). Returns, aligned with `misses`, `true` for attached
    /// pages — the caller must *not* dispatch device runs for those —
    /// and `false` for claimed pages, which the caller must dispatch
    /// (the I/O thread serving them resolves the claim).
    ///
    /// One lock acquisition covers the whole request, so a concurrent
    /// resolve cannot interleave halfway through: every decision in
    /// the returned vector is made against a single consistent view.
    pub(crate) fn claim_or_attach(
        &self,
        req_id: u64,
        reply: &Sender<RunDone>,
        misses: &[(u64, u32)],
    ) -> Vec<bool> {
        let mut map = self.map.lock();
        misses
            .iter()
            .map(|&(pageno, slot)| match map.get_mut(&pageno) {
                Some(waiters) => {
                    waiters.push(PageWaiter {
                        req_id,
                        slot,
                        reply: reply.clone(),
                    });
                    true
                }
                None => {
                    map.insert(pageno, Vec::new());
                    false
                }
            })
            .collect()
    }

    /// Resolves the claims covered by a finished read of
    /// `pages[0..n]` starting at `first_page`: removes each claim and
    /// fans its page out to every attached waiter as a one-page
    /// completion. Pages without a claim (cache-served members of a
    /// coalesced group, stream spans) are no-ops. Called on I/O
    /// threads only — see the module docs for why that placement is
    /// what makes a dying tenant harmless.
    pub(crate) fn resolve(&self, first_page: u64, pages: &[Arc<Page>]) {
        let mut map = self.map.lock();
        for (k, page) in pages.iter().enumerate() {
            if let Some(waiters) = map.remove(&(first_page + k as u64)) {
                for w in waiters {
                    // A disconnected waiter (dropped session) is fine:
                    // its pages simply go undelivered.
                    let _ = w.reply.send(RunDone {
                        req_id: w.req_id,
                        first_slot: w.slot,
                        pages: vec![Arc::clone(page)],
                    });
                }
            }
        }
    }

    /// Number of open claims (tests and debugging).
    #[cfg(test)]
    pub(crate) fn open_claims(&self) -> usize {
        self.map.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn page(no: u64) -> Arc<Page> {
        Arc::new(Page::new(no, vec![0u8; 8].into_boxed_slice()))
    }

    #[test]
    fn first_claims_second_attaches() {
        let t = InflightTable::new();
        let (tx_a, _rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        let a = t.claim_or_attach(1, &tx_a, &[(10, 0), (11, 1)]);
        assert_eq!(a, vec![false, false], "first session claims both");
        let b = t.claim_or_attach(7, &tx_b, &[(11, 0), (12, 1)]);
        assert_eq!(b, vec![true, false], "page 11 attaches, 12 claims");
        assert_eq!(t.open_claims(), 3);

        // Serving A's run resolves 10 and 11; B's waiter on 11 gets a
        // one-page completion addressed to its own request.
        t.resolve(10, &[page(10), page(11)]);
        assert_eq!(t.open_claims(), 1, "only B's claim on 12 remains");
        let done = rx_b.try_recv().expect("waiter notified");
        assert_eq!(done.req_id, 7);
        assert_eq!(done.first_slot, 0);
        assert_eq!(done.pages[0].pageno(), 11);
        assert!(rx_b.try_recv().is_err(), "exactly one delivery");
    }

    #[test]
    fn resolve_without_claim_is_noop() {
        let t = InflightTable::new();
        t.resolve(5, &[page(5)]);
        assert_eq!(t.open_claims(), 0);
    }

    #[test]
    fn dead_waiter_does_not_wedge_resolution() {
        let t = InflightTable::new();
        let (tx_a, _rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        t.claim_or_attach(1, &tx_a, &[(3, 0)]);
        t.claim_or_attach(2, &tx_b, &[(3, 0)]);
        drop(rx_b); // waiter session died mid-wait
        t.resolve(3, &[page(3)]);
        assert_eq!(t.open_claims(), 0, "claim resolved despite dead waiter");
    }
}
