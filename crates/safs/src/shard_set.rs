//! N independent SAFS mounts, one per shard of a sharded image.
//!
//! Sharded execution (ISSUE 7 / the ROADMAP scale-out item) runs one
//! engine per vertex-range shard, and each shard gets what a single
//! run used to monopolize: its own array, its own page cache, and its
//! own I/O threads. [`ShardSet`] owns those mounts. Nothing is shared
//! between them — aggregate device bandwidth is the point — so the
//! set is mostly a container, plus the roll-up statistics views the
//! sharded driver reports from.

use fg_ssdsim::{IoStatsSnapshot, SsdArray};
use fg_types::Result;

use crate::cache::CacheStatsSnapshot;
use crate::config::SafsConfig;
use crate::safs::Safs;

/// One SAFS mount per shard array. Dropping the set shuts every
/// mount's I/O threads down.
#[derive(Debug)]
pub struct ShardSet {
    mounts: Vec<Safs>,
}

impl ShardSet {
    /// Mounts each array under its own copy of `cfg` (same page size,
    /// cache budget, and I/O thread count per shard — the symmetric
    /// layout [`crate::Safs`] benchmarks use). The cache budget in
    /// `cfg` is *per shard*: N shards hold N caches of that size.
    ///
    /// # Errors
    ///
    /// Returns [`fg_types::FgError::InvalidConfig`] when `cfg` is
    /// invalid or `arrays` is empty.
    pub fn new(cfg: SafsConfig, arrays: Vec<SsdArray>) -> Result<Self> {
        if arrays.is_empty() {
            return Err(fg_types::FgError::InvalidConfig(
                "a shard set needs at least one array".into(),
            ));
        }
        let mounts = arrays
            .into_iter()
            .map(|a| Safs::new(cfg, a))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardSet { mounts })
    }

    /// Wraps already-mounted filesystems, in shard order.
    ///
    /// # Panics
    ///
    /// Panics if `mounts` is empty or the mounts disagree on page
    /// size (one image layout must address all of them).
    pub fn from_mounts(mounts: Vec<Safs>) -> Self {
        assert!(!mounts.is_empty(), "a shard set needs at least one mount");
        let pb = mounts[0].page_bytes();
        assert!(
            mounts.iter().all(|m| m.page_bytes() == pb),
            "shard mounts disagree on page size"
        );
        ShardSet { mounts }
    }

    /// Number of shards.
    #[inline]
    pub fn len(&self) -> usize {
        self.mounts.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mounts.is_empty()
    }

    /// Shard `s`'s mount.
    #[inline]
    pub fn shard(&self, s: usize) -> &Safs {
        &self.mounts[s]
    }

    /// Iterates the mounts in shard order.
    pub fn iter(&self) -> impl Iterator<Item = &Safs> {
        self.mounts.iter()
    }

    /// Page size shared by every mount.
    #[inline]
    pub fn page_bytes(&self) -> u64 {
        self.mounts[0].page_bytes()
    }

    /// Resets cache and device statistics on every mount.
    pub fn reset_stats(&self) {
        for m in &self.mounts {
            m.reset_stats();
        }
    }

    /// Aggregate device statistics across all shard arrays
    /// (per-drive busy times concatenated in shard order).
    pub fn io_stats(&self) -> IoStatsSnapshot {
        let mut agg = self.mounts[0].array().stats().snapshot();
        for m in &self.mounts[1..] {
            agg.absorb(&m.array().stats().snapshot());
        }
        agg
    }

    /// Aggregate page-cache statistics across all shard caches.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        let mut agg = self.mounts[0].cache_stats();
        for m in &self.mounts[1..] {
            agg.absorb(&m.cache_stats());
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_ssdsim::ArrayConfig;

    fn set_of(n: usize) -> ShardSet {
        let arrays = (0..n)
            .map(|_| SsdArray::new_mem(ArrayConfig::small_test(), 1 << 16).unwrap())
            .collect();
        ShardSet::new(SafsConfig::default_test(), arrays).unwrap()
    }

    #[test]
    fn mounts_are_independent() {
        let set = set_of(3);
        assert_eq!(set.len(), 3);
        set.shard(1).array().write(0, &[7u8; 4096]).unwrap();
        let span = set.shard(1).read_sync(0, 16).unwrap();
        assert_eq!(span.to_vec(), vec![7u8; 16]);
        // Only shard 1's device saw traffic.
        let s0 = set.shard(0).array().stats().snapshot();
        let s1 = set.shard(1).array().stats().snapshot();
        assert_eq!(s0.read_requests, 0);
        assert!(s1.read_requests > 0);
        // ... and the aggregate sees exactly that one shard's reads.
        assert_eq!(set.io_stats().read_requests, s1.read_requests);
        assert!(set.cache_stats().misses > 0);
        set.reset_stats();
        assert_eq!(set.io_stats().read_requests, 0);
        assert_eq!(set.cache_stats().lookups, 0);
    }

    #[test]
    fn dedup_counters_sum_across_shards() {
        let set = set_of(3);
        set.shard(0).array().stats().record_dedup(2, 8192);
        set.shard(2).array().stats().record_dedup(1, 4096);
        let agg = set.io_stats();
        assert_eq!(agg.dedup_hits, 3);
        assert_eq!(agg.dedup_bytes, 12288);
        // And per-shard snapshots sum to exactly the mount total.
        let sum: u64 = set
            .iter()
            .map(|m| m.array().stats().snapshot().dedup_bytes)
            .sum();
        assert_eq!(sum, agg.dedup_bytes);
    }

    #[test]
    fn empty_set_rejected() {
        assert!(ShardSet::new(SafsConfig::default_test(), Vec::new()).is_err());
    }
}
