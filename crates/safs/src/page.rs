//! Cached pages and zero-copy spans over them.

use std::sync::Arc;

/// One immutable cached page.
///
/// Pages are filled once by an I/O thread and shared read-only via
/// `Arc` — by the cache, by in-flight completions, and by user tasks.
/// Eviction merely drops the cache's reference; spans keep pages
/// alive, so user tasks never observe reuse.
#[derive(Debug)]
pub struct Page {
    pageno: u64,
    data: Box<[u8]>,
}

impl Page {
    /// Wraps freshly read bytes as page `pageno`.
    pub fn new(pageno: u64, data: Box<[u8]>) -> Self {
        Page { pageno, data }
    }

    /// The page number (byte offset / page size).
    #[inline]
    pub fn pageno(&self) -> u64 {
        self.pageno
    }

    /// The page's bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Page size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the page holds no bytes (never the case for pages
    /// produced by SAFS, but required for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A zero-copy view of a byte range assembled from consecutive cached
/// pages.
///
/// This is what the asynchronous user-task interface hands to a
/// completion: the user task reads edge lists straight out of the
/// page cache without SAFS allocating or copying into per-request
/// buffers (§3.1: avoiding "substantial memory consumption" from
/// empty buffers awaiting fill).
#[derive(Debug, Clone)]
pub struct PageSpan {
    pages: Vec<Arc<Page>>,
    page_bytes: usize,
    /// Offset of the span's first byte inside `pages[0]`.
    head: usize,
    len: usize,
}

impl PageSpan {
    /// Builds a span of `len` bytes starting `head` bytes into the
    /// first of `pages`.
    ///
    /// # Panics
    ///
    /// Panics when the pages do not cover `head + len` bytes, when
    /// pages differ in size, or when their page numbers are not
    /// consecutive.
    pub fn new(pages: Vec<Arc<Page>>, head: usize, len: usize) -> Self {
        assert!(!pages.is_empty() || len == 0, "empty span needs no pages");
        let page_bytes = pages.first().map(|p| p.len()).unwrap_or(0);
        for w in pages.windows(2) {
            assert_eq!(w[0].len(), w[1].len(), "span pages must share a size");
            assert_eq!(
                w[0].pageno() + 1,
                w[1].pageno(),
                "span pages must be consecutive"
            );
        }
        if len > 0 {
            assert!(
                head + len <= page_bytes * pages.len(),
                "span [{head}, {}) exceeds {} pages of {page_bytes} bytes",
                head + len,
                pages.len()
            );
        }
        PageSpan {
            pages,
            page_bytes,
            head,
            len,
        }
    }

    /// An empty span.
    pub fn empty() -> Self {
        PageSpan {
            pages: Vec::new(),
            page_bytes: 0,
            head: 0,
            len: 0,
        }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the span covers zero bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn byte(&self, i: usize) -> u8 {
        assert!(i < self.len, "span index {i} out of {} bytes", self.len);
        let abs = self.head + i;
        self.pages[abs / self.page_bytes].bytes()[abs % self.page_bytes]
    }

    /// Copies `out.len()` bytes starting at span position `at`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the span.
    pub fn read_bytes(&self, at: usize, out: &mut [u8]) {
        assert!(
            at + out.len() <= self.len,
            "range [{at}, {}) exceeds span of {} bytes",
            at + out.len(),
            self.len
        );
        let mut abs = self.head + at;
        let mut done = 0;
        while done < out.len() {
            let page = &self.pages[abs / self.page_bytes];
            let off = abs % self.page_bytes;
            let take = (self.page_bytes - off).min(out.len() - done);
            out[done..done + take].copy_from_slice(&page.bytes()[off..off + take]);
            done += take;
            abs += take;
        }
    }

    /// Little-endian `u32` at byte position `at` (may straddle pages).
    ///
    /// # Panics
    ///
    /// Panics if the 4-byte range exceeds the span.
    #[inline]
    pub fn read_u32_le(&self, at: usize) -> u32 {
        let abs = self.head + at;
        let off = abs % self.page_bytes;
        if off + 4 <= self.page_bytes {
            assert!(at + 4 <= self.len, "u32 at {at} exceeds span");
            let b = &self.pages[abs / self.page_bytes].bytes()[off..off + 4];
            u32::from_le_bytes(b.try_into().unwrap())
        } else {
            let mut b = [0u8; 4];
            self.read_bytes(at, &mut b);
            u32::from_le_bytes(b)
        }
    }

    /// Iterates the span as little-endian `u32`s — the engine's edge
    /// list decode. The span length must be a multiple of 4.
    pub fn u32_iter(&self) -> impl Iterator<Item = u32> + '_ {
        debug_assert_eq!(
            self.len % 4,
            0,
            "u32 stream length {} not aligned",
            self.len
        );
        (0..self.len / 4).map(move |i| self.read_u32_le(i * 4))
    }

    /// Copies the whole span into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = vec![0u8; self.len];
        if self.len > 0 {
            self.read_bytes(0, &mut v);
        }
        v
    }

    /// Number of pages backing the span.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// A zero-copy sub-span of `len` bytes starting at span position
    /// `at`. Only the pages covering the sub-range keep a reference.
    ///
    /// This is how the engine splits one *merged* I/O request back
    /// into per-vertex edge-list views (§3.6).
    ///
    /// # Panics
    ///
    /// Panics if `at + len` exceeds the span.
    pub fn slice(&self, at: usize, len: usize) -> PageSpan {
        assert!(
            at + len <= self.len,
            "slice [{at}, {}) exceeds span of {} bytes",
            at + len,
            self.len
        );
        if len == 0 {
            return PageSpan::empty();
        }
        let abs = self.head + at;
        let first = abs / self.page_bytes;
        let last = (abs + len - 1) / self.page_bytes;
        PageSpan {
            pages: self.pages[first..=last].to_vec(),
            page_bytes: self.page_bytes,
            head: abs - first * self.page_bytes,
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(no: u64, fill: impl Fn(usize) -> u8, size: usize) -> Arc<Page> {
        Arc::new(Page::new(no, (0..size).map(fill).collect()))
    }

    #[test]
    fn single_page_span() {
        let p = page(0, |i| i as u8, 64);
        let s = PageSpan::new(vec![p], 10, 20);
        assert_eq!(s.len(), 20);
        assert_eq!(s.byte(0), 10);
        assert_eq!(s.byte(19), 29);
    }

    #[test]
    fn cross_page_reads() {
        let p0 = page(0, |_| 0xAA, 16);
        let p1 = page(1, |_| 0xBB, 16);
        let s = PageSpan::new(vec![p0, p1], 12, 8);
        let mut buf = [0u8; 8];
        s.read_bytes(0, &mut buf);
        assert_eq!(buf, [0xAA, 0xAA, 0xAA, 0xAA, 0xBB, 0xBB, 0xBB, 0xBB]);
    }

    #[test]
    fn u32_across_boundary() {
        // Bytes 0..16 on page 0 hold 0..15; page 1 holds 16..31.
        let p0 = page(0, |i| i as u8, 16);
        let p1 = page(1, |i| (16 + i) as u8, 16);
        let s = PageSpan::new(vec![p0, p1], 14, 8);
        // First u32 = bytes 14,15,16,17.
        assert_eq!(s.read_u32_le(0), u32::from_le_bytes([14, 15, 16, 17]));
        let all: Vec<u32> = s.u32_iter().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1], u32::from_le_bytes([18, 19, 20, 21]));
    }

    #[test]
    fn to_vec_matches_bytes() {
        let p0 = page(5, |i| i as u8, 8);
        let p1 = page(6, |i| (8 + i) as u8, 8);
        let s = PageSpan::new(vec![p0, p1], 3, 10);
        assert_eq!(s.to_vec(), (3u8..13).collect::<Vec<_>>());
    }

    #[test]
    fn empty_span() {
        let s = PageSpan::empty();
        assert!(s.is_empty());
        assert_eq!(s.to_vec(), Vec::<u8>::new());
        assert_eq!(s.u32_iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn non_consecutive_pages_rejected() {
        let p0 = page(0, |_| 0, 8);
        let p2 = page(2, |_| 0, 8);
        PageSpan::new(vec![p0, p2], 0, 16);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_span_rejected() {
        let p0 = page(0, |_| 0, 8);
        PageSpan::new(vec![p0], 4, 8);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn byte_out_of_range_panics() {
        let p0 = page(0, |_| 0, 8);
        let s = PageSpan::new(vec![p0], 0, 4);
        s.byte(4);
    }

    #[test]
    fn slice_reads_the_right_bytes() {
        let p0 = page(0, |i| i as u8, 16);
        let p1 = page(1, |i| (16 + i) as u8, 16);
        let p2 = page(2, |i| (32 + i) as u8, 16);
        let s = PageSpan::new(vec![p0, p1, p2], 4, 40); // bytes 4..44
        let sub = s.slice(10, 8); // absolute bytes 14..22
        assert_eq!(sub.to_vec(), (14u8..22).collect::<Vec<_>>());
        // Sub-span drops pages it does not cover.
        let tail = s.slice(30, 8); // absolute 34..42: page 2 only
        assert_eq!(tail.page_count(), 1);
        assert_eq!(tail.to_vec(), (34u8..42).collect::<Vec<_>>());
    }

    #[test]
    fn slice_zero_len_is_empty() {
        let p0 = page(0, |i| i as u8, 16);
        let s = PageSpan::new(vec![p0], 0, 16);
        assert!(s.slice(8, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds span")]
    fn slice_out_of_range_panics() {
        let p0 = page(0, |i| i as u8, 16);
        let s = PageSpan::new(vec![p0], 0, 16);
        s.slice(10, 7);
    }

    #[test]
    fn span_keeps_pages_alive() {
        let p = page(0, |_| 7, 8);
        let weak = Arc::downgrade(&p);
        let s = PageSpan::new(vec![p], 0, 8);
        assert!(weak.upgrade().is_some());
        drop(s);
        assert!(weak.upgrade().is_none());
    }
}
