//! Generation handoff: the atomic flip that retargets new work at a
//! rewritten mount (or any other per-generation resource) while work
//! already pinned to the old generation keeps its `Arc` alive.
//!
//! The serving layer's compactor rewrites the on-SSD image into a new
//! generation and must switch queries over without a stop-the-world:
//! a query *pins* the current generation at admission (cheap `Arc`
//! clone under a read lock) and uses that value for its whole run; the
//! compactor *flips* to the next generation under the write lock. Old
//! generations die when their last pin drops — classic RCU shape, with
//! the `RwLock` standing in for the grace period (readers hold it only
//! for the clone, never across I/O).

use std::sync::{Arc, RwLock};

/// An atomically swappable, generation-numbered `Arc<T>`.
///
/// ```
/// use fg_safs::Handoff;
///
/// let h = Handoff::new("gen0");
/// let (g, pinned) = h.pin();
/// assert_eq!((g, *pinned), (0, "gen0"));
/// h.flip("gen1");
/// assert_eq!(h.generation(), 1);
/// // The earlier pin still sees its snapshot.
/// assert_eq!(*pinned, "gen0");
/// ```
#[derive(Debug)]
pub struct Handoff<T> {
    slot: RwLock<(u64, Arc<T>)>,
}

impl<T> Handoff<T> {
    /// A handoff starting at generation 0 with `value`.
    pub fn new(value: T) -> Self {
        Handoff {
            slot: RwLock::new((0, Arc::new(value))),
        }
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.slot.read().unwrap().0
    }

    /// Pins the current `(generation, value)` — the caller's clone
    /// stays valid across any number of flips.
    pub fn pin(&self) -> (u64, Arc<T>) {
        let g = self.slot.read().unwrap();
        (g.0, Arc::clone(&g.1))
    }

    /// Atomically installs `value` as the next generation, returning
    /// the new generation number. Pins taken before the flip keep the
    /// old value; pins taken after see only the new one — there is no
    /// in-between state.
    pub fn flip(&self, value: T) -> u64 {
        let mut g = self.slot.write().unwrap();
        g.0 += 1;
        g.1 = Arc::new(value);
        g.0
    }

    /// Like [`Handoff::flip`] but runs `commit` inside the write
    /// lock's critical section, after the new value is installed —
    /// the hook the serving layer uses to fold the delta log at the
    /// exact point the flip becomes visible, so no pin can observe
    /// the new image *and* the deltas it already absorbed.
    pub fn flip_with(&self, value: T, commit: impl FnOnce(u64)) -> u64 {
        let mut g = self.slot.write().unwrap();
        g.0 += 1;
        g.1 = Arc::new(value);
        commit(g.0);
        g.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_survive_flips() {
        let h = Handoff::new(vec![1, 2, 3]);
        let (g0, v0) = h.pin();
        assert_eq!(g0, 0);
        assert_eq!(h.flip(vec![4]), 1);
        let (g1, v1) = h.pin();
        assert_eq!((g1, v1.as_slice()), (1, &[4][..]));
        assert_eq!(v0.as_slice(), &[1, 2, 3]);
        assert_eq!(h.generation(), 1);
    }

    #[test]
    fn flip_with_runs_commit_at_the_new_generation() {
        let h = Handoff::new(0u32);
        let mut seen = None;
        h.flip_with(1, |g| seen = Some(g));
        assert_eq!(seen, Some(1));
    }

    #[test]
    fn concurrent_pins_see_a_coherent_pair() {
        let h = Arc::new(Handoff::new(0u64));
        std::thread::scope(|s| {
            let flipper = Arc::clone(&h);
            s.spawn(move || {
                for i in 1..=100 {
                    flipper.flip(i);
                }
            });
            for _ in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for _ in 0..200 {
                        let (g, v) = h.pin();
                        // Generation g always carries value g.
                        assert_eq!(g, *v);
                    }
                });
            }
        });
    }
}
