//! SAFS configuration.

use fg_types::{FgError, Result};

/// Tunables of a [`crate::Safs`] instance.
///
/// The two knobs the paper sweeps in its evaluation are here:
/// `page_bytes` (Figure 13: 4 KB wins; megabyte pages waste bandwidth)
/// and `cache_bytes` (Figure 14: graceful degradation down to small
/// caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafsConfig {
    /// SAFS page size in bytes — the smallest unit FlashGraph reads
    /// from SSDs. Defaults to 4096, the flash page size.
    pub page_bytes: u64,
    /// Page-cache capacity in bytes. Zero disables caching entirely.
    pub cache_bytes: u64,
    /// Associativity of each cache set. The SA-cache paper uses 8.
    pub cache_ways: usize,
    /// Number of I/O threads. Zero means one per simulated SSD.
    pub io_threads: usize,
    /// Whether I/O threads sort-and-merge the requests waiting in
    /// their queue before hitting the device (the "merge in SAFS"
    /// configuration of Figure 12). Engine-level merging is separate
    /// and lives in the `flashgraph` crate.
    pub safs_merge: bool,
}

impl SafsConfig {
    /// 4 KB pages, 64 MB cache, SAFS merging on.
    pub fn default_test() -> Self {
        SafsConfig {
            page_bytes: 4096,
            cache_bytes: 64 << 20,
            cache_ways: 8,
            io_threads: 0,
            safs_merge: true,
        }
    }

    /// Builder-style: sets the page size.
    pub fn with_page_bytes(mut self, bytes: u64) -> Self {
        self.page_bytes = bytes;
        self
    }

    /// Builder-style: sets the cache capacity.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Builder-style: toggles SAFS-side merging.
    pub fn with_safs_merge(mut self, on: bool) -> Self {
        self.safs_merge = on;
        self
    }

    /// Cache capacity in pages.
    pub fn cache_pages(&self) -> usize {
        (self.cache_bytes / self.page_bytes) as usize
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidConfig`] for a non-power-of-two page
    /// size or zero associativity.
    pub fn validate(&self) -> Result<()> {
        if self.page_bytes == 0 || !self.page_bytes.is_power_of_two() {
            return Err(FgError::InvalidConfig(format!(
                "page_bytes {} must be a nonzero power of two",
                self.page_bytes
            )));
        }
        if self.cache_ways == 0 {
            return Err(FgError::InvalidConfig("cache_ways must be > 0".into()));
        }
        Ok(())
    }
}

impl Default for SafsConfig {
    fn default() -> Self {
        SafsConfig::default_test()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SafsConfig::default().validate().is_ok());
        assert_eq!(SafsConfig::default().page_bytes, 4096);
    }

    #[test]
    fn builder_chains() {
        let c = SafsConfig::default()
            .with_page_bytes(8192)
            .with_cache_bytes(1 << 20)
            .with_safs_merge(false);
        assert_eq!(c.page_bytes, 8192);
        assert_eq!(c.cache_pages(), 128);
        assert!(!c.safs_merge);
    }

    #[test]
    fn rejects_bad_page_size() {
        assert!(SafsConfig::default()
            .with_page_bytes(3000)
            .validate()
            .is_err());
        assert!(SafsConfig::default().with_page_bytes(0).validate().is_err());
    }

    #[test]
    fn rejects_zero_ways() {
        let c = SafsConfig {
            cache_ways: 0,
            ..SafsConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_cache_means_zero_pages() {
        assert_eq!(SafsConfig::default().with_cache_bytes(0).cache_pages(), 0);
    }
}
