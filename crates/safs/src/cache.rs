//! The set-associative page cache (§3.1; Zheng et al., HotStorage'12).
//!
//! Pages hash to one of many small *sets*; each set holds a handful of
//! pages (the associativity), its own lock, and a gclock hand. The
//! scheme trades a little hit-rate (a hot page can only live in its
//! home set) for near-perfect lock scalability — the property the
//! paper leans on: "this page cache reduces locking overhead and
//! incurs little overhead when the cache hit rate is low".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use crate::page::Page;

/// Live cache counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl CacheStats {
    /// Takes a snapshot of the counters.
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
        }
    }

    /// Resets the counters.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheStatsSnapshot {
    /// Lookups that found their page.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Pages pushed out by gclock.
    pub evictions: u64,
    /// Pages inserted.
    pub insertions: u64,
}

impl CacheStatsSnapshot {
    /// Hit fraction in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference `self - earlier`, isolating one
    /// experiment phase.
    pub fn delta_since(&self, earlier: &CacheStatsSnapshot) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            insertions: self.insertions - earlier.insertions,
        }
    }
}

struct Slot {
    pageno: u64,
    page: Arc<Page>,
    /// gclock reference counter; hits increment, the hand decrements.
    hits: u8,
}

struct CacheSet {
    slots: Vec<Slot>,
    hand: usize,
}

impl CacheSet {
    fn lookup(&mut self, pageno: u64) -> Option<Arc<Page>> {
        for s in &mut self.slots {
            if s.pageno == pageno {
                s.hits = s.hits.saturating_add(1);
                return Some(Arc::clone(&s.page));
            }
        }
        None
    }

    /// Inserts `page`, evicting via gclock when the set is full.
    /// Returns whether an eviction happened.
    fn insert(&mut self, pageno: u64, page: Arc<Page>, ways: usize) -> bool {
        if let Some(s) = self.slots.iter_mut().find(|s| s.pageno == pageno) {
            // Another thread raced the same page in; refresh it.
            s.page = page;
            return false;
        }
        if self.slots.len() < ways {
            self.slots.push(Slot {
                pageno,
                page,
                hits: 1,
            });
            return false;
        }
        // gclock: sweep the hand, decrementing, until a cold slot.
        loop {
            let s = &mut self.slots[self.hand];
            if s.hits == 0 {
                *s = Slot {
                    pageno,
                    page,
                    hits: 1,
                };
                self.hand = (self.hand + 1) % self.slots.len();
                return true;
            }
            s.hits -= 1;
            self.hand = (self.hand + 1) % self.slots.len();
        }
    }
}

/// The set-associative page cache.
///
/// Capacity zero is legal and turns every lookup into a miss and every
/// insert into a no-op, which is how "no cache" experiment
/// configurations run.
pub struct PageCache {
    sets: Vec<Mutex<CacheSet>>,
    ways: usize,
    stats: CacheStats,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("sets", &self.sets.len())
            .field("ways", &self.ways)
            .finish_non_exhaustive()
    }
}

impl PageCache {
    /// A cache of at most `capacity_pages` pages with `ways`
    /// associativity.
    pub fn new(capacity_pages: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let nsets = capacity_pages / ways;
        let mut sets = Vec::with_capacity(nsets);
        sets.resize_with(nsets, || {
            Mutex::new(CacheSet {
                slots: Vec::with_capacity(ways),
                hand: 0,
            })
        });
        PageCache {
            sets,
            ways,
            stats: CacheStats::default(),
        }
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Live statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, pageno: u64) -> usize {
        // Fibonacci multiplicative hash spreads sequential page
        // numbers across sets.
        ((pageno.wrapping_mul(0x9E3779B97F4A7C15)) >> 32) as usize % self.sets.len()
    }

    /// Looks `pageno` up, bumping its gclock counter on a hit.
    pub fn get(&self, pageno: u64) -> Option<Arc<Page>> {
        if self.sets.is_empty() {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let got = self.sets[self.set_of(pageno)].lock().lookup(pageno);
        match &got {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Like [`PageCache::get`] but without touching the hit/miss
    /// counters — used by I/O threads re-checking for pages that
    /// raced into the cache after the application-side lookup missed
    /// (the "pending page" dedup of real SAFS). Counting these would
    /// double-book the application's miss.
    pub fn get_quiet(&self, pageno: u64) -> Option<Arc<Page>> {
        if self.sets.is_empty() {
            return None;
        }
        self.sets[self.set_of(pageno)].lock().lookup(pageno)
    }

    /// Inserts a freshly read page.
    pub fn insert(&self, page: Arc<Page>) {
        if self.sets.is_empty() {
            return;
        }
        let pageno = page.pageno();
        let evicted = self.sets[self.set_of(pageno)]
            .lock()
            .insert(pageno, page, self.ways);
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_page(no: u64) -> Arc<Page> {
        Arc::new(Page::new(no, vec![no as u8; 16].into_boxed_slice()))
    }

    #[test]
    fn hit_after_insert() {
        let c = PageCache::new(64, 8);
        assert!(c.get(5).is_none());
        c.insert(mk_page(5));
        let p = c.get(5).expect("hit");
        assert_eq!(p.pageno(), 5);
        let s = c.stats().snapshot();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let c = PageCache::new(0, 8);
        c.insert(mk_page(1));
        assert!(c.get(1).is_none());
        assert_eq!(c.stats().snapshot().insertions, 0);
    }

    #[test]
    fn eviction_kicks_in_when_full() {
        // One set of 4 ways: inserting 5 distinct pages must evict.
        let c = PageCache::new(4, 4);
        for no in 0..5 {
            c.insert(mk_page(no));
        }
        let s = c.stats().snapshot();
        assert_eq!(s.insertions, 5);
        assert!(s.evictions >= 1);
        // Exactly 4 of the 5 remain.
        let resident = (0..5).filter(|&no| c.get(no).is_some()).count();
        assert_eq!(resident, 4);
    }

    #[test]
    fn gclock_protects_hot_pages() {
        let c = PageCache::new(4, 4);
        for no in 0..4 {
            c.insert(mk_page(no));
        }
        // Heat page 0 well above the others.
        for _ in 0..10 {
            c.get(0);
        }
        // Stream a burst of cold pages through: the hand must evict
        // the cold originals before it wears the hot page down.
        for no in 100..106 {
            c.insert(mk_page(no));
        }
        assert!(
            c.get(0).is_some(),
            "hot page evicted before colder residents"
        );
        let cold_survivors = (1..4).filter(|&no| c.get(no).is_some()).count();
        assert_eq!(cold_survivors, 0, "cold pages outlived the streaming burst");
    }

    #[test]
    fn duplicate_insert_is_refresh_not_eviction() {
        let c = PageCache::new(4, 4);
        c.insert(mk_page(9));
        c.insert(mk_page(9));
        let s = c.stats().snapshot();
        assert_eq!(s.evictions, 0);
        assert!(c.get(9).is_some());
    }

    #[test]
    fn hit_rate_math() {
        let c = PageCache::new(16, 8);
        c.insert(mk_page(1));
        c.get(1); // hit
        c.get(2); // miss
        c.get(1); // hit
        let s = c.stats().snapshot();
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_counters() {
        let c = PageCache::new(16, 8);
        c.get(1);
        c.stats().reset();
        let s = c.stats().snapshot();
        assert_eq!((s.hits, s.misses, s.evictions, s.insertions), (0, 0, 0, 0));
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let c = std::sync::Arc::new(PageCache::new(256, 8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let no = (t * 1000 + i) % 512;
                    if c.get(no).is_none() {
                        c.insert(mk_page(no));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats().snapshot();
        assert_eq!(s.hits + s.misses, 4000);
    }

    #[test]
    fn sets_spread_sequential_pages() {
        // Sequential page numbers should not all land in one set.
        let c = PageCache::new(64, 8); // 8 sets
        let mut seen = std::collections::HashSet::new();
        for no in 0..32 {
            seen.insert(c.set_of(no));
        }
        assert!(seen.len() >= 4, "only {} sets used", seen.len());
    }
}
