//! The set-associative page cache (§3.1; Zheng et al., HotStorage'12).
//!
//! Pages hash to one of many small *sets*; each set holds a handful of
//! pages (the associativity), its own lock, and a gclock hand. The
//! scheme trades a little hit-rate (a hot page can only live in its
//! home set) for near-perfect lock scalability — the property the
//! paper leans on: "this page cache reduces locking overhead and
//! incurs little overhead when the cache hit rate is low".

use std::sync::Arc;

use fg_types::sync::Counter;
use parking_lot::Mutex;
use serde::Serialize;

use crate::page::Page;

/// Live cache counters.
///
/// One instance lives inside every [`PageCache`]; additional
/// free-standing instances act as per-session *scopes*
/// ([`crate::Safs::session_scoped`]) that accumulate only the lookups
/// one tenant performed against a shared cache.
#[derive(Debug, Default)]
pub struct CacheStats {
    lookups: Counter,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    insertions: Counter,
}

impl CacheStats {
    /// Takes a snapshot of the counters.
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            lookups: self.lookups.get(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            insertions: self.insertions.get(),
        }
    }

    /// Records one lookup outcome (used by scoped per-session stats;
    /// the cache's own counters are maintained by [`PageCache::get`]).
    pub fn record_lookup(&self, hit: bool) {
        self.lookups.inc();
        if hit {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
    }

    /// Resets the counters.
    pub fn reset(&self) {
        self.lookups.set(0);
        self.hits.set(0);
        self.misses.set(0);
        self.evictions.set(0);
        self.insertions.set(0);
    }
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheStatsSnapshot {
    /// Counted lookups (always `hits + misses`).
    pub lookups: u64,
    /// Lookups that found their page.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Pages pushed out by gclock.
    pub evictions: u64,
    /// Pages inserted.
    pub insertions: u64,
}

impl CacheStatsSnapshot {
    /// Folds `other` into `self` — the aggregate view over several
    /// independent caches (one per shard mount).
    pub fn absorb(&mut self, other: &CacheStatsSnapshot) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.insertions += other.insertions;
    }

    /// Hit fraction in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference `self - earlier`, isolating one
    /// experiment phase.
    ///
    /// Saturating: if [`CacheStats::reset`] ran between the two
    /// snapshots, `earlier` can exceed `self`; each counter clamps at
    /// zero instead of panicking (debug) or wrapping (release).
    pub fn delta_since(&self, earlier: &CacheStatsSnapshot) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            lookups: self.lookups.saturating_sub(earlier.lookups),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            insertions: self.insertions.saturating_sub(earlier.insertions),
        }
    }
}

struct Slot {
    pageno: u64,
    page: Arc<Page>,
    /// gclock reference counter; hits increment, the hand decrements.
    hits: u8,
}

struct CacheSet {
    slots: Vec<Slot>,
    hand: usize,
}

impl CacheSet {
    fn lookup(&mut self, pageno: u64) -> Option<Arc<Page>> {
        for s in &mut self.slots {
            if s.pageno == pageno {
                s.hits = s.hits.saturating_add(1);
                return Some(Arc::clone(&s.page));
            }
        }
        None
    }

    /// Inserts `page`, evicting via gclock when the set is full.
    /// Returns whether an eviction happened.
    fn insert(&mut self, pageno: u64, page: Arc<Page>, ways: usize) -> bool {
        if let Some(s) = self.slots.iter_mut().find(|s| s.pageno == pageno) {
            // Another thread raced the same page in; refresh it.
            s.page = page;
            return false;
        }
        if self.slots.len() < ways {
            self.slots.push(Slot {
                pageno,
                page,
                hits: 1,
            });
            return false;
        }
        // gclock: sweep the hand, decrementing, until a cold slot.
        loop {
            let s = &mut self.slots[self.hand];
            if s.hits == 0 {
                *s = Slot {
                    pageno,
                    page,
                    hits: 1,
                };
                self.hand = (self.hand + 1) % self.slots.len();
                return true;
            }
            s.hits -= 1;
            self.hand = (self.hand + 1) % self.slots.len();
        }
    }
}

/// The set-associative page cache.
///
/// Capacity zero is legal and turns every lookup into a miss and every
/// insert into a no-op, which is how "no cache" experiment
/// configurations run.
pub struct PageCache {
    sets: Vec<Mutex<CacheSet>>,
    ways: usize,
    stats: CacheStats,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("sets", &self.sets.len())
            .field("ways", &self.ways)
            .finish_non_exhaustive()
    }
}

impl PageCache {
    /// A cache of at least `capacity_pages` pages with `ways`
    /// associativity.
    ///
    /// Capacity 0 is the documented no-cache mode (zero sets). For any
    /// other capacity the set count rounds *up* and `ways` is clamped
    /// to the capacity, so small caches (`0 < capacity_pages < ways`)
    /// still hold pages instead of silently degenerating into a
    /// zero-set cache whose lookups can never hit (and whose
    /// `pageno % nsets` indexing would divide by zero).
    pub fn new(capacity_pages: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let ways = if capacity_pages == 0 {
            ways
        } else {
            ways.min(capacity_pages)
        };
        let nsets = capacity_pages.div_ceil(ways);
        let mut sets = Vec::with_capacity(nsets);
        sets.resize_with(nsets, || {
            Mutex::new(CacheSet {
                slots: Vec::with_capacity(ways),
                hand: 0,
            })
        });
        PageCache {
            sets,
            ways,
            stats: CacheStats::default(),
        }
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Live statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, pageno: u64) -> usize {
        // Fibonacci multiplicative hash spreads sequential page
        // numbers across sets.
        ((pageno.wrapping_mul(0x9E3779B97F4A7C15)) >> 32) as usize % self.sets.len()
    }

    /// Looks `pageno` up, bumping its gclock counter on a hit.
    pub fn get(&self, pageno: u64) -> Option<Arc<Page>> {
        if self.sets.is_empty() {
            self.stats.record_lookup(false);
            return None;
        }
        let got = self.sets[self.set_of(pageno)].lock().lookup(pageno);
        self.stats.record_lookup(got.is_some());
        got
    }

    /// Like [`PageCache::get`] but without touching the hit/miss
    /// counters — used by I/O threads re-checking for pages that
    /// raced into the cache after the application-side lookup missed
    /// (the "pending page" dedup of real SAFS). Counting these would
    /// double-book the application's miss.
    pub fn get_quiet(&self, pageno: u64) -> Option<Arc<Page>> {
        if self.sets.is_empty() {
            return None;
        }
        self.sets[self.set_of(pageno)].lock().lookup(pageno)
    }

    /// Inserts a freshly read page.
    pub fn insert(&self, page: Arc<Page>) {
        if self.sets.is_empty() {
            return;
        }
        let pageno = page.pageno();
        let evicted = self.sets[self.set_of(pageno)]
            .lock()
            .insert(pageno, page, self.ways);
        self.stats.insertions.inc();
        if evicted {
            self.stats.evictions.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_page(no: u64) -> Arc<Page> {
        Arc::new(Page::new(no, vec![no as u8; 16].into_boxed_slice()))
    }

    #[test]
    fn hit_after_insert() {
        let c = PageCache::new(64, 8);
        assert!(c.get(5).is_none());
        c.insert(mk_page(5));
        let p = c.get(5).expect("hit");
        assert_eq!(p.pageno(), 5);
        let s = c.stats().snapshot();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let c = PageCache::new(0, 8);
        c.insert(mk_page(1));
        assert!(c.get(1).is_none());
        assert_eq!(c.stats().snapshot().insertions, 0);
    }

    #[test]
    fn tiny_capacities_round_up_instead_of_degenerating() {
        // Regression: capacities in 1..2*ways used to truncate to zero
        // or one set — `0 < capacity < ways` built a cache that could
        // never hold a page while still counting misses.
        let ways = 8;
        for capacity in 1..=2 * ways {
            let c = PageCache::new(capacity, ways);
            assert!(
                c.capacity_pages() >= capacity,
                "capacity {capacity}: rounded capacity {} lost pages",
                c.capacity_pages()
            );
            c.insert(mk_page(42));
            assert!(
                c.get(42).is_some(),
                "capacity {capacity}: inserted page not resident"
            );
            // Exercise the set-index path across many page numbers:
            // must never divide by zero and must stay within bounds.
            for no in 0..64 {
                let _ = c.get(no);
                c.insert(mk_page(no));
            }
            let s = c.stats().snapshot();
            assert_eq!(s.lookups, s.hits + s.misses);
        }
    }

    #[test]
    fn ways_clamped_to_capacity() {
        // One page, eight ways: a single one-way set, fully usable.
        let c = PageCache::new(1, 8);
        c.insert(mk_page(7));
        assert!(c.get(7).is_some());
        c.insert(mk_page(8));
        // The second insert must evict (capacity is 1), not grow.
        let s = c.stats().snapshot();
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn delta_since_saturates_across_reset() {
        // Regression: reset() between snapshots made the earlier
        // snapshot exceed the later one, underflowing delta_since.
        let c = PageCache::new(16, 8);
        c.insert(mk_page(1));
        c.get(1);
        c.get(2);
        let before = c.stats().snapshot();
        c.stats().reset();
        c.get(3);
        let after = c.stats().snapshot();
        let delta = after.delta_since(&before);
        // Post-reset totals are below the pre-reset snapshot: clamp to
        // zero rather than panic/wrap.
        assert_eq!(delta.hits, 0);
        assert_eq!(delta.insertions, 0);
        assert_eq!(delta.misses, 0);
        assert_eq!(delta.lookups, 0);
        // And a well-ordered pair still subtracts exactly.
        let later = {
            c.get(3);
            c.stats().snapshot()
        };
        let d2 = later.delta_since(&after);
        assert_eq!(d2.lookups, 1);
    }

    #[test]
    fn eviction_kicks_in_when_full() {
        // One set of 4 ways: inserting 5 distinct pages must evict.
        let c = PageCache::new(4, 4);
        for no in 0..5 {
            c.insert(mk_page(no));
        }
        let s = c.stats().snapshot();
        assert_eq!(s.insertions, 5);
        assert!(s.evictions >= 1);
        // Exactly 4 of the 5 remain.
        let resident = (0..5).filter(|&no| c.get(no).is_some()).count();
        assert_eq!(resident, 4);
    }

    #[test]
    fn gclock_protects_hot_pages() {
        let c = PageCache::new(4, 4);
        for no in 0..4 {
            c.insert(mk_page(no));
        }
        // Heat page 0 well above the others.
        for _ in 0..10 {
            c.get(0);
        }
        // Stream a burst of cold pages through: the hand must evict
        // the cold originals before it wears the hot page down.
        for no in 100..106 {
            c.insert(mk_page(no));
        }
        assert!(
            c.get(0).is_some(),
            "hot page evicted before colder residents"
        );
        let cold_survivors = (1..4).filter(|&no| c.get(no).is_some()).count();
        assert_eq!(cold_survivors, 0, "cold pages outlived the streaming burst");
    }

    #[test]
    fn duplicate_insert_is_refresh_not_eviction() {
        let c = PageCache::new(4, 4);
        c.insert(mk_page(9));
        c.insert(mk_page(9));
        let s = c.stats().snapshot();
        assert_eq!(s.evictions, 0);
        assert!(c.get(9).is_some());
    }

    #[test]
    fn hit_rate_math() {
        let c = PageCache::new(16, 8);
        c.insert(mk_page(1));
        c.get(1); // hit
        c.get(2); // miss
        c.get(1); // hit
        let s = c.stats().snapshot();
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_counters() {
        let c = PageCache::new(16, 8);
        c.get(1);
        c.stats().reset();
        let s = c.stats().snapshot();
        assert_eq!((s.hits, s.misses, s.evictions, s.insertions), (0, 0, 0, 0));
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let c = std::sync::Arc::new(PageCache::new(256, 8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let no = (t * 1000 + i) % 512;
                    if c.get(no).is_none() {
                        c.insert(mk_page(no));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats().snapshot();
        assert_eq!(s.hits + s.misses, 4000);
    }

    #[test]
    fn sets_spread_sequential_pages() {
        // Sequential page numbers should not all land in one set.
        let c = PageCache::new(64, 8); // 8 sets
        let mut seen = std::collections::HashSet::new();
        for no in 0..32 {
            seen.insert(c.set_of(no));
        }
        assert!(seen.len() >= 4, "only {} sets used", seen.len());
    }
}
