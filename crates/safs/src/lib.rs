//! SAFS: a user-space filesystem for SSD arrays (§3.1 of the paper).
//!
//! The set-associative file system is the substrate FlashGraph runs
//! on. This reproduction implements its three load-bearing ideas:
//!
//! * **Dedicated per-drive I/O threads** fed by message passing.
//!   Application threads never block on the device; they submit
//!   requests to an [`IoSession`] and poll completions. This is the
//!   "refactors I/Os from applications and sends them to I/O threads
//!   with message passing" design.
//! * **A set-associative, lightweight page cache** ([`PageCache`]):
//!   pages hash to small independent sets, each with its own lock and
//!   a gclock eviction hand. Locking is per-set so the cache scales
//!   with cores, and a lookup costs a hash plus a short scan — cheap
//!   enough that low hit rates add little overhead, while hit-rate
//!   gains translate linearly into performance (§3.1).
//! * **The asynchronous user-task I/O interface**: completions hand
//!   back zero-copy [`PageSpan`]s over cached pages instead of
//!   copying into caller buffers, so a million outstanding requests
//!   do not pin a million empty buffers. The engine's per-vertex
//!   computation runs directly against the page cache, which is the
//!   paper's "user task executes inside the filesystem".
//!
//! Reads only: FlashGraph never writes to SSDs during analysis
//! (wearout, §3); the graph image is written once through
//! `fg_ssdsim::SsdArray` directly.
//!
//! # Example
//!
//! ```
//! use fg_safs::{Safs, SafsConfig};
//! use fg_ssdsim::{ArrayConfig, SsdArray};
//!
//! let array = SsdArray::new_mem(ArrayConfig::small_test(), 1 << 20)?;
//! array.write(8192, b"edge list bytes")?;
//! let safs = Safs::new(SafsConfig::default(), array)?;
//!
//! // Synchronous path (loaders, baselines):
//! let bytes = safs.read_sync(8192, 15)?;
//! assert_eq!(&bytes.to_vec(), b"edge list bytes");
//!
//! // Asynchronous user-task path (the engine):
//! let mut session = safs.session();
//! session.submit(8192, 15, 7)?;
//! let mut done = Vec::new();
//! while session.pending() > 0 {
//!     session.wait(&mut done);
//! }
//! assert_eq!(done[0].tag, 7);
//! assert_eq!(done[0].span.to_vec(), b"edge list bytes");
//! # Ok::<(), fg_types::FgError>(())
//! ```

mod cache;
mod config;
mod handoff;
mod inflight;
mod io_thread;
mod page;
mod safs;
mod shard_set;

pub use cache::{CacheStats, CacheStatsSnapshot, PageCache};
pub use config::SafsConfig;
pub use handoff::Handoff;
pub use page::{Page, PageSpan};
pub use safs::{Completion, IoSession, Safs};
pub use shard_set::ShardSet;
