//! Dedicated I/O threads, fed by message passing (§3.1).
//!
//! Application threads never touch the device: they mail page-run
//! requests to an I/O thread and receive filled pages back. When
//! `safs_merge` is on, each I/O thread drains its mailbox into a
//! batch, sorts it by page number, and coalesces adjacent or
//! overlapping runs into single device reads — the "merge in SAFS"
//! configuration that Figure 12 compares against engine-side merging.

use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};
use fg_ssdsim::SsdArray;

use crate::cache::PageCache;
use crate::inflight::InflightTable;
use crate::page::Page;

/// Upper bound on how many queued requests one batch drains; keeps
/// merge latency bounded the way SAFS bounds its request queues.
const MAX_BATCH: usize = 1024;

/// A run of consecutive pages one session needs read.
#[derive(Debug)]
pub(crate) struct RunRequest {
    /// First page to read.
    pub first_page: u64,
    /// Number of consecutive pages.
    pub num_pages: u32,
    /// Session-local id of the owning logical request.
    pub req_id: u64,
    /// Slot index of `first_page` within the owning request.
    pub first_slot: u32,
    /// Whether freshly read pages should be inserted into the page
    /// cache. Streaming scans pass `false` so a sequential sweep
    /// cannot evict the hot working set (the pages are used once).
    pub insert: bool,
    /// Completion mailbox of the issuing session.
    pub reply: Sender<RunDone>,
}

/// Pages delivered back to a session.
#[derive(Debug)]
pub(crate) struct RunDone {
    /// Id of the owning logical request.
    pub req_id: u64,
    /// Slot index where `pages[0]` belongs.
    pub first_slot: u32,
    /// The filled pages, consecutive from `first_slot`.
    pub pages: Vec<Arc<Page>>,
}

/// Mailbox protocol of an I/O thread.
#[derive(Debug)]
pub(crate) enum IoMsg {
    /// Read a run of pages.
    Run(RunRequest),
    /// Exit the thread loop.
    Shutdown,
}

/// The body of one I/O thread.
pub(crate) fn io_thread_loop(
    rx: Receiver<IoMsg>,
    array: SsdArray,
    cache: Arc<PageCache>,
    inflight: Arc<InflightTable>,
    page_bytes: u64,
    merge: bool,
) {
    let mut batch: Vec<RunRequest> = Vec::with_capacity(MAX_BATCH);
    loop {
        batch.clear();
        let mut shutdown = false;
        match rx.recv() {
            Ok(IoMsg::Run(r)) => batch.push(r),
            Ok(IoMsg::Shutdown) | Err(_) => shutdown = true,
        }
        if !shutdown {
            while batch.len() < MAX_BATCH {
                match rx.try_recv() {
                    Ok(IoMsg::Run(r)) => batch.push(r),
                    Ok(IoMsg::Shutdown) => {
                        shutdown = true;
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
        if shutdown {
            // Serve every run still queued behind the shutdown:
            // dropping one would drop its reply sender and leave the
            // issuing session blocked forever on a completion that
            // can never arrive. The final batch may exceed MAX_BATCH;
            // bounded merge latency no longer matters on exit.
            loop {
                match rx.try_recv() {
                    Ok(IoMsg::Run(r)) => batch.push(r),
                    Ok(IoMsg::Shutdown) => {}
                    Err(_) => break,
                }
            }
            serve(&batch, &array, &cache, &inflight, page_bytes, merge);
            return;
        }
        serve(&batch, &array, &cache, &inflight, page_bytes, merge);
    }
}

fn serve(
    batch: &[RunRequest],
    array: &SsdArray,
    cache: &PageCache,
    inflight: &InflightTable,
    page_bytes: u64,
    merge: bool,
) {
    if !merge {
        for r in batch {
            let pages = read_pages_hint(
                array,
                cache,
                page_bytes,
                r.first_page,
                r.num_pages as u64,
                r.insert,
            );
            // Selective runs carry open in-flight claims: resolve
            // them here, on the I/O thread, so waiter fan-out cannot
            // depend on the claiming session staying alive.
            if r.insert {
                inflight.resolve(r.first_page, &pages);
            }
            let _ = r.reply.send(RunDone {
                req_id: r.req_id,
                first_slot: r.first_slot,
                pages,
            });
        }
        return;
    }

    // Sort run indices by first page, then coalesce adjacent or
    // overlapping runs into single device reads.
    let mut order: Vec<usize> = (0..batch.len()).collect();
    order.sort_by_key(|&i| batch[i].first_page);
    let mut group: Vec<usize> = Vec::new();
    let mut group_end = 0u64;
    let flush = |group: &mut Vec<usize>, lo: u64, hi: u64| {
        if group.is_empty() {
            return;
        }
        // A coalesced group inserts into the cache if *any* member
        // wants insertion; a pure-stream group stays out of it.
        let insert = group.iter().any(|&gi| batch[gi].insert);
        let pages = read_pages_hint(array, cache, page_bytes, lo, hi - lo, insert);
        // Resolve claims covered by the group (claims only exist on
        // selective runs, and an all-stream group cannot cover one:
        // stream submits never claim, and a selective run holding the
        // claim would have joined this group).
        if insert {
            inflight.resolve(lo, &pages);
        }
        for &gi in group.iter() {
            let r = &batch[gi];
            let off = (r.first_page - lo) as usize;
            let slice = pages[off..off + r.num_pages as usize].to_vec();
            let _ = r.reply.send(RunDone {
                req_id: r.req_id,
                first_slot: r.first_slot,
                pages: slice,
            });
        }
        group.clear();
    };
    let mut group_start = 0u64;
    for i in order {
        let r = &batch[i];
        let start = r.first_page;
        let end = start + r.num_pages as u64;
        if group.is_empty() {
            group_start = start;
            group_end = end;
        } else if start <= group_end {
            // Adjacent or overlapping: coalesce (the paper merges
            // requests on the same or adjacent pages only).
            group_end = group_end.max(end);
        } else {
            flush(&mut group, group_start, group_end);
            group_start = start;
            group_end = end;
        }
        group.push(i);
    }
    flush(&mut group, group_start, group_end);
}

/// Returns `num_pages` pages starting at `first_page`, reading each
/// contiguous run of pages *not already cached* in one device request
/// and inserting fresh pages into the cache.
///
/// The pre-read cache check is SAFS's in-flight dedup: when sorted
/// vertex scheduling makes consecutive requests touch the same page,
/// the first request fills the cache before the I/O thread serves the
/// second, which then costs no device read. Without this, sequential
/// scheduling would paradoxically read *more* than random (duplicate
/// in-flight pages).
pub(crate) fn read_pages(
    array: &SsdArray,
    cache: &PageCache,
    page_bytes: u64,
    first_page: u64,
    num_pages: u64,
) -> Vec<Arc<Page>> {
    read_pages_hint(array, cache, page_bytes, first_page, num_pages, true)
}

/// [`read_pages`] with an explicit cache-insertion hint. With
/// `insert` false (streaming scans) cached pages are still *used*
/// when present — the hot set helps the sweep — but fresh pages are
/// handed straight to the caller without touching the cache, so a
/// whole-partition sweep cannot evict the selective working set.
pub(crate) fn read_pages_hint(
    array: &SsdArray,
    cache: &PageCache,
    page_bytes: u64,
    first_page: u64,
    num_pages: u64,
    insert: bool,
) -> Vec<Arc<Page>> {
    let mut pages: Vec<Option<Arc<Page>>> = (first_page..first_page + num_pages)
        .map(|p| cache.get_quiet(p))
        .collect();
    let mut i = 0usize;
    while i < pages.len() {
        if pages[i].is_some() {
            i += 1;
            continue;
        }
        let mut j = i;
        while j < pages.len() && pages[j].is_none() {
            j += 1;
        }
        let run_first = first_page + i as u64;
        let run_pages = (j - i) as u64;
        let mut buf = vec![0u8; (run_pages * page_bytes) as usize];
        // Clamp the tail: the image may end mid-page.
        let offset = run_first * page_bytes;
        let avail = array.capacity().saturating_sub(offset);
        let len = (buf.len() as u64).min(avail) as usize;
        array
            .read(offset, &mut buf[..len])
            .expect("io thread read within device bounds");
        for k in 0..run_pages as usize {
            let start = k * page_bytes as usize;
            let end = start + page_bytes as usize;
            let page = Arc::new(Page::new(
                run_first + k as u64,
                buf[start..end].to_vec().into_boxed_slice(),
            ));
            if insert {
                cache.insert(Arc::clone(&page));
            }
            pages[i + k] = Some(page);
        }
        i = j;
    }
    pages.into_iter().map(|p| p.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use fg_ssdsim::ArrayConfig;

    fn setup(capacity: u64) -> (SsdArray, Arc<PageCache>) {
        let array = SsdArray::new_mem(ArrayConfig::small_test(), capacity).unwrap();
        // Fill with a recognizable pattern: byte at offset o = o % 251.
        let data: Vec<u8> = (0..capacity).map(|o| (o % 251) as u8).collect();
        array.write(0, &data).unwrap();
        array.stats().reset();
        (array, Arc::new(PageCache::new(64, 8)))
    }

    #[test]
    fn read_pages_fills_cache_and_content() {
        let (array, cache) = setup(1 << 16);
        let pages = read_pages(&array, &cache, 4096, 2, 2);
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].pageno(), 2);
        assert_eq!(pages[0].bytes()[0], ((2 * 4096) % 251) as u8);
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn unmerged_thread_serves_each_run() {
        let (array, cache) = setup(1 << 16);
        let (tx, rx) = unbounded();
        let (reply_tx, reply_rx) = unbounded();
        let a2 = array.clone();
        let c2 = Arc::clone(&cache);
        let h = std::thread::spawn(move || {
            io_thread_loop(rx, a2, c2, Arc::new(InflightTable::new()), 4096, false)
        });
        for (req_id, page) in [(1u64, 0u64), (2, 5)] {
            tx.send(IoMsg::Run(RunRequest {
                first_page: page,
                num_pages: 1,
                req_id,
                first_slot: 0,
                insert: true,
                reply: reply_tx.clone(),
            }))
            .unwrap();
        }
        let mut got = [reply_rx.recv().unwrap(), reply_rx.recv().unwrap()];
        got.sort_by_key(|d| d.req_id);
        assert_eq!(got[0].pages[0].pageno(), 0);
        assert_eq!(got[1].pages[0].pageno(), 5);
        tx.send(IoMsg::Shutdown).unwrap();
        h.join().unwrap();
        // Two separate device requests.
        assert_eq!(array.stats().snapshot().read_requests, 2);
    }

    #[test]
    fn shutdown_drains_queued_runs_before_exit() {
        // Regression: runs already queued when the shutdown message is
        // consumed must still be served — dropping them drops their
        // reply senders and a session waiting on the completion would
        // block forever. Queue everything before the thread starts so
        // the receive order is deterministic: Shutdown first, three
        // runs behind it.
        let (array, cache) = setup(1 << 16);
        let (tx, rx) = unbounded();
        let (reply_tx, reply_rx) = unbounded();
        tx.send(IoMsg::Shutdown).unwrap();
        for (req_id, page) in [(1u64, 0u64), (2, 3), (3, 7)] {
            tx.send(IoMsg::Run(RunRequest {
                first_page: page,
                num_pages: 1,
                req_id,
                first_slot: 0,
                insert: true,
                reply: reply_tx.clone(),
            }))
            .unwrap();
        }
        let h = std::thread::spawn(move || {
            io_thread_loop(rx, array, cache, Arc::new(InflightTable::new()), 4096, true)
        });
        h.join().unwrap();
        drop(reply_tx);
        let mut ids: Vec<u64> = std::iter::from_fn(|| reply_rx.recv().ok())
            .map(|d| d.req_id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3], "every queued run must be answered");
    }

    #[test]
    fn shutdown_mid_batch_drains_the_rest() {
        // Same property through the inner try_recv path: a run, the
        // shutdown, then more runs.
        let (array, cache) = setup(1 << 16);
        let (tx, rx) = unbounded();
        let (reply_tx, reply_rx) = unbounded();
        let mk = |req_id: u64, page: u64| {
            IoMsg::Run(RunRequest {
                first_page: page,
                num_pages: 1,
                req_id,
                first_slot: 0,
                insert: true,
                reply: reply_tx.clone(),
            })
        };
        tx.send(mk(1, 0)).unwrap();
        tx.send(IoMsg::Shutdown).unwrap();
        tx.send(mk(2, 5)).unwrap();
        tx.send(mk(3, 9)).unwrap();
        let h = std::thread::spawn(move || {
            io_thread_loop(
                rx,
                array,
                cache,
                Arc::new(InflightTable::new()),
                4096,
                false,
            )
        });
        h.join().unwrap();
        drop(reply_tx);
        let mut ids: Vec<u64> = std::iter::from_fn(|| reply_rx.recv().ok())
            .map(|d| d.req_id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn merged_thread_coalesces_adjacent_runs() {
        let (array, cache) = setup(1 << 16);
        let (reply_tx, reply_rx) = unbounded();
        // Two adjacent single-page runs and one distant run, served in
        // one batch directly through `serve`.
        let batch = vec![
            RunRequest {
                first_page: 1,
                num_pages: 1,
                req_id: 10,
                first_slot: 0,
                insert: true,
                reply: reply_tx.clone(),
            },
            RunRequest {
                first_page: 2,
                num_pages: 1,
                req_id: 11,
                first_slot: 0,
                insert: true,
                reply: reply_tx.clone(),
            },
            RunRequest {
                first_page: 9,
                num_pages: 1,
                req_id: 12,
                first_slot: 0,
                insert: true,
                reply: reply_tx.clone(),
            },
        ];
        serve(&batch, &array, &cache, &InflightTable::new(), 4096, true);
        let snap = array.stats().snapshot();
        // Pages 1-2 coalesce; page 9 is separate. Device request count
        // may further split on stripe boundaries, but pages 1,2 share
        // a stripe in the small_test config (4-page stripes).
        assert_eq!(snap.read_requests, 2);
        assert_eq!(snap.pages_read, 3);
        let mut ids: Vec<u64> = (0..3).map(|_| reply_rx.recv().unwrap().req_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![10, 11, 12]);
    }

    #[test]
    fn merged_thread_handles_overlapping_runs() {
        let (array, cache) = setup(1 << 16);
        let (reply_tx, reply_rx) = unbounded();
        let batch = vec![
            RunRequest {
                first_page: 4,
                num_pages: 3,
                req_id: 1,
                first_slot: 0,
                insert: true,
                reply: reply_tx.clone(),
            },
            RunRequest {
                first_page: 5,
                num_pages: 3,
                req_id: 2,
                first_slot: 0,
                insert: true,
                reply: reply_tx.clone(),
            },
        ];
        serve(&batch, &array, &cache, &InflightTable::new(), 4096, true);
        let mut got = [reply_rx.recv().unwrap(), reply_rx.recv().unwrap()];
        got.sort_by_key(|d| d.req_id);
        assert_eq!(
            got[0].pages.iter().map(|p| p.pageno()).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        assert_eq!(
            got[1].pages.iter().map(|p| p.pageno()).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
    }

    #[test]
    fn tail_page_beyond_capacity_is_zero_padded() {
        // Capacity 6000 bytes: page 1 is only half-backed by device.
        let array = SsdArray::new_mem(ArrayConfig::small_test(), 6000).unwrap();
        array.write(0, &vec![9u8; 6000]).unwrap();
        let cache = Arc::new(PageCache::new(16, 8));
        let pages = read_pages(&array, &cache, 4096, 1, 1);
        assert_eq!(pages[0].bytes()[0], 9);
        assert_eq!(pages[0].bytes()[4095], 0, "unbacked tail must be zeroed");
    }
}
