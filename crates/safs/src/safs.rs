//! The SAFS facade and per-thread I/O sessions.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use fg_ssdsim::SsdArray;
use fg_types::{FgError, Result};
use parking_lot::Mutex;

use crate::cache::{CacheStats, CacheStatsSnapshot, PageCache};
use crate::config::SafsConfig;
use crate::inflight::InflightTable;
use crate::io_thread::{io_thread_loop, read_pages, IoMsg, RunDone, RunRequest};
use crate::page::{Page, PageSpan};

/// A completed logical read: the caller's tag plus a zero-copy span
/// over the page cache.
#[derive(Debug)]
pub struct Completion {
    /// The tag passed to [`IoSession::submit`].
    pub tag: u64,
    /// The requested bytes.
    pub span: PageSpan,
}

/// The user-space filesystem: page cache + I/O threads over an
/// [`SsdArray`].
///
/// Dropping a `Safs` shuts its I/O threads down.
pub struct Safs {
    cfg: SafsConfig,
    array: SsdArray,
    cache: Arc<PageCache>,
    inflight: Arc<InflightTable>,
    senders: Vec<Sender<IoMsg>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Safs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Safs")
            .field("cfg", &self.cfg)
            .field("io_threads", &self.senders.len())
            .finish_non_exhaustive()
    }
}

impl Safs {
    /// Mounts SAFS over `array` and spawns its I/O threads.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidConfig`] when `cfg` is invalid.
    pub fn new(cfg: SafsConfig, array: SsdArray) -> Result<Self> {
        cfg.validate()?;
        let cache = Arc::new(PageCache::new(cfg.cache_pages(), cfg.cache_ways));
        let inflight = Arc::new(InflightTable::new());
        let nthreads = if cfg.io_threads == 0 {
            array.config().num_ssds
        } else {
            cfg.io_threads
        };
        let mut senders = Vec::with_capacity(nthreads);
        let mut handles = Vec::with_capacity(nthreads);
        for _ in 0..nthreads {
            let (tx, rx) = unbounded();
            let a = array.clone();
            let c = Arc::clone(&cache);
            let t = Arc::clone(&inflight);
            let page_bytes = cfg.page_bytes;
            let merge = cfg.safs_merge;
            handles.push(std::thread::spawn(move || {
                io_thread_loop(rx, a, c, t, page_bytes, merge)
            }));
            senders.push(tx);
        }
        Ok(Safs {
            cfg,
            array,
            cache,
            inflight,
            senders,
            handles: Mutex::new(handles),
        })
    }

    /// The mounted configuration.
    pub fn config(&self) -> &SafsConfig {
        &self.cfg
    }

    /// The underlying array (for its I/O statistics).
    pub fn array(&self) -> &SsdArray {
        &self.array
    }

    /// Page-cache statistics snapshot.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        self.cache.stats().snapshot()
    }

    /// Resets cache and device statistics (between experiment phases).
    pub fn reset_stats(&self) {
        self.cache.stats().reset();
        self.array.stats().reset();
    }

    /// SAFS page size in bytes.
    #[inline]
    pub fn page_bytes(&self) -> u64 {
        self.cfg.page_bytes
    }

    /// Opens an asynchronous session. Each worker thread gets its own;
    /// sessions are not `Sync`.
    pub fn session(&self) -> IoSession<'_> {
        self.session_scoped(None)
    }

    /// Like [`Safs::session`] but every cache lookup the session makes
    /// is also recorded into `scope` — the per-tenant accounting that
    /// lets concurrent queries sharing one mount each report their own
    /// hit/miss deltas while the mount-wide [`Safs::cache_stats`]
    /// keeps the aggregate. A scope only sees application-side lookups
    /// (hits, misses, lookups); insertions and evictions happen on the
    /// shared I/O threads and stay mount-wide.
    pub fn session_scoped(&self, scope: Option<Arc<CacheStats>>) -> IoSession<'_> {
        let (tx, rx) = unbounded();
        IoSession {
            safs: self,
            scope,
            next_req: 0,
            in_flight: HashMap::new(),
            ready: Vec::new(),
            reply_tx: tx,
            reply_rx: rx,
        }
    }

    /// Synchronous read: blocks the calling thread, still goes through
    /// the page cache with per-run device reads. Used by loaders and
    /// the streaming baselines; the engine uses sessions.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidRequest`] when the range exceeds the
    /// device.
    pub fn read_sync(&self, offset: u64, len: u64) -> Result<PageSpan> {
        if len == 0 {
            return Ok(PageSpan::empty());
        }
        let end = offset
            .checked_add(len)
            .ok_or_else(|| FgError::InvalidRequest("offset + len overflows".into()))?;
        if end > self.array.capacity() {
            return Err(FgError::InvalidRequest(format!(
                "read [{offset}, {end}) exceeds device of {} bytes",
                self.array.capacity()
            )));
        }
        let pb = self.cfg.page_bytes;
        let first = offset / pb;
        let last = (end - 1) / pb;
        let mut pages: Vec<Option<Arc<Page>>> = (first..=last).map(|p| self.cache.get(p)).collect();
        // Read each contiguous miss run in one device request.
        let mut i = 0usize;
        while i < pages.len() {
            if pages[i].is_some() {
                i += 1;
                continue;
            }
            let mut j = i;
            while j < pages.len() && pages[j].is_none() {
                j += 1;
            }
            let got = read_pages(
                &self.array,
                &self.cache,
                pb,
                first + i as u64,
                (j - i) as u64,
            );
            for (k, page) in got.into_iter().enumerate() {
                pages[i + k] = Some(page);
            }
            i = j;
        }
        let pages: Vec<Arc<Page>> = pages.into_iter().map(|p| p.unwrap()).collect();
        Ok(PageSpan::new(
            pages,
            (offset - first * pb) as usize,
            len as usize,
        ))
    }

    /// Routes a page run to an I/O thread: by owning drive, so one
    /// thread's queue serves one drive's neighbourhood (the per-SSD
    /// I/O thread design).
    fn route(&self, first_page: u64) -> &Sender<IoMsg> {
        let stripe = first_page * self.cfg.page_bytes / self.array.config().stripe_bytes();
        let ssd = (stripe as usize) % self.array.config().num_ssds;
        &self.senders[ssd % self.senders.len()]
    }
}

impl Drop for Safs {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(IoMsg::Shutdown);
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// A per-thread handle issuing asynchronous reads.
///
/// The session checks the page cache *at submit time* on the caller's
/// thread (the lightweight-cache design: application threads touch the
/// cache directly); only missing page runs travel to I/O threads.
/// Completions are polled, each carrying a [`PageSpan`] — the
/// user-task interface of §3.1.
pub struct IoSession<'fs> {
    safs: &'fs Safs,
    scope: Option<Arc<CacheStats>>,
    next_req: u64,
    in_flight: HashMap<u64, Pending>,
    ready: Vec<Completion>,
    reply_tx: Sender<RunDone>,
    reply_rx: Receiver<RunDone>,
}

struct Pending {
    tag: u64,
    head: usize,
    len: usize,
    slots: Vec<Option<Arc<Page>>>,
    missing: usize,
}

impl std::fmt::Debug for IoSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoSession")
            .field("pending", &self.in_flight.len())
            .field("ready", &self.ready.len())
            .finish_non_exhaustive()
    }
}

impl IoSession<'_> {
    /// Submits a logical read of `[offset, offset + len)` tagged
    /// `tag`. Cache-resident requests complete immediately (pick them
    /// up with [`IoSession::poll`]); misses go to I/O threads.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidRequest`] when the range exceeds the
    /// device.
    pub fn submit(&mut self, offset: u64, len: u64, tag: u64) -> Result<()> {
        self.submit_inner(offset, len, tag, false)
    }

    /// Like [`IoSession::submit`] but with the *streaming* cache
    /// policy: pages already resident are used (via the quiet lookup
    /// that skips hit/miss accounting), and freshly read pages bypass
    /// cache insertion entirely. The engine's dense-iteration
    /// streaming scan submits its stripe covers through this so a
    /// whole-partition sweep neither evicts the hot working set nor
    /// floods the hit-rate statistics with once-only pages.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::InvalidRequest`] when the range exceeds the
    /// device.
    pub fn submit_stream(&mut self, offset: u64, len: u64, tag: u64) -> Result<()> {
        self.submit_inner(offset, len, tag, true)
    }

    fn submit_inner(&mut self, offset: u64, len: u64, tag: u64, stream: bool) -> Result<()> {
        if len == 0 {
            self.ready.push(Completion {
                tag,
                span: PageSpan::empty(),
            });
            return Ok(());
        }
        let end = offset
            .checked_add(len)
            .ok_or_else(|| FgError::InvalidRequest("offset + len overflows".into()))?;
        if end > self.safs.array.capacity() {
            return Err(FgError::InvalidRequest(format!(
                "read [{offset}, {end}) exceeds device of {} bytes",
                self.safs.array.capacity()
            )));
        }
        let pb = self.safs.cfg.page_bytes;
        let first = offset / pb;
        let last = (end - 1) / pb;
        let slots: Vec<Option<Arc<Page>>> = (first..=last)
            .map(|p| {
                if stream {
                    self.safs.cache.get_quiet(p)
                } else {
                    self.lookup(p)
                }
            })
            .collect();
        let missing = slots.iter().filter(|s| s.is_none()).count();
        let head = (offset - first * pb) as usize;
        if missing == 0 {
            let pages = slots.into_iter().map(|s| s.unwrap()).collect();
            self.ready.push(Completion {
                tag,
                span: PageSpan::new(pages, head, len as usize),
            });
            return Ok(());
        }
        let req_id = self.next_req;
        self.next_req += 1;
        // Cross-session in-flight dedup (selective path only): misses
        // already being fetched by another session attach as waiters
        // to that read instead of dispatching their own run. Streaming
        // sweeps stay out of the table on both sides — they neither
        // claim (their pages bypass cache insertion, so a waiter could
        // observe a resolve without a cached page) nor attach (a sweep
        // is once-only traffic, not a hot-set collision).
        let mut attached = vec![false; slots.len()];
        if !stream {
            let misses: Vec<(u64, u32)> = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_none())
                .map(|(k, _)| (first + k as u64, k as u32))
                .collect();
            let verdict = self
                .safs
                .inflight
                .claim_or_attach(req_id, &self.reply_tx, &misses);
            let hits = verdict.iter().filter(|&&a| a).count() as u64;
            if hits > 0 {
                for (&(_, slot), &att) in misses.iter().zip(&verdict) {
                    if att {
                        attached[slot as usize] = true;
                        // Each attachment is one queued-but-unharvested
                        // delivery: enter the depth gauge now, exit in
                        // `apply` when its one-page RunDone is
                        // harvested, exactly like a dispatched run.
                        self.safs.array.stats().queue_enter();
                    }
                }
                self.safs.array.stats().record_dedup(hits, hits * pb);
            }
        }
        // Dispatch each contiguous run of *claimed* misses to its
        // drive's thread; attached pages arrive via waiter fan-out.
        let mut i = 0usize;
        while i < slots.len() {
            if slots[i].is_some() || attached[i] {
                i += 1;
                continue;
            }
            let mut j = i;
            while j < slots.len() && slots[j].is_none() && !attached[j] {
                j += 1;
            }
            let run = RunRequest {
                first_page: first + i as u64,
                num_pages: (j - i) as u32,
                req_id,
                first_slot: i as u32,
                insert: !stream,
                reply: self.reply_tx.clone(),
            };
            // The run is now queued on the device: sample the queue
            // depth so schedulers can be compared on how well they
            // keep the array fed. The exit is booked when *this
            // session harvests the reply* (see [`IoSession::apply`]),
            // not when the I/O thread posts it — the gauge measures
            // dispatched-but-unharvested runs, which is exactly the
            // compute/I/O overlap a scheduler controls: a lock-step
            // scheduler drains it to zero at every phase boundary,
            // a pipelined one keeps it open across them.
            self.safs.array.stats().queue_enter();
            self.safs
                .route(run.first_page)
                .send(IoMsg::Run(run))
                .expect("io thread alive while session exists");
            i = j;
        }
        self.in_flight.insert(
            req_id,
            Pending {
                tag,
                head,
                len: len as usize,
                slots,
                missing,
            },
        );
        Ok(())
    }

    /// Number of submitted-but-uncompleted logical requests.
    pub fn pending(&self) -> usize {
        self.in_flight.len() + self.ready.len()
    }

    /// Cache lookup that also books the outcome into the session's
    /// scope, when one is attached.
    fn lookup(&self, pageno: u64) -> Option<Arc<Page>> {
        let got = self.safs.cache.get(pageno);
        if let Some(scope) = &self.scope {
            scope.record_lookup(got.is_some());
        }
        got
    }

    fn apply(&mut self, done: RunDone) {
        // One dispatched run harvested: book the queue-depth exit
        // (the matching `queue_enter` is in `dispatch`).
        self.safs.array.stats().queue_exit();
        let finished = {
            let p = self
                .in_flight
                .get_mut(&done.req_id)
                .expect("completion for unknown request");
            for (k, page) in done.pages.into_iter().enumerate() {
                let slot = done.first_slot as usize + k;
                if p.slots[slot].is_none() {
                    p.slots[slot] = Some(page);
                    p.missing -= 1;
                }
            }
            p.missing == 0
        };
        if finished {
            let p = self.in_flight.remove(&done.req_id).unwrap();
            let pages = p.slots.into_iter().map(|s| s.unwrap()).collect();
            self.ready.push(Completion {
                tag: p.tag,
                span: PageSpan::new(pages, p.head, p.len),
            });
        }
    }

    /// Drains every available completion into `out` without blocking.
    /// Returns how many were delivered.
    pub fn poll(&mut self, out: &mut Vec<Completion>) -> usize {
        while let Ok(done) = self.reply_rx.try_recv() {
            self.apply(done);
        }
        let n = self.ready.len();
        out.append(&mut self.ready);
        n
    }

    /// Like [`IoSession::poll`] but blocks until at least one
    /// completion is available (returns 0 only when nothing is
    /// pending).
    pub fn wait(&mut self, out: &mut Vec<Completion>) -> usize {
        if self.ready.is_empty() && !self.in_flight.is_empty() {
            match self.reply_rx.recv() {
                Ok(done) => self.apply(done),
                Err(_) => return 0,
            }
        }
        self.poll(out)
    }

    /// Like [`IoSession::wait`] but gives up after `timeout`: the
    /// completion-notification primitive of the pipelined engine. A
    /// worker parked on an indefinite `recv` can serve nothing but
    /// its own replies; a bounded wait lets it wake, steal ready
    /// deliveries other workers' I/O produced, and come back — no
    /// completion is lost either way, replies stay queued.
    pub fn wait_timeout(
        &mut self,
        out: &mut Vec<Completion>,
        timeout: std::time::Duration,
    ) -> usize {
        if self.ready.is_empty() && !self.in_flight.is_empty() {
            if let Ok(done) = self.reply_rx.recv_timeout(timeout) {
                self.apply(done);
            }
        }
        self.poll(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_ssdsim::ArrayConfig;

    /// An array whose byte at offset o is (o / 4 % 251) in each u32.
    fn patterned_safs(cfg: SafsConfig, capacity: u64) -> Safs {
        let array = SsdArray::new_mem(ArrayConfig::small_test(), capacity).unwrap();
        let words: Vec<u8> = (0..capacity / 4)
            .flat_map(|w| ((w % 251) as u32).to_le_bytes())
            .collect();
        array.write(0, &words).unwrap();
        array.stats().reset();
        Safs::new(cfg, array).unwrap()
    }

    #[test]
    fn read_sync_round_trip() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 16);
        let span = safs.read_sync(4096, 8).unwrap();
        let words: Vec<u32> = span.u32_iter().collect();
        assert_eq!(words, vec![(4096 / 4) % 251, (4096 / 4 + 1) % 251]);
    }

    #[test]
    fn read_sync_hits_cache_second_time() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 16);
        safs.read_sync(0, 4096).unwrap();
        let before = safs.array().stats().snapshot().read_requests;
        safs.read_sync(0, 4096).unwrap();
        assert_eq!(safs.array().stats().snapshot().read_requests, before);
        assert!(safs.cache_stats().hits >= 1);
    }

    #[test]
    fn zero_cache_always_misses() {
        let safs = patterned_safs(SafsConfig::default().with_cache_bytes(0), 1 << 16);
        safs.read_sync(0, 4096).unwrap();
        safs.read_sync(0, 4096).unwrap();
        assert_eq!(safs.array().stats().snapshot().read_requests, 2);
        assert_eq!(safs.cache_stats().hits, 0);
    }

    #[test]
    fn async_completion_delivers_bytes() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 16);
        let mut s = safs.session();
        s.submit(8192, 16, 42).unwrap();
        let mut out = Vec::new();
        while s.pending() > 0 && out.is_empty() {
            s.wait(&mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tag, 42);
        let words: Vec<u32> = out[0].span.u32_iter().collect();
        let w0 = (8192 / 4) % 251;
        assert_eq!(words, vec![w0, w0 + 1, w0 + 2, w0 + 3]);
    }

    #[test]
    fn cached_submit_completes_without_io() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 16);
        safs.read_sync(0, 4096).unwrap();
        let io_before = safs.array().stats().snapshot().read_requests;
        let mut s = safs.session();
        s.submit(100, 32, 1).unwrap();
        let mut out = Vec::new();
        assert_eq!(s.poll(&mut out), 1, "cache-hit request completes inline");
        assert_eq!(safs.array().stats().snapshot().read_requests, io_before);
    }

    #[test]
    fn many_outstanding_requests_all_complete() {
        let safs = patterned_safs(SafsConfig::default().with_cache_bytes(1 << 16), 1 << 20);
        let mut s = safs.session();
        let n = 200u64;
        for i in 0..n {
            // Scatter across the device.
            let off = (i * 37) % 250 * 4096;
            s.submit(off, 64, i).unwrap();
        }
        let mut out = Vec::new();
        while s.pending() > 0 {
            s.wait(&mut out);
        }
        assert_eq!(out.len(), n as usize);
        let mut tags: Vec<u64> = out.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..n).collect::<Vec<_>>());
        for c in &out {
            assert_eq!(c.span.len(), 64);
        }
    }

    #[test]
    fn request_spanning_many_pages() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 20);
        let mut s = safs.session();
        // 5 pages + offsets on both ends.
        s.submit(4000, 18000, 9).unwrap();
        let mut out = Vec::new();
        while out.is_empty() {
            s.wait(&mut out);
        }
        let span = &out[0].span;
        assert_eq!(span.len(), 18000);
        assert_eq!(span.read_u32_le(0), (4000 / 4) % 251);
        assert_eq!(span.read_u32_le(17996), ((4000 + 17996) / 4) % 251);
    }

    #[test]
    fn wait_timeout_expires_and_delivers() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 16);
        let mut s = safs.session();
        let mut out = Vec::new();
        // Nothing pending: returns immediately, no completions.
        assert_eq!(
            s.wait_timeout(&mut out, std::time::Duration::from_millis(1)),
            0
        );
        s.submit(0, 64, 3).unwrap();
        while out.is_empty() {
            s.wait_timeout(&mut out, std::time::Duration::from_millis(5));
        }
        assert_eq!(out[0].tag, 3);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn sessions_sample_device_queue_depth() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 16);
        let mut s = safs.session();
        s.submit(0, 4096, 1).unwrap();
        let mut out = Vec::new();
        while out.is_empty() {
            s.wait(&mut out);
        }
        let snap = safs.array().stats().snapshot();
        assert!(snap.depth_samples >= 2, "enter + exit sampled");
        assert!(snap.depth_max >= 1);
        assert!(snap.depth_zero_dips >= 1, "queue drained after the run");
    }

    #[test]
    fn zero_length_completes_empty() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 16);
        let mut s = safs.session();
        s.submit(0, 0, 5).unwrap();
        let mut out = Vec::new();
        assert_eq!(s.poll(&mut out), 1);
        assert!(out[0].span.is_empty());
    }

    #[test]
    fn out_of_bounds_submit_rejected() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 16);
        let mut s = safs.session();
        assert!(s.submit(1 << 16, 1, 0).is_err());
        assert!(safs.read_sync(1 << 16, 1).is_err());
    }

    #[test]
    fn partial_hit_reads_only_missing_pages() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 20);
        // Prime page 1 only.
        safs.read_sync(4096, 1).unwrap();
        safs.array().stats().reset();
        let mut s = safs.session();
        // Request pages 0..=2: page 1 cached, pages 0 and 2 missing.
        s.submit(0, 3 * 4096, 7).unwrap();
        let mut out = Vec::new();
        while out.is_empty() {
            s.wait(&mut out);
        }
        let snap = safs.array().stats().snapshot();
        assert_eq!(
            snap.pages_read, 2,
            "only the two missing pages hit the device"
        );
        assert_eq!(out[0].span.len(), 3 * 4096);
        // Content correct across the stitched span.
        assert_eq!(out[0].span.read_u32_le(4096), (4096 / 4) % 251);
    }

    #[test]
    fn sessions_from_multiple_threads() {
        let safs = std::sync::Arc::new(patterned_safs(SafsConfig::default(), 1 << 20));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let safs = std::sync::Arc::clone(&safs);
            handles.push(std::thread::spawn(move || {
                let mut s = safs.session();
                for i in 0..50 {
                    s.submit(((t * 50 + i) % 200) * 4096, 128, i).unwrap();
                }
                let mut out = Vec::new();
                while s.pending() > 0 {
                    s.wait(&mut out);
                }
                assert_eq!(out.len(), 50);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn scoped_session_books_its_own_lookups() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 20);
        // Warm pages 0..4 so the scoped session can hit.
        safs.read_sync(0, 4 * 4096).unwrap();
        let mount_before = safs.cache_stats();

        let scope = Arc::new(CacheStats::default());
        let mut s = safs.session_scoped(Some(Arc::clone(&scope)));
        s.submit(0, 2 * 4096, 1).unwrap(); // 2 hits
        s.submit(64 * 4096, 4096, 2).unwrap(); // 1 miss
        let mut out = Vec::new();
        while out.len() < 2 {
            s.wait(&mut out);
        }

        let scoped = scope.snapshot();
        assert_eq!(scoped.hits, 2);
        assert_eq!(scoped.misses, 1);
        assert_eq!(scoped.lookups, 3);
        // The mount-wide counters moved by the same lookups (plus
        // nothing else: no other tenant is active).
        let mount_delta = safs.cache_stats().delta_since(&mount_before);
        assert_eq!(mount_delta.hits, scoped.hits);
        assert_eq!(mount_delta.misses, scoped.misses);

        // An unscoped session leaves the scope untouched.
        let mut plain = safs.session();
        plain.submit(0, 4096, 3).unwrap();
        let mut out2 = Vec::new();
        plain.poll(&mut out2);
        assert_eq!(scope.snapshot(), scoped);
    }

    #[test]
    fn stream_submit_bypasses_cache_insertion() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 20);
        let mut s = safs.session();
        s.submit_stream(0, 8 * 4096, 1).unwrap();
        let mut out = Vec::new();
        while out.is_empty() {
            s.wait(&mut out);
        }
        assert_eq!(out[0].span.len(), 8 * 4096);
        assert_eq!(
            safs.cache_stats().insertions,
            0,
            "streamed pages must not enter the cache"
        );
        // A re-read therefore hits the device again.
        let before = safs.array().stats().snapshot().pages_read;
        safs.read_sync(0, 4096).unwrap();
        assert_eq!(safs.array().stats().snapshot().pages_read, before + 1);
    }

    #[test]
    fn stream_submit_uses_resident_pages_without_booking() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 20);
        // Warm pages 0..4 via the normal path.
        safs.read_sync(0, 4 * 4096).unwrap();
        let stats_before = safs.cache_stats();
        let io_before = safs.array().stats().snapshot();
        let scope = Arc::new(CacheStats::default());
        let mut s = safs.session_scoped(Some(Arc::clone(&scope)));
        s.submit_stream(0, 4 * 4096, 7).unwrap();
        let mut out = Vec::new();
        assert_eq!(s.poll(&mut out), 1, "resident stripe completes inline");
        // Served from the hot set: no device reads, and the quiet
        // lookups left both the mount counters and the scope alone.
        assert_eq!(
            safs.array().stats().snapshot().read_requests,
            io_before.read_requests
        );
        let delta = safs.cache_stats().delta_since(&stats_before);
        assert_eq!((delta.hits, delta.misses), (0, 0));
        assert_eq!(scope.snapshot().lookups, 0);
        // Content still correct.
        assert_eq!(out[0].span.read_u32_le(0), 0);
    }

    #[test]
    fn overlapping_session_attaches_to_in_flight_read() {
        use crate::io_thread::{IoMsg, RunRequest};
        use crossbeam::channel::unbounded;
        let safs = patterned_safs(SafsConfig::default(), 1 << 16);
        // Stage a fetcher: claim pages 0-1 as if another session's run
        // were queued on an I/O thread, but hold the run back so the
        // in-flight window stays open deterministically.
        let (fetch_tx, fetch_rx) = unbounded();
        let claimed = safs
            .inflight
            .claim_or_attach(0, &fetch_tx, &[(0, 0), (1, 1)]);
        assert_eq!(claimed, vec![false, false]);

        // A second session missing page 1 attaches as a waiter instead
        // of dispatching its own device run.
        let mut s = safs.session();
        s.submit(4096, 64, 9).unwrap();
        let snap = safs.array().stats().snapshot();
        assert_eq!(snap.dedup_hits, 1);
        assert_eq!(snap.dedup_bytes, 4096);
        assert_eq!(snap.read_requests, 0, "the waiter dispatched nothing");
        assert_eq!(s.pending(), 1);

        // Now the fetcher's run reaches its I/O thread: one device
        // read serves both sessions.
        safs.route(0)
            .send(IoMsg::Run(RunRequest {
                first_page: 0,
                num_pages: 2,
                req_id: 0,
                first_slot: 0,
                insert: true,
                reply: fetch_tx,
            }))
            .unwrap();
        let mut out = Vec::new();
        while out.is_empty() {
            s.wait(&mut out);
        }
        assert_eq!(out[0].tag, 9);
        assert_eq!(out[0].span.read_u32_le(0), (4096 / 4) % 251);
        let fetched = fetch_rx.recv().unwrap();
        assert_eq!(fetched.pages.len(), 2, "fetcher still gets its pages");
        let snap = safs.array().stats().snapshot();
        assert_eq!(snap.read_requests, 1, "exactly one device read total");
        assert_eq!(safs.inflight.open_claims(), 0, "claims fully resolved");
    }

    #[test]
    fn dead_waiter_session_does_not_wedge_the_fetcher() {
        use crate::io_thread::{IoMsg, RunRequest};
        use crossbeam::channel::unbounded;
        let safs = patterned_safs(SafsConfig::default(), 1 << 16);
        let (fetch_tx, fetch_rx) = unbounded();
        safs.inflight.claim_or_attach(0, &fetch_tx, &[(2, 0)]);
        {
            let mut dying = safs.session();
            dying.submit(2 * 4096, 16, 1).unwrap();
            assert_eq!(safs.array().stats().snapshot().dedup_hits, 1);
            // The waiter session is dropped mid-wait (a cancelled or
            // panicking tenant).
        }
        safs.route(2)
            .send(IoMsg::Run(RunRequest {
                first_page: 2,
                num_pages: 1,
                req_id: 0,
                first_slot: 0,
                insert: true,
                reply: fetch_tx,
            }))
            .unwrap();
        let fetched = fetch_rx.recv().unwrap();
        assert_eq!(fetched.pages[0].pageno(), 2);
        assert_eq!(safs.inflight.open_claims(), 0);
    }

    #[test]
    fn stream_submits_stay_out_of_the_inflight_table() {
        let safs = patterned_safs(SafsConfig::default(), 1 << 20);
        let (fetch_tx, _fetch_rx) = crossbeam::channel::unbounded();
        // An open claim on page 0 must not capture a streaming sweep.
        safs.inflight.claim_or_attach(0, &fetch_tx, &[(0, 0)]);
        let mut s = safs.session();
        s.submit_stream(0, 2 * 4096, 5).unwrap();
        let mut out = Vec::new();
        while out.is_empty() {
            s.wait(&mut out);
        }
        assert_eq!(out[0].span.len(), 2 * 4096);
        assert_eq!(safs.array().stats().snapshot().dedup_hits, 0);
        assert_eq!(
            safs.inflight.open_claims(),
            1,
            "sweep neither attached nor claimed"
        );
    }

    #[test]
    fn larger_page_size_reads_more_bytes() {
        // Figure 13's mechanism: big SAFS pages amplify bytes read for
        // small requests.
        let small = patterned_safs(SafsConfig::default().with_cache_bytes(0), 1 << 20);
        small.read_sync(0, 16).unwrap();
        let small_bytes = small.array().stats().snapshot().bytes_read;

        let big = patterned_safs(
            SafsConfig::default()
                .with_cache_bytes(0)
                .with_page_bytes(64 * 1024),
            1 << 20,
        );
        big.read_sync(0, 16).unwrap();
        let big_bytes = big.array().stats().snapshot().bytes_read;
        assert!(
            big_bytes >= 16 * small_bytes,
            "64K pages should read >=16x the bytes of 4K pages ({big_bytes} vs {small_bytes})"
        );
    }
}
