//! Behavioural tests of the engine, run in BOTH execution modes
//! (in-memory and semi-external over the SSD simulator) so the two
//! paths are provably interchangeable.

use fg_format::{load_index, required_capacity, write_image};
use fg_graph::{fixtures, gen, Graph};
use fg_safs::{Safs, SafsConfig};
use fg_ssdsim::{ArrayConfig, SsdArray};
use fg_types::{EdgeDir, VertexId};
use flashgraph::{
    Engine, EngineConfig, Init, PageVertex, Request, RunStats, SchedulerKind, VertexContext,
    VertexProgram,
};

/// Runs `program` on `g` in the given mode and returns states+stats.
fn run_mode<P: VertexProgram>(
    g: &Graph,
    program: &P,
    init: Init,
    cfg: EngineConfig,
    sem: bool,
) -> (Vec<P::State>, RunStats) {
    if sem {
        let array = SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(g)).unwrap();
        write_image(g, &array).unwrap();
        let (_, index) = load_index(&array).unwrap();
        let safs = Safs::new(SafsConfig::default(), array).unwrap();
        let engine = Engine::new_sem(&safs, index, cfg);
        engine.run(program, init).unwrap()
    } else {
        let engine = Engine::new_mem(g, cfg);
        engine.run(program, init).unwrap()
    }
}

fn both_modes<P: VertexProgram>(
    g: &Graph,
    program: &P,
    init: Init,
    cfg: EngineConfig,
) -> [(Vec<P::State>, RunStats); 2] {
    [
        run_mode(g, program, init.clone(), cfg, false),
        run_mode(g, program, init, cfg, true),
    ]
}

// ---------------------------------------------------------------- BFS

struct Bfs;

#[derive(Default, Clone, PartialEq, Debug)]
struct BfsState {
    level: u32,
    visited: bool,
}

impl VertexProgram for Bfs {
    type State = BfsState;
    type Msg = ();

    fn run(&self, v: VertexId, state: &mut BfsState, ctx: &mut VertexContext<'_, ()>) {
        if !state.visited {
            state.visited = true;
            state.level = ctx.iteration();
            ctx.request_edges(v, EdgeDir::Out);
        }
    }

    fn run_on_vertex(
        &self,
        _v: VertexId,
        _s: &mut BfsState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, ()>,
    ) {
        for dst in vertex.edges() {
            ctx.activate(dst);
        }
    }
}

#[test]
fn bfs_levels_on_path_both_modes() {
    let g = fixtures::path(12);
    for (states, stats) in both_modes(
        &g,
        &Bfs,
        Init::Seeds(vec![VertexId(0)]),
        EngineConfig::small(),
    ) {
        for (i, s) in states.iter().enumerate() {
            assert!(s.visited, "vertex {i} unreached");
            assert_eq!(s.level, i as u32, "vertex {i} level");
        }
        assert_eq!(stats.iterations, 12);
    }
}

#[test]
fn bfs_on_rmat_same_reachable_set_in_both_modes() {
    let g = gen::rmat(9, 6, gen::RmatSkew::default(), 21);
    let [(mem, _), (sem, _)] = both_modes(
        &g,
        &Bfs,
        Init::Seeds(vec![VertexId(0)]),
        EngineConfig::small(),
    );
    let mem_visited: Vec<bool> = mem.iter().map(|s| s.visited).collect();
    let sem_visited: Vec<bool> = sem.iter().map(|s| s.visited).collect();
    assert_eq!(mem_visited, sem_visited);
    let mem_levels: Vec<u32> = mem.iter().map(|s| s.level).collect();
    let sem_levels: Vec<u32> = sem.iter().map(|s| s.level).collect();
    assert_eq!(mem_levels, sem_levels);
    assert!(mem_visited.iter().filter(|&&v| v).count() > 100);
}

#[test]
fn bfs_two_components_only_reaches_one() {
    let g = fixtures::two_components(4, 10);
    for (states, _) in both_modes(
        &g,
        &Bfs,
        Init::Seeds(vec![VertexId(0)]),
        EngineConfig::small(),
    ) {
        assert!(states[..4].iter().all(|s| s.visited));
        assert!(states[4..].iter().all(|s| !s.visited));
    }
}

#[test]
fn bad_seed_is_rejected() {
    let g = fixtures::path(3);
    let engine = Engine::new_mem(&g, EngineConfig::small());
    assert!(engine.run(&Bfs, Init::Seeds(vec![VertexId(3)])).is_err());
}

// ----------------------------------------------------- message passing

/// Every vertex sends its id to each out-neighbour; receivers sum.
struct SumIds;

#[derive(Default, Clone)]
struct SumState {
    sum: u64,
    done: bool,
}

impl VertexProgram for SumIds {
    type State = SumState;
    type Msg = u32;

    fn run(&self, v: VertexId, state: &mut SumState, ctx: &mut VertexContext<'_, u32>) {
        if !state.done {
            state.done = true;
            ctx.request_edges(v, EdgeDir::Out);
        }
    }

    fn run_on_vertex(
        &self,
        v: VertexId,
        _s: &mut SumState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, u32>,
    ) {
        for dst in vertex.edges() {
            ctx.send(dst, v.0);
        }
    }

    fn run_on_message(
        &self,
        _v: VertexId,
        state: &mut SumState,
        msg: &u32,
        _ctx: &mut VertexContext<'_, u32>,
    ) {
        state.sum += *msg as u64;
    }
}

#[test]
fn messages_sum_in_neighbor_ids_both_modes() {
    let g = gen::rmat(8, 4, gen::RmatSkew::default(), 5);
    for (states, stats) in both_modes(&g, &SumIds, Init::All, EngineConfig::small()) {
        for v in g.vertices() {
            let want: u64 = g.in_neighbors(v).iter().map(|u| u.0 as u64).sum();
            assert_eq!(states[v.index()].sum, want, "vertex {v}");
        }
        assert_eq!(stats.messages_sent, g.num_edges());
    }
}

// ------------------------------------------------------------ multicast

struct Broadcast;

#[derive(Default, Clone)]
struct RecvCount {
    got: u32,
    sent: bool,
}

impl VertexProgram for Broadcast {
    type State = RecvCount;
    type Msg = u8;

    fn run(&self, v: VertexId, state: &mut RecvCount, ctx: &mut VertexContext<'_, u8>) {
        if !state.sent {
            state.sent = true;
            // Vertex 0 multicasts to every vertex, including itself.
            if v == VertexId(0) {
                let all: Vec<VertexId> = (0..ctx.num_vertices() as u32).map(VertexId).collect();
                ctx.multicast(&all, 7);
            }
        }
    }

    fn run_on_message(
        &self,
        _v: VertexId,
        state: &mut RecvCount,
        msg: &u8,
        _ctx: &mut VertexContext<'_, u8>,
    ) {
        assert_eq!(*msg, 7);
        state.got += 1;
    }
}

#[test]
fn multicast_reaches_every_vertex_once() {
    let g = fixtures::path(40);
    for (states, stats) in both_modes(&g, &Broadcast, Init::All, EngineConfig::small()) {
        assert!(states.iter().all(|s| s.got == 1));
        assert_eq!(stats.messages_sent, 40);
    }
}

// ----------------------------------------------- iteration-end events

/// Counts iterations via the end-of-iteration notification.
struct EndCounter;

#[derive(Default, Clone)]
struct EndState {
    ends_seen: u32,
}

impl VertexProgram for EndCounter {
    type State = EndState;
    type Msg = ();

    fn run(&self, v: VertexId, _s: &mut EndState, ctx: &mut VertexContext<'_, ()>) {
        ctx.notify_iteration_end();
        // Keep running for exactly 3 iterations.
        if ctx.iteration() < 2 {
            ctx.activate(v);
        }
    }

    fn run_on_iteration_end(
        &self,
        _v: VertexId,
        state: &mut EndState,
        _ctx: &mut VertexContext<'_, ()>,
    ) {
        state.ends_seen += 1;
    }
}

#[test]
fn iteration_end_fires_once_per_requesting_iteration() {
    let g = fixtures::path(10);
    for (states, stats) in both_modes(&g, &EndCounter, Init::All, EngineConfig::small()) {
        assert_eq!(stats.iterations, 3);
        assert!(states.iter().all(|s| s.ends_seen == 3));
    }
}

// -------------------------------------------------- neighbor requests

/// Each vertex requests its *neighbours'* edge lists (the triangle
/// counting access pattern) and records their total degree.
struct NeighborDegrees;

#[derive(Default, Clone)]
struct NdState {
    total: u64,
    started: bool,
}

impl VertexProgram for NeighborDegrees {
    type State = NdState;
    type Msg = ();

    fn run(&self, v: VertexId, state: &mut NdState, ctx: &mut VertexContext<'_, ()>) {
        if !state.started {
            state.started = true;
            ctx.request_edges(v, EdgeDir::Out);
        }
    }

    fn run_on_vertex(
        &self,
        v: VertexId,
        state: &mut NdState,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, ()>,
    ) {
        if vertex.id() == v {
            for w in vertex.edges() {
                ctx.request_edges(w, EdgeDir::Out);
            }
        } else {
            state.total += vertex.degree() as u64;
        }
    }
}

#[test]
fn cascading_neighbor_requests_both_modes() {
    let g = gen::rmat(7, 4, gen::RmatSkew::default(), 13);
    for (states, _) in both_modes(&g, &NeighborDegrees, Init::All, EngineConfig::small()) {
        for v in g.vertices() {
            let want: u64 = g
                .out_neighbors(v)
                .iter()
                .map(|&w| g.out_degree(w) as u64)
                .sum();
            assert_eq!(states[v.index()].total, want, "vertex {v}");
        }
    }
}

// ------------------------------------------------------- edge weights

struct WeightSum;

#[derive(Default, Clone)]
struct WsState {
    sum: f32,
    started: bool,
}

impl VertexProgram for WeightSum {
    type State = WsState;
    type Msg = ();

    fn run(&self, v: VertexId, state: &mut WsState, ctx: &mut VertexContext<'_, ()>) {
        if !state.started {
            state.started = true;
            ctx.request_edges_with_attrs(v, EdgeDir::Out);
        }
    }

    fn run_on_vertex(
        &self,
        _v: VertexId,
        state: &mut WsState,
        vertex: &PageVertex<'_>,
        _ctx: &mut VertexContext<'_, ()>,
    ) {
        assert!(vertex.has_attrs() || vertex.degree() == 0);
        for i in 0..vertex.degree() {
            state.sum += vertex.attr(i).unwrap();
        }
    }
}

#[test]
fn weighted_requests_deliver_attrs_both_modes() {
    let g = fixtures::weighted_square();
    for (states, _) in both_modes(&g, &WeightSum, Init::All, EngineConfig::small()) {
        assert_eq!(states[0].sum, 6.0); // 1.0 + 5.0
        assert_eq!(states[1].sum, 1.0);
        assert_eq!(states[2].sum, 1.0);
        assert_eq!(states[3].sum, 0.0);
    }
}

// ------------------------------------------------ in-edges + directions

struct InDegreeViaEdges;

#[derive(Default, Clone)]
struct IdState {
    in_deg: u32,
    out_deg: u32,
    started: bool,
}

impl VertexProgram for InDegreeViaEdges {
    type State = IdState;
    type Msg = ();

    fn run(&self, v: VertexId, state: &mut IdState, ctx: &mut VertexContext<'_, ()>) {
        if !state.started {
            state.started = true;
            ctx.request_edges(v, EdgeDir::Both);
        }
    }

    fn run_on_vertex(
        &self,
        _v: VertexId,
        state: &mut IdState,
        vertex: &PageVertex<'_>,
        _ctx: &mut VertexContext<'_, ()>,
    ) {
        match vertex.dir() {
            EdgeDir::In => state.in_deg += vertex.degree() as u32,
            EdgeDir::Out => state.out_deg += vertex.degree() as u32,
            EdgeDir::Both => unreachable!("deliveries are single-direction"),
        }
    }
}

#[test]
fn both_directions_delivered_separately() {
    let g = fixtures::diamond();
    for (states, _) in both_modes(&g, &InDegreeViaEdges, Init::All, EngineConfig::small()) {
        for v in g.vertices() {
            assert_eq!(states[v.index()].in_deg as usize, g.in_degree(v));
            assert_eq!(states[v.index()].out_deg as usize, g.out_degree(v));
        }
    }
}

// ------------------------------------------------------- configuration

#[test]
fn single_thread_and_many_threads_agree() {
    let g = gen::rmat(8, 6, gen::RmatSkew::default(), 3);
    let base = EngineConfig::small();
    let one = run_mode(
        &g,
        &Bfs,
        Init::Seeds(vec![VertexId(0)]),
        base.with_threads(1),
        false,
    )
    .0;
    let four = run_mode(
        &g,
        &Bfs,
        Init::Seeds(vec![VertexId(0)]),
        base.with_threads(4),
        false,
    )
    .0;
    for v in g.vertices() {
        assert_eq!(one[v.index()].visited, four[v.index()].visited);
        assert_eq!(one[v.index()].level, four[v.index()].level);
    }
}

#[test]
fn schedulers_do_not_change_bfs_results() {
    let g = gen::rmat(8, 4, gen::RmatSkew::default(), 8);
    let mut reference: Option<Vec<bool>> = None;
    for sched in [
        SchedulerKind::ById,
        SchedulerKind::Alternating,
        SchedulerKind::Random(11),
        SchedulerKind::DegreeDescending(EdgeDir::Both),
        SchedulerKind::DegreeDescending(EdgeDir::In),
        SchedulerKind::DegreeDescending(EdgeDir::Out),
    ] {
        let cfg = EngineConfig::small().with_scheduler(sched);
        let (states, _) = run_mode(&g, &Bfs, Init::Seeds(vec![VertexId(0)]), cfg, true);
        let visited: Vec<bool> = states.iter().map(|s| s.visited).collect();
        match &reference {
            None => reference = Some(visited),
            Some(r) => assert_eq!(r, &visited, "{sched:?}"),
        }
    }
}

/// Regression: with `max_pending < issue_batch` the pipelined claim
/// loop fills its whole depth budget with requests that are merely
/// *buffered* in the selective queue — the batch-size flush trigger
/// can then never fire, and without the stall-point flush the workers
/// wait forever on completions that were never submitted
/// (`scan_statistics` ships exactly this shape: `max_pending: 16`
/// over the default `issue_batch: 256`).
#[test]
fn pipeline_survives_max_pending_below_issue_batch() {
    let g = gen::rmat(8, 6, gen::RmatSkew::default(), 5);
    let cfg = EngineConfig {
        max_pending: 2,
        issue_batch: 64,
        ..EngineConfig::small()
    };
    let (mem, _) = run_mode(&g, &Bfs, Init::Seeds(vec![VertexId(0)]), cfg, false);
    let (sem, _) = run_mode(&g, &Bfs, Init::Seeds(vec![VertexId(0)]), cfg, true);
    for v in g.vertices() {
        assert_eq!(mem[v.index()].visited, sem[v.index()].visited);
        assert_eq!(mem[v.index()].level, sem[v.index()].level);
    }
}

#[test]
fn engine_merging_reduces_issued_requests() {
    let g = gen::rmat(9, 8, gen::RmatSkew::default(), 4);
    let merged = run_mode(
        &g,
        &Bfs,
        Init::Seeds(vec![VertexId(0)]),
        EngineConfig::default()
            .with_threads(2)
            .with_engine_merge(true),
        true,
    )
    .1;
    let unmerged = run_mode(
        &g,
        &Bfs,
        Init::Seeds(vec![VertexId(0)]),
        EngineConfig::default()
            .with_threads(2)
            .with_engine_merge(false),
        true,
    )
    .1;
    assert_eq!(merged.engine_requests, unmerged.engine_requests);
    assert!(
        merged.issued_requests < unmerged.issued_requests / 2,
        "merging should at least halve issued requests: {} vs {}",
        merged.issued_requests,
        unmerged.issued_requests
    );
}

#[test]
fn vertical_passes_run_per_part() {
    struct PassCounter;
    #[derive(Default, Clone)]
    struct PcState {
        runs: u32,
        parts_seen: u32,
    }
    impl VertexProgram for PassCounter {
        type State = PcState;
        type Msg = ();
        fn run(&self, _v: VertexId, state: &mut PcState, ctx: &mut VertexContext<'_, ()>) {
            let (part, total) = ctx.vertical_part();
            assert!(part < total);
            state.runs += 1;
            state.parts_seen |= 1 << part;
        }
    }
    let g = fixtures::path(20);
    let cfg = EngineConfig::small().with_vertical_parts(4);
    for (states, _) in both_modes(&g, &PassCounter, Init::All, cfg) {
        assert!(states.iter().all(|s| s.runs == 4));
        assert!(states.iter().all(|s| s.parts_seen == 0b1111));
    }
}

#[test]
fn stats_track_io_and_cache_in_sem_mode() {
    let g = gen::rmat(8, 6, gen::RmatSkew::default(), 9);
    let (_, stats) = run_mode(
        &g,
        &Bfs,
        Init::Seeds(vec![VertexId(0)]),
        EngineConfig::small(),
        true,
    );
    let io = stats.io.clone().expect("sem mode records io");
    assert!(io.read_requests > 0);
    assert!(io.bytes_read > 0);
    assert!(stats.cache.is_some());
    assert!(stats.modeled_runtime_ns() >= io.max_busy_ns);
    assert!(!stats.per_iteration.is_empty());
    assert_eq!(stats.per_iteration.len() as u32, stats.iterations);
    // Iteration 0's frontier was exactly the seed.
    assert_eq!(stats.per_iteration[0].frontier, 1);
}

#[test]
fn in_memory_mode_reports_no_io() {
    let g = fixtures::path(5);
    let (_, stats) = run_mode(
        &g,
        &Bfs,
        Init::Seeds(vec![VertexId(0)]),
        EngineConfig::small(),
        false,
    );
    assert!(stats.io.is_none());
    assert!(stats.cache.is_none());
    assert!(stats.engine_requests > 0);
}

#[test]
fn empty_graph_runs_and_stops() {
    let g = fg_graph::GraphBuilder::directed().build();
    let engine = Engine::new_mem(&g, EngineConfig::small());
    let (states, stats) = engine.run(&Bfs, Init::All).unwrap();
    assert!(states.is_empty());
    assert_eq!(stats.iterations, 0);
}

#[test]
fn max_iterations_caps_runaway_programs() {
    struct Forever;
    impl VertexProgram for Forever {
        type State = ();
        type Msg = ();
        fn run(&self, v: VertexId, _s: &mut (), ctx: &mut VertexContext<'_, ()>) {
            ctx.activate(v); // re-activate forever
        }
    }
    let g = fixtures::path(4);
    let cfg = EngineConfig {
        max_iterations: 7,
        ..EngineConfig::small()
    };
    let engine = Engine::new_mem(&g, cfg);
    let (_, stats) = engine.run(&Forever, Init::All).unwrap();
    assert_eq!(stats.iterations, 7);
}

// --------------------------------------------- partial-range requests

/// Each vertex requests positions [start, start+len) of its own out
/// list and records what arrived (slice content + reported offset).
struct RangeProbe {
    start: u64,
    len: u64,
}

#[derive(Default, Clone)]
struct ProbeState {
    started: bool,
    got: Vec<(u64, Vec<u32>)>, // (offset, slice edges) per callback
}

impl VertexProgram for RangeProbe {
    type State = ProbeState;
    type Msg = ();

    fn run(&self, v: VertexId, state: &mut ProbeState, ctx: &mut VertexContext<'_, ()>) {
        if !state.started {
            state.started = true;
            ctx.request(v, Request::edges(EdgeDir::Out).range(self.start, self.len));
        }
    }

    fn run_on_vertex(
        &self,
        v: VertexId,
        state: &mut ProbeState,
        vertex: &PageVertex<'_>,
        _ctx: &mut VertexContext<'_, ()>,
    ) {
        assert_eq!(vertex.id(), v);
        assert_eq!(
            vertex.range().end - vertex.range().start,
            vertex.degree() as u64
        );
        state
            .got
            .push((vertex.offset(), vertex.edges().map(|e| e.0).collect()));
    }
}

/// Flattens per-callback slices into (sorted-by-offset) edge ids.
fn reassemble(got: &[(u64, Vec<u32>)]) -> Vec<u32> {
    let mut chunks = got.to_vec();
    chunks.sort_by_key(|(off, _)| *off);
    chunks.into_iter().flat_map(|(_, e)| e).collect()
}

#[test]
fn range_requests_deliver_the_oracle_slice_both_modes() {
    let g = gen::rmat(8, 5, gen::RmatSkew::default(), 61);
    for (start, len) in [(0u64, 2u64), (1, 3), (2, 1000), (0, u64::MAX)] {
        let probe = RangeProbe { start, len };
        for (states, _) in both_modes(&g, &probe, Init::All, EngineConfig::small()) {
            for v in g.vertices() {
                let full = g.out_neighbors(v);
                let lo = (start as usize).min(full.len());
                let hi = lo + (len as usize).min(full.len() - lo);
                let want: Vec<u32> = full[lo..hi].iter().map(|e| e.0).collect();
                let st = &states[v.index()];
                assert_eq!(st.got.len(), 1, "one callback per in-bounds range");
                assert_eq!(st.got[0].0, lo as u64, "vertex {v} offset");
                assert_eq!(st.got[0].1, want, "vertex {v} slice");
            }
        }
    }
}

#[test]
fn zero_length_and_clamped_ranges_complete_without_io() {
    // Zero-length ranges and ranges starting past the list's end must
    // behave exactly like zero-degree lists: one empty callback, no
    // bytes requested, no device I/O.
    let g = gen::rmat(7, 4, gen::RmatSkew::default(), 5);
    for (start, len) in [(0u64, 0u64), (3, 0), (u64::MAX, 10), (1 << 40, 0)] {
        let probe = RangeProbe { start, len };
        let (states, stats) = run_mode(&g, &probe, Init::All, EngineConfig::small(), true);
        for v in g.vertices() {
            let st = &states[v.index()];
            assert_eq!(st.got.len(), 1, "empty ranges still deliver one callback");
            assert!(st.got[0].1.is_empty());
        }
        assert_eq!(stats.bytes_requested, 0, "({start}, {len})");
        assert_eq!(stats.edges_delivered, 0);
        let io = stats.io.expect("sem mode");
        assert_eq!(io.read_requests, 0, "no device I/O for ({start}, {len})");
        assert_eq!(io.bytes_read, 0);
        assert!(stats.engine_requests > 0, "requests were still issued");
    }
}

#[test]
fn clamped_tail_range_reads_only_the_overlap() {
    // A range crossing the end of the list delivers the clamped
    // intersection (like the zero-degree convention, but non-empty).
    let g = fixtures::complete(6); // every vertex has degree 5
    let probe = RangeProbe { start: 3, len: 100 };
    for (states, _) in both_modes(&g, &probe, Init::All, EngineConfig::small()) {
        for v in g.vertices() {
            let st = &states[v.index()];
            let want: Vec<u32> = g.out_neighbors(v)[3..].iter().map(|e| e.0).collect();
            assert_eq!(reassemble(&st.got), want);
            assert_eq!(st.got[0].0, 3);
        }
    }
}

#[test]
fn chunked_delivery_reassembles_with_one_callback_per_chunk() {
    let g = gen::rmat(7, 6, gen::RmatSkew::default(), 44);
    for chunk in [1u64, 3, 7] {
        let probe = RangeProbe {
            start: 0,
            len: u64::MAX,
        };
        let cfg = EngineConfig::small().with_max_request_edges(chunk);
        for (states, _) in both_modes(&g, &probe, Init::All, cfg) {
            for v in g.vertices() {
                let want: Vec<u32> = g.out_neighbors(v).iter().map(|e| e.0).collect();
                let st = &states[v.index()];
                let expected_chunks = (want.len() as u64).div_ceil(chunk).max(1);
                assert_eq!(
                    st.got.len() as u64,
                    expected_chunks,
                    "vertex {v}: exactly one callback per chunk (chunk={chunk})"
                );
                assert_eq!(reassemble(&st.got), want, "vertex {v} chunk={chunk}");
                // Chunks partition the list: offsets are multiples of
                // the chunk size and lengths fill to the next one.
                let mut sorted = st.got.clone();
                sorted.sort_by_key(|(off, _)| *off);
                for (k, (off, edges)) in sorted.iter().enumerate() {
                    assert_eq!(*off, k as u64 * chunk);
                    if (k as u64) < expected_chunks - 1 {
                        assert_eq!(edges.len() as u64, chunk);
                    }
                }
            }
        }
    }
}

#[test]
fn chunking_does_not_change_device_traffic() {
    // Chunked delivery bounds callback granularity, not I/O: adjacent
    // chunks of one list re-merge in the issue batch, so device bytes
    // and pages stay the same as whole-list execution.
    let g = gen::rmat(8, 8, gen::RmatSkew::default(), 2);
    let run = |chunk: u64| {
        run_mode(
            &g,
            &RangeProbe {
                start: 0,
                len: u64::MAX,
            },
            Init::All,
            EngineConfig::small().with_max_request_edges(chunk),
            true,
        )
    };
    let (whole_states, whole) = run(0);
    let (chunk_states, chunked) = run(16);
    for v in g.vertices() {
        assert_eq!(
            reassemble(&whole_states[v.index()].got),
            reassemble(&chunk_states[v.index()].got)
        );
    }
    let (a, b) = (whole.io.unwrap(), chunked.io.unwrap());
    assert_eq!(a.bytes_read, b.bytes_read, "no duplicate page reads");
    assert_eq!(a.pages_read, b.pages_read);
    assert_eq!(whole.bytes_requested, chunked.bytes_requested);
    assert_eq!(whole.edges_delivered, chunked.edges_delivered);
}

// ------------------------------------------- byte-accounted pipeline

#[test]
fn stats_account_bytes_and_edges_per_iteration() {
    let g = gen::rmat(8, 6, gen::RmatSkew::default(), 9);
    let (_, stats) = run_mode(
        &g,
        &Bfs,
        Init::Seeds(vec![VertexId(0)]),
        EngineConfig::small(),
        true,
    );
    // Every visited vertex requested its whole out list exactly once:
    // delivered edges = sum of visited out-degrees = requested bytes/4.
    let reached: u64 = fg_baselines::direct::bfs_levels(&g, VertexId(0))
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_some())
        .map(|(i, _)| g.out_degree(VertexId(i as u32)) as u64)
        .sum();
    assert_eq!(stats.edges_delivered, reached);
    assert_eq!(stats.bytes_requested, reached * 4);
    // Per-iteration traces sum to the run totals.
    let iter_bytes: u64 = stats.per_iteration.iter().map(|i| i.bytes_requested).sum();
    let iter_edges: u64 = stats.per_iteration.iter().map(|i| i.edges_delivered).sum();
    assert_eq!(iter_bytes, stats.bytes_requested);
    assert_eq!(iter_edges, stats.edges_delivered);
    // Page rounding makes the device read at least one page per cold
    // request neighbourhood; the waste ratio is well-defined and ≥ 1
    // on this cold, scattered pattern.
    let ratio = stats.page_waste_ratio().expect("sem mode with requests");
    assert!(ratio >= 1.0, "cold BFS cannot read less than requested");
    // In-memory runs deliver the same edges with no byte accounting.
    let (_, mem) = run_mode(
        &g,
        &Bfs,
        Init::Seeds(vec![VertexId(0)]),
        EngineConfig::small(),
        false,
    );
    assert_eq!(mem.edges_delivered, reached);
    assert_eq!(mem.bytes_requested, 0);
    assert_eq!(mem.page_waste_ratio(), None);
}

#[test]
fn single_position_probes_expose_page_rounding_waste() {
    // Reading 1 edge (4 bytes) per vertex still costs whole pages on
    // the device: bytes_requested counts 4 per probe while bytes_read
    // counts pages — the waste ratio the partial-request API lets
    // samplers measure (and the merge layer amortize).
    let g = gen::rmat(8, 6, gen::RmatSkew::default(), 29);
    let probe = RangeProbe { start: 0, len: 1 };
    let (_, stats) = run_mode(&g, &probe, Init::All, EngineConfig::small(), true);
    let with_edges: u64 = g.vertices().filter(|&v| g.out_degree(v) > 0).count() as u64;
    assert_eq!(stats.edges_delivered, with_edges);
    assert_eq!(stats.bytes_requested, with_edges * 4);
    assert!(stats.page_waste_ratio().unwrap() > 1.0);
}

#[test]
fn wrappers_and_first_class_requests_are_equivalent() {
    // request_edges / request_edges_with_attrs are documented one-line
    // wrappers over ctx.request: identical stats and results.
    struct Wrapped;
    #[derive(Default, Clone)]
    struct WState {
        sum: u64,
        started: bool,
    }
    impl VertexProgram for Wrapped {
        type State = WState;
        type Msg = ();
        fn run(&self, v: VertexId, state: &mut WState, ctx: &mut VertexContext<'_, ()>) {
            if !state.started {
                state.started = true;
                ctx.request_edges(v, EdgeDir::Out);
            }
        }
        fn run_on_vertex(
            &self,
            _v: VertexId,
            state: &mut WState,
            vertex: &PageVertex<'_>,
            _ctx: &mut VertexContext<'_, ()>,
        ) {
            assert_eq!(vertex.offset(), 0, "wrappers request whole lists");
            state.sum += vertex.edges().map(|e| e.0 as u64).sum::<u64>();
        }
    }
    let g = gen::rmat(7, 4, gen::RmatSkew::default(), 71);
    let (w_states, w_stats) = run_mode(&g, &Wrapped, Init::All, EngineConfig::small(), true);
    let probe = RangeProbe {
        start: 0,
        len: u64::MAX,
    };
    let (p_states, p_stats) = run_mode(&g, &probe, Init::All, EngineConfig::small(), true);
    for v in g.vertices() {
        let want: u64 = reassemble(&p_states[v.index()].got)
            .iter()
            .map(|&e| e as u64)
            .sum();
        assert_eq!(w_states[v.index()].sum, want);
    }
    assert_eq!(w_stats.engine_requests, p_stats.engine_requests);
    assert_eq!(w_stats.bytes_requested, p_stats.bytes_requested);
    assert_eq!(w_stats.edges_delivered, p_stats.edges_delivered);
}

#[test]
fn ranged_attr_requests_slice_weights_in_lockstep() {
    struct AttrSlice;
    #[derive(Default, Clone)]
    struct AsState {
        started: bool,
        pairs: Vec<(u32, f32)>,
    }
    impl VertexProgram for AttrSlice {
        type State = AsState;
        type Msg = ();
        fn run(&self, v: VertexId, state: &mut AsState, ctx: &mut VertexContext<'_, ()>) {
            if !state.started {
                state.started = true;
                ctx.request(v, Request::edges(EdgeDir::Out).range(1, 1).with_attrs());
            }
        }
        fn run_on_vertex(
            &self,
            _v: VertexId,
            state: &mut AsState,
            vertex: &PageVertex<'_>,
            _ctx: &mut VertexContext<'_, ()>,
        ) {
            for i in 0..vertex.degree() {
                state
                    .pairs
                    .push((vertex.edge(i).0, vertex.attr(i).unwrap()));
            }
        }
    }
    let g = fixtures::weighted_square();
    for (states, _) in both_modes(&g, &AttrSlice, Init::All, EngineConfig::small()) {
        for v in g.vertices() {
            let edges = g.out_neighbors(v);
            let want: Vec<(u32, f32)> = if edges.len() > 1 {
                let w = g.csr(EdgeDir::Out).weights_of(v).unwrap();
                vec![(edges[1].0, w[1])]
            } else {
                Vec::new()
            };
            assert_eq!(states[v.index()].pairs, want, "vertex {v}");
        }
    }
}

// ------------------------------------------ neighbour range requests

#[test]
fn range_requests_on_other_vertices_work() {
    // The paper's "request any vertex" flexibility composes with
    // ranges: vertex 0 samples position 1 of every other vertex.
    struct PeekSecond;
    #[derive(Default, Clone)]
    struct PeekState {
        seen: Vec<(u32, Vec<u32>)>,
        started: bool,
    }
    impl VertexProgram for PeekSecond {
        type State = PeekState;
        type Msg = ();
        fn run(&self, v: VertexId, state: &mut PeekState, ctx: &mut VertexContext<'_, ()>) {
            if v == VertexId(0) && !state.started {
                state.started = true;
                for u in 0..ctx.num_vertices() as u32 {
                    ctx.request(VertexId(u), Request::edges(EdgeDir::Out).range(1, 1));
                }
            }
        }
        fn run_on_vertex(
            &self,
            v: VertexId,
            state: &mut PeekState,
            vertex: &PageVertex<'_>,
            _ctx: &mut VertexContext<'_, ()>,
        ) {
            assert_eq!(v, VertexId(0), "callbacks land on the requester");
            state
                .seen
                .push((vertex.id().0, vertex.edges().map(|e| e.0).collect()));
        }
    }
    let g = gen::rmat(6, 4, gen::RmatSkew::default(), 19);
    for (states, _) in both_modes(&g, &PeekSecond, Init::All, EngineConfig::small()) {
        let mut seen = states[0].seen.clone();
        seen.sort();
        assert_eq!(seen.len(), g.num_vertices());
        for (u, got) in seen {
            let full = g.out_neighbors(VertexId(u));
            let want: Vec<u32> = full.iter().skip(1).take(1).map(|e| e.0).collect();
            assert_eq!(got, want, "vertex {u}");
        }
    }
}

#[test]
fn work_stealing_matches_no_stealing() {
    // A graph where all edges live in low vertex ids: partition 0 gets
    // all the work, so stealing matters for progress equivalence.
    let mut b = fg_graph::GraphBuilder::directed();
    for i in 0..50u32 {
        for j in 0..20u32 {
            b.add_edge(VertexId(i), VertexId((i + j + 1) % 50));
        }
    }
    b.reserve_vertices(4096);
    let g = b.build();
    let steal = EngineConfig::small().with_threads(4);
    let no_steal = EngineConfig {
        work_stealing: false,
        ..steal
    };
    let a = run_mode(&g, &SumIds, Init::All, steal, false).0;
    let c = run_mode(&g, &SumIds, Init::All, no_steal, false).0;
    for v in g.vertices() {
        assert_eq!(a[v.index()].sum, c[v.index()].sum);
    }
}

// ------------------------------------------------ streaming scan mode

use flashgraph::ScanMode;

/// A fresh semi-external fixture with an explicit SAFS config and a
/// handle on the mount (for cache/device assertions).
fn sem_fixture(g: &Graph, safs_cfg: SafsConfig) -> (Safs, fg_format::GraphIndex) {
    let array = SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(g)).unwrap();
    write_image(g, &array).unwrap();
    let (_, index) = load_index(&array).unwrap();
    let safs = Safs::new(safs_cfg, array).unwrap();
    safs.reset_stats();
    (safs, index)
}

/// The config the streaming tests share: two workers, large id-ranges
/// (so each partition's extent is a few long runs — the layout the
/// paper's r = 12..18 guidance produces at scale), small merge cap so
/// both modes stripe the same way.
fn scan_test_cfg(mode: ScanMode) -> EngineConfig {
    EngineConfig {
        num_threads: 2,
        range_shift: 9,
        issue_batch: 64,
        max_merge_bytes: 64 * 1024,
        ..EngineConfig::default()
    }
    .with_scan_mode(mode)
}

#[test]
fn scan_modes_agree_with_each_other_and_memory() {
    let g = gen::rmat(10, 8, gen::RmatSkew::default(), 0xD5);
    let init = Init::Seeds(vec![VertexId(0), VertexId(17)]);
    let (mem, mem_stats) = run_mode(
        &g,
        &Bfs,
        init.clone(),
        scan_test_cfg(ScanMode::Selective),
        false,
    );
    for mode in [
        ScanMode::Selective,
        ScanMode::Stream,
        ScanMode::Adaptive { threshold: 50 },
    ] {
        let (safs, index) = sem_fixture(&g, SafsConfig::default());
        let engine = Engine::new_sem(&safs, index, scan_test_cfg(mode));
        let (states, stats) = engine.run(&Bfs, init.clone()).unwrap();
        for v in g.vertices() {
            assert_eq!(
                states[v.index()].visited,
                mem[v.index()].visited,
                "{mode:?}"
            );
            assert_eq!(states[v.index()].level, mem[v.index()].level, "{mode:?}");
        }
        assert_eq!(
            stats.edges_delivered, mem_stats.edges_delivered,
            "every mode delivers exactly the requested slices ({mode:?})"
        );
    }
}

#[test]
fn stream_iterations_report_scan_and_stripes() {
    let g = gen::rmat(10, 8, gen::RmatSkew::default(), 0xA7);
    // Dense run: every vertex active in iteration 0.
    let (safs, index) = sem_fixture(&g, SafsConfig::default());
    let engine = Engine::new_sem(&safs, index, scan_test_cfg(ScanMode::Stream));
    let (_, stats) = engine.run(&Bfs, Init::All).unwrap();
    let first = &stats.per_iteration[0];
    assert!(first.scan, "Stream mode must flag the dense iteration");
    assert_eq!(first.stream_partitions, 2, "both workers streamed");
    assert!(first.stream_stripes > 0);
    assert!(first.read_requests > 0);

    let (safs, index) = sem_fixture(&g, SafsConfig::default());
    let engine = Engine::new_sem(&safs, index, scan_test_cfg(ScanMode::Selective));
    let (_, stats) = engine.run(&Bfs, Init::All).unwrap();
    assert!(
        stats
            .per_iteration
            .iter()
            .all(|it| !it.scan && it.stream_stripes == 0),
        "Selective never streams"
    );
}

#[test]
fn dense_stream_issues_fewer_device_requests_than_selective() {
    // The crossover the mode exists for: on a dense iteration the
    // sweep's stride covers beat thousands of per-list requests.
    let g = gen::rmat(11, 8, gen::RmatSkew::default(), 0x5EED);
    let run = |mode: ScanMode| {
        let (safs, index) = sem_fixture(&g, SafsConfig::default().with_cache_bytes(0));
        let engine = Engine::new_sem(&safs, index, scan_test_cfg(mode));
        let (_, stats) = engine.run(&Bfs, Init::All).unwrap();
        stats
    };
    let sel = run(ScanMode::Selective);
    let stream = run(ScanMode::Stream);
    let (s0, t0) = (&sel.per_iteration[0], &stream.per_iteration[0]);
    assert!(s0.frontier as usize == g.num_vertices());
    assert!(
        t0.read_requests < s0.read_requests,
        "dense iteration: stream {} requests vs selective {}",
        t0.read_requests,
        s0.read_requests
    );
}

#[test]
fn adaptive_scan_follows_partition_density() {
    // BFS from one seed: early iterations are sparse (selective),
    // the middle of the run floods past 50 % density (scan), the tail
    // drains back to selective.
    let g = gen::rmat(10, 16, gen::RmatSkew::default(), 0xBF5);
    let (safs, index) = sem_fixture(&g, SafsConfig::default());
    let engine = Engine::new_sem(&safs, index, scan_test_cfg(ScanMode::adaptive()));
    let (_, stats) = engine.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
    let n = g.num_vertices() as u64;
    let flags: Vec<bool> = stats.per_iteration.iter().map(|it| it.scan).collect();
    // Iteration 0 is one vertex in one partition: never a scan.
    assert!(!flags[0], "a single-seed iteration must stay selective");
    // A globally dense iteration (> half of *all* vertices) implies at
    // least one partition above threshold.
    for it in &stats.per_iteration {
        if it.frontier * 100 > n * 75 {
            assert!(
                it.scan,
                "iteration with {}/{} active stayed selective",
                it.frontier, n
            );
        }
    }
    assert!(
        flags.iter().any(|&f| f) && flags.iter().any(|&f| !f),
        "the run should mix modes across its density life cycle: {flags:?}"
    );
}

#[test]
fn streamed_sweep_does_not_evict_or_pollute_the_cache() {
    let g = gen::rmat(10, 8, gen::RmatSkew::default(), 0x11);
    let (safs, index) = sem_fixture(&g, SafsConfig::default());
    // Warm the cache with a selective run, then note its insertions.
    let engine = Engine::new_sem(&safs, index.clone(), scan_test_cfg(ScanMode::Selective));
    engine.run(&Bfs, Init::All).unwrap();
    let warm = safs.cache_stats();
    // A pure stream run must not insert a single page (and its quiet
    // lookups must not move the mount's hit/miss counters).
    let engine = Engine::new_sem(&safs, index, scan_test_cfg(ScanMode::Stream));
    let (_, stats) = engine.run(&Bfs, Init::All).unwrap();
    assert!(stats.per_iteration[0].scan);
    let delta = safs.cache_stats().delta_since(&warm);
    assert_eq!(delta.insertions, 0, "streamed stripes bypass insertion");
    assert_eq!(delta.evictions, 0, "the hot working set survives a sweep");
}

#[test]
fn per_iteration_io_sums_to_run_totals_under_stealing() {
    // An unbalanced graph (all edges on low ids) so stealing actually
    // moves I/O between workers mid-iteration; the quiesced boundary
    // snapshots must still partition the run totals exactly. Checked
    // under both schedulers: the pipelined loop has no intra-iteration
    // barriers, so its only quiesced points are the completion-counted
    // iteration boundaries — exactly where the snapshots are taken.
    let mut b = fg_graph::GraphBuilder::directed();
    for i in 0..300u32 {
        for j in 0..8u32 {
            b.add_edge(VertexId(i), VertexId((i * 7 + j * 131 + 1) % 2048));
        }
    }
    b.reserve_vertices(2048);
    let g = b.build();
    for pipeline in [true, false] {
        let cfg = EngineConfig {
            num_threads: 4,
            work_stealing: true,
            vertical_parts: 2,
            ..EngineConfig::small()
        }
        .with_pipeline(pipeline);
        let (safs, index) = sem_fixture(&g, SafsConfig::default());
        let engine = Engine::new_sem(&safs, index, cfg);
        let (_, stats) = engine.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        let io = stats.io.as_ref().expect("sem mode");
        let sums = stats
            .per_iteration
            .iter()
            .fold((0u64, 0u64, 0u64, 0u64, 0u64), |a, it| {
                (
                    a.0 + it.read_requests,
                    a.1 + it.bytes_read,
                    a.2 + it.bytes_requested,
                    a.3 + it.edges_delivered,
                    a.4 + it.issued_requests,
                )
            });
        assert_eq!(sums.0, io.read_requests, "read_requests must sum exactly");
        assert_eq!(sums.1, io.bytes_read, "bytes_read must sum exactly");
        assert_eq!(
            sums.2, stats.bytes_requested,
            "bytes_requested must sum exactly"
        );
        assert_eq!(
            sums.3, stats.edges_delivered,
            "edges_delivered must sum exactly"
        );
        assert_eq!(
            sums.4, stats.issued_requests,
            "issued_requests must sum exactly (pipeline={pipeline})"
        );
        assert!(stats.per_iteration.len() as u32 == stats.iterations);
    }
}

#[test]
fn weighted_stream_sweep_is_not_degenerate() {
    // Regression: a weighted request contributes parts in two
    // far-apart file sections (edges + attribute run); the stream
    // stride trigger must track the sections separately, or every
    // single request looks stride-wide and the sweep degenerates to
    // per-vertex cache-bypassed covers.
    let d = gen::rmat(10, 8, gen::RmatSkew::default(), 0x77);
    let mut b = fg_graph::GraphBuilder::directed();
    for (s, t) in d.edges() {
        b.add_weighted_edge(s, t, (s.0 % 7) as f32 + 0.5);
    }
    b.reserve_vertices(d.num_vertices());
    let g = b.build();

    let run = |mode: ScanMode| {
        let (safs, index) = sem_fixture(&g, SafsConfig::default());
        let engine = Engine::new_sem(&safs, index, scan_test_cfg(mode));
        engine.run(&WeightSum, Init::All).unwrap()
    };
    let (sel, _) = run(ScanMode::Selective);
    let (str_states, str_stats) = run(ScanMode::Stream);
    for v in g.vertices() {
        assert_eq!(str_states[v.index()].sum, sel[v.index()].sum, "vertex {v}");
    }
    let it0 = &str_stats.per_iteration[0];
    assert!(it0.scan);
    // A healthy sweep issues a few covers per id-range per section —
    // nowhere near one (or two) per vertex.
    assert!(
        it0.stream_stripes < g.num_vertices() as u64 / 16,
        "degenerate sweep: {} stripes for {} vertices",
        it0.stream_stripes,
        g.num_vertices()
    );
}

#[test]
fn tc_matches_oracle_under_all_scan_modes() {
    // Neighbour-list requests (subject != requester) must stay
    // selective inside a streaming iteration — and results must be
    // identical either way.
    let d = gen::rmat(7, 6, gen::RmatSkew::default(), 31);
    let mut b = fg_graph::GraphBuilder::undirected();
    for (s, t) in d.edges() {
        b.add_edge(s, t);
    }
    let g = b.build();
    let want = fg_baselines::direct::triangle_count(&g);
    for mode in [ScanMode::Selective, ScanMode::Stream, ScanMode::adaptive()] {
        let (safs, index) = sem_fixture(&g, SafsConfig::default());
        let engine = Engine::new_sem(&safs, index, scan_test_cfg(mode));
        let (total, per, _) = fg_apps::triangle_count(&engine, true).unwrap();
        assert_eq!(total, want, "{mode:?}");
        assert_eq!(
            per,
            fg_baselines::direct::triangles_per_vertex(&g),
            "{mode:?}"
        );
    }
}
