//! Multi-tenant serving stress: mixed BFS / PageRank / WCC queries
//! running *concurrently* through one [`GraphService`] — one SAFS
//! mount, one index, one shared page cache — must each produce
//! exactly the answer the in-memory oracles produce, while the shared
//! cache's books stay balanced and cross-query locality shows up as
//! extra hits.

use std::sync::Arc;

use fg_format::{load_index, required_capacity_with, write_image_with, GraphIndex, WriteOptions};
use fg_graph::gen::{rmat, RmatSkew};
use fg_graph::Graph;
use fg_safs::{Safs, SafsConfig};
use fg_ssdsim::{ArrayConfig, SsdArray};
use fg_types::VertexId;
use flashgraph::{EngineConfig, GraphService, ServiceConfig};

fn test_graph() -> Graph {
    rmat(8, 6, RmatSkew::default(), 0xC0FFEE)
}

/// A fresh service over a fresh mount of `g` — cold cache, cold
/// device counters.
fn fresh_service(g: &Graph, cache_pages: u64, max_inflight: usize) -> GraphService {
    let opts = WriteOptions::from_env();
    let array =
        SsdArray::new_mem(ArrayConfig::small_test(), required_capacity_with(g, &opts)).unwrap();
    write_image_with(g, &array, &opts).unwrap();
    let (_, index): (_, GraphIndex) = load_index(&array).unwrap();
    let safs = Safs::new(
        SafsConfig::default().with_cache_bytes(cache_pages * 4096),
        array,
    )
    .unwrap();
    safs.reset_stats();
    let cfg = ServiceConfig::default()
        .with_max_inflight(max_inflight)
        .with_engine(EngineConfig::small());
    GraphService::new(safs, index, cfg)
}

#[test]
fn mixed_queries_match_oracles_and_cache_books_balance() {
    let g = test_graph();
    let svc = Arc::new(fresh_service(&g, 16, 3));

    let bfs_roots = [VertexId(0), VertexId(3), VertexId(17)];
    let bfs_oracles: Vec<Vec<Option<u32>>> = bfs_roots
        .iter()
        .map(|&r| fg_baselines::direct::bfs_levels(&g, r))
        .collect();
    let wcc_oracle = fg_baselines::direct::wcc_labels(&g);
    let pr_oracle = fg_baselines::direct::pagerank(&g, 0.85, 100);

    std::thread::scope(|s| {
        // Three BFS tenants from different roots.
        for (root, oracle) in bfs_roots.iter().zip(&bfs_oracles) {
            let svc = Arc::clone(&svc);
            s.spawn(move || {
                let (levels, stats) = svc.query(|e| fg_apps::bfs(e, *root)).unwrap();
                assert_eq!(&levels, oracle, "BFS from {root} diverged from oracle");
                assert!(stats.cache.is_some());
            });
        }
        // Two WCC tenants (identical queries: maximal page overlap).
        for _ in 0..2 {
            let svc = Arc::clone(&svc);
            let oracle = &wcc_oracle;
            s.spawn(move || {
                let (labels, _) = svc.query(|e| fg_apps::wcc(e)).unwrap();
                assert_eq!(&labels, oracle, "WCC diverged from union-find oracle");
            });
        }
        // Two PageRank tenants.
        for _ in 0..2 {
            let svc = Arc::clone(&svc);
            let oracle = &pr_oracle;
            let g = &g;
            s.spawn(move || {
                let (ranks, _) = svc
                    .query(|e| fg_apps::pagerank(e, 0.85, 1e-5, 200))
                    .unwrap();
                for v in g.vertices() {
                    let got = ranks[v.index()] as f64;
                    let expect = oracle[v.index()];
                    assert!(
                        (got - expect).abs() < 0.02 * expect.max(1.0),
                        "PR vertex {v}: {got} vs {expect}"
                    );
                }
            });
        }
    });

    // Every tenant went through admission and released its slot.
    let svc_stats = svc.stats();
    assert_eq!(svc_stats.admitted, 7);
    assert_eq!(svc_stats.completed, 7);
    assert!(svc_stats.peak_inflight <= 3, "admission cap overrun");
    assert_eq!(svc.inflight(), 0);

    // The shared cache's books balance even under concurrent tenants:
    // every counted lookup is exactly one hit or one miss.
    let cache = svc.cache_stats();
    assert!(cache.lookups > 0, "queries never touched the shared cache");
    assert_eq!(
        cache.hits + cache.misses,
        cache.lookups,
        "shared cache lost lookups under concurrency"
    );
}

#[test]
fn concurrent_tenants_hit_each_others_pages() {
    let g = test_graph();
    // Cache large enough to keep the little image resident, so
    // cross-query reuse reliably turns into hits.
    let cache_pages = 64;

    // Baseline: each query alone on a cold mount. `bfs_cold_misses`
    // is the BFS tenant's own (session-scoped) miss count — the pages
    // it had to pull from the device itself.
    let (alone_bfs, bfs_cold_misses) = {
        let svc = fresh_service(&g, cache_pages, 2);
        let (_, stats) = svc.query(|e| fg_apps::bfs(e, VertexId(0))).unwrap();
        (svc.cache_stats().hits, stats.cache.unwrap().misses)
    };
    let alone_wcc = {
        let svc = fresh_service(&g, cache_pages, 2);
        svc.query(|e| fg_apps::wcc(e)).unwrap();
        svc.cache_stats().hits
    };

    // Both queries concurrently over one cold shared mount.
    let svc = Arc::new(fresh_service(&g, cache_pages, 2));
    let bfs_oracle = fg_baselines::direct::bfs_levels(&g, VertexId(0));
    let wcc_oracle = fg_baselines::direct::wcc_labels(&g);
    std::thread::scope(|s| {
        let svc_a = Arc::clone(&svc);
        let svc_b = Arc::clone(&svc);
        let a = s.spawn(move || svc_a.query(|e| fg_apps::bfs(e, VertexId(0))).unwrap());
        let b = s.spawn(move || svc_b.query(|e| fg_apps::wcc(e)).unwrap());
        assert_eq!(a.join().unwrap().0, bfs_oracle);
        assert_eq!(b.join().unwrap().0, wcc_oracle);
    });
    let together = svc.cache_stats().hits;

    // The shared mount served strictly more hits than either tenant
    // achieves alone on a cold cache (the acceptance bar)...
    assert!(
        together > alone_bfs && together > alone_wcc,
        "no cross-query locality: together {together}, alone BFS {alone_bfs}, alone WCC {alone_wcc}"
    );
    // ...and a deterministic discrimination of *cross-tenant* reuse
    // from a tenant's own reuse: alone on a cold mount, BFS must pull
    // pages from the device (scoped misses > 0); after a WCC tenant
    // warmed the shared mount, the same BFS finds every page already
    // resident (scoped misses == 0). WCC's page set (all vertices,
    // both directions) covers BFS's, and the cache holds the whole
    // image, so those vanished misses can only be pages the *other*
    // tenant pulled in.
    assert!(
        bfs_cold_misses > 0,
        "cold-mount BFS never went to the device; baseline is vacuous"
    );
    let svc2 = fresh_service(&g, cache_pages, 2);
    svc2.query(|e| fg_apps::wcc(e)).unwrap();
    let (levels, stats) = svc2.query(|e| fg_apps::bfs(e, VertexId(0))).unwrap();
    assert_eq!(levels, bfs_oracle);
    let warm = stats.cache.unwrap();
    assert!(warm.lookups > 0, "warm BFS made no lookups at all");
    assert_eq!(
        warm.misses, 0,
        "every BFS page should be resident from the WCC tenant's fills"
    );
}

#[test]
fn per_query_scopes_sum_to_mount_lookups() {
    let g = test_graph();
    let svc = Arc::new(fresh_service(&g, 16, 4));
    let scoped: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let svc = Arc::clone(&svc);
                s.spawn(move || {
                    let root = VertexId(i * 5);
                    let (_, stats) = svc.query(|e| fg_apps::bfs(e, root)).unwrap();
                    let c = stats.cache.expect("sem run records scoped stats");
                    (c.lookups, c.hits, c.misses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for &(lookups, hits, misses) in &scoped {
        assert_eq!(hits + misses, lookups, "a tenant's own books don't balance");
    }
    // The mount saw exactly the union of its tenants' lookups: the
    // per-query scopes partition the shared counters.
    let total: u64 = scoped.iter().map(|s| s.0).sum();
    assert_eq!(svc.cache_stats().lookups, total);
}
