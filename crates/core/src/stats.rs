//! Run statistics: the raw material of every evaluation figure.

use std::time::Duration;

use fg_safs::CacheStatsSnapshot;
use fg_ssdsim::IoStatsSnapshot;
use fg_types::CancelCause;

/// Per-iteration trace (used by Figure 9's PR1/PR2 split and for
/// debugging convergence).
#[derive(Debug, Clone)]
pub struct IterStats {
    /// Vertices active at the start of the iteration.
    pub frontier: u64,
    /// Wall-clock nanoseconds of the iteration.
    pub wall_ns: u64,
    /// Device read requests during the iteration.
    pub read_requests: u64,
    /// Bytes read from the device during the iteration.
    pub bytes_read: u64,
    /// Bytes covered by logical requests during the iteration
    /// (semi-external mode; compare with `bytes_read` for the
    /// page-rounding waste of this iteration's access pattern).
    pub bytes_requested: u64,
    /// Physical requests this iteration submitted to SAFS after
    /// engine merging. Derived from the engine's own completion
    /// counters at quiesced boundaries — not from sampling — so the
    /// per-iteration values sum exactly to
    /// [`RunStats::issued_requests`] under both schedulers, work
    /// stealing included.
    pub issued_requests: u64,
    /// Edges delivered to `run_on_vertex` callbacks this iteration.
    pub edges_delivered: u64,
    /// Increase of the busiest drive's virtual busy time.
    pub io_busy_ns: u64,
    /// Whether any worker executed this iteration as a streaming
    /// scan (see [`crate::ScanMode`]): dense partitions swept their
    /// edge-list extents with stride-sized sequential covers instead
    /// of per-vertex requests.
    pub scan: bool,
    /// Partitions that streamed this iteration (0 when `scan` is
    /// false, up to the worker count when every partition was dense).
    pub stream_partitions: u64,
    /// Stride covers submitted by the streaming path this iteration —
    /// the device-request count of the sweep. Compare with
    /// `read_requests` to see how much of the iteration's traffic the
    /// scan carried.
    pub stream_stripes: u64,
}

impl IterStats {
    /// Folds another shard's trace of the *same* iteration into this
    /// one: counters sum, wall/busy times take the slowest shard
    /// (shards run the iteration concurrently), `scan` ORs.
    pub fn absorb(&mut self, other: &IterStats) {
        self.frontier += other.frontier;
        self.wall_ns = self.wall_ns.max(other.wall_ns);
        self.read_requests += other.read_requests;
        self.bytes_read += other.bytes_read;
        self.bytes_requested += other.bytes_requested;
        self.issued_requests += other.issued_requests;
        self.edges_delivered += other.edges_delivered;
        self.io_busy_ns = self.io_busy_ns.max(other.io_busy_ns);
        self.scan |= other.scan;
        self.stream_partitions += other.stream_partitions;
        self.stream_stripes += other.stream_stripes;
    }
}

/// Statistics of one [`crate::Engine::run`].
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Iterations executed.
    pub iterations: u32,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Nanoseconds spent inside user vertex-program callbacks, summed
    /// over workers — the "user CPU" proxy of Figure 9.
    pub compute_ns: u64,
    /// Nanoseconds workers spent blocked waiting for I/O completions.
    pub wait_ns: u64,
    /// Total vertex activations (`ctx.activate` calls that set a bit).
    pub activations: u64,
    /// Per-vertex message deliveries posted.
    pub messages_sent: u64,
    /// `run` invocations (vertex × vertical-pass executions).
    pub vertices_processed: u64,
    /// Logical edge-list/attribute requests issued by programs.
    pub engine_requests: u64,
    /// Physical requests submitted to SAFS after engine merging.
    pub issued_requests: u64,
    /// Bytes covered by logical requests (edge + attribute payload).
    pub bytes_requested: u64,
    /// Edges delivered to `run_on_vertex` callbacks — every edge of
    /// every slice handed to a program, in both execution modes. For
    /// full-list execution this is the sum of requested degrees; for
    /// range/sampled execution it shows how much smaller the touched
    /// edge set was.
    pub edges_delivered: u64,
    /// Nanoseconds the query waited in a [`crate::GraphService`]
    /// admission queue before its engine run began. Zero for runs
    /// invoked directly on an [`crate::Engine`].
    pub queue_wait_ns: u64,
    /// Serialized bytes of batched cross-shard packets this run (or
    /// this shard of a sharded run) posted to the shard bus. Zero for
    /// unsharded runs.
    pub shard_msg_bytes: u64,
    /// Device statistics delta over the run (semi-external mode only).
    pub io: Option<IoStatsSnapshot>,
    /// Page-cache lookups performed by *this run's own* I/O sessions
    /// (semi-external only). Under a shared mount this stays accurate
    /// per query; insertions/evictions happen on the shared I/O
    /// threads and are only visible mount-wide (see `cache_mount`).
    pub cache: Option<CacheStatsSnapshot>,
    /// Mount-wide page-cache delta across the run (semi-external
    /// only). Equals `cache` plus insertions/evictions when the run
    /// was the mount's only tenant; includes other queries' traffic
    /// when the mount is shared.
    pub cache_mount: Option<CacheStatsSnapshot>,
    /// Why the run stopped before converging, when it did: a
    /// [`fg_types::CancelToken`] fired at an iteration boundary.
    /// `None` for runs that converged (or hit their iteration cap).
    /// The driver layers (`Engine::run`, `ShardedEngine::run`,
    /// [`crate::GraphService`]) turn this into the matching
    /// [`fg_types::FgError`]; it is visible here so sharded per-shard
    /// stats can carry the verdict out of their threads without
    /// poisoning the rendezvous group.
    pub cancelled: Option<CancelCause>,
    /// Per-iteration trace.
    pub per_iteration: Vec<IterStats>,
}

impl RunStats {
    /// Folds another engine's statistics of the *same concurrent run*
    /// into this one — how a sharded run rolls its per-shard stats up
    /// into one aggregate. Work counters (activations, messages,
    /// requests, bytes, edges, compute time, cross-shard traffic)
    /// sum; times that elapse concurrently (`elapsed`, `wait_ns`,
    /// `queue_wait_ns`) take the slowest shard; `iterations` takes
    /// the max (shards iterate in lockstep, so they agree); I/O and
    /// cache snapshots absorb (distinct devices concatenate, see
    /// [`IoStatsSnapshot::absorb`]); per-iteration traces merge row
    /// by row via [`IterStats::absorb`].
    pub fn absorb(&mut self, other: &RunStats) {
        self.iterations = self.iterations.max(other.iterations);
        self.elapsed = self.elapsed.max(other.elapsed);
        self.compute_ns += other.compute_ns;
        self.wait_ns = self.wait_ns.max(other.wait_ns);
        self.activations += other.activations;
        self.messages_sent += other.messages_sent;
        self.vertices_processed += other.vertices_processed;
        self.engine_requests += other.engine_requests;
        self.issued_requests += other.issued_requests;
        self.bytes_requested += other.bytes_requested;
        self.edges_delivered += other.edges_delivered;
        self.queue_wait_ns = self.queue_wait_ns.max(other.queue_wait_ns);
        self.shard_msg_bytes += other.shard_msg_bytes;
        // Any shard observing the (shared) token makes the whole run
        // cancelled; explicit cancellation outranks a deadline.
        self.cancelled = match (self.cancelled, other.cancelled) {
            (Some(CancelCause::Cancelled), _) | (_, Some(CancelCause::Cancelled)) => {
                Some(CancelCause::Cancelled)
            }
            (a, b) => a.or(b),
        };
        match (&mut self.io, &other.io) {
            (Some(mine), Some(theirs)) => mine.absorb(theirs),
            (io @ None, Some(theirs)) => *io = Some(theirs.clone()),
            _ => {}
        }
        match (&mut self.cache, &other.cache) {
            (Some(mine), Some(theirs)) => mine.absorb(theirs),
            (cache @ None, Some(theirs)) => *cache = Some(*theirs),
            _ => {}
        }
        match (&mut self.cache_mount, &other.cache_mount) {
            (Some(mine), Some(theirs)) => mine.absorb(theirs),
            (cache @ None, Some(theirs)) => *cache = Some(*theirs),
            _ => {}
        }
        for (i, row) in other.per_iteration.iter().enumerate() {
            match self.per_iteration.get_mut(i) {
                Some(mine) => mine.absorb(row),
                None => self.per_iteration.push(row.clone()),
            }
        }
    }

    /// The roofline runtime model used throughout the reproduction's
    /// figures: computation and I/O overlap (the engine's async
    /// user-task design), so modeled runtime is the maximum of the
    /// wall-clock compute path and the busiest simulated drive.
    /// In-memory runs have no simulated I/O and report wall clock.
    pub fn modeled_runtime_ns(&self) -> u64 {
        let wall = self.elapsed.as_nanos() as u64;
        match &self.io {
            Some(io) => wall.max(io.max_busy_ns),
            None => wall,
        }
    }

    /// Modeled runtime in seconds.
    pub fn modeled_runtime_secs(&self) -> f64 {
        self.modeled_runtime_ns() as f64 / 1e9
    }

    /// Whether the run was I/O-bound under the roofline model.
    pub fn io_bound(&self) -> bool {
        match &self.io {
            Some(io) => io.max_busy_ns > self.elapsed.as_nanos() as u64,
            None => false,
        }
    }

    /// Mean merged-request size in bytes (how well merging worked).
    pub fn mean_issued_bytes(&self) -> f64 {
        if self.issued_requests == 0 {
            0.0
        } else {
            self.bytes_requested as f64 / self.issued_requests as f64
        }
    }

    /// Device bytes read per logically requested byte — the
    /// page-rounding (and cache-miss re-read) waste ratio of
    /// semi-external execution. Small scattered range requests push
    /// this up (each touches a whole page); sequential full-list scans
    /// with warm merging pull it toward — or, with cache hits, below —
    /// 1.0. `None` in in-memory mode or when nothing was requested.
    pub fn page_waste_ratio(&self) -> Option<f64> {
        let io = self.io.as_ref()?;
        if self.bytes_requested == 0 {
            return None;
        }
        Some(io.bytes_read as f64 / self.bytes_requested as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> RunStats {
        RunStats {
            iterations: 3,
            elapsed: Duration::from_millis(10),
            compute_ns: 1,
            wait_ns: 2,
            activations: 3,
            messages_sent: 4,
            vertices_processed: 5,
            engine_requests: 6,
            issued_requests: 3,
            bytes_requested: 300,
            edges_delivered: 75,
            queue_wait_ns: 0,
            shard_msg_bytes: 0,
            io: None,
            cache: None,
            cache_mount: None,
            cancelled: None,
            per_iteration: Vec::new(),
        }
    }

    #[test]
    fn absorb_merges_cancellation_with_explicit_winning() {
        let mut a = base();
        let mut b = base();
        b.cancelled = Some(CancelCause::DeadlineExpired);
        a.absorb(&b);
        assert_eq!(a.cancelled, Some(CancelCause::DeadlineExpired));
        let mut c = base();
        c.cancelled = Some(CancelCause::Cancelled);
        a.absorb(&c);
        assert_eq!(a.cancelled, Some(CancelCause::Cancelled));
        // Sticky once set; a clean shard does not clear it.
        a.absorb(&base());
        assert_eq!(a.cancelled, Some(CancelCause::Cancelled));
    }

    #[test]
    fn absorb_sums_counters_and_maxes_waits() {
        let mut a = base();
        a.wait_ns = 10;
        a.shard_msg_bytes = 100;
        a.per_iteration.push(IterStats {
            frontier: 5,
            wall_ns: 50,
            read_requests: 1,
            bytes_read: 4096,
            bytes_requested: 100,
            issued_requests: 1,
            edges_delivered: 25,
            io_busy_ns: 9,
            scan: false,
            stream_partitions: 0,
            stream_stripes: 0,
        });
        let mut b = base();
        b.iterations = 5;
        b.elapsed = Duration::from_millis(25);
        b.wait_ns = 7;
        b.shard_msg_bytes = 40;
        b.io = Some(IoStatsSnapshot {
            read_requests: 2,
            pages_read: 2,
            bytes_read: 8192,
            write_requests: 0,
            pages_written: 0,
            bytes_written: 0,
            per_ssd_busy_ns: vec![3, 4],
            max_busy_ns: 4,
            total_busy_ns: 7,
            depth_samples: 0,
            depth_sum: 0,
            depth_zero_dips: 0,
            depth_max: 0,
            dedup_hits: 0,
            dedup_bytes: 0,
        });
        b.per_iteration.push(IterStats {
            frontier: 2,
            wall_ns: 80,
            read_requests: 3,
            bytes_read: 4096,
            bytes_requested: 50,
            issued_requests: 2,
            edges_delivered: 10,
            io_busy_ns: 4,
            scan: true,
            stream_partitions: 1,
            stream_stripes: 2,
        });
        a.absorb(&b);
        assert_eq!(a.iterations, 5);
        assert_eq!(a.elapsed, Duration::from_millis(25));
        assert_eq!(a.compute_ns, 2);
        assert_eq!(a.wait_ns, 10, "waits elapse concurrently: max, not sum");
        assert_eq!(a.activations, 6);
        assert_eq!(a.messages_sent, 8);
        assert_eq!(a.vertices_processed, 10);
        assert_eq!(a.engine_requests, 12);
        assert_eq!(a.issued_requests, 6);
        assert_eq!(a.bytes_requested, 600);
        assert_eq!(a.edges_delivered, 150);
        assert_eq!(a.shard_msg_bytes, 140);
        let io = a.io.unwrap();
        assert_eq!(io.read_requests, 2);
        assert_eq!(io.per_ssd_busy_ns, vec![3, 4]);
        // Per-iteration rows merged element-wise.
        assert_eq!(a.per_iteration.len(), 1);
        let row = &a.per_iteration[0];
        assert_eq!(row.frontier, 7);
        assert_eq!(row.wall_ns, 80);
        assert_eq!(row.read_requests, 4);
        assert_eq!(row.edges_delivered, 35);
        assert_eq!(row.io_busy_ns, 9);
        assert!(row.scan);
        assert_eq!(row.stream_stripes, 2);
    }

    #[test]
    fn absorb_extends_with_longer_traces() {
        let mut a = base();
        let mut b = base();
        b.per_iteration.push(IterStats {
            frontier: 1,
            wall_ns: 1,
            read_requests: 0,
            bytes_read: 0,
            bytes_requested: 0,
            issued_requests: 0,
            edges_delivered: 0,
            io_busy_ns: 0,
            scan: false,
            stream_partitions: 0,
            stream_stripes: 0,
        });
        a.absorb(&b);
        assert_eq!(a.per_iteration.len(), 1);
        assert_eq!(a.per_iteration[0].frontier, 1);
    }

    #[test]
    fn modeled_runtime_in_memory_is_wall() {
        let s = base();
        assert_eq!(s.modeled_runtime_ns(), 10_000_000);
        assert!(!s.io_bound());
    }

    #[test]
    fn modeled_runtime_takes_io_critical_path() {
        let mut s = base();
        s.io = Some(IoStatsSnapshot {
            read_requests: 1,
            pages_read: 1,
            bytes_read: 4096,
            write_requests: 0,
            pages_written: 0,
            bytes_written: 0,
            per_ssd_busy_ns: vec![50_000_000],
            max_busy_ns: 50_000_000,
            total_busy_ns: 50_000_000,
            depth_samples: 0,
            depth_sum: 0,
            depth_zero_dips: 0,
            depth_max: 0,
            dedup_hits: 0,
            dedup_bytes: 0,
        });
        assert_eq!(s.modeled_runtime_ns(), 50_000_000);
        assert!(s.io_bound());
    }

    #[test]
    fn mean_issued_bytes() {
        let s = base();
        assert_eq!(s.mean_issued_bytes(), 100.0);
    }

    #[test]
    fn page_waste_ratio_needs_io() {
        let mut s = base();
        assert_eq!(s.page_waste_ratio(), None, "in-memory runs have no io");
        s.io = Some(IoStatsSnapshot {
            read_requests: 1,
            pages_read: 1,
            bytes_read: 4096,
            write_requests: 0,
            pages_written: 0,
            bytes_written: 0,
            per_ssd_busy_ns: vec![0],
            max_busy_ns: 0,
            total_busy_ns: 0,
            depth_samples: 0,
            depth_sum: 0,
            depth_zero_dips: 0,
            depth_max: 0,
            dedup_hits: 0,
            dedup_bytes: 0,
        });
        // 300 logical bytes cost one 4096-byte page.
        let ratio = s.page_waste_ratio().unwrap();
        assert!((ratio - 4096.0 / 300.0).abs() < 1e-9);
        s.bytes_requested = 0;
        assert_eq!(s.page_waste_ratio(), None);
    }
}
