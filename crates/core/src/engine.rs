//! The iteration driver: partitions, schedulers, the asynchronous
//! issue/poll loop, work stealing, and the completion-counted
//! pipeline (§3.3, §3.6–§3.8).
//!
//! Each iteration has a build step (collect the partition's active
//! vertices, decide the scan mode), a compute step, and a boundary
//! (message delivery, iteration-end callbacks, frontier flip, stats).
//! Under the default *pipelined* scheduler the compute step runs
//! without any intra-iteration barrier: workers issue merged covers
//! into [`SemIo`] without waiting for replies, resolve completions
//! into per-worker ready deques, and execute `run_on_vertex`
//! deliveries the moment pages land — their own, or stolen from the
//! shared injector and other workers' deques when their device queue
//! is ahead of their CPU. Two counters define the iteration's end
//! instead of a barrier: every worker has exhausted claiming
//! (`claims_done == workers`) and every accepted edge request has
//! been delivered and its follow-on requests absorbed
//! (`obligations == 0`). Only then do workers synchronize for the
//! boundary phases. A per-vertex busy bitmap serializes callbacks:
//! any worker may run a vertex's delivery, but never two at once, so
//! `SharedStates`' exclusivity contract survives stealing.
//!
//! `EngineConfig::pipeline = false` restores the historical lock-step
//! loop — one barrier per vertical pass, compute fully drained before
//! anything else proceeds — kept so benchmarks and equivalence
//! properties can diff the two schedulers; results are bit-identical.

use fg_types::sync::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Counter, Ordering};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use fg_format::{GraphIndex, ShardedIndex, SliceDecode};
use fg_graph::{DeltaView, Graph};
use fg_safs::{CacheStats, Completion, IoSession, PageSpan, Safs, ShardSet};
use fg_types::{
    AtomicBitmap, Bitmap, CancelCause, CancelToken, EdgeDir, FgError, Result, VertexId,
};

use crate::config::{EngineConfig, ScanMode, SchedulerKind};
use crate::context::{
    DegreeSource, EdgeRequest, RunShared, ShardView, VertexContext, WorkerScratch,
};
use crate::merge::{
    coalesce_stream_around, merge_requests, subtract_inflight, MergedReq, PageRange, RangeReq,
};
use crate::messages::{Batch, MessageBoard, NotifyBoard, ShardPacket};
use crate::partition::PartitionMap;
use crate::program::VertexProgram;
use crate::shard::ShardLink;
use crate::state::SharedStates;
use crate::stats::{IterStats, RunStats};
use crate::vertex::PageVertex;

/// Initial activation of a run.
#[derive(Debug, Clone)]
pub enum Init {
    /// Every vertex is active in iteration 0 (PageRank, WCC, ...).
    All,
    /// Only the given vertices are active (BFS, BC, SSSP sources).
    Seeds(Vec<VertexId>),
}

/// The engine never owns its backend exclusively: the in-memory arm
/// borrows the graph, and the semi-external arm borrows the SAFS
/// mount and shares the (immutable) index behind an `Arc`. Sharing
/// the index is what lets many engines — and through them, the
/// concurrent queries of [`crate::GraphService`] — run against one
/// mount without duplicating per-vertex location tables.
enum Backend<'g> {
    Mem(&'g Graph),
    Sem {
        safs: &'g Safs,
        index: Arc<GraphIndex>,
    },
    /// One shard of a sharded run: this engine owns the contiguous
    /// global id range `index.shard_range(me)`, reads its own shard
    /// image through its own mount (`set.shard(me)`), and reaches
    /// foreign shards only through the router (synchronous reads of
    /// foreign subjects) and the shard bus (messages/activations).
    Shard {
        set: &'g ShardSet,
        index: Arc<ShardedIndex>,
        me: usize,
    },
}

/// The FlashGraph engine over one graph, in semi-external-memory or
/// in-memory mode. See the crate docs for an end-to-end example.
pub struct Engine<'g> {
    backend: Backend<'g>,
    cfg: EngineConfig,
    n: usize,
    /// Cooperative cancellation, polled at iteration boundaries
    /// (worker 0, phase D). `None` — the common case — costs nothing.
    cancel: Option<CancelToken>,
    /// Pinned delta overlay (uncompacted ingest) merged into every
    /// delivery. `None` — the frozen-image case — is free.
    deltas: Option<Arc<DeltaView>>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("vertices", &self.n)
            .field(
                "mode",
                &match self.backend {
                    Backend::Mem(_) => "in-memory",
                    Backend::Sem { .. } => "semi-external",
                    Backend::Shard { .. } => "shard",
                },
            )
            .finish_non_exhaustive()
    }
}

impl<'g> Engine<'g> {
    /// An in-memory engine (the paper's FG-mem baseline): edge lists
    /// come from the CSR, everything else — scheduler, partitioning,
    /// messages — is identical.
    pub fn new_mem(graph: &'g Graph, cfg: EngineConfig) -> Self {
        Engine {
            n: graph.num_vertices(),
            backend: Backend::Mem(graph),
            cfg,
            cancel: None,
            deltas: None,
        }
    }

    /// A semi-external-memory engine over a SAFS-mounted graph image
    /// and its loaded [`GraphIndex`].
    pub fn new_sem(safs: &'g Safs, index: GraphIndex, cfg: EngineConfig) -> Self {
        Self::new_sem_shared(safs, Arc::new(index), cfg)
    }

    /// Like [`Engine::new_sem`] but sharing an already-`Arc`ed index —
    /// the constructor [`crate::GraphService`] uses so every
    /// concurrent query reads one index instead of cloning it.
    pub fn new_sem_shared(safs: &'g Safs, index: Arc<GraphIndex>, cfg: EngineConfig) -> Self {
        Engine {
            n: index.num_vertices(),
            backend: Backend::Sem { safs, index },
            cfg,
            cancel: None,
            deltas: None,
        }
    }

    /// One shard engine of a sharded run (`n` stays the *global*
    /// vertex count: state, frontiers, and every id a program sees
    /// are global; only collection and I/O are windowed to the owned
    /// range). Constructed exclusively by [`crate::ShardedEngine`],
    /// which provides the bus and barrier group the run needs.
    pub(crate) fn new_shard(
        set: &'g ShardSet,
        index: Arc<ShardedIndex>,
        me: usize,
        cfg: EngineConfig,
    ) -> Self {
        assert_eq!(set.len(), index.num_shards(), "one mount per shard");
        assert!(me < index.num_shards());
        Engine {
            n: index.num_vertices(),
            backend: Backend::Shard { set, index, me },
            cfg,
            cancel: None,
            deltas: None,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// A new engine over the same backend with a different
    /// configuration (engines are stateless between runs and the
    /// semi-external index is `Arc`-shared, so this is cheap; used by
    /// apps that need per-run iteration caps or schedulers).
    pub fn reconfigured(&self, cfg: EngineConfig) -> Engine<'g> {
        Engine {
            backend: match &self.backend {
                Backend::Mem(g) => Backend::Mem(g),
                Backend::Sem { safs, index } => Backend::Sem {
                    safs,
                    index: Arc::clone(index),
                },
                Backend::Shard { set, index, me } => Backend::Shard {
                    set,
                    index: Arc::clone(index),
                    me: *me,
                },
            },
            cfg,
            n: self.n,
            cancel: self.cancel.clone(),
            deltas: self.deltas.clone(),
        }
    }

    /// Attaches a cancellation token: worker 0 polls it at every
    /// iteration boundary (phase D, where all workers are quiesced and
    /// every I/O pipeline is drained), so a fired token stops the run
    /// at the *next* boundary with all shared state — sessions, cache,
    /// busy bits — in a consistent between-iterations configuration.
    /// The run then errors with [`FgError::Cancelled`] or
    /// [`FgError::DeadlineExpired`].
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a pinned delta view: every delivery merges the view's
    /// ops for the subject vertex with its on-SSD (or in-memory) list,
    /// and `ctx.degree` reports merged degrees. The view is immutable —
    /// concurrent ingest into the log it came from never changes this
    /// run's results (snapshot isolation; see [`fg_graph::DeltaLog`]).
    /// An empty view is dropped so the frozen-image fast paths stay.
    #[must_use]
    pub fn with_deltas(mut self, view: Arc<DeltaView>) -> Self {
        self.deltas = (!view.is_empty()).then_some(view);
        self
    }

    /// Executes `program` until no vertex is active and no message is
    /// pending, returning the final per-vertex states and statistics.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::VertexOutOfRange`] for bad seeds; I/O errors
    /// propagate from SAFS.
    pub fn run<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
    ) -> Result<(Vec<P::State>, RunStats)> {
        let mut states_vec = Vec::with_capacity(self.n);
        for i in 0..self.n {
            states_vec.push(program.init_state(VertexId::from_index(i)));
        }
        self.run_with_states(program, init, states_vec)
    }

    /// Like [`Engine::run`] but resumes from caller-provided states —
    /// how multi-phase algorithms (betweenness centrality's forward
    /// BFS + backward accumulation) carry results between phases.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::VertexOutOfRange`] for bad seeds or a state
    /// vector of the wrong length.
    pub fn run_with_states<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
        states_vec: Vec<P::State>,
    ) -> Result<(Vec<P::State>, RunStats)> {
        if states_vec.len() != self.n {
            return Err(FgError::InvalidRequest(format!(
                "state vector has {} entries for {} vertices",
                states_vec.len(),
                self.n
            )));
        }
        let states = SharedStates::new(states_vec);
        let stats = self.run_inner(program, init, &states, None)?;
        if let Some(cause) = stats.cancelled {
            // Partial states are consistent (the stop happened at an
            // iteration boundary) but incomplete; the contract is an
            // error, mirroring what the serving layer reports.
            return Err(cause.into());
        }
        Ok((states.into_inner(), stats))
    }

    /// The run body shared by single-engine and sharded execution.
    /// `states` is the *global* state vector; in a sharded run every
    /// shard engine runs against the same `SharedStates` (each only
    /// ever touches states of vertices it owns, so the exclusivity
    /// discipline extends across engines). `link` carries the shard
    /// bus and barrier group, present exactly when the backend is
    /// [`Backend::Shard`].
    pub(crate) fn run_inner<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
        states: &SharedStates<P::State>,
        link: Option<&ShardLink<'_, P::Msg>>,
    ) -> Result<RunStats> {
        let n = self.n;
        debug_assert_eq!(
            matches!(self.backend, Backend::Shard { .. }),
            link.is_some(),
            "shard backends run with a link, others without"
        );
        if states.len() != n {
            return Err(FgError::InvalidRequest(format!(
                "state vector has {} entries for {} vertices",
                states.len(),
                n
            )));
        }
        let start = Instant::now();
        // The id window this engine collects and computes: the whole
        // graph, or — for one shard of a sharded run — its owned
        // contiguous range. Everything indexed by vertex id (states,
        // frontiers, busy bits) stays global-length either way.
        let (lo, hi) = match &self.backend {
            Backend::Shard { index, me, .. } => {
                let r = index.shard_range(*me);
                (r.start as usize, r.end as usize)
            }
            _ => (0, n),
        };

        let frontiers = Frontiers::new(n);
        match &init {
            Init::All => {
                for i in lo..hi {
                    frontiers.cur().set(VertexId::from_index(i));
                }
            }
            Init::Seeds(seeds) => {
                for &s in seeds {
                    if s.index() >= n {
                        return Err(FgError::VertexOutOfRange {
                            vertex: s.0 as u64,
                            num_vertices: n as u64,
                        });
                    }
                    // Every shard of a sharded run receives the same
                    // seed list; each seeds only what it owns.
                    if (lo..hi).contains(&s.index()) {
                        frontiers.cur().set(s);
                    }
                }
            }
        }

        let nthreads = self.cfg.threads().max(1);
        let r = self.cfg.resolve_range_shift(hi - lo);
        let pmap = PartitionMap::new_window(lo, hi, nthreads, r);
        let vparts = self.cfg.vertical_parts.max(1);
        let shared = RunShared {
            n,
            vparts,
            degrees: match &self.backend {
                Backend::Mem(g) => DegreeSource::Graph(g),
                Backend::Sem { index, .. } => DegreeSource::Index(Arc::clone(index)),
                Backend::Shard { index, .. } => DegreeSource::Sharded(Arc::clone(index)),
            },
            pmap: pmap.clone(),
            max_request_edges: self.cfg.max_request_edges,
            deltas: self.deltas.clone(),
            shard: match &self.backend {
                Backend::Shard { index, me, .. } => Some(ShardView {
                    me: *me,
                    lo: lo as u32,
                    hi: hi as u32,
                    index: Arc::clone(index),
                }),
                _ => None,
            },
        };
        let board: MessageBoard<P::Msg> = MessageBoard::new(nthreads);
        let notify = NotifyBoard::new(nthreads);
        let active = ActiveSet::new(nthreads, vparts as usize);
        // Per-partition streaming decisions of the current iteration:
        // written by each owner in phase A (before the barrier), read
        // by stealers in phase B. A streamed partition's bytes arrive
        // via its owner's sweep, so stealing from it would duplicate
        // device reads.
        let stream_flags: Vec<AtomicBool> = (0..nthreads).map(|_| AtomicBool::new(false)).collect();
        let barrier = Barrier::new(nthreads);
        let control = Control::default();
        let counters = Counters::default();
        let ready_pool = ReadyPool::new(nthreads);
        // Per-vertex callback locks of the pipelined scheduler: a
        // claim or delivery holds the vertex's bit for the duration
        // of its callback (and any inline cascade), so two workers
        // never run the same vertex concurrently even when stealing
        // moves deliveries across threads.
        let busy = AtomicBitmap::new(n);
        // Per-run cache scope: with many queries sharing one mount, a
        // before/after delta of the global counters would book every
        // tenant's traffic to this run. The scope records only the
        // lookups this run's own sessions performed.
        let cache_scope = match &self.backend {
            Backend::Sem { .. } | Backend::Shard { .. } => Some(Arc::new(CacheStats::default())),
            Backend::Mem(_) => None,
        };
        // A shard engine's device/cache deltas cover its *own* mount
        // only. That is exact for algorithms that request their own
        // lists (everything but TC-style foreign reads, which land on
        // the subject owner's array); summed across shards the deltas
        // are exact regardless, since each array has one owner.
        let (io_before, cache_before) = match &self.backend {
            Backend::Sem { safs, .. } => (
                Some(safs.array().stats().snapshot()),
                Some(safs.cache_stats()),
            ),
            Backend::Shard { set, me, .. } => (
                Some(set.shard(*me).array().stats().snapshot()),
                Some(set.shard(*me).cache_stats()),
            ),
            Backend::Mem(_) => (None, None),
        };
        let per_iteration: parking_lot::Mutex<Vec<IterStats>> = parking_lot::Mutex::new(Vec::new());

        if n > 0 {
            std::thread::scope(|scope| {
                for w in 0..nthreads {
                    let worker = WorkerEnv {
                        w,
                        engine: self,
                        program,
                        states,
                        shared: &shared,
                        frontiers: &frontiers,
                        board: &board,
                        notify: &notify,
                        active: &active,
                        stream_flags: &stream_flags,
                        barrier: &barrier,
                        control: &control,
                        counters: &counters,
                        ready: &ready_pool,
                        busy: &busy,
                        cache_scope: &cache_scope,
                        per_iteration: &per_iteration,
                        link,
                    };
                    scope.spawn(move || worker.run_loop());
                }
            });
        }

        let elapsed = start.elapsed();
        let (io, cache_mount) = match &self.backend {
            Backend::Sem { safs, .. } => (
                Some(
                    safs.array()
                        .stats()
                        .snapshot()
                        .delta_since(&io_before.unwrap()),
                ),
                Some(safs.cache_stats().delta_since(&cache_before.unwrap())),
            ),
            Backend::Shard { set, me, .. } => (
                Some(
                    set.shard(*me)
                        .array()
                        .stats()
                        .snapshot()
                        .delta_since(&io_before.unwrap()),
                ),
                Some(
                    set.shard(*me)
                        .cache_stats()
                        .delta_since(&cache_before.unwrap()),
                ),
            ),
            Backend::Mem(_) => (None, None),
        };
        let stats = RunStats {
            // ordering: read after every worker thread has joined.
            iterations: control.iteration.load(Ordering::Relaxed),
            elapsed,
            compute_ns: counters.compute_ns.get(),
            wait_ns: counters.wait_ns.get(),
            activations: counters.activations.get(),
            messages_sent: board.total_sent(),
            vertices_processed: counters.vertices.get(),
            engine_requests: counters.engine_requests.get(),
            issued_requests: counters.issued_requests.get(),
            bytes_requested: counters.bytes_requested.get(),
            edges_delivered: counters.edges_delivered.get(),
            queue_wait_ns: 0,
            shard_msg_bytes: counters.shard_msg_bytes.get(),
            io,
            cache: cache_scope.as_ref().map(|s| s.snapshot()),
            cache_mount,
            // ordering: read after every worker thread has joined.
            cancelled: match control.cancel_kind.load(Ordering::Relaxed) {
                1 => Some(CancelCause::Cancelled),
                2 => Some(CancelCause::DeadlineExpired),
                _ => None,
            },
            per_iteration: per_iteration.into_inner(),
        };
        Ok(stats)
    }
}

/// The engine surface applications program against — implemented by
/// the single [`Engine`] (in-memory, semi-external) and the sharded
/// [`crate::ShardedEngine`], so every algorithm in `fg_apps` runs on
/// any of the three backends unchanged, with bit-identical results.
pub trait GraphEngine {
    /// Number of vertices (global, for a sharded engine).
    fn num_vertices(&self) -> usize;

    /// The configuration runs execute under.
    fn config(&self) -> &EngineConfig;

    /// The same backend under a different configuration (cheap; see
    /// [`Engine::reconfigured`]).
    #[must_use]
    fn reconfigured(&self, cfg: EngineConfig) -> Self
    where
        Self: Sized;

    /// Executes `program` to convergence. See [`Engine::run`].
    ///
    /// # Errors
    ///
    /// Returns [`FgError::VertexOutOfRange`] for bad seeds; I/O errors
    /// propagate from SAFS.
    fn run<P: VertexProgram>(&self, program: &P, init: Init) -> Result<(Vec<P::State>, RunStats)>;

    /// Executes `program` resuming from caller-provided states. See
    /// [`Engine::run_with_states`].
    ///
    /// # Errors
    ///
    /// As [`GraphEngine::run`], plus [`FgError::InvalidRequest`] for a
    /// state vector of the wrong length.
    fn run_with_states<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
        states: Vec<P::State>,
    ) -> Result<(Vec<P::State>, RunStats)>;
}

impl GraphEngine for Engine<'_> {
    fn num_vertices(&self) -> usize {
        Engine::num_vertices(self)
    }

    fn config(&self) -> &EngineConfig {
        Engine::config(self)
    }

    fn reconfigured(&self, cfg: EngineConfig) -> Self {
        Engine::reconfigured(self, cfg)
    }

    fn run<P: VertexProgram>(&self, program: &P, init: Init) -> Result<(Vec<P::State>, RunStats)> {
        Engine::run(self, program, init)
    }

    fn run_with_states<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
        states: Vec<P::State>,
    ) -> Result<(Vec<P::State>, RunStats)> {
        Engine::run_with_states(self, program, init, states)
    }
}

/// Double-buffered frontier bitmaps, flipped at each barrier.
struct Frontiers {
    maps: [AtomicBitmap; 2],
    flip: AtomicUsize,
}

impl Frontiers {
    fn new(n: usize) -> Self {
        Frontiers {
            maps: [AtomicBitmap::new(n), AtomicBitmap::new(n)],
            flip: AtomicUsize::new(0),
        }
    }

    fn cur(&self) -> &AtomicBitmap {
        &self.maps[self.flip.load(Ordering::Acquire) & 1]
    }

    fn next(&self) -> &AtomicBitmap {
        &self.maps[(self.flip.load(Ordering::Acquire) + 1) & 1]
    }

    /// Makes `next` current and clears the old frontier. Called by
    /// one thread between barriers.
    fn swap(&self) {
        let old = self.flip.fetch_add(1, Ordering::AcqRel) & 1;
        self.maps[old].clear_all();
    }
}

/// Per-partition active lists plus per-pass steal cursors.
///
/// Lists are written by their owner during the build phase and read
/// by every worker during the compute phase; the two phases are
/// separated by a barrier (same discipline as `SharedStates`).
struct ActiveSet {
    lists: Vec<UnsafeCell<Vec<VertexId>>>,
    cursors: Vec<Vec<AtomicUsize>>,
}

// SAFETY: see the struct docs — phase discipline plus barriers.
unsafe impl Sync for ActiveSet {}

impl ActiveSet {
    fn new(parts: usize, vparts: usize) -> Self {
        ActiveSet {
            lists: (0..parts).map(|_| UnsafeCell::new(Vec::new())).collect(),
            cursors: (0..parts)
                .map(|_| (0..vparts).map(|_| AtomicUsize::new(0)).collect())
                .collect(),
        }
    }

    /// Owner installs its list and rewinds its cursors (build phase).
    fn install(&self, part: usize, list: Vec<VertexId>) {
        // SAFETY: only the owner writes, before the phase barrier.
        unsafe {
            *self.lists[part].get() = list;
        }
        for c in &self.cursors[part] {
            // ordering: the phase barrier publishes the reset.
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Claims the next vertex of `part` in pass `vp`, if any.
    fn claim(&self, part: usize, vp: usize) -> Option<VertexId> {
        // SAFETY: compute phase — lists are read-only.
        let list = unsafe { &*self.lists[part].get() };
        // ordering: racy fast-path check; the RMW below is authoritative.
        if self.cursors[part][vp].load(Ordering::Relaxed) >= list.len() {
            return None;
        }
        // ordering: a claim needs only RMW atomicity — the list being
        // claimed from was published by the phase barrier, not by the
        // cursor.
        let c = self.cursors[part][vp].fetch_add(1, Ordering::Relaxed);
        list.get(c).copied()
    }
}

/// The pipelined scheduler's cross-worker delivery pool and its
/// completion counters.
///
/// Resolved [`ReadyVertex`] deliveries land in the resolving worker's
/// deque, where the owner pops them LIFO (the spans are cache-warm)
/// and other workers steal them FIFO when their own device queue is
/// ahead of their CPU. The shared injector takes hand-offs: a stolen
/// delivery whose requester is busy on another worker goes there
/// instead of blocking the thief.
///
/// Two counters replace the compute-phase barrier. `obligations`
/// counts edge requests accepted into the I/O layer whose delivery —
/// including absorbing the follow-on requests the callback queues —
/// has not finished; it is incremented *before* a request is
/// enqueued and decremented *after* its delivery returns, so it can
/// only read zero when no work is hidden in flight. `claims_done`
/// counts workers that have exhausted claiming for the current
/// iteration (cursor exhaustion is permanent within an iteration, so
/// the count is monotonic). The iteration's compute is over exactly
/// when `claims_done == workers && obligations == 0`.
struct ReadyPool {
    injector: parking_lot::Mutex<VecDeque<ReadyVertex>>,
    deques: Vec<parking_lot::Mutex<VecDeque<ReadyVertex>>>,
    obligations: AtomicU64,
    claims_done: AtomicUsize,
}

impl ReadyPool {
    fn new(workers: usize) -> Self {
        ReadyPool {
            injector: parking_lot::Mutex::new(VecDeque::new()),
            deques: (0..workers)
                .map(|_| parking_lot::Mutex::new(VecDeque::new()))
                .collect(),
            obligations: AtomicU64::new(0),
            claims_done: AtomicUsize::new(0),
        }
    }

    /// Moves freshly resolved deliveries into worker `w`'s deque.
    fn push_local(&self, w: usize, items: &mut Vec<ReadyVertex>) {
        self.deques[w].lock().extend(items.drain(..));
    }

    /// Hands a delivery whose requester is busy elsewhere to the
    /// injector, where any worker (including the busy one) picks it
    /// up once the conflict clears.
    fn push_injector(&self, r: ReadyVertex) {
        self.injector.lock().push_back(r);
    }

    /// Next delivery for worker `w`: own deque (LIFO), then the
    /// injector, then stealing from the other workers (FIFO).
    fn pop(&self, w: usize) -> Option<ReadyVertex> {
        if let Some(r) = self.deques[w].lock().pop_back() {
            return Some(r);
        }
        if let Some(r) = self.injector.lock().pop_front() {
            return Some(r);
        }
        let n = self.deques.len();
        for k in 1..n {
            if let Some(r) = self.deques[(w + k) % n].lock().pop_front() {
                return Some(r);
            }
        }
        None
    }

    /// Worker 0 rewinds the claim count between iterations (phase D,
    /// where every other worker is parked at the barrier).
    fn begin_iteration(&self) {
        // ordering: Relaxed — worker 0 runs this in phase D while
        // every other worker is parked at the barrier, which is the
        // happens-before edge; there is no concurrent accessor.
        debug_assert_eq!(self.obligations.load(Ordering::Relaxed), 0);
        debug_assert!(self.injector.lock().is_empty());
        // ordering: Relaxed — same phase-D argument; the barrier
        // publishes the reset to the next iteration's claimants.
        self.claims_done.store(0, Ordering::Relaxed);
    }
}

/// Cross-worker run control, owned by worker 0 at barriers.
#[derive(Default)]
struct Control {
    iteration: AtomicU64Like,
    stop: AtomicBool,
    /// Why the run stopped early: 0 = it didn't, 1 = cancelled,
    /// 2 = deadline expired. Written by worker 0 in phase D, read
    /// after the join.
    cancel_kind: AtomicU32,
}

/// `AtomicU32` wrapper defaulting to zero (keeps `Control` derivable).
#[derive(Default)]
struct AtomicU64Like(AtomicU32);

impl AtomicU64Like {
    fn load(&self, o: Ordering) -> u32 {
        self.0.load(o)
    }
    fn store(&self, v: u32, o: Ordering) {
        self.0.store(v, o)
    }
}

/// Per-run statistics, all relaxed [`Counter`]s: exact reads happen
/// only at quiesced boundaries (worker-0 phase D) or after the join,
/// where the barrier/join provides the happens-before edge.
#[derive(Default)]
struct Counters {
    compute_ns: Counter,
    wait_ns: Counter,
    activations: Counter,
    vertices: Counter,
    engine_requests: Counter,
    issued_requests: Counter,
    bytes_requested: Counter,
    edges_delivered: Counter,
    /// Serialized bytes of cross-shard packets this engine posted.
    shard_msg_bytes: Counter,
    /// Worker-iterations executed as streaming scans.
    stream_partitions: Counter,
    /// Stride covers submitted by the streaming path.
    stream_stripes: Counter,
}

/// Everything one worker thread needs, borrowed from the run.
struct WorkerEnv<'r, 'g, P: VertexProgram> {
    w: usize,
    engine: &'r Engine<'g>,
    program: &'r P,
    states: &'r SharedStates<P::State>,
    shared: &'r RunShared<'r>,
    frontiers: &'r Frontiers,
    board: &'r MessageBoard<P::Msg>,
    notify: &'r NotifyBoard,
    active: &'r ActiveSet,
    stream_flags: &'r [AtomicBool],
    barrier: &'r Barrier,
    control: &'r Control,
    counters: &'r Counters,
    ready: &'r ReadyPool,
    busy: &'r AtomicBitmap,
    cache_scope: &'r Option<Arc<CacheStats>>,
    per_iteration: &'r parking_lot::Mutex<Vec<IterStats>>,
    /// The shard bus + cross-shard barrier group, in sharded runs.
    link: Option<&'r ShardLink<'r, P::Msg>>,
}

/// How far a worker may send messages before flushing buffers to the
/// board (the paper's bundling threshold).
const MSG_FLUSH_FANOUT: u64 = 16 * 1024;

/// Worker 0's counter snapshot at an iteration boundary, for the
/// per-iteration deltas of [`IterStats`]. Snapshots are only taken at
/// quiesced points — after a barrier every worker has passed with its
/// I/O pipeline drained — and chain delta-to-delta, so per-iteration
/// stats sum exactly to the run totals even under work stealing.
struct IterSnapshot {
    io: Option<fg_ssdsim::IoStatsSnapshot>,
    bytes_requested: u64,
    issued_requests: u64,
    edges_delivered: u64,
    stream_partitions: u64,
    stream_stripes: u64,
}

impl<P: VertexProgram> WorkerEnv<'_, '_, P> {
    fn run_loop(&self) {
        let shards = self
            .shared
            .shard
            .as_ref()
            .map(|sv| sv.index.num_shards())
            .unwrap_or(0);
        let mut scratch: WorkerScratch<P::Msg> =
            WorkerScratch::new(self.shared.pmap.num_partitions(), shards);
        let mut io = match &self.engine.backend {
            Backend::Sem { safs, .. } => {
                IoDriver::Sem(SemIo::new(safs.session_scoped(self.cache_scope.clone())))
            }
            Backend::Shard { set, me, .. } => {
                // The shard's index speaks local ids; the session
                // localizes owned subjects by the window base.
                let base = self.shared.shard.as_ref().expect("shard view").lo;
                IoDriver::Sem(SemIo::with_base(
                    set.shard(*me).session_scoped(self.cache_scope.clone()),
                    base,
                ))
            }
            Backend::Mem(_) => IoDriver::Mem,
        };
        let mut seen_notify = Bitmap::new(self.shared.n);
        // Worker 0's counter snapshot at the last recorded boundary.
        // Taken here — before any worker can pass the first phase-A
        // barrier, hence before any I/O — and advanced only at
        // quiesced phase-D boundaries, so the per-iteration deltas
        // chain without gaps or double counting.
        let mut boundary = self.boundary_snapshot();
        loop {
            let iter = self.control.iteration.load(Ordering::Acquire);
            let iter_start = Instant::now();
            let frontier_count = if self.w == 0 {
                self.frontiers.cur().count_ones() as u64
            } else {
                0
            };

            // Phase A: build this partition's ordered active list and
            // decide this iteration's execution mode from its density.
            let mut list = self.collect_active();
            let stream = self.decide_stream(list.len());
            if stream {
                // A sweep reads the extent front to back; processing
                // in id order keeps buffered requests aligned with
                // the covers, so the scheduler is overridden.
                self.counters.stream_partitions.inc();
            } else {
                self.apply_scheduler(iter, &mut list);
            }
            self.stream_flags[self.w].store(stream, Ordering::Release);
            self.active.install(self.w, list);
            self.barrier.wait();

            // Compute phase. The pipelined scheduler runs every
            // vertical pass in one completion-counted sweep with no
            // intra-iteration barrier — the device queue never drains
            // between passes — and synchronizes once, after quiesce,
            // so every worker's message flush is on the boards before
            // any worker starts phase C's drains. The barrier-per-pass
            // loop is the historical lock-step discipline, kept for
            // scheduler-equivalence diffing.
            if self.engine.cfg.pipeline {
                let wait_before = self.counters.wait_ns.get();
                let t = Instant::now();
                self.compute_pipelined(iter, &mut scratch, &mut io, stream);
                self.flush_boards(&mut scratch);
                let busy = t.elapsed().as_nanos() as u64;
                let waited = self.counters.wait_ns.get() - wait_before;
                self.counters.compute_ns.add(busy.saturating_sub(waited));
                self.barrier.wait();
            } else {
                // Phase B: vertical passes of compute + I/O. Buffered
                // messages and notifications must be on the boards
                // before the barrier so phase C's drains see them.
                for vp in 0..self.shared.vparts {
                    let wait_before = self.counters.wait_ns.get();
                    let t = Instant::now();
                    self.compute_pass(iter, vp, &mut scratch, &mut io, stream);
                    self.flush_boards(&mut scratch);
                    let busy = t.elapsed().as_nanos() as u64;
                    let waited = self.counters.wait_ns.get() - wait_before;
                    self.counters.compute_ns.add(busy.saturating_sub(waited));
                    self.barrier.wait();
                }
            }

            // Cross-shard sync 1: every shard has finished compute, so
            // every foreign packet of this iteration is on the bus.
            // Worker 0 rendezvouses with the peer shards, then drains
            // this shard's lane onto the local boards/frontier — so a
            // foreign message is delivered in this iteration's phase C,
            // exactly when a local send would have been.
            if let Some(link) = self.link {
                if self.w == 0 {
                    link.group.rendezvous();
                    self.drain_shard_bus(link);
                }
                self.barrier.wait();
            }

            // Phase C: message delivery + iteration-end callbacks for
            // this partition.
            let t = Instant::now();
            self.deliver_messages(iter, &mut scratch, &mut io);
            self.apply_iteration_end(iter, &mut scratch, &mut io, &mut seen_notify);
            self.flush_boards(&mut scratch);
            self.counters.compute_ns.add(t.elapsed().as_nanos() as u64);
            self.barrier.wait();

            // Phase D: worker 0 decides continuation and swaps. The
            // phase-C barrier above quiesced every worker (all I/O
            // pipelines drained), so recording here attributes every
            // byte to the iteration that read it even when stealing
            // moved the work between partitions.
            if self.w == 0 {
                // Cross-shard sync 2: collect packets posted during
                // phase C (they stay pending into the next iteration,
                // like a local barrier-phase send), then AND-reduce
                // the quiet votes so every shard stops on the same
                // iteration — an active peer keeps idle shards in
                // lockstep running empty iterations.
                if let Some(link) = self.link {
                    link.group.rendezvous();
                    self.drain_shard_bus(link);
                }
                let next_count = self.frontiers.next().count_ones() as u64;
                let quiet = next_count == 0 && self.board.pending() == 0;
                // Cancellation is voted exactly like termination: a
                // shard whose token fired votes "stop" into the same
                // AND-reduction, so either every shard stops on this
                // boundary or (when a deadline races the vote) all
                // continue one more iteration and stop on the next —
                // no shard ever blocks on a peer that walked away.
                let cancel_hit = match self.engine.cancel.as_ref().and_then(|t| t.cause()) {
                    None => 0u32,
                    Some(CancelCause::Cancelled) => 1,
                    Some(CancelCause::DeadlineExpired) => 2,
                };
                let stop_vote = quiet || cancel_hit != 0;
                let done = match self.link {
                    Some(link) => link.group.vote(stop_vote),
                    None => stop_vote,
                } || iter + 1 >= self.engine.cfg.max_iterations;
                if done && cancel_hit != 0 && !quiet {
                    // A run that was quiet anyway converged; only an
                    // actually-cut-short run reports cancellation.
                    let kind = &self.control.cancel_kind;
                    // ordering: Relaxed — written while every other
                    // worker is parked at the barrier, read after the
                    // thread-scope join; both edges synchronize.
                    kind.store(cancel_hit, Ordering::Relaxed);
                }
                self.record_iteration(frontier_count, iter_start, &mut boundary);
                self.frontiers.swap();
                self.ready.begin_iteration();
                self.control.stop.store(done, Ordering::Release);
                self.control.iteration.store(iter + 1, Ordering::Release);
            }
            self.barrier.wait();
            if self.control.stop.load(Ordering::Acquire) {
                break;
            }
        }
        self.counters.activations.add(scratch.activations);
        self.counters.engine_requests.add(scratch.engine_requests);
    }

    /// Worker 0's snapshot of the request-pipeline counters, taken
    /// only at quiesced boundaries (before the first phase-A barrier
    /// and in phase D, where the phase-C barrier has drained every
    /// worker's pipeline). `None` on other workers.
    fn boundary_snapshot(&self) -> Option<IterSnapshot> {
        if self.w != 0 {
            return None;
        }
        let io = match &self.engine.backend {
            Backend::Sem { safs, .. } => Some(safs.array().stats().snapshot()),
            Backend::Shard { set, me, .. } => Some(set.shard(*me).array().stats().snapshot()),
            Backend::Mem(_) => None,
        };
        Some(IterSnapshot {
            io,
            bytes_requested: self.counters.bytes_requested.get(),
            issued_requests: self.counters.issued_requests.get(),
            edges_delivered: self.counters.edges_delivered.get(),
            stream_partitions: self.counters.stream_partitions.get(),
            stream_stripes: self.counters.stream_stripes.get(),
        })
    }

    /// Records the finished iteration's stats as the delta since the
    /// previous boundary, then advances the boundary to now — so the
    /// per-iteration rows partition the run totals exactly.
    fn record_iteration(
        &self,
        frontier: u64,
        iter_start: Instant,
        boundary: &mut Option<IterSnapshot>,
    ) {
        let now = self.boundary_snapshot().expect("only worker 0 records");
        let before = boundary.take().expect("worker 0 always snapshots");
        let (read_requests, bytes_read, io_busy_ns) = match (&now.io, &before.io) {
            (Some(now_io), Some(io_before)) => {
                let d = now_io.delta_since(io_before);
                (d.read_requests, d.bytes_read, d.max_busy_ns)
            }
            _ => (0, 0, 0),
        };
        let stream_partitions = now
            .stream_partitions
            .saturating_sub(before.stream_partitions);
        self.per_iteration.lock().push(IterStats {
            frontier,
            wall_ns: iter_start.elapsed().as_nanos() as u64,
            read_requests,
            bytes_read,
            bytes_requested: now.bytes_requested.saturating_sub(before.bytes_requested),
            issued_requests: now.issued_requests.saturating_sub(before.issued_requests),
            edges_delivered: now.edges_delivered.saturating_sub(before.edges_delivered),
            io_busy_ns,
            scan: stream_partitions > 0,
            stream_partitions,
            stream_stripes: now.stream_stripes.saturating_sub(before.stream_stripes),
        });
        *boundary = Some(now);
    }

    /// Whether this worker executes the coming iteration as a
    /// streaming scan: semi-external backend only, by
    /// [`ScanMode`] against the partition's active density.
    fn decide_stream(&self, active: usize) -> bool {
        if matches!(self.engine.backend, Backend::Mem(_)) || active == 0 {
            return false;
        }
        match self.engine.cfg.scan_mode {
            ScanMode::Selective => false,
            ScanMode::Stream => true,
            ScanMode::Adaptive { threshold } => {
                let plen = self.shared.pmap.partition_len(self.w);
                plen > 0 && active as u64 * 100 > plen as u64 * threshold as u64
            }
        }
    }

    /// Collects the active vertices of this partition in id order.
    fn collect_active(&self) -> Vec<VertexId> {
        let cur = self.frontiers.cur();
        let mut list = Vec::new();
        for range in self.shared.pmap.ranges_of(self.w) {
            list.extend(cur.iter_ones_in_range(range));
        }
        list
    }

    /// Orders an active list by the configured scheduler (§3.7).
    fn apply_scheduler(&self, iter: u32, list: &mut [VertexId]) {
        match self.engine.cfg.scheduler {
            SchedulerKind::ById => {}
            SchedulerKind::Alternating => {
                if iter % 2 == 1 {
                    list.reverse();
                }
            }
            SchedulerKind::Random(seed) => {
                let mut s = seed ^ (iter as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let mut next = move || {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s
                };
                // Fisher–Yates with the xorshift stream.
                for i in (1..list.len()).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    list.swap(i, j);
                }
            }
            SchedulerKind::DegreeDescending(dir) => {
                list.sort_by_key(|&v| std::cmp::Reverse(self.shared.degrees.degree(v, dir)));
            }
        }
    }

    /// The issue/poll pipeline of one vertical pass.
    ///
    /// With `stream` set, requests whose subject belongs to this
    /// worker's partition accumulate in the stream queue and go to
    /// the device as stride-sized sequential covers (flushed when a
    /// stride's worth of extent is buffered, and finally when the
    /// pass runs out of claims); everything else — stolen vertices'
    /// lists, other partitions' hubs — still takes the selective
    /// path.
    fn compute_pass(
        &self,
        iter: u32,
        vp: u32,
        scratch: &mut WorkerScratch<P::Msg>,
        io: &mut IoDriver<'_>,
        stream: bool,
    ) {
        let nparts = self.shared.pmap.num_partitions();
        let max_pending = self.engine.cfg.max_pending.max(1);
        loop {
            // Fill the pipeline with freshly claimed vertices.
            let mut claimed_any = false;
            while io.outstanding() < max_pending {
                let v = match self.claim(vp as usize, nparts) {
                    Some(v) => v,
                    None => break,
                };
                claimed_any = true;
                self.counters.vertices.inc();
                self.with_ctx(iter, vp, scratch, v, |prog, state, ctx| {
                    prog.run(v, state, ctx);
                });
                self.absorb_requests(iter, vp, scratch, io, stream);
                io.flush_if_full(self);
                self.maybe_flush_messages(scratch);
            }
            io.flush_selective(self);
            if io.outstanding() == 0 {
                if claimed_any {
                    continue;
                }
                // No more claims: release the final partial stride.
                io.flush_stream_tail(self);
                if io.outstanding() == 0 {
                    break;
                }
            }
            // Wait for completions and run the user tasks they carry.
            self.drain_completions(iter, vp, scratch, io, stream, true);
        }
    }

    fn claim(&self, vp: usize, nparts: usize) -> Option<VertexId> {
        if let Some(v) = self.active.claim(self.w, vp) {
            return Some(v);
        }
        if !self.engine.cfg.work_stealing {
            return None;
        }
        for k in 1..nparts {
            let p = (self.w + k) % nparts;
            // Never steal from a streaming partition: its owner's
            // sweep already reads those vertices' bytes, so stolen
            // selective requests would duplicate the device traffic.
            if self.stream_flags[p].load(Ordering::Acquire) {
                continue;
            }
            if let Some(v) = self.active.claim(p, vp) {
                return Some(v);
            }
        }
        None
    }

    /// The pipelined compute phase: every vertical pass in one
    /// completion-counted sweep, with no intra-iteration barrier.
    ///
    /// The loop keeps three activities interleaved: (a) claiming
    /// active vertices — own partition first, then stealing — to keep
    /// up to `max_pending` logical requests on the device, (b)
    /// harvesting this worker's completions into the shared ready
    /// pool, and (c) executing ready deliveries, its own or stolen
    /// from workers whose device queue is ahead of their CPU. Once
    /// claims are exhausted everywhere the worker announces it on
    /// `claims_done` and keeps harvesting/stealing until the pool's
    /// obligation count reaches zero — the iteration's quiesce point.
    ///
    /// Unlike the lock-step loop, vertical passes of one vertex may
    /// run concurrently with deliveries from an earlier pass; the
    /// per-vertex busy bit serializes the callbacks, but cross-pass
    /// *order* is no longer global. Programs that keep per-pass
    /// results independent (all in-tree algorithms) are unaffected.
    fn compute_pipelined(
        &self,
        iter: u32,
        scratch: &mut WorkerScratch<P::Msg>,
        io: &mut IoDriver<'_>,
        stream: bool,
    ) {
        let nparts = self.shared.pmap.num_partitions();
        let max_pending = self.engine.cfg.max_pending.max(1);
        let mut vp = 0u32;
        let mut claiming = true;
        loop {
            if claiming {
                // (a) Fill the device pipeline with fresh claims.
                while io.outstanding() < max_pending {
                    match self.claim(vp as usize, nparts) {
                        Some(v) => self.run_claimed(iter, vp, v, scratch, io, stream),
                        None if vp + 1 < self.shared.vparts => vp += 1,
                        None => {
                            claiming = false;
                            // Release the final partial stride and any
                            // half-filled selective batch, then
                            // announce: cursors only move forward, so
                            // exhaustion is permanent this iteration.
                            io.flush_all(self);
                            // ordering: AcqRel — the release half
                            // publishes this worker's final flush to
                            // whoever's `quiesced` load sees the full
                            // count; the acquire half joins earlier
                            // announcements' release sequence through
                            // the RMW chain. Referee: fg_check's
                            // `quiesce` model.
                            self.ready.claims_done.fetch_add(1, Ordering::AcqRel);
                            break;
                        }
                    }
                }
            }
            // (b) Publish our freshly completed covers to the pool.
            self.harvest(io, false);
            // (c) Run ready deliveries — ours or stolen.
            let executed = self.execute_deliveries(iter, scratch, io, stream);
            if executed == 0 {
                if !claiming {
                    // Deliveries may have buffered follow-on requests
                    // that no size trigger will fire for anymore.
                    io.flush_all(self);
                    if io.outstanding() == 0 && self.quiesced() {
                        break;
                    }
                }
                if io.outstanding() > 0 {
                    // When `max_pending < issue_batch` the depth gate
                    // can fill entirely with *buffered* requests that
                    // the size trigger will never release — nothing is
                    // at the device and the wait below could never be
                    // satisfied. Submit the partial batch; this fires
                    // only at genuine stall points, so merge batching
                    // is otherwise unaffected.
                    if io.in_flight() == 0 {
                        io.flush_selective(self);
                    }
                    // Nothing runnable until one of our covers lands:
                    // block briefly (bounded, so we resume stealing
                    // even if our own replies are slow).
                    self.harvest(io, true);
                } else if !claiming {
                    // Other workers still hold obligations; retry the
                    // pool politely.
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Runs a freshly claimed vertex's `run` callback under its busy
    /// bit and absorbs the requests it queued.
    fn run_claimed(
        &self,
        iter: u32,
        vp: u32,
        v: VertexId,
        scratch: &mut WorkerScratch<P::Msg>,
        io: &mut IoDriver<'_>,
        stream: bool,
    ) {
        self.counters.vertices.inc();
        self.acquire_busy(v);
        self.with_ctx(iter, vp, scratch, v, |prog, state, ctx| {
            prog.run(v, state, ctx);
        });
        self.absorb_requests(iter, vp, scratch, io, stream);
        self.busy.clear_sync(v);
        io.flush_if_full(self);
        self.maybe_flush_messages(scratch);
    }

    /// Polls (or briefly waits on) this worker's session and
    /// publishes the resolved deliveries to the ready pool.
    /// Completions only arrive on the session that issued them, so an
    /// otherwise idle worker bounds its wait instead of blocking —
    /// stolen work may appear in the pool at any moment.
    fn harvest(&self, io: &mut IoDriver<'_>, wait: bool) {
        let IoDriver::Sem(sem) = io else { return };
        let mut done = Vec::new();
        let t = Instant::now();
        if wait {
            sem.session
                .wait_timeout(&mut done, Duration::from_micros(200));
        } else {
            sem.session.poll(&mut done);
        }
        self.counters.wait_ns.add(t.elapsed().as_nanos() as u64);
        for c in done {
            sem.resolve(c);
        }
        if !sem.ready.is_empty() {
            self.ready.push_local(self.w, &mut sem.ready);
        }
    }

    /// Executes up to a small budget of ready deliveries from the
    /// pool (bounded so the device pipeline is re-filled regularly),
    /// serializing on each requester's busy bit. Returns the number
    /// of deliveries run.
    fn execute_deliveries(
        &self,
        iter: u32,
        scratch: &mut WorkerScratch<P::Msg>,
        io: &mut IoDriver<'_>,
        stream: bool,
    ) -> usize {
        const DELIVERY_BUDGET: usize = 64;
        let mut executed = 0;
        while executed < DELIVERY_BUDGET {
            let Some(r) = self.ready.pop(self.w) else {
                break;
            };
            if self.busy.set_sync(r.requester) {
                // The requester's callback is running on another
                // worker right now: hand the delivery to the injector
                // rather than spin, and stop popping — the next pop
                // could return the same entry.
                self.ready.push_injector(r);
                break;
            }
            let requester = r.requester;
            let vpd = r.vpart;
            let pv = SemIo::decode_ready(r, self.shared.deltas.as_deref());
            self.deliver_vertex(iter, vpd, scratch, requester, &pv);
            self.absorb_requests(iter, vpd, scratch, io, stream);
            self.busy.clear_sync(requester);
            // ordering: AcqRel — release publishes the delivery's
            // state writes to the worker whose quiesce load sees
            // the count reach zero; acquire folds earlier
            // decrements into this RMW's release sequence. The
            // RelaxedPublish mutation of fg_check's `quiesce`
            // model demonstrates the lost publication if this is
            // weakened.
            self.ready.obligations.fetch_sub(1, Ordering::AcqRel);
            executed += 1;
            io.flush_if_full(self);
            self.maybe_flush_messages(scratch);
        }
        executed
    }

    /// The pipelined iteration's end condition: every worker has
    /// exhausted claiming and every accepted request's delivery has
    /// finished. `claims_done` is monotonic within an iteration and
    /// cascades keep an outer obligation alive while they spawn inner
    /// ones, so a true result cannot hide in-flight work (see
    /// [`ReadyPool`]).
    fn quiesced(&self) -> bool {
        // ordering: Acquire on both loads pairs with the AcqRel
        // announcement/decrement RMWs, so a worker that observes the
        // full claim count and a zero obligation count also observes
        // every delivered vertex's state writes. These were SeqCst
        // from PR 6 "to be safe"; fg_check's `quiesce` model passes
        // exhaustively at Acquire/AcqRel and catches the seeded
        // downgrades below it.
        self.ready.claims_done.load(Ordering::Acquire) == self.shared.pmap.num_partitions()
            && self.ready.obligations.load(Ordering::Acquire) == 0
    }

    /// Spins until this worker owns `v`'s busy bit. Contention is
    /// rare and short-lived: the holder is another worker inside one
    /// of `v`'s callbacks, which never blocks on someone else's bit.
    fn acquire_busy(&self, v: VertexId) {
        while self.busy.set_sync(v) {
            std::hint::spin_loop();
        }
    }

    /// Runs a program callback with the vertex's state and a fresh
    /// context. Timing happens at phase granularity (per-callback
    /// clocks would dominate message-heavy algorithms).
    fn with_ctx<F>(
        &self,
        iter: u32,
        vp: u32,
        scratch: &mut WorkerScratch<P::Msg>,
        v: VertexId,
        f: F,
    ) where
        F: FnOnce(&P, &mut P::State, &mut VertexContext<'_, P::Msg>),
    {
        let mut ctx = VertexContext {
            current: v,
            iteration: iter,
            vpart: vp,
            shared: self.shared,
            next_frontier: self.frontiers.next(),
            scratch,
        };
        // SAFETY: `v` was claimed exclusively (cursor/owner/claimer
        // discipline); its state is ours until the callback returns.
        let state = unsafe { self.states.get_mut(v.index()) };
        f(self.program, state, &mut ctx);
    }

    /// Moves the requests a callback queued in `scratch` into the I/O
    /// driver, resolving locations; zero-degree requests complete
    /// inline (possibly cascading).
    fn absorb_requests(
        &self,
        iter: u32,
        vp: u32,
        scratch: &mut WorkerScratch<P::Msg>,
        io: &mut IoDriver<'_>,
        stream: bool,
    ) {
        while !scratch.requests.is_empty() {
            let reqs: Vec<EdgeRequest> = scratch.requests.drain(..).collect();
            for req in reqs {
                match (&self.engine.backend, &mut *io) {
                    (Backend::Mem(g), IoDriver::Mem) => {
                        let csr = g.csr(req.dir);
                        let ops = self
                            .shared
                            .deltas
                            .as_ref()
                            .and_then(|d| d.list(req.subject, req.dir));
                        let pv = if let Some(ops) = ops {
                            // Overlaid subject: the range is in merged
                            // coordinates, so wrap the full CSR list.
                            let edges = csr.neighbors(req.subject);
                            let attrs = req.attrs.then(|| {
                                csr.weights_of(req.subject)
                                    .expect("attrs requested on an unweighted graph")
                            });
                            let base =
                                PageVertex::from_slice(req.subject, req.dir, 0, edges, attrs);
                            PageVertex::with_overlay(
                                base,
                                Arc::clone(ops),
                                req.start,
                                req.len as usize,
                            )
                        } else {
                            // Ranges were clamped at request time; the
                            // CSR slice is the oracle the sem path
                            // must match.
                            let lo = req.start as usize;
                            let hi = lo + req.len as usize;
                            let edges = &csr.neighbors(req.subject)[lo..hi];
                            let attrs = if req.attrs {
                                Some(
                                    &csr.weights_of(req.subject)
                                        .expect("attrs requested on an unweighted graph")
                                        [lo..hi],
                                )
                            } else {
                                None
                            };
                            PageVertex::from_slice(req.subject, req.dir, req.start, edges, attrs)
                        };
                        self.deliver_vertex(iter, vp, scratch, req.requester, &pv);
                    }
                    (Backend::Sem { index, .. }, IoDriver::Sem(sem)) => {
                        // A streaming worker routes *own-list*
                        // requests of its own partition into the
                        // sweep — the access pattern of the dense
                        // algorithms the mode exists for, arriving
                        // in claim (id) order. Cross-vertex requests
                        // (TC/Scan asking for neighbours' lists) stay
                        // selective even when the subject happens to
                        // be local: they arrive in arbitrary order
                        // and hot hub lists must keep going through
                        // the cache, not a bypassing sweep.
                        let via_stream = stream
                            && req.subject == req.requester
                            && self.shared.pmap.partition_of(req.subject) == self.w;
                        if via_stream {
                            // Covers must stay inside one of the
                            // partition's id-ranges: bridging across a
                            // foreign range would sweep bytes another
                            // worker's stream already reads. Claims
                            // arrive in id order, so flushing at each
                            // range transition seals the previous
                            // range's covers.
                            let region = self.shared.pmap.region_of(req.subject);
                            if sem.stream_region != Some(region) {
                                sem.flush_stream(
                                    self.engine.safs_page_bytes(),
                                    self.engine.cfg.stream_stride_bytes(),
                                    self.counters,
                                );
                                sem.stream_region = Some(region);
                            }
                        }
                        // Every accepted request is an obligation
                        // until its delivery (and the absorption of
                        // its follow-ons) finishes. The pipelined
                        // quiesce condition counts these; the barrier
                        // loop keeps them balanced for free.
                        // ordering: Relaxed — publication of this increment to
                        // the quiesce check rides on the `claims_done` release
                        // chain (claim phase) or on the enclosing obligation's
                        // AcqRel decrement (cascades), never on the increment
                        // itself. fg_check's `quiesce` model is the referee;
                        // its NoOuterObligation mutation shows what breaks
                        // when a cascade runs without cover.
                        self.ready.obligations.fetch_add(1, Ordering::Relaxed);
                        sem.enqueue(
                            req,
                            index,
                            self.counters,
                            via_stream,
                            vp,
                            self.shared.deltas.as_deref(),
                        );
                        // Zero-degree requests become ready
                        // completions without I/O. (Under pipelining
                        // the pool never holds these: `harvest` is
                        // the only producer of resolved entries, and
                        // it drains `sem.ready` before returning.)
                        while let Some((requester, vpd, pv)) =
                            sem.pop_ready(self.shared.deltas.as_deref())
                        {
                            self.deliver_vertex(iter, vpd, scratch, requester, &pv);
                            // ordering: AcqRel — release publishes the delivery's
                            // state writes to the worker whose quiesce load sees
                            // the count reach zero; acquire folds earlier
                            // decrements into this RMW's release sequence. The
                            // RelaxedPublish mutation of fg_check's `quiesce`
                            // model demonstrates the lost publication if this is
                            // weakened.
                            self.ready.obligations.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                    (Backend::Shard { set, index, me }, IoDriver::Sem(sem)) => {
                        let sv = self.shared.shard.as_ref().expect("sharded run");
                        if req.len > 0 && !sv.owns(req.subject) {
                            // Foreign-subject request (TC-style
                            // neighbour-list reads): locate on the
                            // owning shard's index and read its mount
                            // synchronously — the cross-shard analogue
                            // of the Mem arm's inline delivery, safe
                            // because the requester holds the busy bit
                            // and the subject's *state* is never
                            // touched, only its on-disk edges.
                            // Overlaid subjects fetch the full base
                            // list and carry the merged window aside,
                            // exactly like `enqueue_overlay`.
                            let overlaid = self
                                .shared
                                .deltas
                                .as_ref()
                                .is_some_and(|d| d.list(req.subject, req.dir).is_some());
                            let (fetch_start, fetch_len, overlay) = if overlaid {
                                (
                                    0,
                                    index.degree(req.subject, req.dir),
                                    Some((req.start, req.len)),
                                )
                            } else {
                                (req.start, req.len, None)
                            };
                            if fetch_len == 0 {
                                // Overlaid subject with an empty base
                                // list: pure adds, no I/O.
                                let pv = SemIo::decode_ready(
                                    ReadyVertex {
                                        requester: req.requester,
                                        subject: req.subject,
                                        vpart: vp,
                                        dir: req.dir,
                                        start: 0,
                                        count: 0,
                                        decode: SliceDecode::Raw,
                                        edges: PageSpan::empty(),
                                        attrs: req.attrs.then(PageSpan::empty),
                                        overlay,
                                    },
                                    self.shared.deltas.as_deref(),
                                );
                                self.deliver_vertex(iter, vp, scratch, req.requester, &pv);
                                continue;
                            }
                            let (s, slice) =
                                index.locate_slice(req.subject, req.dir, fetch_start, fetch_len);
                            let loc = slice.loc;
                            debug_assert_eq!(loc.degree, fetch_len);
                            self.counters.bytes_requested.add(loc.bytes);
                            self.counters.issued_requests.inc();
                            let espan = set
                                .shard(s)
                                .read_sync(loc.offset, loc.bytes)
                                .expect("foreign shard edge read");
                            let attrs = if req.attrs {
                                let (sa, aloc) = index
                                    .locate_attrs_range(
                                        req.subject,
                                        req.dir,
                                        fetch_start,
                                        fetch_len,
                                    )
                                    .expect("attrs requested but image has no attribute section");
                                self.counters.bytes_requested.add(aloc.bytes);
                                self.counters.issued_requests.inc();
                                Some(
                                    set.shard(sa)
                                        .read_sync(aloc.offset, aloc.bytes)
                                        .expect("foreign shard attr read"),
                                )
                            } else {
                                None
                            };
                            let pv = SemIo::decode_ready(
                                ReadyVertex {
                                    requester: req.requester,
                                    subject: req.subject,
                                    vpart: vp,
                                    dir: req.dir,
                                    start: fetch_start,
                                    count: fetch_len,
                                    decode: slice.decode,
                                    edges: espan,
                                    attrs,
                                    overlay,
                                },
                                self.shared.deltas.as_deref(),
                            );
                            self.deliver_vertex(iter, vp, scratch, req.requester, &pv);
                            continue;
                        }
                        // Owned subject: identical to the Sem arm, on
                        // this shard's own index and mount.
                        let via_stream = stream
                            && req.subject == req.requester
                            && self.shared.pmap.partition_of(req.subject) == self.w;
                        if via_stream {
                            let region = self.shared.pmap.region_of(req.subject);
                            if sem.stream_region != Some(region) {
                                sem.flush_stream(
                                    self.engine.safs_page_bytes(),
                                    self.engine.cfg.stream_stride_bytes(),
                                    self.counters,
                                );
                                sem.stream_region = Some(region);
                            }
                        }
                        // ordering: Relaxed — publication of this increment to
                        // the quiesce check rides on the `claims_done` release
                        // chain (claim phase) or on the enclosing obligation's
                        // AcqRel decrement (cascades), never on the increment
                        // itself. fg_check's `quiesce` model is the referee;
                        // its NoOuterObligation mutation shows what breaks
                        // when a cascade runs without cover.
                        self.ready.obligations.fetch_add(1, Ordering::Relaxed);
                        sem.enqueue(
                            req,
                            index.shard(*me),
                            self.counters,
                            via_stream,
                            vp,
                            self.shared.deltas.as_deref(),
                        );
                        while let Some((requester, vpd, pv)) =
                            sem.pop_ready(self.shared.deltas.as_deref())
                        {
                            self.deliver_vertex(iter, vpd, scratch, requester, &pv);
                            // ordering: AcqRel — release publishes the delivery's
                            // state writes to the worker whose quiesce load sees
                            // the count reach zero; acquire folds earlier
                            // decrements into this RMW's release sequence. The
                            // RelaxedPublish mutation of fg_check's `quiesce`
                            // model demonstrates the lost publication if this is
                            // weakened.
                            self.ready.obligations.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                    _ => unreachable!("backend and io driver always match"),
                }
            }
        }
    }

    fn deliver_vertex(
        &self,
        iter: u32,
        vp: u32,
        scratch: &mut WorkerScratch<P::Msg>,
        requester: VertexId,
        pv: &PageVertex<'_>,
    ) {
        self.counters.edges_delivered.add(pv.degree() as u64);
        self.with_ctx(iter, vp, scratch, requester, |prog, state, ctx| {
            prog.run_on_vertex(requester, state, pv, ctx);
        });
    }

    /// Blocks for at least one completion (when `wait`), then drains
    /// everything available, running `run_on_vertex` for each part.
    fn drain_completions(
        &self,
        iter: u32,
        vp: u32,
        scratch: &mut WorkerScratch<P::Msg>,
        io: &mut IoDriver<'_>,
        stream: bool,
        wait: bool,
    ) {
        let IoDriver::Sem(sem) = io else { return };
        let mut done = Vec::new();
        let t = Instant::now();
        if wait {
            sem.session.wait(&mut done);
        } else {
            sem.session.poll(&mut done);
        }
        self.counters.wait_ns.add(t.elapsed().as_nanos() as u64);
        for c in done {
            sem.resolve(c);
            while let Some((requester, vpd, pv)) = sem.pop_ready(self.shared.deltas.as_deref()) {
                debug_assert_eq!(vpd, vp, "lock-step deliveries stay within their pass");
                self.deliver_vertex(iter, vpd, scratch, requester, &pv);
                // ordering: AcqRel — release publishes the delivery's
                // state writes to the worker whose quiesce load sees
                // the count reach zero; acquire folds earlier
                // decrements into this RMW's release sequence. The
                // RelaxedPublish mutation of fg_check's `quiesce`
                // model demonstrates the lost publication if this is
                // weakened.
                self.ready.obligations.fetch_sub(1, Ordering::AcqRel);
            }
        }
        // Callbacks may have queued more requests.
        self.absorb_requests(iter, vp, scratch, io, stream);
        io.flush_if_full(self);
        self.maybe_flush_messages(scratch);
    }

    fn maybe_flush_messages(&self, scratch: &mut WorkerScratch<P::Msg>) {
        if scratch.buffered_fanout >= MSG_FLUSH_FANOUT {
            self.flush_boards(scratch);
        }
    }

    fn flush_boards(&self, scratch: &mut WorkerScratch<P::Msg>) {
        for (dest, buf) in scratch.out_unicasts.iter_mut().enumerate() {
            if !buf.is_empty() {
                self.board.post(dest, Batch::Unicasts(std::mem::take(buf)));
            }
        }
        for (dest, buf) in scratch.out_multicasts.iter_mut().enumerate() {
            for batch in buf.drain(..) {
                self.board.post(dest, batch);
            }
        }
        for (dest, buf) in scratch.notifies.iter_mut().enumerate() {
            if !buf.is_empty() {
                self.notify.post(dest, std::mem::take(buf));
            }
        }
        if let Some(link) = self.link {
            let post = |dest: usize, pkt: ShardPacket<P::Msg>| {
                self.counters.shard_msg_bytes.add(pkt.wire_bytes());
                link.bus.post(dest, pkt);
            };
            for (dest, buf) in scratch.shard_unicasts.iter_mut().enumerate() {
                if !buf.is_empty() {
                    post(dest, ShardPacket::Unicasts(std::mem::take(buf)));
                }
            }
            for (dest, buf) in scratch.shard_multicasts.iter_mut().enumerate() {
                for env in buf.drain(..) {
                    match env {
                        Batch::Unicasts(entries) => post(dest, ShardPacket::Unicasts(entries)),
                        Batch::Multicast(vs, m) => post(dest, ShardPacket::Multicast(vs, m)),
                    }
                }
            }
            for (dest, buf) in scratch.shard_activates.iter_mut().enumerate() {
                if !buf.is_empty() {
                    post(dest, ShardPacket::Activate(std::mem::take(buf)));
                }
            }
        }
        scratch.buffered_fanout = 0;
    }

    /// Worker 0's half of a cross-shard sync point: takes everything
    /// peers queued for this shard and converts it into the exact form
    /// a local worker would have produced — message batches split by
    /// destination partition onto the local board, activations OR'd
    /// into the next frontier.
    fn drain_shard_bus(&self, link: &ShardLink<'_, P::Msg>) {
        let me = self.shared.shard.as_ref().expect("sharded run").me;
        let parts = self.shared.pmap.num_partitions();
        for pkt in link.bus.drain(me) {
            match pkt {
                ShardPacket::Unicasts(entries) => {
                    let mut split: Vec<Vec<(VertexId, P::Msg)>> = vec![Vec::new(); parts];
                    for (v, m) in entries {
                        split[self.shared.pmap.partition_of(v)].push((v, m));
                    }
                    for (dest, buf) in split.into_iter().enumerate() {
                        if !buf.is_empty() {
                            self.board.post(dest, Batch::Unicasts(buf));
                        }
                    }
                }
                ShardPacket::Multicast(vs, m) => {
                    let mut split: Vec<Vec<VertexId>> = vec![Vec::new(); parts];
                    for v in vs {
                        split[self.shared.pmap.partition_of(v)].push(v);
                    }
                    let mut dests: Vec<usize> =
                        (0..parts).filter(|&p| !split[p].is_empty()).collect();
                    // The payload moves into the last destination; the
                    // rest clone, same as a local multicast split.
                    let last = dests.pop();
                    for dest in dests {
                        self.board.post(
                            dest,
                            Batch::Multicast(std::mem::take(&mut split[dest]), m.clone()),
                        );
                    }
                    if let Some(dest) = last {
                        self.board
                            .post(dest, Batch::Multicast(std::mem::take(&mut split[dest]), m));
                    }
                }
                ShardPacket::Activate(vs) => {
                    for v in vs {
                        if !self.frontiers.next().set(v) {
                            self.counters.activations.inc();
                        }
                    }
                }
            }
        }
    }

    fn deliver_messages(
        &self,
        iter: u32,
        scratch: &mut WorkerScratch<P::Msg>,
        io: &mut IoDriver<'_>,
    ) {
        let batches = self.board.drain(self.w);
        for batch in batches {
            match batch {
                Batch::Unicasts(entries) => {
                    for (v, m) in entries {
                        self.apply_message(iter, scratch, io, v, &m);
                    }
                }
                Batch::Multicast(vs, m) => {
                    for v in vs {
                        self.apply_message(iter, scratch, io, v, &m);
                    }
                }
            }
        }
    }

    fn apply_message(
        &self,
        iter: u32,
        scratch: &mut WorkerScratch<P::Msg>,
        io: &mut IoDriver<'_>,
        v: VertexId,
        m: &P::Msg,
    ) {
        debug_assert_eq!(self.shared.pmap.partition_of(v), self.w);
        self.with_ctx(iter, 0, scratch, v, |prog, state, ctx| {
            prog.run_on_message(v, state, m, ctx);
        });
        // Message handlers may request edges; those complete within
        // the barrier phase, synchronously.
        self.complete_phase_requests(iter, scratch, io);
    }

    fn apply_iteration_end(
        &self,
        iter: u32,
        scratch: &mut WorkerScratch<P::Msg>,
        io: &mut IoDriver<'_>,
        seen: &mut Bitmap,
    ) {
        // Registrations made by our own vertices during this barrier
        // phase (from message handlers) are still local: flush first.
        self.flush_boards(scratch);
        let vids = self.notify.drain(self.w);
        let mut dedup = Vec::with_capacity(vids.len());
        for v in vids {
            if !seen.set(v) {
                dedup.push(v);
            }
        }
        for v in &dedup {
            seen.clear(*v);
        }
        for v in dedup {
            self.with_ctx(iter, 0, scratch, v, |prog, state, ctx| {
                prog.run_on_iteration_end(v, state, ctx);
            });
            self.complete_phase_requests(iter, scratch, io);
        }
    }

    /// Synchronously completes any edge requests queued during the
    /// barrier phase (message / iteration-end handlers). Barrier-phase
    /// requests always take the selective path: the iteration's sweep
    /// is over by then.
    fn complete_phase_requests(
        &self,
        iter: u32,
        scratch: &mut WorkerScratch<P::Msg>,
        io: &mut IoDriver<'_>,
    ) {
        self.absorb_requests(iter, 0, scratch, io, false);
        io.flush_all(self);
        while io.outstanding() > 0 {
            self.drain_completions(iter, 0, scratch, io, false, true);
            io.flush_all(self);
        }
    }
}

/// Per-worker I/O machinery: the semi-external driver or the
/// in-memory no-op.
// One instance per worker thread; the Mem arm is a unit and the Sem
// arm carries the session state, so the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
enum IoDriver<'s> {
    Mem,
    Sem(SemIo<'s>),
}

impl IoDriver<'_> {
    fn outstanding(&self) -> usize {
        match self {
            IoDriver::Mem => 0,
            IoDriver::Sem(s) => s.outstanding,
        }
    }

    /// Requests actually submitted to the device and not yet
    /// harvested — excludes logical requests still buffered in the
    /// selective queue awaiting a batch-size trigger.
    fn in_flight(&self) -> usize {
        match self {
            IoDriver::Mem => 0,
            IoDriver::Sem(s) => s.outstanding - s.selective_buffered,
        }
    }

    /// Flushes whichever queue has reached its trigger: the selective
    /// queue at the issue-batch size, the stream queue once a full
    /// stride of extent is buffered.
    fn flush_if_full<P: VertexProgram>(&mut self, env: &WorkerEnv<'_, '_, P>) {
        if let IoDriver::Sem(s) = self {
            if s.issue_q.len() >= env.engine.cfg.issue_batch {
                s.flush(
                    env.engine.safs_page_bytes(),
                    env.engine.cfg.merge_in_engine,
                    env.engine.cfg.resolved_max_merge_bytes(),
                    env.counters,
                );
            }
            let stride = env.engine.cfg.stream_stride_bytes();
            if s.stream_span() >= stride || s.stream_q.len() >= STREAM_FLUSH_REQUESTS {
                s.flush_stream(env.engine.safs_page_bytes(), stride, env.counters);
            }
        }
    }

    /// Flushes the selective issue queue only — the stream queue
    /// keeps accumulating toward a full stride.
    fn flush_selective<P: VertexProgram>(&mut self, env: &WorkerEnv<'_, '_, P>) {
        if let IoDriver::Sem(s) = self {
            s.flush(
                env.engine.safs_page_bytes(),
                env.engine.cfg.merge_in_engine,
                env.engine.cfg.resolved_max_merge_bytes(),
                env.counters,
            );
        }
    }

    /// Releases the stream queue regardless of how much is buffered —
    /// the end-of-claims flush that submits the final partial stride.
    fn flush_stream_tail<P: VertexProgram>(&mut self, env: &WorkerEnv<'_, '_, P>) {
        if let IoDriver::Sem(s) = self {
            s.flush_stream(
                env.engine.safs_page_bytes(),
                env.engine.cfg.stream_stride_bytes(),
                env.counters,
            );
        }
    }

    /// Flushes both queues (the synchronous barrier-phase drain).
    fn flush_all<P: VertexProgram>(&mut self, env: &WorkerEnv<'_, '_, P>) {
        self.flush_selective(env);
        self.flush_stream_tail(env);
    }
}

/// Byte span of one file section's buffered stream parts.
struct SectionSpan {
    lo: u64,
    hi: u64,
}

impl Default for SectionSpan {
    fn default() -> Self {
        SectionSpan {
            lo: u64::MAX,
            hi: 0,
        }
    }
}

impl SectionSpan {
    fn widen(&mut self, offset: u64, bytes: u64) {
        self.lo = self.lo.min(offset);
        self.hi = self.hi.max(offset + bytes);
    }

    fn span(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }
}

/// Backstop on how many buffered stream requests may await a full
/// stride: on graphs with tiny edge lists a stride's worth of extent
/// can mean hundreds of thousands of request metadata entries, so the
/// queue also flushes at this count (covers come out smaller but
/// still far larger than selective batches).
const STREAM_FLUSH_REQUESTS: usize = 16 * 1024;

impl Engine<'_> {
    fn safs_page_bytes(&self) -> u64 {
        match &self.backend {
            Backend::Sem { safs, .. } => safs.page_bytes(),
            Backend::Shard { set, .. } => set.page_bytes(),
            Backend::Mem(_) => 4096,
        }
    }
}

/// What one constituent range of a merged request is for.
#[derive(Debug, Clone, Copy)]
enum PartKind {
    /// An edge list; `pair` set when attributes ride along.
    Edges { pair: Option<usize> },
    /// An attribute run, joining pair slot `pair`.
    Attrs { pair: usize },
}

#[derive(Debug, Clone, Copy)]
struct PartMeta {
    requester: VertexId,
    subject: VertexId,
    /// Vertical pass the request was issued from. Deliveries carry it
    /// so a stealing worker runs the callback under the same pass
    /// context the requester would have used.
    vpart: u32,
    dir: EdgeDir,
    /// First edge position of the slice within the subject's list.
    start: u64,
    /// Edges this part delivers (explicit: compressed blocks make
    /// byte length non-proportional to edge count).
    count: u64,
    /// How the fetched bytes decode (raw `u32`s or a varint block of
    /// the compressed image format).
    decode: SliceDecode,
    kind: PartKind,
    /// Present when the subject carries pinned delta ops: the
    /// `(start, len)` window in *merged* coordinates the delivery
    /// must tile (the fetch itself covers the full base list).
    overlay: Option<(u64, u64)>,
}

struct MergedMeta {
    offset: u64,
    parts: Vec<(u64, u64, PartMeta)>,
}

/// A (edges, attrs) join slot for weighted requests.
struct AttrPair {
    requester: VertexId,
    subject: VertexId,
    vpart: u32,
    dir: EdgeDir,
    start: u64,
    edges: Option<PageSpan>,
    attrs: Option<PageSpan>,
    /// See [`PartMeta::overlay`].
    overlay: Option<(u64, u64)>,
}

/// A ready-to-deliver edge-list slice. Owns its page spans, so it can
/// cross worker threads: the pipelined scheduler moves these through
/// per-worker deques and a shared injector, and whichever worker pops
/// one runs the delivery.
struct ReadyVertex {
    requester: VertexId,
    subject: VertexId,
    /// Vertical pass of the originating request (see [`PartMeta`]).
    vpart: u32,
    dir: EdgeDir,
    start: u64,
    /// Edges delivered (drives `PageVertex::degree` for packed spans).
    count: u64,
    decode: SliceDecode,
    edges: PageSpan,
    attrs: Option<PageSpan>,
    /// See [`PartMeta::overlay`] — when set, decoding wraps the base
    /// list in [`PageVertex::with_overlay`] against the run's pinned
    /// [`DeltaView`].
    overlay: Option<(u64, u64)>,
}

/// The semi-external per-worker I/O state: selective issue queue,
/// streaming-scan queue, merged-request slab, attribute pairing, and
/// the SAFS session.
///
/// The two queues differ in three ways. The selective queue flushes
/// at the issue-batch size, merges only page-adjacent requests, and
/// submits with the normal cache policy. The stream queue flushes
/// once a full stride of partition extent is buffered, bridges the
/// gaps of inactive vertices ([`coalesce_stream`]), and submits with
/// the cache-bypass policy. Buffered stream requests do not count as
/// `outstanding` until their covers are submitted (tracked in
/// `stream_buffered`), so the pipeline-depth gate cannot force
/// premature, undersized covers.
struct SemIo<'s> {
    session: IoSession<'s>,
    issue_q: Vec<RangeReq>,
    issue_meta: Vec<PartMeta>,
    stream_q: Vec<RangeReq>,
    stream_meta: Vec<PartMeta>,
    /// Byte span of the buffered edge-section stream parts.
    stream_edges: SectionSpan,
    /// Byte span of the buffered attribute-section stream parts.
    /// Tracked separately: edge lists and attribute runs live in
    /// far-apart file sections, and folding both into one span would
    /// make it look stride-sized after a single weighted request,
    /// flushing the queue per vertex.
    stream_attrs: SectionSpan,
    /// Logical requests buffered in the stream queue, moved into
    /// `outstanding` at flush time.
    stream_buffered: usize,
    /// Id-range (region) the buffered stream requests belong to;
    /// the engine flushes on transition so covers never bridge into
    /// a foreign partition's byte ranges.
    stream_region: Option<u64>,
    slab: Vec<Option<MergedMeta>>,
    slab_free: Vec<usize>,
    pairs: Vec<Option<AttrPair>>,
    pairs_free: Vec<usize>,
    ready: Vec<ReadyVertex>,
    /// Page ranges `[first, end)` of selective covers submitted and
    /// not yet resolved, tagged by slab slot. Later flush batches
    /// subtract these before building covers: a request fully inside
    /// them is submitted alone and attaches to the in-flight read via
    /// the mount table instead of joining a new device cover.
    inflight_sel: Vec<(usize, u64, u64)>,
    /// Same for in-flight stream covers; stream sweeps refuse to
    /// bridge gaps across either set (see [`coalesce_stream_around`]).
    inflight_stream: Vec<(usize, u64, u64)>,
    outstanding: usize,
    /// How many of `outstanding` are still buffered in the selective
    /// queue rather than submitted. Counted in logical requests, not
    /// queue entries (a weighted request pushes two parts), so
    /// `outstanding - selective_buffered` is the number of requests
    /// actually at the device.
    selective_buffered: usize,
    /// First global vertex id of the index this session speaks — a
    /// shard's per-mount index is keyed by local ids, so subjects are
    /// rebased before locate calls. 0 for a whole-graph image.
    base: u32,
}

impl<'s> SemIo<'s> {
    fn new(session: IoSession<'s>) -> Self {
        Self::with_base(session, 0)
    }

    fn with_base(session: IoSession<'s>, base: u32) -> Self {
        SemIo {
            session,
            base,
            issue_q: Vec::new(),
            issue_meta: Vec::new(),
            stream_q: Vec::new(),
            stream_meta: Vec::new(),
            stream_edges: SectionSpan::default(),
            stream_attrs: SectionSpan::default(),
            stream_buffered: 0,
            stream_region: None,
            slab: Vec::new(),
            slab_free: Vec::new(),
            pairs: Vec::new(),
            pairs_free: Vec::new(),
            ready: Vec::new(),
            inflight_sel: Vec::new(),
            inflight_stream: Vec::new(),
            outstanding: 0,
            selective_buffered: 0,
        }
    }

    /// Sorted, disjoint union of the recorded in-flight page ranges —
    /// the shape [`subtract_inflight`]/[`coalesce_stream_around`]
    /// require. Ranges from different batches may overlap (a page can
    /// be re-requested while its first cover is still in flight), so
    /// overlaps coalesce here.
    fn inflight_ranges(a: &[(usize, u64, u64)], b: &[(usize, u64, u64)]) -> Vec<PageRange> {
        let mut r: Vec<PageRange> = a.iter().chain(b).map(|&(_, s, e)| (s, e)).collect();
        r.sort_unstable();
        let mut out: Vec<PageRange> = Vec::with_capacity(r.len());
        for (s, e) in r {
            match out.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => out.push((s, e)),
            }
        }
        out
    }

    /// Widest per-section byte span of the buffered stream queue (0
    /// when empty) — the stride trigger compares against this, so a
    /// weighted request's two far-apart sections don't fake a full
    /// stride.
    fn stream_span(&self) -> u64 {
        self.stream_edges.span().max(self.stream_attrs.span())
    }

    fn alloc_pair(&mut self, pair: AttrPair) -> usize {
        if let Some(i) = self.pairs_free.pop() {
            self.pairs[i] = Some(pair);
            i
        } else {
            self.pairs.push(Some(pair));
            self.pairs.len() - 1
        }
    }

    /// Resolves one chunk request into issue-queue ranges (or a ready
    /// completion for empty slices — zero-degree subjects and ranges
    /// clamped to nothing complete without I/O). With `stream` set
    /// the ranges buffer in the stream queue instead, awaiting a
    /// stride-sized sweep cover.
    fn enqueue(
        &mut self,
        req: EdgeRequest,
        index: &GraphIndex,
        counters: &Counters,
        stream: bool,
        vp: u32,
        deltas: Option<&DeltaView>,
    ) {
        if req.len == 0 {
            self.ready.push(ReadyVertex {
                requester: req.requester,
                subject: req.subject,
                vpart: vp,
                dir: req.dir,
                start: req.start,
                count: 0,
                decode: SliceDecode::Raw,
                edges: PageSpan::empty(),
                attrs: req.attrs.then(PageSpan::empty),
                overlay: None,
            });
            return;
        }
        let local = VertexId(req.subject.0 - self.base);
        if deltas.is_some_and(|d| d.list(req.subject, req.dir).is_some()) {
            self.enqueue_overlay(req, local, index, counters, stream, vp);
            return;
        }
        let slice = index.locate_slice(local, req.dir, req.start, req.len);
        let loc = slice.loc;
        debug_assert_eq!(
            loc.degree, req.len,
            "ranges are clamped at request time against the same index"
        );
        if stream {
            self.stream_buffered += 1;
        } else {
            self.outstanding += 1;
            self.selective_buffered += 1;
        }
        let pair = if req.attrs {
            debug_assert_eq!(
                slice.decode,
                SliceDecode::Raw,
                "attribute-bearing blocks are always raw (weighted images force it)"
            );
            let aloc = index
                .locate_attrs_range(local, req.dir, req.start, req.len)
                .expect("attrs requested but image has no attribute section");
            let slot = self.alloc_pair(AttrPair {
                requester: req.requester,
                subject: req.subject,
                vpart: vp,
                dir: req.dir,
                start: req.start,
                edges: None,
                attrs: None,
                overlay: None,
            });
            self.push_part(
                stream,
                aloc.offset,
                aloc.bytes,
                PartMeta {
                    requester: req.requester,
                    subject: req.subject,
                    vpart: vp,
                    dir: req.dir,
                    start: req.start,
                    count: req.len,
                    decode: SliceDecode::Raw,
                    kind: PartKind::Attrs { pair: slot },
                    overlay: None,
                },
                counters,
            );
            Some(slot)
        } else {
            None
        };
        self.push_part(
            stream,
            loc.offset,
            loc.bytes,
            PartMeta {
                requester: req.requester,
                subject: req.subject,
                vpart: vp,
                dir: req.dir,
                start: req.start,
                count: req.len,
                decode: slice.decode,
                kind: PartKind::Edges { pair },
                overlay: None,
            },
            counters,
        );
    }

    /// The overlay variant of [`SemIo::enqueue`]: the subject has
    /// pinned delta ops, so the request's window — already expressed
    /// in *merged* coordinates by the context's clamp — rides aside in
    /// the metadata while the fetch covers the *full* base list (the
    /// delivery-time merge needs every on-SSD edge to map merged
    /// positions; chunked hubs re-fetch the same pages, which the
    /// page cache and in-flight dedup table absorb).
    fn enqueue_overlay(
        &mut self,
        req: EdgeRequest,
        local: VertexId,
        index: &GraphIndex,
        counters: &Counters,
        stream: bool,
        vp: u32,
    ) {
        let overlay = Some((req.start, req.len));
        let base_degree = index.degree(local, req.dir);
        if base_degree == 0 {
            // Nothing on SSD — the merged list is pure adds and
            // delivers without I/O, like the zero-length fast path.
            self.ready.push(ReadyVertex {
                requester: req.requester,
                subject: req.subject,
                vpart: vp,
                dir: req.dir,
                start: 0,
                count: 0,
                decode: SliceDecode::Raw,
                edges: PageSpan::empty(),
                attrs: req.attrs.then(PageSpan::empty),
                overlay,
            });
            return;
        }
        let slice = index.locate_slice(local, req.dir, 0, u64::MAX);
        let loc = slice.loc;
        debug_assert_eq!(
            loc.degree, base_degree,
            "an unclamped slice is the whole list"
        );
        if stream {
            self.stream_buffered += 1;
        } else {
            self.outstanding += 1;
            self.selective_buffered += 1;
        }
        let pair = if req.attrs {
            debug_assert_eq!(
                slice.decode,
                SliceDecode::Raw,
                "attribute-bearing blocks are always raw (weighted images force it)"
            );
            let aloc = index
                .locate_attrs_range(local, req.dir, 0, base_degree)
                .expect("attrs requested but image has no attribute section");
            let slot = self.alloc_pair(AttrPair {
                requester: req.requester,
                subject: req.subject,
                vpart: vp,
                dir: req.dir,
                start: 0,
                edges: None,
                attrs: None,
                overlay,
            });
            self.push_part(
                stream,
                aloc.offset,
                aloc.bytes,
                PartMeta {
                    requester: req.requester,
                    subject: req.subject,
                    vpart: vp,
                    dir: req.dir,
                    start: 0,
                    count: base_degree,
                    decode: SliceDecode::Raw,
                    kind: PartKind::Attrs { pair: slot },
                    overlay,
                },
                counters,
            );
            Some(slot)
        } else {
            None
        };
        self.push_part(
            stream,
            loc.offset,
            loc.bytes,
            PartMeta {
                requester: req.requester,
                subject: req.subject,
                vpart: vp,
                dir: req.dir,
                start: 0,
                count: base_degree,
                decode: slice.decode,
                kind: PartKind::Edges { pair },
                overlay,
            },
            counters,
        );
    }

    /// Appends one byte range + its metadata to the selected queue.
    fn push_part(
        &mut self,
        stream: bool,
        offset: u64,
        bytes: u64,
        meta: PartMeta,
        counters: &Counters,
    ) {
        let (q, metas) = if stream {
            (&mut self.stream_q, &mut self.stream_meta)
        } else {
            (&mut self.issue_q, &mut self.issue_meta)
        };
        metas.push(meta);
        q.push(RangeReq {
            offset,
            bytes,
            meta: (metas.len() - 1) as u32,
        });
        if stream {
            let section = if matches!(meta.kind, PartKind::Attrs { .. }) {
                &mut self.stream_attrs
            } else {
                &mut self.stream_edges
            };
            section.widen(offset, bytes);
        }
        counters.bytes_requested.add(bytes);
    }

    /// Installs one merged cover in the slab and submits it. With
    /// `record` set the cover's page range is remembered as in-flight
    /// until its completion resolves (attach-only covers pass false:
    /// their pages are subsets of ranges already recorded).
    fn submit_cover(
        &mut self,
        m: MergedReq,
        metas: &[PartMeta],
        stream: bool,
        page_bytes: u64,
        record: bool,
        counters: &Counters,
    ) {
        let parts: Vec<(u64, u64, PartMeta)> = m
            .parts
            .iter()
            .map(|p| (p.offset, p.bytes, metas[p.meta as usize]))
            .collect();
        let tag = if let Some(i) = self.slab_free.pop() {
            self.slab[i] = Some(MergedMeta {
                offset: m.offset,
                parts,
            });
            i
        } else {
            self.slab.push(Some(MergedMeta {
                offset: m.offset,
                parts,
            }));
            self.slab.len() - 1
        };
        if record {
            let range = (
                tag,
                m.offset / page_bytes,
                (m.offset + m.bytes - 1) / page_bytes + 1,
            );
            if stream {
                self.inflight_stream.push(range);
            } else {
                self.inflight_sel.push(range);
            }
        }
        counters.issued_requests.inc();
        let submitted = if stream {
            counters.stream_stripes.inc();
            self.session.submit_stream(m.offset, m.bytes, tag as u64)
        } else {
            self.session.submit(m.offset, m.bytes, tag as u64)
        };
        submitted.expect("edge-list request within image bounds");
    }

    /// Sorts, merges, and submits the selective issue queue (§3.6).
    fn flush(&mut self, page_bytes: u64, merge: bool, max_merge_bytes: u64, counters: &Counters) {
        if self.issue_q.is_empty() {
            return;
        }
        let reqs = std::mem::take(&mut self.issue_q);
        let metas = std::mem::take(&mut self.issue_meta);
        self.selective_buffered = 0;
        // Subtract pages this session is already fetching: fully
        // covered requests skip cover-building and ride the existing
        // reads (each page attaches via the mount's in-flight table,
        // or hits the cache if the cover has landed by then).
        let inflight = Self::inflight_ranges(&self.inflight_sel, &[]);
        let (fetch, attached) = subtract_inflight(reqs, page_bytes, &inflight);
        for m in merge_requests(fetch, page_bytes, merge, max_merge_bytes) {
            self.submit_cover(m, &metas, false, page_bytes, true, counters);
        }
        for r in attached {
            let single = MergedReq {
                offset: r.offset,
                bytes: r.bytes,
                parts: vec![r],
            };
            self.submit_cover(single, &metas, false, page_bytes, false, counters);
        }
    }

    /// Coalesces the buffered stream queue into stride covers and
    /// submits them with the cache-bypass policy; the buffered
    /// logical requests become outstanding.
    fn flush_stream(&mut self, page_bytes: u64, stride: u64, counters: &Counters) {
        if self.stream_q.is_empty() {
            return;
        }
        let reqs = std::mem::take(&mut self.stream_q);
        let metas = std::mem::take(&mut self.stream_meta);
        self.stream_edges = SectionSpan::default();
        self.stream_attrs = SectionSpan::default();
        self.outstanding += self.stream_buffered;
        self.stream_buffered = 0;
        // Sweeps bridge gaps but never across pages already being
        // fetched (by earlier covers of either kind): stream reads
        // bypass the cache and the dedup table, so a bridged
        // in-flight page is the one genuine duplicate device read.
        let inflight = Self::inflight_ranges(&self.inflight_sel, &self.inflight_stream);
        for m in coalesce_stream_around(reqs, page_bytes, stride, &inflight) {
            self.submit_cover(m, &metas, true, page_bytes, true, counters);
        }
    }

    /// Turns a SAFS completion back into per-vertex ready entries.
    fn resolve(&mut self, c: Completion) {
        let tag = c.tag as usize;
        let meta = self.slab[tag].take().expect("completion for a live tag");
        self.slab_free.push(tag);
        if let Some(i) = self.inflight_sel.iter().position(|&(t, ..)| t == tag) {
            self.inflight_sel.swap_remove(i);
        } else if let Some(i) = self.inflight_stream.iter().position(|&(t, ..)| t == tag) {
            self.inflight_stream.swap_remove(i);
        }
        for (abs_off, bytes, pm) in meta.parts {
            let span = c
                .span
                .slice((abs_off - meta.offset) as usize, bytes as usize);
            match pm.kind {
                PartKind::Edges { pair: None } => {
                    self.outstanding -= 1;
                    self.ready.push(ReadyVertex {
                        requester: pm.requester,
                        subject: pm.subject,
                        vpart: pm.vpart,
                        dir: pm.dir,
                        start: pm.start,
                        count: pm.count,
                        decode: pm.decode,
                        edges: span,
                        attrs: None,
                        overlay: pm.overlay,
                    });
                }
                PartKind::Edges { pair: Some(slot) } => {
                    let done = {
                        let p = self.pairs[slot].as_mut().expect("live pair");
                        p.edges = Some(span);
                        p.attrs.is_some()
                    };
                    if done {
                        self.finish_pair(slot);
                    }
                }
                PartKind::Attrs { pair: slot } => {
                    let done = {
                        let p = self.pairs[slot].as_mut().expect("live pair");
                        p.attrs = Some(span);
                        p.edges.is_some()
                    };
                    if done {
                        self.finish_pair(slot);
                    }
                }
            }
        }
    }

    fn finish_pair(&mut self, slot: usize) {
        let p = self.pairs[slot].take().expect("live pair");
        self.pairs_free.push(slot);
        self.outstanding -= 1;
        let edges = p.edges.expect("pair complete");
        self.ready.push(ReadyVertex {
            requester: p.requester,
            subject: p.subject,
            vpart: p.vpart,
            dir: p.dir,
            start: p.start,
            count: edges.len() as u64 / 4,
            decode: SliceDecode::Raw,
            edges,
            attrs: Some(p.attrs.expect("pair complete")),
            overlay: p.overlay,
        });
    }

    /// Pops one ready delivery as a borrowable [`PageVertex`], with
    /// the requester and the vertical pass it belongs to.
    fn pop_ready(
        &mut self,
        deltas: Option<&DeltaView>,
    ) -> Option<(VertexId, u32, PageVertex<'static>)> {
        let r = self.ready.pop()?;
        let (requester, vpart) = (r.requester, r.vpart);
        Some((requester, vpart, Self::decode_ready(r, deltas)))
    }

    /// Decodes one ready entry into a deliverable [`PageVertex`] —
    /// shared by [`SemIo::pop_ready`] and the pipelined scheduler's
    /// cross-worker ready pool. Overlaid entries wrap the decoded
    /// (full) base list with the subject's pinned delta ops, windowed
    /// to the request's merged-coordinate slice.
    fn decode_ready(r: ReadyVertex, deltas: Option<&DeltaView>) -> PageVertex<'static> {
        let (subject, dir, overlay) = (r.subject, r.dir, r.overlay);
        let base = match r.decode {
            SliceDecode::Raw => PageVertex::from_span(r.subject, r.dir, r.start, r.edges, r.attrs),
            SliceDecode::Varint(p) => {
                debug_assert!(r.attrs.is_none(), "packed deliveries never carry attrs");
                PageVertex::from_span_packed(
                    r.subject,
                    r.dir,
                    r.start,
                    r.edges,
                    r.count as usize,
                    p,
                )
            }
        };
        match overlay {
            None => base,
            Some((ws, wl)) => {
                let ops = deltas
                    .and_then(|d| d.list(subject, dir))
                    .expect("overlay deliveries run with the view that created them");
                PageVertex::with_overlay(base, Arc::clone(ops), ws, wl as usize)
            }
        }
    }
}
