//! A concurrent query service over one shared SAFS mount.
//!
//! SAFS is designed as a *shared* substrate (§3.1): application
//! threads mail I/O requests to common per-drive I/O threads, and the
//! set-associative page cache — per-set locks, gclock eviction —
//! absorbs overlapping working sets with near-zero locking overhead.
//! The paper leans on exactly this property ("this page cache reduces
//! locking overhead and incurs little overhead when the cache hit
//! rate is low", §3.1; Figures 12–14 quantify the cache and I/O
//! paths). A single [`crate::Engine::run`] uses that machinery for
//! one job; [`GraphService`] turns it into a multi-tenant serving
//! layer: one mount, one in-memory [`GraphIndex`], many vertex
//! programs running *concurrently* against them.
//!
//! What is shared and what is per-query:
//!
//! * **Shared, immutable**: the SAFS mount (page cache + I/O
//!   threads + SSD array) and the compact graph index, both behind
//!   `Arc`. Concurrent queries touching the same edge lists hit each
//!   other's cached pages — the cross-query locality the follow-on
//!   SSD eigensolver work exploits when multiplexing computations
//!   over one mount.
//! * **Per-query**: the vertex program, its [`Init`] activation, an
//!   optional [`EngineConfig`] override, the per-vertex state vector,
//!   and a [`RunStats`] whose cache counters come from a per-query
//!   scope ([`fg_safs::Safs::session_scoped`]) so tenants do not book
//!   each other's traffic.
//!
//! Admission control: at most [`ServiceConfig::max_inflight`] queries
//! run at once; arrivals beyond that wait in a strict FIFO ticket
//! queue (no overtaking). The time spent queued is reported in
//! [`RunStats::queue_wait_ns`] for [`GraphService::run`] /
//! [`GraphService::run_with`], and accumulated service-wide in
//! [`ServiceStatsSnapshot::queue_wait_ns`] for every admission
//! (including the [`GraphService::query`] closure paths, whose
//! arbitrary return type the service cannot patch).

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use fg_format::{GraphIndex, ShardedIndex};
use fg_safs::{CacheStatsSnapshot, Safs, ShardSet};
use fg_types::sync::Counter;
use fg_types::Result;

use crate::config::EngineConfig;
use crate::engine::{Engine, Init};
use crate::program::VertexProgram;
use crate::shard::ShardedEngine;
use crate::stats::RunStats;

/// Tunables of a [`GraphService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Maximum queries running concurrently; arrivals beyond this
    /// queue FIFO. Zero means unlimited (no admission control).
    pub max_inflight: usize,
    /// Engine configuration queries run with unless they override it.
    pub engine: EngineConfig,
}

impl ServiceConfig {
    /// Builder-style: sets the in-flight cap.
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n;
        self
    }

    /// Builder-style: sets the base engine configuration.
    pub fn with_engine(mut self, cfg: EngineConfig) -> Self {
        self.engine = cfg;
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            // Enough concurrency to overlap I/O across tenants without
            // letting a burst of queries thrash the shared cache.
            max_inflight: 4,
            engine: EngineConfig::default(),
        }
    }
}

/// A point-in-time copy of a service's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStatsSnapshot {
    /// Queries admitted past the gate so far.
    pub admitted: u64,
    /// Queries that finished (successfully or not).
    pub completed: u64,
    /// Highest number of queries in flight at once.
    pub peak_inflight: usize,
    /// Total nanoseconds queries spent waiting for admission.
    pub queue_wait_ns: u64,
}

/// FIFO admission gate: tickets are handed out in arrival order and
/// served strictly in ticket order, so a long queue cannot starve an
/// early arrival.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    next_ticket: u64,
    next_admit: u64,
    running: usize,
}

impl Gate {
    fn lock(&self) -> MutexGuard<'_, GateState> {
        // A tenant that panicked inside `Engine::run` must not wedge
        // the whole service; the gate state is a few counters that
        // stay consistent regardless.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Releases one admission slot when a query ends, even by panic.
struct Permit<'s> {
    service: &'s GraphService,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.service.gate.lock();
        st.running -= 1;
        self.service.completed.inc();
        drop(st);
        self.service.gate.cv.notify_all();
    }
}

/// A shared-mount concurrent query service: one [`Safs`] mount and
/// one [`GraphIndex`], many vertex-program queries in flight at once.
///
/// The service is `Sync`; callers invoke [`GraphService::run`] (or
/// [`GraphService::query`]) from as many threads as they like and
/// each call becomes one admitted query.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use flashgraph::{GraphService, ServiceConfig, Init};
/// # fn demo(safs: fg_safs::Safs, index: fg_format::GraphIndex) {
/// let service = Arc::new(GraphService::new(safs, index, ServiceConfig::default()));
/// std::thread::scope(|s| {
///     for root in [0u32, 7, 42] {
///         let service = Arc::clone(&service);
///         s.spawn(move || {
///             service.query(|engine| fg_apps::bfs(engine, fg_types::VertexId(root)))
///         });
///     }
/// });
/// # }
/// ```
pub struct GraphService {
    backend: ServeBackend,
    cfg: ServiceConfig,
    gate: Gate,
    admitted: Counter,
    completed: Counter,
    peak_inflight: Counter,
    queue_wait_ns: Counter,
}

/// What the service serves from: one shared mount, or one mount per
/// shard of a sharded image (each admitted query then runs one
/// [`ShardedEngine`] across all of them).
enum ServeBackend {
    Single {
        safs: Arc<Safs>,
        index: Arc<GraphIndex>,
    },
    Sharded {
        set: Arc<ShardSet>,
        index: Arc<ShardedIndex>,
    },
}

impl ServeBackend {
    fn num_vertices(&self) -> usize {
        match self {
            ServeBackend::Single { index, .. } => index.num_vertices(),
            ServeBackend::Sharded { index, .. } => index.num_vertices(),
        }
    }
}

impl std::fmt::Debug for GraphService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphService")
            .field("vertices", &self.backend.num_vertices())
            .field("max_inflight", &self.cfg.max_inflight)
            .field("running", &self.gate.lock().running)
            .finish_non_exhaustive()
    }
}

impl GraphService {
    /// A service owning `safs` and `index`.
    pub fn new(safs: Safs, index: GraphIndex, cfg: ServiceConfig) -> Self {
        Self::from_shared(Arc::new(safs), Arc::new(index), cfg)
    }

    /// A service over already-shared mount and index (when other
    /// subsystems — loaders, snapshotters — keep their own handles).
    pub fn from_shared(safs: Arc<Safs>, index: Arc<GraphIndex>, cfg: ServiceConfig) -> Self {
        Self::with_backend(ServeBackend::Single { safs, index }, cfg)
    }

    /// A service over a sharded image: one mount per shard, every
    /// admitted query running one [`ShardedEngine`] across all of
    /// them. Concurrent queries share the shard caches and I/O
    /// threads exactly as single-mount tenants share theirs.
    ///
    /// # Panics
    ///
    /// Panics when the mount count differs from the shard count.
    pub fn new_sharded(set: ShardSet, index: ShardedIndex, cfg: ServiceConfig) -> Self {
        Self::from_shared_sharded(Arc::new(set), Arc::new(index), cfg)
    }

    /// [`GraphService::new_sharded`] over already-shared handles.
    ///
    /// # Panics
    ///
    /// Panics when the mount count differs from the shard count.
    pub fn from_shared_sharded(
        set: Arc<ShardSet>,
        index: Arc<ShardedIndex>,
        cfg: ServiceConfig,
    ) -> Self {
        assert_eq!(
            set.len(),
            index.num_shards(),
            "one mount per shard of the index"
        );
        Self::with_backend(ServeBackend::Sharded { set, index }, cfg)
    }

    fn with_backend(backend: ServeBackend, cfg: ServiceConfig) -> Self {
        GraphService {
            backend,
            cfg,
            gate: Gate {
                state: Mutex::new(GateState {
                    next_ticket: 0,
                    next_admit: 0,
                    running: 0,
                }),
                cv: Condvar::new(),
            },
            admitted: Counter::default(),
            completed: Counter::default(),
            peak_inflight: Counter::default(),
            queue_wait_ns: Counter::default(),
        }
    }

    /// Number of vertices in the served graph.
    pub fn num_vertices(&self) -> usize {
        self.backend.num_vertices()
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The shared mount (for mount-wide statistics or resets between
    /// experiment phases).
    ///
    /// # Panics
    ///
    /// Panics on a sharded service (it has no single mount); use
    /// [`GraphService::shard_set`].
    pub fn safs(&self) -> &Safs {
        match &self.backend {
            ServeBackend::Single { safs, .. } => safs,
            ServeBackend::Sharded { .. } => {
                panic!("sharded service has no single mount; use shard_set()")
            }
        }
    }

    /// The shared index.
    ///
    /// # Panics
    ///
    /// Panics on a sharded service; use [`GraphService::sharded_index`].
    pub fn index(&self) -> &Arc<GraphIndex> {
        match &self.backend {
            ServeBackend::Single { index, .. } => index,
            ServeBackend::Sharded { .. } => {
                panic!("sharded service has no single index; use sharded_index()")
            }
        }
    }

    /// The shard mounts of a sharded service, `None` otherwise.
    pub fn shard_set(&self) -> Option<&Arc<ShardSet>> {
        match &self.backend {
            ServeBackend::Sharded { set, .. } => Some(set),
            ServeBackend::Single { .. } => None,
        }
    }

    /// The sharded index of a sharded service, `None` otherwise.
    pub fn sharded_index(&self) -> Option<&Arc<ShardedIndex>> {
        match &self.backend {
            ServeBackend::Sharded { index, .. } => Some(index),
            ServeBackend::Single { .. } => None,
        }
    }

    /// Mount-wide page-cache counters — the aggregate across every
    /// tenant (and, sharded, across every shard cache), where
    /// cross-query hits show up.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        match &self.backend {
            ServeBackend::Single { safs, .. } => safs.cache_stats(),
            ServeBackend::Sharded { set, .. } => set.cache_stats(),
        }
    }

    /// Queries currently past admission.
    pub fn inflight(&self) -> usize {
        self.gate.lock().running
    }

    /// Service counters so far.
    pub fn stats(&self) -> ServiceStatsSnapshot {
        ServiceStatsSnapshot {
            admitted: self.admitted.get(),
            completed: self.completed.get(),
            peak_inflight: self.peak_inflight.get() as usize,
            queue_wait_ns: self.queue_wait_ns.get(),
        }
    }

    /// Runs one query with the service's base engine configuration.
    ///
    /// Blocks while the admission gate is full; the wait is reported
    /// in the returned [`RunStats::queue_wait_ns`].
    ///
    /// # Errors
    ///
    /// Propagates engine errors (bad seeds, I/O failures).
    pub fn run<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
    ) -> Result<(Vec<P::State>, RunStats)> {
        self.run_with(self.cfg.engine, program, init)
    }

    /// Like [`GraphService::run`] with a per-query engine
    /// configuration override (iteration caps, schedulers, merge
    /// knobs — anything in [`EngineConfig`]).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run_with<P: VertexProgram>(
        &self,
        cfg: EngineConfig,
        program: &P,
        init: Init,
    ) -> Result<(Vec<P::State>, RunStats)> {
        let (permit, waited) = self.admit();
        let result = match &self.backend {
            ServeBackend::Single { safs, index } => {
                Engine::new_sem_shared(safs, Arc::clone(index), cfg).run(program, init)
            }
            ServeBackend::Sharded { set, index } => {
                ShardedEngine::new_shared(set, Arc::clone(index), cfg).run(program, init)
            }
        };
        drop(permit);
        result.map(|(states, mut stats)| {
            stats.queue_wait_ns = waited.as_nanos() as u64;
            (states, stats)
        })
    }

    /// Admits one query and hands the closure a borrowed [`Engine`]
    /// over the shared backend — the escape hatch for app wrappers
    /// (`fg_apps`-style functions taking `&Engine`) and multi-phase
    /// runs that need several `run_with_states` calls under a single
    /// admission.
    ///
    /// Because the closure's return type is opaque, any [`RunStats`]
    /// it produces keeps `queue_wait_ns == 0`; the admission wait is
    /// still accounted in the service-wide
    /// [`ServiceStatsSnapshot::queue_wait_ns`]. Use
    /// [`GraphService::run`] when the per-query wait matters.
    pub fn query<R>(&self, f: impl FnOnce(&Engine<'_>) -> R) -> R {
        self.query_with(self.cfg.engine, f)
    }

    /// [`GraphService::query`] with a per-query configuration.
    ///
    /// # Panics
    ///
    /// Panics on a sharded service (the closure is typed against the
    /// single [`Engine`]); use [`GraphService::query_sharded_with`].
    pub fn query_with<R>(&self, cfg: EngineConfig, f: impl FnOnce(&Engine<'_>) -> R) -> R {
        let ServeBackend::Single { safs, index } = &self.backend else {
            panic!("sharded service: use query_sharded / query_sharded_with")
        };
        let (permit, _waited) = self.admit();
        let engine = Engine::new_sem_shared(safs, Arc::clone(index), cfg);
        let out = f(&engine);
        drop(permit);
        out
    }

    /// The sharded counterpart of [`GraphService::query`]: hands the
    /// closure a borrowed [`ShardedEngine`] over the shared shard
    /// mounts. With `fg_apps` generic over
    /// [`crate::GraphEngine`], the same closures serve both.
    ///
    /// # Panics
    ///
    /// Panics on a single-mount service.
    pub fn query_sharded<R>(&self, f: impl FnOnce(&ShardedEngine<'_>) -> R) -> R {
        self.query_sharded_with(self.cfg.engine, f)
    }

    /// [`GraphService::query_sharded`] with a per-query configuration.
    ///
    /// # Panics
    ///
    /// Panics on a single-mount service.
    pub fn query_sharded_with<R>(
        &self,
        cfg: EngineConfig,
        f: impl FnOnce(&ShardedEngine<'_>) -> R,
    ) -> R {
        let ServeBackend::Sharded { set, index } = &self.backend else {
            panic!("single-mount service: use query / query_with")
        };
        let (permit, _waited) = self.admit();
        let engine = ShardedEngine::new_shared(set, Arc::clone(index), cfg);
        let out = f(&engine);
        drop(permit);
        out
    }

    /// Blocks until this caller holds an admission slot, FIFO.
    fn admit(&self) -> (Permit<'_>, Duration) {
        let t0 = Instant::now();
        let mut st = self.gate.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        while st.next_admit != ticket
            || (self.cfg.max_inflight != 0 && st.running >= self.cfg.max_inflight)
        {
            st = self.gate.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.next_admit += 1;
        st.running += 1;
        let running = st.running;
        drop(st);
        // The next ticket holder may also fit (capacity > 1).
        self.gate.cv.notify_all();
        let waited = t0.elapsed();
        self.admitted.inc();
        self.peak_inflight.max(running as u64);
        self.queue_wait_ns.add(waited.as_nanos() as u64);
        (Permit { service: self }, waited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::VertexContext;
    use crate::vertex::PageVertex;
    use fg_format::{load_index, required_capacity, write_image};
    use fg_graph::fixtures;
    use fg_safs::SafsConfig;
    use fg_ssdsim::{ArrayConfig, SsdArray};
    use fg_types::{EdgeDir, VertexId};

    struct Bfs;

    #[derive(Default, Clone, Copy)]
    struct BfsState {
        visited: bool,
        level: u32,
    }

    impl VertexProgram for Bfs {
        type State = BfsState;
        type Msg = ();

        fn run(&self, v: VertexId, state: &mut BfsState, ctx: &mut VertexContext<'_, ()>) {
            if !state.visited {
                state.visited = true;
                state.level = ctx.iteration();
                ctx.request_edges(v, EdgeDir::Out);
            }
        }

        fn run_on_vertex(
            &self,
            _v: VertexId,
            _state: &mut BfsState,
            vertex: &PageVertex<'_>,
            ctx: &mut VertexContext<'_, ()>,
        ) {
            for dst in vertex.edges() {
                ctx.activate(dst);
            }
        }
    }

    fn service(max_inflight: usize) -> GraphService {
        let g = fixtures::path(16);
        let array = SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(&g)).unwrap();
        write_image(&g, &array).unwrap();
        let (_, index) = load_index(&array).unwrap();
        let safs = Safs::new(SafsConfig::default().with_cache_bytes(8 * 4096), array).unwrap();
        safs.reset_stats();
        let cfg = ServiceConfig::default()
            .with_max_inflight(max_inflight)
            .with_engine(EngineConfig::small());
        GraphService::new(safs, index, cfg)
    }

    #[test]
    fn single_query_matches_path_levels() {
        let svc = service(2);
        let (states, stats) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        for (i, s) in states.iter().enumerate() {
            assert!(s.visited);
            assert_eq!(s.level as usize, i);
        }
        assert!(stats.cache.is_some(), "sem runs report scoped cache stats");
        let snapshot = svc.stats();
        assert_eq!(snapshot.admitted, 1);
        assert_eq!(snapshot.completed, 1);
        assert_eq!(svc.inflight(), 0);
    }

    #[test]
    fn admission_cap_bounds_concurrency() {
        let svc = Arc::new(service(1));
        // Formerly SeqCst atomics "to be safe": the peak-overrun
        // assertion relies only on RMW atomicity, which is
        // ordering-independent, and the exact final read happens
        // after the scope joins every worker — a relaxed Counter's
        // contract exactly.
        let live = Arc::new(Counter::default());
        let peak = Arc::new(Counter::default());
        std::thread::scope(|s| {
            for _ in 0..6 {
                let svc = Arc::clone(&svc);
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    svc.query(|engine| {
                        let now = live.inc();
                        peak.max(now);
                        let out = engine.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
                        live.sub(1);
                        out
                    });
                });
            }
        });
        assert_eq!(peak.get(), 1, "cap of 1 was overrun");
        let snapshot = svc.stats();
        assert_eq!(snapshot.admitted, 6);
        assert_eq!(snapshot.completed, 6);
        assert_eq!(snapshot.peak_inflight, 1);
    }

    #[test]
    fn unlimited_cap_admits_everything_at_once() {
        let svc = Arc::new(service(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let svc = Arc::clone(&svc);
                s.spawn(move || svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap());
            }
        });
        assert_eq!(svc.stats().completed, 4);
    }

    #[test]
    fn queue_wait_is_reported() {
        let svc = Arc::new(service(1));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let svc = Arc::clone(&svc);
                s.spawn(move || {
                    let (_, stats) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
                    // Every run reports some (possibly zero) wait.
                    let _ = stats.queue_wait_ns;
                });
            }
        });
        // Total service-side wait is the sum over tenants; with a cap
        // of 1 and 3 queries at least the bookkeeping must have run.
        assert_eq!(svc.stats().admitted, 3);
    }

    #[test]
    fn panicking_tenant_still_books_its_queue_wait() {
        // Queue-wait is booked at admission time — not at completion —
        // so a tenant that panics mid-run cannot lose its wait from
        // the service-wide accounting (and its slot is released).
        let svc = Arc::new(service(1));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let holder = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.query(|_| {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                });
            })
        };
        entered_rx.recv().unwrap();
        let baseline = svc.stats().queue_wait_ns;
        let crasher = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.query::<()>(|_| panic!("tenant crashed after waiting"));
            })
        };
        // Let the crasher reach the admission queue, then free the
        // slot so it gets admitted after a measurable wait.
        std::thread::sleep(Duration::from_millis(20));
        release_tx.send(()).unwrap();
        assert!(crasher.join().is_err(), "tenant must have panicked");
        holder.join().unwrap();
        let snap = svc.stats();
        assert_eq!(snap.admitted, 2);
        assert!(
            snap.queue_wait_ns > baseline,
            "the panicking tenant's admission wait must be booked"
        );
        // The slot is free again: a follow-up query completes.
        let (states, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert!(states[15].visited);
        assert_eq!(svc.inflight(), 0);
    }

    #[test]
    fn permit_released_on_query_panic() {
        let svc = Arc::new(service(1));
        let svc2 = Arc::clone(&svc);
        let r = std::thread::spawn(move || {
            svc2.query::<()>(|_| panic!("tenant crashed"));
        })
        .join();
        assert!(r.is_err());
        // The slot must be free again: a follow-up query completes.
        let (states, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert!(states[15].visited);
        assert_eq!(svc.inflight(), 0);
    }
}
