//! A concurrent query service over one shared SAFS mount.
//!
//! SAFS is designed as a *shared* substrate (§3.1): application
//! threads mail I/O requests to common per-drive I/O threads, and the
//! set-associative page cache — per-set locks, gclock eviction —
//! absorbs overlapping working sets with near-zero locking overhead.
//! The paper leans on exactly this property ("this page cache reduces
//! locking overhead and incurs little overhead when the cache hit
//! rate is low", §3.1; Figures 12–14 quantify the cache and I/O
//! paths). A single [`crate::Engine::run`] uses that machinery for
//! one job; [`GraphService`] turns it into a multi-tenant serving
//! layer: one mount, one in-memory [`GraphIndex`], many vertex
//! programs running *concurrently* against them.
//!
//! What is shared and what is per-query:
//!
//! * **Shared, immutable**: the SAFS mount (page cache + I/O
//!   threads + SSD array) and the compact graph index, both behind
//!   `Arc`. Concurrent queries touching the same edge lists hit each
//!   other's cached pages — and when two tenants miss on the *same*
//!   page at the same time, the mount's in-flight read table merges
//!   them into one device read (see `fg_safs`'s dedup counters).
//! * **Per-query**: the vertex program, its [`Init`] activation, an
//!   optional [`EngineConfig`] override, the per-vertex state vector,
//!   and a [`RunStats`] whose cache counters come from a per-query
//!   scope ([`fg_safs::Safs::session_scoped`]) so tenants do not book
//!   each other's traffic.
//!
//! # Admission: priority classes + weighted fair share
//!
//! At most [`ServiceConfig::max_inflight`] queries run at once.
//! Arrivals beyond that wait in a two-level queue:
//!
//! 1. **Priority class** ([`Priority::High`] / [`Priority::Normal`] /
//!    [`Priority::Low`]): a waiter is only considered once no
//!    higher-class waiter exists. Classes are strict — a saturating
//!    stream of high-priority queries starves low ones by design
//!    (use weights, not classes, for proportional sharing).
//! 2. **Tenant weight** (stride scheduling): within a class, each
//!    tenant carries a virtual *pass* that advances by
//!    `STRIDE / weight` per admission, and the tenant with the
//!    smallest pass goes next — so over time tenants are admitted in
//!    proportion to their configured weights, and a single tenant's
//!    burst cannot monopolize the gate. Queries of one tenant stay
//!    FIFO among themselves.
//!
//! Tenants are declared up front with [`ServiceConfig::with_tenant`]
//! and referenced per query via [`QueryOpts::with_tenant`]; unknown
//! tenants get weight 1 at [`Priority::Normal`].
//!
//! # Deadlines and cancellation
//!
//! A query may carry a [`CancelToken`] ([`QueryOpts::with_cancel`] /
//! [`QueryOpts::with_deadline`]). The token is honored in *both*
//! places a query spends time:
//!
//! * **in the queue** — a waiter whose token fires leaves the queue,
//!   books its wait, bumps [`ServiceStatsSnapshot::cancelled`] or
//!   [`ServiceStatsSnapshot::deadline_expired`], and returns the
//!   matching error without ever consuming a slot;
//! * **in the run** — the engine polls the token at iteration
//!   boundaries (see [`Engine::with_cancel`]) and unwinds at the next
//!   boundary with every piece of shared state (admission slot,
//!   session queues, page cache, busy bits) in a consistent
//!   between-iterations configuration.
//!
//! The time spent queued is reported in [`RunStats::queue_wait_ns`]
//! for the `run*` paths and accumulated service-wide (total plus
//! log2-bucketed percentiles) for every admission, including the
//! [`GraphService::query`] closure paths whose arbitrary return type
//! the service cannot patch.
//!
//! # Mutable graphs: delta ingest and snapshots
//!
//! The on-SSD image is immutable (FlashGraph writes it once, §3), but
//! the *service* accepts edge mutations: [`GraphService::ingest`]
//! appends a [`DeltaBatch`] to an in-memory [`DeltaLog`] whose runs
//! are canonicalized against the base image at ingest time. Queries
//! get **snapshot isolation** for free: at admission each query pins
//! the pair (image generation, delta watermark) under the log lock,
//! and the engine merges the pinned [`DeltaView`] with the on-SSD
//! lists at delivery time (see `EdgeData::Overlay` in the vertex
//! layer) — concurrent ingests and compactions never change what a
//! running query sees. [`QueryOpts::at_watermark`] replays an older
//! watermark explicitly (time travel within the unfolded window).
//!
//! When [`GraphService::pending_deltas`] grows large,
//! [`GraphService::compact_with`] (or a background [`Compactor`])
//! rewrites base + deltas into a fresh image stamped with the next
//! generation and flips the serving handle atomically: the fold of
//! the log and the flip of the [`Handoff`] happen in one critical
//! section, so no query can observe the new image *and* the deltas it
//! already absorbed (or the old image *without* them). Queries pinned
//! to the old generation keep it alive via `Arc` until they drain.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use fg_format::{
    load_index, read_graph, read_list, read_meta, required_capacity_with, write_image_with,
    GraphIndex, ImageMeta, ShardedIndex, WriteOptions,
};
use fg_graph::{BaseLists, DeltaBatch, DeltaLog, DeltaView};
use fg_safs::{CacheStatsSnapshot, Handoff, Safs, ShardSet};
use fg_ssdsim::SsdArray;
use fg_types::sync::Counter;
use fg_types::{CancelCause, CancelToken, EdgeDir, FgError, Result, VertexId};

use crate::config::EngineConfig;
use crate::engine::{Engine, Init};
use crate::program::VertexProgram;
use crate::shard::ShardedEngine;
use crate::stats::RunStats;

/// Admission priority class of a query. Classes are strict: the gate
/// never admits a waiter while a higher class has one queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive foreground queries.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Background/batch work that should yield to everything else.
    Low,
}

impl Priority {
    /// Class rank used by the gate (0 admits first).
    fn class(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Per-tenant admission configuration (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Stride-scheduling weight: a weight-4 tenant is admitted four
    /// times as often as a weight-1 tenant under contention. Zero is
    /// treated as 1.
    pub weight: u32,
    /// Default priority class for the tenant's queries (a query may
    /// override it with [`QueryOpts::with_priority`]).
    pub priority: Priority,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            priority: Priority::Normal,
        }
    }
}

impl TenantConfig {
    /// Builder-style: sets the fair-share weight.
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Builder-style: sets the default priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// Tunables of a [`GraphService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum queries running concurrently; arrivals beyond this
    /// queue (priority classes, then weighted fair share). Zero means
    /// unlimited (no admission control).
    pub max_inflight: usize,
    /// Engine configuration queries run with unless they override it.
    pub engine: EngineConfig,
    /// Declared tenants, in declaration order.
    tenants: Vec<(String, TenantConfig)>,
}

impl ServiceConfig {
    /// Builder-style: sets the in-flight cap.
    #[must_use]
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n;
        self
    }

    /// Builder-style: sets the base engine configuration.
    #[must_use]
    pub fn with_engine(mut self, cfg: EngineConfig) -> Self {
        self.engine = cfg;
        self
    }

    /// Builder-style: declares (or redeclares) a tenant. Queries name
    /// tenants via [`QueryOpts::with_tenant`]; undeclared tenants run
    /// with [`TenantConfig::default`].
    #[must_use]
    pub fn with_tenant(mut self, name: impl Into<String>, tc: TenantConfig) -> Self {
        let name = name.into();
        // The documented contract is "zero is treated as 1"; enforce
        // it at declaration so every reader of the stored config sees
        // a weight the stride division is defined for.
        let tc = TenantConfig {
            weight: tc.weight.max(1),
            ..tc
        };
        match self.tenants.iter_mut().find(|(n, _)| *n == name) {
            Some((_, existing)) => *existing = tc,
            None => self.tenants.push((name, tc)),
        }
        self
    }

    /// The declared configuration of `name`, if any.
    pub fn tenant(&self, name: &str) -> Option<&TenantConfig> {
        self.tenants
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, tc)| tc)
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            // Enough concurrency to overlap I/O across tenants without
            // letting a burst of queries thrash the shared cache.
            max_inflight: 4,
            engine: EngineConfig::default(),
            tenants: Vec::new(),
        }
    }
}

/// Per-query options: tenant attribution, priority, cancellation,
/// and an engine-configuration override. `Default` reproduces the
/// plain [`GraphService::run`] behavior exactly.
#[derive(Debug, Clone, Default)]
pub struct QueryOpts {
    tenant: Option<String>,
    priority: Option<Priority>,
    cancel: Option<CancelToken>,
    engine: Option<EngineConfig>,
    as_of: Option<u64>,
}

impl QueryOpts {
    /// No tenant, default priority, no token, base engine config.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes the query to a tenant declared with
    /// [`ServiceConfig::with_tenant`] (or an ad-hoc one, which gets
    /// the default weight and priority).
    #[must_use]
    pub fn with_tenant(mut self, name: impl Into<String>) -> Self {
        self.tenant = Some(name.into());
        self
    }

    /// Overrides the priority class for this query only.
    #[must_use]
    pub fn with_priority(mut self, p: Priority) -> Self {
        self.priority = Some(p);
        self
    }

    /// Attaches a cancellation token. Keep a clone to cancel from
    /// outside; a token built with [`CancelToken::with_deadline`]
    /// enforces its deadline too.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Shorthand for attaching a fresh deadline-only token
    /// (replaces any previously attached token; to combine an
    /// external cancel handle with a deadline, build the token with
    /// [`CancelToken::with_deadline`] and pass it to
    /// [`QueryOpts::with_cancel`], keeping a clone).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.cancel = Some(CancelToken::with_deadline(deadline));
        self
    }

    /// Per-query engine-configuration override.
    #[must_use]
    pub fn with_engine(mut self, cfg: EngineConfig) -> Self {
        self.engine = Some(cfg);
        self
    }

    /// Pins the query to delta watermark `w` instead of the freshest
    /// view: it sees the base image plus exactly the ingest runs with
    /// sequence `<= w`, so replaying the same watermark later yields a
    /// bit-identical view (watermark 0 = the bare image). Only
    /// watermarks above the last compaction's fold point are
    /// replayable — older runs are baked into the image.
    #[must_use]
    pub fn at_watermark(mut self, w: u64) -> Self {
        self.as_of = Some(w);
        self
    }
}

/// A point-in-time copy of a service's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStatsSnapshot {
    /// Queries admitted past the gate so far.
    pub admitted: u64,
    /// Queries that held a slot and released it (successfully or
    /// not — including runs that ended cancelled or panicking).
    pub completed: u64,
    /// Queries whose [`CancelToken`] fired via an explicit cancel —
    /// while queued (never admitted) or mid-run (`run_opts` paths).
    pub cancelled: u64,
    /// Queries whose deadline passed, in the queue or mid-run.
    pub deadline_expired: u64,
    /// Highest number of queries in flight at once.
    pub peak_inflight: usize,
    /// Total nanoseconds queries spent waiting for admission
    /// (admitted *and* abandoned waits both count).
    pub queue_wait_ns: u64,
    /// Median admission wait, from a log2-bucketed histogram (the
    /// reported value is the matching bucket's upper bound).
    pub queue_wait_p50_ns: u64,
    /// 95th-percentile admission wait (same histogram).
    pub queue_wait_p95_ns: u64,
    /// 99th-percentile admission wait (same histogram).
    pub queue_wait_p99_ns: u64,
}

/// Log2-bucketed wait histogram: bucket `b` holds samples in
/// `[2^(b-1), 2^b)` nanoseconds (bucket 0 holds exact zeros). Cheap
/// enough to record on every admission; percentile reads return the
/// bucket's upper bound, which is plenty for dashboard-grade p50/p95
/// numbers.
struct WaitHistogram {
    buckets: [Counter; 64],
}

impl Default for WaitHistogram {
    fn default() -> Self {
        WaitHistogram {
            buckets: std::array::from_fn(|_| Counter::default()),
        }
    }
}

impl WaitHistogram {
    fn record(&self, ns: u64) {
        let idx = if ns == 0 {
            0
        } else {
            (64 - ns.leading_zeros() as usize).min(63)
        };
        self.buckets[idx].inc();
    }

    /// The upper bound of the bucket containing the `p`-quantile
    /// sample (0 when nothing was recorded yet).
    fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(Counter::get).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64 * p).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if idx == 0 { 0 } else { (1u64 << idx) - 1 };
            }
        }
        u64::MAX
    }
}

/// Virtual-pass step of a weight-1 tenant; a weight-`w` tenant steps
/// by `STRIDE / w`, so larger weights advance slower and are picked
/// more often.
const STRIDE: u64 = 1 << 20;

/// The two-level admission gate (see the module docs).
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    /// Queries currently holding a slot.
    running: usize,
    /// Arrival stamp handed to the next waiter (FIFO within tenant).
    next_seq: u64,
    /// Waiters, in arrival order (the pick scans; queues are short —
    /// bounded by the caller's thread count).
    waiters: Vec<Waiter>,
    /// Per-tenant stride-scheduling passes. Entries persist across
    /// the service's lifetime so a tenant's share is long-run fair.
    passes: HashMap<String, u64>,
}

struct Waiter {
    seq: u64,
    class: u8,
    tenant: String,
}

impl GateState {
    /// The waiter the gate would admit next: lowest class, then
    /// smallest tenant pass, then arrival order.
    fn pick(&self) -> Option<u64> {
        self.waiters
            .iter()
            .min_by_key(|w| {
                (
                    w.class,
                    self.passes.get(&w.tenant).copied().unwrap_or(0),
                    w.seq,
                )
            })
            .map(|w| w.seq)
    }

    fn remove(&mut self, seq: u64) {
        if let Some(i) = self.waiters.iter().position(|w| w.seq == seq) {
            self.waiters.swap_remove(i);
        }
    }

    /// Drops an undeclared tenant's stride pass once its last waiter
    /// leaves the queue. Declared tenants keep their pass so their
    /// share stays long-run fair, but a service whose tenant names
    /// come from request metadata (one per user, session, ...) must
    /// not grow the pass map without bound; the admission-time floor
    /// lift re-seats a returning ad-hoc tenant fairly anyway.
    fn drain_pass(&mut self, tenant: &str, declared: bool) {
        if !declared && !self.waiters.iter().any(|w| w.tenant == tenant) {
            self.passes.remove(tenant);
        }
    }
}

impl Gate {
    fn lock(&self) -> MutexGuard<'_, GateState> {
        // A tenant that panicked inside `Engine::run` must not wedge
        // the whole service; the gate state is a few counters that
        // stay consistent regardless.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Releases one admission slot when a query ends, even by panic.
struct Permit<'s> {
    service: &'s GraphService,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.service.gate.lock();
        st.running -= 1;
        self.service.completed.inc();
        drop(st);
        self.service.gate.cv.notify_all();
    }
}

/// A shared-mount concurrent query service: one [`Safs`] mount and
/// one [`GraphIndex`], many vertex-program queries in flight at once.
///
/// The service is `Sync`; callers invoke [`GraphService::run`] (or
/// [`GraphService::query`]) from as many threads as they like and
/// each call becomes one admitted query.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use flashgraph::{GraphService, ServiceConfig, Init};
/// # fn demo(safs: fg_safs::Safs, index: fg_format::GraphIndex) {
/// let service = Arc::new(GraphService::new(safs, index, ServiceConfig::default()));
/// std::thread::scope(|s| {
///     for root in [0u32, 7, 42] {
///         let service = Arc::clone(&service);
///         s.spawn(move || {
///             service.query(|engine| fg_apps::bfs(engine, fg_types::VertexId(root)))
///         });
///     }
/// });
/// # }
/// ```
pub struct GraphService {
    /// The serving generation: compaction installs a rewritten image
    /// by flipping this handoff; every query pins it at admission and
    /// keeps its pinned generation alive until it drains.
    live: Handoff<ServeBackend>,
    /// Edge mutations not yet folded into an on-SSD image.
    delta: DeltaLog,
    /// Serializes compactions — the flip is atomic, but the rewrite
    /// is long and must not run twice concurrently.
    compacting: Mutex<()>,
    cfg: ServiceConfig,
    gate: Gate,
    admitted: Counter,
    completed: Counter,
    cancelled: Counter,
    deadline_expired: Counter,
    peak_inflight: Counter,
    queue_wait_ns: Counter,
    wait_histo: WaitHistogram,
}

/// What the service serves from: one shared mount, or one mount per
/// shard of a sharded image (each admitted query then runs one
/// [`ShardedEngine`] across all of them).
enum ServeBackend {
    Single {
        safs: Arc<Safs>,
        index: Arc<GraphIndex>,
    },
    Sharded {
        set: Arc<ShardSet>,
        index: Arc<ShardedIndex>,
    },
}

impl ServeBackend {
    fn num_vertices(&self) -> usize {
        match self {
            ServeBackend::Single { index, .. } => index.num_vertices(),
            ServeBackend::Sharded { index, .. } => index.num_vertices(),
        }
    }

    fn is_directed(&self) -> bool {
        match self {
            ServeBackend::Single { index, .. } => index.is_directed(),
            ServeBackend::Sharded { index, .. } => index.is_directed(),
        }
    }
}

/// [`BaseLists`] over one pinned image generation: ingest-time
/// canonicalization reads base adjacency straight off the device.
/// This is a cold path — a batch touches few source vertices, and the
/// page cache absorbs the reads like any query's.
struct ImageBase<'a> {
    backend: &'a ServeBackend,
    /// One meta for a single mount, one per shard otherwise.
    metas: Vec<ImageMeta>,
}

impl<'a> ImageBase<'a> {
    fn over(backend: &'a ServeBackend) -> Result<Self> {
        let metas = match backend {
            ServeBackend::Single { safs, .. } => vec![read_meta(safs.array())?],
            ServeBackend::Sharded { set, .. } => set
                .iter()
                .map(|s| read_meta(s.array()))
                .collect::<Result<_>>()?,
        };
        Ok(ImageBase { backend, metas })
    }
}

impl BaseLists for ImageBase<'_> {
    fn base_out_list(&self, v: VertexId) -> Result<Vec<u32>> {
        match self.backend {
            ServeBackend::Single { safs, index } => {
                read_list(safs.array(), &self.metas[0], index, v, EdgeDir::Out)
            }
            ServeBackend::Sharded { set, index } => {
                let (s, local) = index.local(v);
                read_list(
                    set.shard(s).array(),
                    &self.metas[s],
                    index.shard(s),
                    local,
                    EdgeDir::Out,
                )
            }
        }
    }
}

impl std::fmt::Debug for GraphService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphService")
            .field("vertices", &self.num_vertices())
            .field("generation", &self.live.generation())
            .field("pending_deltas", &self.delta.pending_ops())
            .field("max_inflight", &self.cfg.max_inflight)
            .field("running", &self.gate.lock().running)
            .finish_non_exhaustive()
    }
}

impl GraphService {
    /// A service owning `safs` and `index`.
    pub fn new(safs: Safs, index: GraphIndex, cfg: ServiceConfig) -> Self {
        Self::from_shared(Arc::new(safs), Arc::new(index), cfg)
    }

    /// A service over already-shared mount and index (when other
    /// subsystems — loaders, snapshotters — keep their own handles).
    pub fn from_shared(safs: Arc<Safs>, index: Arc<GraphIndex>, cfg: ServiceConfig) -> Self {
        Self::with_backend(ServeBackend::Single { safs, index }, cfg)
    }

    /// A service over a sharded image: one mount per shard, every
    /// admitted query running one [`ShardedEngine`] across all of
    /// them. Concurrent queries share the shard caches and I/O
    /// threads exactly as single-mount tenants share theirs.
    ///
    /// # Panics
    ///
    /// Panics when the mount count differs from the shard count.
    pub fn new_sharded(set: ShardSet, index: ShardedIndex, cfg: ServiceConfig) -> Self {
        Self::from_shared_sharded(Arc::new(set), Arc::new(index), cfg)
    }

    /// [`GraphService::new_sharded`] over already-shared handles.
    ///
    /// # Panics
    ///
    /// Panics when the mount count differs from the shard count.
    pub fn from_shared_sharded(
        set: Arc<ShardSet>,
        index: Arc<ShardedIndex>,
        cfg: ServiceConfig,
    ) -> Self {
        assert_eq!(
            set.len(),
            index.num_shards(),
            "one mount per shard of the index"
        );
        Self::with_backend(ServeBackend::Sharded { set, index }, cfg)
    }

    fn with_backend(backend: ServeBackend, cfg: ServiceConfig) -> Self {
        let delta = DeltaLog::new(backend.num_vertices(), backend.is_directed());
        GraphService {
            live: Handoff::new(backend),
            delta,
            compacting: Mutex::new(()),
            cfg,
            gate: Gate {
                state: Mutex::new(GateState {
                    running: 0,
                    next_seq: 0,
                    waiters: Vec::new(),
                    passes: HashMap::new(),
                }),
                cv: Condvar::new(),
            },
            admitted: Counter::default(),
            completed: Counter::default(),
            cancelled: Counter::default(),
            deadline_expired: Counter::default(),
            peak_inflight: Counter::default(),
            queue_wait_ns: Counter::default(),
            wait_histo: WaitHistogram::default(),
        }
    }

    /// Number of vertices in the served graph.
    pub fn num_vertices(&self) -> usize {
        self.delta.num_vertices()
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The current generation's mount (for mount-wide statistics or
    /// resets between experiment phases). Compaction replaces the
    /// mount; the returned handle stays valid but stops being the
    /// serving one.
    ///
    /// # Panics
    ///
    /// Panics on a sharded service (it has no single mount); use
    /// [`GraphService::shard_set`].
    pub fn safs(&self) -> Arc<Safs> {
        match self.live.pin().1.as_ref() {
            ServeBackend::Single { safs, .. } => Arc::clone(safs),
            ServeBackend::Sharded { .. } => {
                panic!("sharded service has no single mount; use shard_set()")
            }
        }
    }

    /// The current generation's index.
    ///
    /// # Panics
    ///
    /// Panics on a sharded service; use [`GraphService::sharded_index`].
    pub fn index(&self) -> Arc<GraphIndex> {
        match self.live.pin().1.as_ref() {
            ServeBackend::Single { index, .. } => Arc::clone(index),
            ServeBackend::Sharded { .. } => {
                panic!("sharded service has no single index; use sharded_index()")
            }
        }
    }

    /// The shard mounts of a sharded service, `None` otherwise.
    pub fn shard_set(&self) -> Option<Arc<ShardSet>> {
        match self.live.pin().1.as_ref() {
            ServeBackend::Sharded { set, .. } => Some(Arc::clone(set)),
            ServeBackend::Single { .. } => None,
        }
    }

    /// The sharded index of a sharded service, `None` otherwise.
    pub fn sharded_index(&self) -> Option<Arc<ShardedIndex>> {
        match self.live.pin().1.as_ref() {
            ServeBackend::Sharded { index, .. } => Some(Arc::clone(index)),
            ServeBackend::Single { .. } => None,
        }
    }

    /// Mount-wide page-cache counters — the aggregate across every
    /// tenant (and, sharded, across every shard cache), where
    /// cross-query hits show up. Counters reset when compaction
    /// installs a fresh mount.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        match self.live.pin().1.as_ref() {
            ServeBackend::Single { safs, .. } => safs.cache_stats(),
            ServeBackend::Sharded { set, .. } => set.cache_stats(),
        }
    }

    /// The current image generation (0 until the first compaction).
    pub fn generation(&self) -> u64 {
        self.live.generation()
    }

    /// Sequence number of the latest ingested run (0 = none yet) —
    /// the value [`QueryOpts::at_watermark`] pins against.
    pub fn watermark(&self) -> u64 {
        self.delta.watermark()
    }

    /// Effective delta ops awaiting compaction — the trigger metric
    /// for [`GraphService::compact_with`] / [`Compactor`].
    pub fn pending_deltas(&self) -> u64 {
        self.delta.pending_ops()
    }

    /// Ingests one batch of edge mutations under live serving and
    /// returns the new watermark. The batch becomes one atomic run:
    /// queries admitted before this call never see any of it, queries
    /// admitted after see all of it. Works on both backends; the base
    /// adjacency needed to canonicalize the batch is read through the
    /// pinned generation's mounts.
    ///
    /// # Errors
    ///
    /// [`FgError::VertexOutOfRange`] when an endpoint lies outside
    /// the image's fixed vertex set (the image cannot grow — ingest
    /// mutates edges, not the vertex space), and I/O errors from the
    /// base reads.
    pub fn ingest(&self, batch: &DeltaBatch) -> Result<u64> {
        let (_, backend) = self.live.pin();
        let base = ImageBase::over(&backend)?;
        self.delta.apply(&base, batch)
    }

    /// Folds every pending delta into a fresh on-SSD image and
    /// atomically flips serving to it, returning the new generation.
    /// `provision` supplies a device of at least the requested
    /// capacity for the rewrite. The fold of the log and the flip of
    /// the generation happen in one critical section, so concurrent
    /// admissions pin either (old image, deltas) or (new image, no
    /// deltas) — never a mix. In-flight queries finish on their
    /// pinned generation; its mount dies with its last pin.
    ///
    /// Returns the current generation without rewriting anything when
    /// the log is empty.
    ///
    /// # Errors
    ///
    /// [`FgError::InvalidConfig`] on a sharded service (per-shard
    /// compaction is future work), read-back/write errors from the
    /// image pass, and whatever `provision` returns.
    pub fn compact_with(&self, provision: impl FnOnce(u64) -> Result<SsdArray>) -> Result<u64> {
        let _guard = self.compacting.lock().unwrap_or_else(|e| e.into_inner());
        // Pin generation and view at one coherent point; everything
        // ingested after this snapshot stays in the log for the next
        // compaction.
        let ((gen, backend), view) = self.delta.snapshot_with(|| self.live.pin());
        let ServeBackend::Single { safs, index } = backend.as_ref() else {
            return Err(FgError::InvalidConfig(
                "compaction rewrites a single-mount image; shard-wise compaction is not supported"
                    .into(),
            ));
        };
        if view.is_empty() {
            return Ok(gen);
        }
        let meta = read_meta(safs.array())?;
        let base = read_graph(safs.array(), &meta, index)?;
        let merged = DeltaLog::union(&base, &view);
        let mut opts = WriteOptions {
            format: meta.format,
            generation: (gen + 1) as u32,
            ..WriteOptions::default()
        };
        if meta.skip_interval != 0 {
            opts.skip_interval = meta.skip_interval;
        }
        let array = provision(required_capacity_with(&merged, &opts))?;
        write_image_with(&merged, &array, &opts)?;
        let (_, new_index) = load_index(&array)?;
        let new_safs = Safs::new(*safs.config(), array)?;
        let next = ServeBackend::Single {
            safs: Arc::new(new_safs),
            index: Arc::new(new_index),
        };
        // Atomic cutover: drop the folded runs and install the new
        // image inside one log critical section (see the module docs).
        self.delta.fold(view.watermark(), || {
            self.live.flip(next);
        });
        Ok(gen + 1)
    }

    /// The (pinned backend, pinned delta view) pair of one admitted
    /// query — the snapshot it runs against.
    fn pin_view(&self, opts: &QueryOpts) -> (Arc<ServeBackend>, Arc<DeltaView>) {
        match opts.as_of {
            // Time travel: an explicit watermark replays a fixed view.
            Some(w) => (self.live.pin().1, self.delta.view(w)),
            // Freshest snapshot: the pin runs under the log lock so a
            // concurrent compaction's fold+flip cannot interleave.
            None => {
                let ((_, backend), view) = self.delta.snapshot_with(|| self.live.pin());
                (backend, view)
            }
        }
    }

    /// Queries currently past admission.
    pub fn inflight(&self) -> usize {
        self.gate.lock().running
    }

    /// Queries currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.gate.lock().waiters.len()
    }

    /// Service counters so far.
    pub fn stats(&self) -> ServiceStatsSnapshot {
        ServiceStatsSnapshot {
            admitted: self.admitted.get(),
            completed: self.completed.get(),
            cancelled: self.cancelled.get(),
            deadline_expired: self.deadline_expired.get(),
            peak_inflight: self.peak_inflight.get() as usize,
            queue_wait_ns: self.queue_wait_ns.get(),
            queue_wait_p50_ns: self.wait_histo.percentile(0.50),
            queue_wait_p95_ns: self.wait_histo.percentile(0.95),
            queue_wait_p99_ns: self.wait_histo.percentile(0.99),
        }
    }

    /// Runs one query with the service's base engine configuration.
    ///
    /// Blocks while the admission gate is full; the wait is reported
    /// in the returned [`RunStats::queue_wait_ns`].
    ///
    /// # Errors
    ///
    /// Propagates engine errors (bad seeds, I/O failures).
    pub fn run<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
    ) -> Result<(Vec<P::State>, RunStats)> {
        self.run_opts(program, init, QueryOpts::new())
    }

    /// Like [`GraphService::run`] with a per-query engine
    /// configuration override (iteration caps, schedulers, merge
    /// knobs — anything in [`EngineConfig`]).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run_with<P: VertexProgram>(
        &self,
        cfg: EngineConfig,
        program: &P,
        init: Init,
    ) -> Result<(Vec<P::State>, RunStats)> {
        self.run_opts(program, init, QueryOpts::new().with_engine(cfg))
    }

    /// The full-control run: tenant attribution, priority,
    /// cancellation/deadline, engine override — see [`QueryOpts`].
    ///
    /// # Errors
    ///
    /// [`fg_types::FgError::Cancelled`] /
    /// [`fg_types::FgError::DeadlineExpired`] when the query's token
    /// fires while it waits for admission or between iterations of
    /// its run (the slot is released and all shared state is left at
    /// a consistent iteration boundary); engine errors otherwise.
    pub fn run_opts<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
        opts: QueryOpts,
    ) -> Result<(Vec<P::State>, RunStats)> {
        let token = opts.cancel.clone().unwrap_or_default();
        let (permit, waited) = self.admit(&opts, &token)?;
        // Snapshot isolation: pin (image generation, delta watermark)
        // at admission — the run sees exactly this view no matter how
        // much is ingested or compacted while it executes.
        let (backend, view) = self.pin_view(&opts);
        let cfg = opts.engine.unwrap_or(self.cfg.engine);
        let result = match backend.as_ref() {
            ServeBackend::Single { safs, index } => {
                Engine::new_sem_shared(safs, Arc::clone(index), cfg)
                    .with_deltas(view)
                    .with_cancel(token.clone())
                    .run(program, init)
            }
            ServeBackend::Sharded { set, index } => {
                ShardedEngine::new_shared(set, Arc::clone(index), cfg)
                    .with_deltas(view)
                    .with_cancel(token.clone())
                    .run(program, init)
            }
        };
        drop(permit);
        match result {
            Err(e) => {
                if let Some(cause) = cancel_cause_of(&e) {
                    self.book_abort(cause);
                }
                Err(e)
            }
            Ok((states, mut stats)) => {
                stats.queue_wait_ns = waited.as_nanos() as u64;
                Ok((states, stats))
            }
        }
    }

    /// Admits one query and hands the closure a borrowed [`Engine`]
    /// over the shared backend — the escape hatch for app wrappers
    /// (`fg_apps`-style functions taking `&Engine`) and multi-phase
    /// runs that need several `run_with_states` calls under a single
    /// admission.
    ///
    /// Because the closure's return type is opaque, any [`RunStats`]
    /// it produces keeps `queue_wait_ns == 0`; the admission wait is
    /// still accounted in the service-wide
    /// [`ServiceStatsSnapshot::queue_wait_ns`]. Use
    /// [`GraphService::run`] when the per-query wait matters.
    pub fn query<R>(&self, f: impl FnOnce(&Engine<'_>) -> R) -> R {
        self.query_with(self.cfg.engine, f)
    }

    /// [`GraphService::query`] with a per-query configuration.
    ///
    /// # Panics
    ///
    /// Panics on a sharded service (the closure is typed against the
    /// single [`Engine`]); use [`GraphService::query_sharded_with`].
    pub fn query_with<R>(&self, cfg: EngineConfig, f: impl FnOnce(&Engine<'_>) -> R) -> R {
        self.query_opts(QueryOpts::new().with_engine(cfg), f)
            .expect("admission without a token cannot fail")
    }

    /// [`GraphService::query`] with full per-query options. The
    /// engine handed to the closure carries the query's token, so
    /// `engine.run(...)` calls inside it error with
    /// [`fg_types::FgError::Cancelled`] at the next iteration
    /// boundary once the token fires.
    ///
    /// # Errors
    ///
    /// [`fg_types::FgError::Cancelled`] /
    /// [`fg_types::FgError::DeadlineExpired`] when the token fires
    /// before admission (the closure then never runs).
    ///
    /// # Panics
    ///
    /// Panics on a sharded service; use
    /// [`GraphService::query_sharded_opts`].
    pub fn query_opts<R>(&self, opts: QueryOpts, f: impl FnOnce(&Engine<'_>) -> R) -> Result<R> {
        let token = opts.cancel.clone().unwrap_or_default();
        let (permit, _waited) = self.admit(&opts, &token)?;
        let (backend, view) = self.pin_view(&opts);
        let ServeBackend::Single { safs, index } = backend.as_ref() else {
            panic!("sharded service: use query_sharded / query_sharded_opts")
        };
        let cfg = opts.engine.unwrap_or(self.cfg.engine);
        let engine = Engine::new_sem_shared(safs, Arc::clone(index), cfg)
            .with_deltas(view)
            .with_cancel(token);
        let out = f(&engine);
        drop(permit);
        Ok(out)
    }

    /// The sharded counterpart of [`GraphService::query`]: hands the
    /// closure a borrowed [`ShardedEngine`] over the shared shard
    /// mounts. With `fg_apps` generic over
    /// [`crate::GraphEngine`], the same closures serve both.
    ///
    /// # Panics
    ///
    /// Panics on a single-mount service.
    pub fn query_sharded<R>(&self, f: impl FnOnce(&ShardedEngine<'_>) -> R) -> R {
        self.query_sharded_with(self.cfg.engine, f)
    }

    /// [`GraphService::query_sharded`] with a per-query configuration.
    ///
    /// # Panics
    ///
    /// Panics on a single-mount service.
    pub fn query_sharded_with<R>(
        &self,
        cfg: EngineConfig,
        f: impl FnOnce(&ShardedEngine<'_>) -> R,
    ) -> R {
        self.query_sharded_opts(QueryOpts::new().with_engine(cfg), f)
            .expect("admission without a token cannot fail")
    }

    /// [`GraphService::query_sharded`] with full per-query options
    /// (the sharded twin of [`GraphService::query_opts`]).
    ///
    /// # Errors
    ///
    /// [`fg_types::FgError::Cancelled`] /
    /// [`fg_types::FgError::DeadlineExpired`] when the token fires
    /// before admission.
    ///
    /// # Panics
    ///
    /// Panics on a single-mount service.
    pub fn query_sharded_opts<R>(
        &self,
        opts: QueryOpts,
        f: impl FnOnce(&ShardedEngine<'_>) -> R,
    ) -> Result<R> {
        let token = opts.cancel.clone().unwrap_or_default();
        let (permit, _waited) = self.admit(&opts, &token)?;
        let (backend, view) = self.pin_view(&opts);
        let ServeBackend::Sharded { set, index } = backend.as_ref() else {
            panic!("single-mount service: use query / query_opts")
        };
        let cfg = opts.engine.unwrap_or(self.cfg.engine);
        let engine = ShardedEngine::new_shared(set, Arc::clone(index), cfg)
            .with_deltas(view)
            .with_cancel(token);
        let out = f(&engine);
        drop(permit);
        Ok(out)
    }

    /// The tenant identity, fair-share weight, and effective priority
    /// of a query.
    fn resolve(&self, opts: &QueryOpts) -> (String, u32, Priority) {
        let name = opts.tenant.clone().unwrap_or_default();
        let tc = self.cfg.tenant(&name).copied().unwrap_or_default();
        let priority = opts.priority.unwrap_or(tc.priority);
        (name, tc.weight.max(1), priority)
    }

    /// Books a query that ended on its token (queued or mid-run).
    fn book_abort(&self, cause: CancelCause) {
        match cause {
            CancelCause::Cancelled => self.cancelled.inc(),
            CancelCause::DeadlineExpired => self.deadline_expired.inc(),
        };
    }

    /// Books an admission wait into the total and the histogram.
    fn book_wait(&self, waited: Duration) {
        let ns = waited.as_nanos() as u64;
        self.queue_wait_ns.add(ns);
        self.wait_histo.record(ns);
    }

    /// Blocks until this caller holds an admission slot (or its token
    /// fires): priority classes first, then weighted fair share among
    /// tenants, FIFO within one tenant.
    ///
    /// # Errors
    ///
    /// The token's verdict, with the wait booked and the waiter
    /// removed — an abandoned wait never consumes a slot.
    fn admit(&self, opts: &QueryOpts, token: &CancelToken) -> Result<(Permit<'_>, Duration)> {
        let t0 = Instant::now();
        // A token that has already fired never enters the queue.
        if let Some(cause) = token.cause() {
            self.book_abort(cause);
            self.book_wait(t0.elapsed());
            return Err(cause.into());
        }
        if self.cfg.max_inflight == 0 {
            // Unlimited: no queueing, but the books still balance.
            let mut st = self.gate.lock();
            st.running += 1;
            let running = st.running;
            drop(st);
            let waited = t0.elapsed();
            self.admitted.inc();
            self.peak_inflight.max(running as u64);
            self.book_wait(waited);
            return Ok((Permit { service: self }, waited));
        }
        let (tenant, weight, priority) = self.resolve(opts);
        let declared = self.cfg.tenant(&tenant).is_some();
        let mut st = self.gate.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.waiters.push(Waiter {
            seq,
            class: priority.class(),
            tenant: tenant.clone(),
        });
        loop {
            if st.running < self.cfg.max_inflight && st.pick() == Some(seq) {
                // The grant can arrive long after the token fired —
                // a slot freeing is what wakes us. Re-check before
                // taking the slot, so an already-dead query neither
                // occupies it nor spawns an engine it would
                // immediately unwind.
                if let Some(cause) = token.cause() {
                    st.remove(seq);
                    st.drain_pass(&tenant, declared);
                    drop(st);
                    self.gate.cv.notify_all();
                    self.book_abort(cause);
                    self.book_wait(t0.elapsed());
                    return Err(cause.into());
                }
                st.remove(seq);
                st.running += 1;
                // Advance the tenant's pass; lift it to the floor of
                // its waiting peers first so a long-idle (or brand
                // new) tenant gets its share promptly without
                // replaying the whole backlog it never queued for.
                let floor = st
                    .waiters
                    .iter()
                    .map(|w| st.passes.get(&w.tenant).copied().unwrap_or(0))
                    .min()
                    .unwrap_or(0);
                let pass = st.passes.entry(tenant.clone()).or_insert(0);
                *pass = (*pass).max(floor) + STRIDE / u64::from(weight);
                st.drain_pass(&tenant, declared);
                let running = st.running;
                drop(st);
                // The next pick may also fit (capacity > 1), and our
                // admission changed the pass landscape.
                self.gate.cv.notify_all();
                let waited = t0.elapsed();
                self.admitted.inc();
                self.peak_inflight.max(running as u64);
                self.book_wait(waited);
                return Ok((Permit { service: self }, waited));
            }
            if let Some(cause) = token.cause() {
                st.remove(seq);
                st.drain_pass(&tenant, declared);
                drop(st);
                // Our departure may change the pick for a waiter that
                // is parked; wake everyone to re-evaluate.
                self.gate.cv.notify_all();
                self.book_abort(cause);
                self.book_wait(t0.elapsed());
                return Err(cause.into());
            }
            // Bounded waits double as the deadline/cancel poll: a
            // token fired by a thread that never touches the gate is
            // still noticed within one poll interval.
            let poll = if opts.cancel.is_none() {
                // No token at all: only gate events can unblock us.
                Duration::from_secs(3600)
            } else {
                match token.time_left() {
                    Some(left) => left.clamp(Duration::from_micros(100), QUEUE_POLL),
                    None => QUEUE_POLL,
                }
            };
            let (g, _) = self
                .gate
                .cv
                .wait_timeout(st, poll)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
    }
}

/// A background compaction thread: polls the service's pending-delta
/// count and rewrites the image into the next generation whenever it
/// crosses the threshold. The flip is atomic; in-flight queries keep
/// serving from their pinned generation. Dropping (or
/// [`Compactor::stop`]ping) the handle signals the thread and joins
/// it.
pub struct Compactor {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
    compactions: Arc<Counter>,
}

impl Compactor {
    /// Spawns a compactor over `svc` that rewrites whenever
    /// [`GraphService::pending_deltas`] reaches `threshold`, checking
    /// every `poll`. `provision` supplies a fresh device of at least
    /// the requested capacity for each rewrite (see
    /// [`GraphService::compact_with`]); a failed rewrite is retried
    /// at the next poll.
    pub fn spawn(
        svc: Arc<GraphService>,
        threshold: u64,
        poll: Duration,
        provision: impl Fn(u64) -> Result<SsdArray> + Send + 'static,
    ) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let compactions = Arc::new(Counter::default());
        let handle = {
            let stop = Arc::clone(&stop);
            let done = Arc::clone(&compactions);
            std::thread::spawn(move || loop {
                {
                    let (lock, cv) = &*stop;
                    let stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                    if *stopped {
                        break;
                    }
                    let (stopped, _) = cv
                        .wait_timeout(stopped, poll)
                        .unwrap_or_else(|e| e.into_inner());
                    if *stopped {
                        break;
                    }
                }
                if svc.pending_deltas() >= threshold.max(1) {
                    let before = svc.generation();
                    if svc.compact_with(&provision).is_ok_and(|g| g > before) {
                        done.inc();
                    }
                }
            })
        };
        Compactor {
            stop,
            handle: Some(handle),
            compactions,
        }
    }

    /// Generations this compactor has installed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions.get()
    }

    /// Signals the thread and joins it (also done on drop).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
        let _ = handle.join();
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How often a queued waiter re-checks its cancellation token when no
/// gate event wakes it.
const QUEUE_POLL: Duration = Duration::from_millis(5);

/// The cancellation verdict inside an error, if that is what it is.
fn cancel_cause_of(e: &fg_types::FgError) -> Option<CancelCause> {
    match e {
        fg_types::FgError::Cancelled => Some(CancelCause::Cancelled),
        fg_types::FgError::DeadlineExpired => Some(CancelCause::DeadlineExpired),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::VertexContext;
    use crate::vertex::PageVertex;
    use fg_format::{load_index, required_capacity, write_image};
    use fg_graph::fixtures;
    use fg_safs::SafsConfig;
    use fg_ssdsim::{ArrayConfig, SsdArray};
    use fg_types::{EdgeDir, FgError, VertexId};

    struct Bfs;

    #[derive(Default, Clone, Copy)]
    struct BfsState {
        visited: bool,
        level: u32,
    }

    impl VertexProgram for Bfs {
        type State = BfsState;
        type Msg = ();

        fn run(&self, v: VertexId, state: &mut BfsState, ctx: &mut VertexContext<'_, ()>) {
            if !state.visited {
                state.visited = true;
                state.level = ctx.iteration();
                ctx.request_edges(v, EdgeDir::Out);
            }
        }

        fn run_on_vertex(
            &self,
            _v: VertexId,
            _state: &mut BfsState,
            vertex: &PageVertex<'_>,
            ctx: &mut VertexContext<'_, ()>,
        ) {
            for dst in vertex.edges() {
                ctx.activate(dst);
            }
        }
    }

    /// A BFS that pulls its own plug in iteration `at`: determinism
    /// for mid-run cancellation tests without sleeping.
    struct SelfCancellingBfs {
        token: CancelToken,
        at: u32,
    }

    impl VertexProgram for SelfCancellingBfs {
        type State = BfsState;
        type Msg = ();

        fn run(&self, v: VertexId, state: &mut BfsState, ctx: &mut VertexContext<'_, ()>) {
            if ctx.iteration() >= self.at {
                self.token.cancel();
            }
            if !state.visited {
                state.visited = true;
                state.level = ctx.iteration();
                ctx.request_edges(v, EdgeDir::Out);
            }
        }

        fn run_on_vertex(
            &self,
            _v: VertexId,
            _state: &mut BfsState,
            vertex: &PageVertex<'_>,
            ctx: &mut VertexContext<'_, ()>,
        ) {
            for dst in vertex.edges() {
                ctx.activate(dst);
            }
        }
    }

    fn service(max_inflight: usize) -> GraphService {
        service_cfg(
            ServiceConfig::default()
                .with_max_inflight(max_inflight)
                .with_engine(EngineConfig::small()),
        )
    }

    fn service_cfg(cfg: ServiceConfig) -> GraphService {
        let g = fixtures::path(16);
        let array = SsdArray::new_mem(ArrayConfig::small_test(), required_capacity(&g)).unwrap();
        write_image(&g, &array).unwrap();
        let (_, index) = load_index(&array).unwrap();
        let safs = Safs::new(SafsConfig::default().with_cache_bytes(8 * 4096), array).unwrap();
        safs.reset_stats();
        GraphService::new(safs, index, cfg)
    }

    #[test]
    fn single_query_matches_path_levels() {
        let svc = service(2);
        let (states, stats) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        for (i, s) in states.iter().enumerate() {
            assert!(s.visited);
            assert_eq!(s.level as usize, i);
        }
        assert!(stats.cache.is_some(), "sem runs report scoped cache stats");
        let snapshot = svc.stats();
        assert_eq!(snapshot.admitted, 1);
        assert_eq!(snapshot.completed, 1);
        assert_eq!(snapshot.cancelled, 0);
        assert_eq!(snapshot.deadline_expired, 0);
        assert_eq!(svc.inflight(), 0);
    }

    #[test]
    fn admission_cap_bounds_concurrency() {
        let svc = Arc::new(service(1));
        // Formerly SeqCst atomics "to be safe": the peak-overrun
        // assertion relies only on RMW atomicity, which is
        // ordering-independent, and the exact final read happens
        // after the scope joins every worker — a relaxed Counter's
        // contract exactly.
        let live = Arc::new(Counter::default());
        let peak = Arc::new(Counter::default());
        std::thread::scope(|s| {
            for _ in 0..6 {
                let svc = Arc::clone(&svc);
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    svc.query(|engine| {
                        let now = live.inc();
                        peak.max(now);
                        let out = engine.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
                        live.sub(1);
                        out
                    });
                });
            }
        });
        assert_eq!(peak.get(), 1, "cap of 1 was overrun");
        let snapshot = svc.stats();
        assert_eq!(snapshot.admitted, 6);
        assert_eq!(snapshot.completed, 6);
        assert_eq!(snapshot.peak_inflight, 1);
    }

    #[test]
    fn unlimited_cap_admits_everything_at_once() {
        let svc = Arc::new(service(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let svc = Arc::clone(&svc);
                s.spawn(move || svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap());
            }
        });
        assert_eq!(svc.stats().completed, 4);
    }

    #[test]
    fn queue_wait_is_reported() {
        let svc = Arc::new(service(1));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let svc = Arc::clone(&svc);
                s.spawn(move || {
                    let (_, stats) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
                    // Every run reports some (possibly zero) wait.
                    let _ = stats.queue_wait_ns;
                });
            }
        });
        // Total service-side wait is the sum over tenants; with a cap
        // of 1 and 3 queries at least the bookkeeping must have run.
        let snap = svc.stats();
        assert_eq!(snap.admitted, 3);
        // Three samples landed in the histogram, so the percentiles
        // are coherent: p50 <= p95 <= p99.
        assert!(snap.queue_wait_p50_ns <= snap.queue_wait_p95_ns);
        assert!(snap.queue_wait_p95_ns <= snap.queue_wait_p99_ns);
    }

    #[test]
    fn panicking_tenant_still_books_its_queue_wait() {
        // Queue-wait is booked at admission time — not at completion —
        // so a tenant that panics mid-run cannot lose its wait from
        // the service-wide accounting (and its slot is released).
        let svc = Arc::new(service(1));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let holder = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.query(|_| {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                });
            })
        };
        entered_rx.recv().unwrap();
        let baseline = svc.stats().queue_wait_ns;
        let crasher = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.query::<()>(|_| panic!("tenant crashed after waiting"));
            })
        };
        // Let the crasher reach the admission queue, then free the
        // slot so it gets admitted after a measurable wait.
        while svc.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(5));
        release_tx.send(()).unwrap();
        assert!(crasher.join().is_err(), "tenant must have panicked");
        holder.join().unwrap();
        let snap = svc.stats();
        assert_eq!(snap.admitted, 2);
        assert!(
            snap.queue_wait_ns > baseline,
            "the panicking tenant's admission wait must be booked"
        );
        // The slot is free again: a follow-up query completes.
        let (states, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert!(states[15].visited);
        assert_eq!(svc.inflight(), 0);
    }

    #[test]
    fn permit_released_on_query_panic() {
        let svc = Arc::new(service(1));
        let svc2 = Arc::clone(&svc);
        let r = std::thread::spawn(move || {
            svc2.query::<()>(|_| panic!("tenant crashed"));
        })
        .join();
        assert!(r.is_err());
        // The slot must be free again: a follow-up query completes.
        let (states, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert!(states[15].visited);
        assert_eq!(svc.inflight(), 0);
    }

    #[test]
    fn cancelled_in_queue_frees_no_slot_and_books_wait() {
        let svc = Arc::new(service(1));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let holder = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.query(|_| {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                });
            })
        };
        entered_rx.recv().unwrap();
        let baseline = svc.stats().queue_wait_ns;
        let token = CancelToken::new();
        let waiter = {
            let svc = Arc::clone(&svc);
            let token = token.clone();
            std::thread::spawn(move || {
                svc.run_opts(
                    &Bfs,
                    Init::Seeds(vec![VertexId(0)]),
                    QueryOpts::new().with_cancel(token),
                )
            })
        };
        while svc.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        token.cancel();
        let out = waiter.join().unwrap();
        assert!(matches!(out, Err(FgError::Cancelled)));
        let snap = svc.stats();
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.admitted, 1, "the cancelled waiter was never admitted");
        assert!(
            snap.queue_wait_ns > baseline,
            "the abandoned wait must be booked"
        );
        assert_eq!(svc.queued(), 0, "the waiter left the queue");
        // The holder still runs; releasing it leaves a clean gate.
        release_tx.send(()).unwrap();
        holder.join().unwrap();
        assert_eq!(svc.inflight(), 0);
        let (states, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert!(states[15].visited);
    }

    #[test]
    fn deadline_expires_in_queue() {
        let svc = Arc::new(service(1));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let holder = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.query(|_| {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                });
            })
        };
        entered_rx.recv().unwrap();
        let out = svc.run_opts(
            &Bfs,
            Init::Seeds(vec![VertexId(0)]),
            QueryOpts::new().with_deadline(Instant::now() + Duration::from_millis(15)),
        );
        assert!(matches!(out, Err(FgError::DeadlineExpired)));
        assert_eq!(svc.stats().deadline_expired, 1);
        assert_eq!(svc.queued(), 0);
        release_tx.send(()).unwrap();
        holder.join().unwrap();
        assert_eq!(svc.inflight(), 0);
    }

    #[test]
    fn pre_fired_token_is_rejected_before_queueing() {
        // Also covers the unlimited-cap path: the token verdict comes
        // before any gate interaction.
        for cap in [0, 2] {
            let svc = service(cap);
            let token = CancelToken::new();
            token.cancel();
            let out = svc.run_opts(
                &Bfs,
                Init::Seeds(vec![VertexId(0)]),
                QueryOpts::new().with_cancel(token),
            );
            assert!(matches!(out, Err(FgError::Cancelled)));
            let snap = svc.stats();
            assert_eq!(snap.cancelled, 1);
            assert_eq!(snap.admitted, 0);
            assert_eq!(svc.inflight(), 0);
        }
    }

    #[test]
    fn cancelled_mid_run_frees_slot_and_leaves_consistent_stats() {
        let svc = service(1);
        let token = CancelToken::new();
        let out = svc.run_opts(
            &Bfs,
            Init::Seeds(vec![VertexId(0)]),
            QueryOpts::new().with_cancel(token.clone()),
        );
        assert!(out.is_ok(), "an unfired token does not disturb a run");
        let program = SelfCancellingBfs {
            token: token.clone(),
            at: 1,
        };
        let out = svc.run_opts(
            &program,
            Init::Seeds(vec![VertexId(0)]),
            QueryOpts::new().with_cancel(token),
        );
        assert!(matches!(out, Err(FgError::Cancelled)));
        let snap = svc.stats();
        assert_eq!(snap.cancelled, 1);
        // Both queries were admitted and both released their slot —
        // the mid-run cancel unwound through the Permit.
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.completed, 2);
        assert_eq!(svc.inflight(), 0);
        // Shared session/cache state stayed consistent: the mount's
        // cache books every lookup as a hit or a miss, nothing lost.
        let cache = svc.cache_stats();
        assert_eq!(cache.lookups, cache.hits + cache.misses);
        // And the slot is genuinely reusable.
        let (states, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert!(states[15].visited);
    }

    #[test]
    fn query_opts_hands_the_token_to_the_engine() {
        let svc = service(2);
        let token = CancelToken::new();
        token.cancel();
        // Fired before admission: closure never runs.
        let ran = std::cell::Cell::new(false);
        let out = svc.query_opts(QueryOpts::new().with_cancel(token), |_| ran.set(true));
        assert!(matches!(out, Err(FgError::Cancelled)));
        assert!(!ran.get());
        // Fired mid-closure: runs on the handed engine error out.
        let token = CancelToken::new();
        let out = svc
            .query_opts(QueryOpts::new().with_cancel(token.clone()), |engine| {
                token.cancel();
                engine.run(&Bfs, Init::Seeds(vec![VertexId(0)]))
            })
            .unwrap();
        assert!(matches!(out, Err(FgError::Cancelled)));
        assert_eq!(svc.inflight(), 0);
    }

    #[test]
    fn high_priority_overtakes_low_in_the_queue() {
        let svc = Arc::new(service(1));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let holder = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.query(|_| {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                });
            })
        };
        entered_rx.recv().unwrap();
        std::thread::scope(|s| {
            // Low-priority waiters arrive first...
            for _ in 0..2 {
                let svc = Arc::clone(&svc);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    svc.query_opts(QueryOpts::new().with_priority(Priority::Low), |_| {
                        order.lock().unwrap().push("low");
                    })
                    .unwrap();
                });
            }
            while svc.queued() < 2 {
                std::thread::sleep(Duration::from_millis(1));
            }
            // ...then a high-priority one.
            {
                let svc = Arc::clone(&svc);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    svc.query_opts(QueryOpts::new().with_priority(Priority::High), |_| {
                        order.lock().unwrap().push("high");
                    })
                    .unwrap();
                });
            }
            while svc.queued() < 3 {
                std::thread::sleep(Duration::from_millis(1));
            }
            release_tx.send(()).unwrap();
        });
        holder.join().unwrap();
        let order = order.lock().unwrap();
        assert_eq!(
            order[0], "high",
            "the late high-priority waiter is admitted first: {order:?}"
        );
    }

    #[test]
    fn weighted_tenants_share_in_proportion() {
        let svc = Arc::new(service_cfg(
            ServiceConfig::default()
                .with_max_inflight(1)
                .with_engine(EngineConfig::small())
                .with_tenant("bulk", TenantConfig::default().with_weight(1))
                .with_tenant("interactive", TenantConfig::default().with_weight(4)),
        ));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let holder = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.query(|_| {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                });
            })
        };
        entered_rx.recv().unwrap();
        std::thread::scope(|s| {
            let mut arrived = 0;
            for (tenant, n) in [("bulk", 4), ("interactive", 4)] {
                for _ in 0..n {
                    let svc2 = Arc::clone(&svc);
                    let order = Arc::clone(&order);
                    s.spawn(move || {
                        svc2.query_opts(QueryOpts::new().with_tenant(tenant), |_| {
                            order.lock().unwrap().push(tenant);
                        })
                        .unwrap();
                    });
                    // Stagger arrivals so queue order (and thus the
                    // FIFO tiebreak) is deterministic.
                    arrived += 1;
                    while svc.queued() < arrived {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            release_tx.send(()).unwrap();
        });
        holder.join().unwrap();
        let order = order.lock().unwrap();
        // Weight 4 vs 1: of the first five admissions, at least three
        // go to the heavy tenant (stride: B,I,I,I,I,B,... modulo the
        // first pick's FIFO tiebreak).
        let heavy = order[..5].iter().filter(|t| **t == "interactive").count();
        assert!(
            heavy >= 3,
            "weight-4 tenant got {heavy}/5 of the first admissions: {order:?}"
        );
        assert_eq!(order.len(), 8, "every query was eventually admitted");
    }

    #[test]
    fn zero_weight_tenant_is_clamped_and_served() {
        let cfg = ServiceConfig::default()
            .with_max_inflight(1)
            .with_engine(EngineConfig::small())
            .with_tenant("zero", TenantConfig::default().with_weight(0));
        // The declaration itself is already clamped to the documented
        // "zero is treated as 1".
        assert_eq!(cfg.tenant("zero").unwrap().weight, 1);
        let svc = service_cfg(cfg);
        let (states, _) = svc
            .run_opts(
                &Bfs,
                Init::Seeds(vec![VertexId(0)]),
                QueryOpts::new().with_tenant("zero"),
            )
            .unwrap();
        assert!(states[15].visited);
    }

    #[test]
    fn ad_hoc_tenant_passes_are_evicted_when_their_queue_drains() {
        // A service naming tenants from request metadata must not
        // grow the stride-pass map without bound.
        let svc = service(2);
        for i in 0..64 {
            svc.run_opts(
                &Bfs,
                Init::Seeds(vec![VertexId(0)]),
                QueryOpts::new().with_tenant(format!("drive-by-{i}")),
            )
            .unwrap();
        }
        assert_eq!(
            svc.gate.lock().passes.len(),
            0,
            "undeclared tenants must not leak stride passes"
        );
        // Declared tenants keep theirs (long-run fairness).
        let svc = service_cfg(
            ServiceConfig::default()
                .with_max_inflight(1)
                .with_engine(EngineConfig::small())
                .with_tenant("regular", TenantConfig::default()),
        );
        svc.run_opts(
            &Bfs,
            Init::Seeds(vec![VertexId(0)]),
            QueryOpts::new().with_tenant("regular"),
        )
        .unwrap();
        assert_eq!(svc.gate.lock().passes.len(), 1);
    }

    #[test]
    fn token_fired_while_queued_never_takes_the_freed_slot() {
        // The regression: a waiter whose token fires right before the
        // slot frees used to win the grant check first, consume the
        // slot, and spawn an engine that immediately unwound. The
        // grant branch now re-checks the token.
        let svc = Arc::new(service(1));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let holder = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.query(|_| {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                });
            })
        };
        entered_rx.recv().unwrap();
        let token = CancelToken::new();
        let waiter = {
            let svc = Arc::clone(&svc);
            let token = token.clone();
            std::thread::spawn(move || {
                svc.run_opts(
                    &Bfs,
                    Init::Seeds(vec![VertexId(0)]),
                    QueryOpts::new().with_cancel(token),
                )
            })
        };
        while svc.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Fire the token and free the slot back-to-back: the freed
        // slot's notify is (usually) what wakes the waiter, with its
        // grant condition true and its token already dead.
        token.cancel();
        release_tx.send(()).unwrap();
        let out = waiter.join().unwrap();
        assert!(matches!(out, Err(FgError::Cancelled)));
        holder.join().unwrap();
        let snap = svc.stats();
        assert_eq!(
            snap.admitted, 1,
            "a dead waiter must never consume the freed slot"
        );
        assert_eq!(snap.cancelled, 1);
        assert_eq!(svc.inflight(), 0);
        // The slot is genuinely free for live queries.
        let (states, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert!(states[15].visited);
    }

    #[test]
    fn ingest_is_visible_to_new_queries_and_watermarks_replay() {
        let svc = service(2);
        // path(16): 0 -> 1 -> ... -> 15. Splice in a shortcut.
        let mut batch = DeltaBatch::new();
        batch.add_edge(VertexId(0), VertexId(15));
        let w = svc.ingest(&batch).unwrap();
        assert_eq!(w, 1);
        assert_eq!(svc.watermark(), 1);
        assert!(svc.pending_deltas() > 0);
        // Fresh queries see the shortcut...
        let (states, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert_eq!(states[15].level, 1, "the ingested shortcut must be taken");
        assert_eq!(states[1].level, 1, "base edges survive alongside deltas");
        // ...while a query pinned to watermark 0 replays the bare
        // image, bit-identical to the pre-ingest world.
        let (states, _) = svc
            .run_opts(
                &Bfs,
                Init::Seeds(vec![VertexId(0)]),
                QueryOpts::new().at_watermark(0),
            )
            .unwrap();
        assert_eq!(states[15].level, 15, "watermark 0 is the frozen image");
    }

    #[test]
    fn removals_are_honored_at_delivery() {
        let svc = service(2);
        let mut batch = DeltaBatch::new();
        batch.remove_edge(VertexId(0), VertexId(1));
        svc.ingest(&batch).unwrap();
        let (states, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert!(states[0].visited);
        assert!(
            !states[1].visited,
            "removing the only out-edge of the root disconnects the chain"
        );
    }

    #[test]
    fn compaction_flips_generation_and_preserves_answers() {
        let svc = service(2);
        let mut batch = DeltaBatch::new();
        batch.add_edge(VertexId(0), VertexId(15));
        batch.remove_edge(VertexId(7), VertexId(8));
        svc.ingest(&batch).unwrap();
        let (before, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        let old_mount = svc.safs();
        let gen = svc
            .compact_with(|need| SsdArray::new_mem(ArrayConfig::small_test(), need))
            .unwrap();
        assert_eq!(gen, 1);
        assert_eq!(svc.generation(), 1);
        assert_eq!(svc.pending_deltas(), 0, "compaction folded every run");
        // Same answers off the rewritten image, now with no overlay.
        let (after, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        for v in 0..16 {
            assert_eq!(before[v].visited, after[v].visited, "vertex {v}");
            if before[v].visited {
                assert_eq!(before[v].level, after[v].level, "vertex {v}");
            }
        }
        // The old generation's mount is still a valid handle (pins
        // keep generations alive), just no longer the serving one.
        assert!(!Arc::ptr_eq(&old_mount, &svc.safs()));
        // Ingest keeps working on top of the new generation.
        let mut batch = DeltaBatch::new();
        batch.add_edge(VertexId(7), VertexId(8));
        svc.ingest(&batch).unwrap();
        let (healed, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert!(healed[8].visited, "re-added edge reconnects the tail");
        // An empty log makes compaction a no-op that keeps the
        // current generation.
        svc.compact_with(|need| SsdArray::new_mem(ArrayConfig::small_test(), need))
            .unwrap();
        let gen = svc
            .compact_with(|_| panic!("empty log must not provision"))
            .unwrap();
        assert_eq!(gen, svc.generation());
    }

    #[test]
    fn background_compactor_folds_past_the_threshold() {
        let svc = Arc::new(service(2));
        let compactor = Compactor::spawn(Arc::clone(&svc), 1, Duration::from_millis(2), |need| {
            SsdArray::new_mem(ArrayConfig::small_test(), need)
        });
        let mut batch = DeltaBatch::new();
        batch.add_edge(VertexId(0), VertexId(15));
        svc.ingest(&batch).unwrap();
        let t0 = Instant::now();
        while svc.generation() == 0 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(svc.generation(), 1, "the compactor must have flipped");
        assert_eq!(svc.pending_deltas(), 0);
        assert!(compactor.compactions() >= 1);
        compactor.stop();
        // Queries keep matching the mutated graph afterwards.
        let (states, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert_eq!(states[15].level, 1);
    }

    #[test]
    fn queries_pinned_before_ingest_are_isolated_from_it() {
        // A query admitted (and pinned) before an ingest completes
        // must not see it, even if the ingest lands mid-run.
        let svc = Arc::new(service(2));
        let (pinned_tx, pinned_rx) = std::sync::mpsc::channel();
        let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
        let pinned = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.query(|engine| {
                    // Pinned at admission; the ingest below lands
                    // while we hold the engine.
                    pinned_tx.send(()).unwrap();
                    go_rx.recv().unwrap();
                    engine.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap().0
                })
            })
        };
        pinned_rx.recv().unwrap();
        let mut batch = DeltaBatch::new();
        batch.add_edge(VertexId(0), VertexId(15));
        svc.ingest(&batch).unwrap();
        go_tx.send(()).unwrap();
        let states = pinned.join().unwrap();
        assert_eq!(
            states[15].level, 15,
            "the pinned query must see the pre-ingest snapshot"
        );
        let (fresh, _) = svc.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
        assert_eq!(fresh[15].level, 1, "new queries see the ingest");
    }
}
