//! The per-callback context handed to vertex programs.

use std::sync::Arc;

use fg_format::{GraphIndex, ShardedIndex};
use fg_graph::{DeltaView, Graph};
use fg_types::{AtomicBitmap, EdgeDir, VertexId};

use crate::messages::Batch as Envelope;
use crate::partition::PartitionMap;

/// Where per-vertex degrees come from: the compact index in
/// semi-external mode, the CSR in in-memory mode, the global router
/// over per-shard indexes in sharded mode.
///
/// The semi-external arms hold the index by `Arc` rather than
/// borrowing it from the engine: the index is shared, immutable state
/// that many concurrent runs (one per [`crate::GraphService`] query)
/// read simultaneously, each from its own `RunShared`.
pub(crate) enum DegreeSource<'g> {
    Index(Arc<GraphIndex>),
    Graph(&'g Graph),
    Sharded(Arc<ShardedIndex>),
}

impl DegreeSource<'_> {
    pub(crate) fn degree(&self, v: VertexId, dir: EdgeDir) -> u64 {
        match self {
            DegreeSource::Index(ix) => match dir {
                EdgeDir::Both => {
                    if ix.is_directed() {
                        ix.degree(v, EdgeDir::In) + ix.degree(v, EdgeDir::Out)
                    } else {
                        ix.degree(v, EdgeDir::Out)
                    }
                }
                d => ix.degree(v, d),
            },
            DegreeSource::Graph(g) => match dir {
                EdgeDir::Both => {
                    if g.is_directed() {
                        (g.in_degree(v) + g.out_degree(v)) as u64
                    } else {
                        g.out_degree(v) as u64
                    }
                }
                EdgeDir::Out => g.out_degree(v) as u64,
                EdgeDir::In => g.in_degree(v) as u64,
            },
            DegreeSource::Sharded(ix) => match dir {
                EdgeDir::Both => {
                    if ix.is_directed() {
                        ix.degree(v, EdgeDir::In) + ix.degree(v, EdgeDir::Out)
                    } else {
                        ix.degree(v, EdgeDir::Out)
                    }
                }
                d => ix.degree(v, d),
            },
        }
    }

    pub(crate) fn is_directed(&self) -> bool {
        match self {
            DegreeSource::Index(ix) => ix.is_directed(),
            DegreeSource::Graph(g) => g.is_directed(),
            DegreeSource::Sharded(ix) => ix.is_directed(),
        }
    }
}

/// A shard engine's view of the sharded run it belongs to: which
/// shard it is, its owned global id range, and the router to every
/// other shard. `None` in `RunShared` means the classic single-engine
/// run, where every vertex is "owned" and no routing happens.
pub(crate) struct ShardView {
    /// This engine's shard number.
    pub me: usize,
    /// First owned global vertex id.
    pub lo: u32,
    /// One past the last owned global vertex id.
    pub hi: u32,
    /// The global router (also this run's degree source).
    pub index: Arc<ShardedIndex>,
}

impl ShardView {
    /// Whether this shard's engine owns `v` (collects, computes, and
    /// delivers for it).
    #[inline]
    pub fn owns(&self, v: VertexId) -> bool {
        (self.lo..self.hi).contains(&v.0)
    }

    /// The shard owning `v`.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.index.shard_of(v)
    }
}

/// Engine-wide immutable state visible to every worker.
pub(crate) struct RunShared<'g> {
    pub n: usize,
    pub vparts: u32,
    pub degrees: DegreeSource<'g>,
    pub pmap: PartitionMap,
    /// Chunked-delivery bound: a request longer than this many edges
    /// is split into multiple chunk requests (0 = unlimited).
    pub max_request_edges: u64,
    /// Present when this engine executes one shard of a sharded run.
    pub shard: Option<ShardView>,
    /// Pinned delta overlay: ingested edges not yet compacted into
    /// the image this run reads. `None` (frozen image) keeps every
    /// pre-mutable path byte-identical.
    pub deltas: Option<Arc<DeltaView>>,
}

impl RunShared<'_> {
    /// Degree of `v` in the *logical* graph this run sees: the base
    /// image degree plus the pinned view's net diff. Requests clamp
    /// against this, so merged coordinates tile exactly.
    #[inline]
    pub(crate) fn merged_degree(&self, v: VertexId, dir: EdgeDir) -> u64 {
        let base = self.degrees.degree(v, dir) as i64;
        let diff = self.deltas.as_ref().map_or(0, |d| d.degree_diff(v, dir));
        (base + diff).max(0) as u64
    }
}

/// A first-class vertex I/O request: which list, which slice of it,
/// and whether the parallel attribute run rides along.
///
/// Built fluently and passed to [`VertexContext::request`]:
///
/// ```
/// use fg_types::EdgeDir;
/// use flashgraph::Request;
///
/// // The whole out-list (what `request_edges` always did).
/// let full = Request::edges(EdgeDir::Out);
/// // Eight edges starting at position 100 of a hub's list, with
/// // their weights.
/// let slice = Request::edges(EdgeDir::Out).range(100, 8).with_attrs();
/// assert_eq!(slice.positions(), Some((100, 8)));
/// assert!(full.positions().is_none());
/// ```
///
/// Ranges are expressed in *edge positions* (not bytes): position `i`
/// is the `i`-th neighbour of the sorted list. A range is clamped to
/// the list — `start` past the end or `len` crossing it deliver the
/// (possibly empty) intersection, never an error, so samplers can
/// probe positions without consulting degrees first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    dir: EdgeDir,
    attrs: bool,
    range: Option<(u64, u64)>,
}

impl Request {
    /// A request for the full edge list(s) of a vertex in `dir`.
    #[inline]
    pub fn edges(dir: EdgeDir) -> Self {
        Request {
            dir,
            attrs: false,
            range: None,
        }
    }

    /// Restricts the request to edge positions `[start, start + len)`
    /// of the list. For [`EdgeDir::Both`] the range applies to each
    /// direction's list independently.
    #[inline]
    pub fn range(mut self, start: u64, len: u64) -> Self {
        self.range = Some((start, len));
        self
    }

    /// Also fetches the parallel attribute run (sliced identically
    /// when a range is set), so [`crate::PageVertex::attr`] works.
    /// The graph image must carry attributes.
    #[inline]
    pub fn with_attrs(mut self) -> Self {
        self.attrs = true;
        self
    }

    /// The requested direction.
    #[inline]
    pub fn dir(&self) -> EdgeDir {
        self.dir
    }

    /// Whether attributes ride along.
    #[inline]
    pub fn wants_attrs(&self) -> bool {
        self.attrs
    }

    /// The `(start, len)` position range, if one was set.
    #[inline]
    pub fn positions(&self) -> Option<(u64, u64)> {
        self.range
    }
}

/// One resolved chunk request (the unit that produces exactly one
/// `run_on_vertex` callback). Ranges are already clamped to the
/// subject's list and split to the chunk bound by the time one of
/// these exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EdgeRequest {
    /// The vertex whose list is wanted.
    pub subject: VertexId,
    /// The vertex that asked (receives the callback).
    pub requester: VertexId,
    /// A single direction (`Both` is split before it gets here).
    pub dir: EdgeDir,
    /// Whether the parallel attribute run is wanted too.
    pub attrs: bool,
    /// First edge position of the slice within the subject's list.
    pub start: u64,
    /// Number of edges in the slice (0 = empty delivery, no I/O).
    pub len: u64,
}

/// Per-worker mutable scratch the context writes into.
pub(crate) struct WorkerScratch<M> {
    /// Requests accumulated since the last issue flush.
    pub requests: Vec<EdgeRequest>,
    /// Packed outgoing unicasts per destination partition.
    pub out_unicasts: Vec<Vec<(VertexId, M)>>,
    /// Outgoing multicast batches per destination partition.
    pub out_multicasts: Vec<Vec<Envelope<M>>>,
    /// Buffered per-vertex deliveries (for the flush threshold).
    pub buffered_fanout: u64,
    /// End-of-iteration registrations per destination partition.
    pub notifies: Vec<Vec<VertexId>>,
    /// Foreign outboxes, one triple per *shard* (empty vectors for
    /// unsharded runs and for this engine's own shard): unicasts,
    /// multicasts, and activations destined for vertices another
    /// shard's engine owns. Flushed to the shard bus as batched
    /// packets alongside the local board flush.
    pub shard_unicasts: Vec<Vec<(VertexId, M)>>,
    pub shard_multicasts: Vec<Vec<Envelope<M>>>,
    pub shard_activates: Vec<Vec<VertexId>>,
    /// New activations performed by this worker (bits actually set).
    pub activations: u64,
    /// Logical requests issued by this worker.
    pub engine_requests: u64,
}

impl<M> WorkerScratch<M> {
    pub(crate) fn new(partitions: usize, shards: usize) -> Self {
        WorkerScratch {
            requests: Vec::new(),
            out_unicasts: (0..partitions).map(|_| Vec::new()).collect(),
            out_multicasts: (0..partitions).map(|_| Vec::new()).collect(),
            buffered_fanout: 0,
            notifies: (0..partitions).map(|_| Vec::new()).collect(),
            shard_unicasts: (0..shards).map(|_| Vec::new()).collect(),
            shard_multicasts: (0..shards).map(|_| Vec::new()).collect(),
            shard_activates: (0..shards).map(|_| Vec::new()).collect(),
            activations: 0,
            engine_requests: 0,
        }
    }
}

/// The context available inside every vertex-program callback.
///
/// Everything a vertex may do to the outside world goes through here:
/// requesting edge lists (its own or any other vertex's — the
/// flexibility §3.4 highlights for algorithms like Louvain), sending
/// messages, multicast, activating vertices, and registering for the
/// end-of-iteration event.
pub struct VertexContext<'w, M> {
    pub(crate) current: VertexId,
    pub(crate) iteration: u32,
    pub(crate) vpart: u32,
    pub(crate) shared: &'w RunShared<'w>,
    pub(crate) next_frontier: &'w AtomicBitmap,
    pub(crate) scratch: &'w mut WorkerScratch<M>,
}

impl<M> VertexContext<'_, M> {
    /// The current iteration (0-based).
    #[inline]
    pub fn iteration(&self) -> u32 {
        self.iteration
    }

    /// The vertex this callback belongs to.
    #[inline]
    pub fn current_vertex(&self) -> VertexId {
        self.current
    }

    /// Number of vertices in the graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.shared.n
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.shared.degrees.is_directed()
    }

    /// `(current vertical pass, total passes)` — `(0, 1)` unless
    /// vertical partitioning is configured (§3.8).
    ///
    /// Under the default pipelined scheduler, passes are *not*
    /// globally ordered: pass `j + 1`'s `run` may execute while pass
    /// `j`'s deliveries are still arriving (each callback for this
    /// vertex stays exclusive, whichever pass it belongs to). State
    /// that spans passes must therefore be pass-order independent —
    /// see `fg_apps::tc` for the canonical pattern.
    #[inline]
    pub fn vertical_part(&self) -> (u32, u32) {
        (self.vpart, self.shared.vparts)
    }

    /// Degree of any vertex, from the in-memory index — no I/O.
    /// [`EdgeDir::Both`] returns in+out for directed graphs. When the
    /// run carries a pinned delta view, this is the merged degree
    /// (base image plus uncompacted ingest), matching what a request
    /// for the full list delivers.
    #[inline]
    pub fn degree(&self, v: VertexId, dir: EdgeDir) -> u64 {
        self.shared.merged_degree(v, dir)
    }

    /// Activates `v` for the next iteration. Idempotent; the paper
    /// implements this as an empty multicast message, here it is a
    /// lock-free bitmap OR. In a sharded run, activating a vertex
    /// another shard owns buffers it for a batched bus packet instead
    /// (its owner performs the OR when it drains the bus).
    #[inline]
    pub fn activate(&mut self, v: VertexId) {
        if let Some(sv) = &self.shared.shard {
            if !sv.owns(v) {
                self.scratch.shard_activates[sv.shard_of(v)].push(v);
                self.scratch.buffered_fanout += 1;
                return;
            }
        }
        if !self.next_frontier.set(v) {
            self.scratch.activations += 1;
        }
    }

    /// Activates a batch.
    pub fn activate_many(&mut self, vs: &[VertexId]) {
        for &v in vs {
            self.activate(v);
        }
    }

    /// Issues a vertex I/O [`Request`] for `v`'s edge data. Each
    /// single direction of the request produces `run_on_vertex`
    /// callbacks *on the current vertex*:
    ///
    /// * a full-list or in-range request of at most
    ///   [`crate::EngineConfig::max_request_edges`] edges (or any size
    ///   when the knob is 0) produces exactly one callback;
    /// * a longer request is transparently split into chunks of at
    ///   most that many edges — one callback per chunk, each
    ///   [`crate::PageVertex`] reporting its slice via
    ///   [`crate::PageVertex::offset`] / [`crate::PageVertex::range`].
    ///   Chunks of one list may arrive in any order;
    /// * a range that clamps to nothing (zero `len`, or `start` at or
    ///   past the list's end) and a zero-degree list both complete
    ///   without any I/O, delivering one empty callback.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn request(&mut self, v: VertexId, req: Request) {
        assert!(
            v.index() < self.shared.n,
            "requested vertex {v} out of range ({} vertices)",
            self.shared.n
        );
        let requester = self.current;
        let dirs = if self.is_directed() {
            req.dir
        } else {
            EdgeDir::Out // undirected graphs have one list
        };
        for d in dirs.singles() {
            self.scratch.engine_requests += 1;
            let degree = self.shared.merged_degree(v, d);
            let (start, len) = match req.range {
                None => (0, degree),
                Some((s, l)) => {
                    let s = s.min(degree);
                    (s, l.min(degree - s))
                }
            };
            let chunk = match self.shared.max_request_edges {
                0 => len.max(1),
                m => m,
            };
            let mut pos = start;
            loop {
                let take = chunk.min(start + len - pos);
                self.scratch.requests.push(EdgeRequest {
                    subject: v,
                    requester,
                    dir: d,
                    attrs: req.attrs,
                    start: pos,
                    len: take,
                });
                pos += take;
                if pos >= start + len {
                    break;
                }
            }
        }
    }

    /// Requests the full edge list(s) of `v` in `dir` — a one-line
    /// compatibility wrapper over [`VertexContext::request`] with
    /// [`Request::edges`], kept because most programs want exactly
    /// this.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn request_edges(&mut self, v: VertexId, dir: EdgeDir) {
        self.request(v, Request::edges(dir));
    }

    /// Like [`VertexContext::request_edges`] but also fetches the
    /// parallel edge-attribute run — the compatibility wrapper over
    /// [`Request::with_attrs`]. The graph image must carry attributes.
    pub fn request_edges_with_attrs(&mut self, v: VertexId, dir: EdgeDir) {
        self.request(v, Request::edges(dir).with_attrs());
    }

    /// Sends `msg` to vertex `to`, delivered via `run_on_message` at
    /// the iteration barrier (even if `to` is inactive). In a sharded
    /// run, a message to a vertex another shard owns buffers into
    /// that shard's outbox for a batched bus packet; its owner
    /// delivers it at the same barrier a local send would reach.
    pub fn send(&mut self, to: VertexId, msg: M) {
        if let Some(sv) = &self.shared.shard {
            if !sv.owns(to) {
                self.scratch.shard_unicasts[sv.shard_of(to)].push((to, msg));
                self.scratch.buffered_fanout += 1;
                return;
            }
        }
        let dest = self.shared.pmap.partition_of(to);
        self.scratch.out_unicasts[dest].push((to, msg));
        self.scratch.buffered_fanout += 1;
    }

    /// Sends one payload to many vertices, copying it once per
    /// destination partition instead of once per recipient (§3.4.1).
    /// In a sharded run the same bundling applies across shards: one
    /// payload copy per destination shard rides the bus.
    pub fn multicast(&mut self, to: &[VertexId], msg: M)
    where
        M: Clone,
    {
        if to.is_empty() {
            return;
        }
        if let Some(sv) = &self.shared.shard {
            if !to.iter().all(|&v| sv.owns(v)) {
                let mut local = Vec::new();
                let mut per_shard: Vec<Vec<VertexId>> = vec![Vec::new(); sv.index.num_shards()];
                for &v in to {
                    if sv.owns(v) {
                        local.push(v);
                    } else {
                        per_shard[sv.shard_of(v)].push(v);
                    }
                }
                for (s, vs) in per_shard.into_iter().enumerate() {
                    if !vs.is_empty() {
                        self.scratch.buffered_fanout += vs.len() as u64;
                        self.scratch.shard_multicasts[s].push(Envelope::Multicast(vs, msg.clone()));
                    }
                }
                if !local.is_empty() {
                    self.multicast_local(&local, msg);
                }
                return;
            }
        }
        self.multicast_local(to, msg);
    }

    /// The owned-vertex half of [`VertexContext::multicast`]: split
    /// per destination partition and buffer for the local board.
    fn multicast_local(&mut self, to: &[VertexId], msg: M)
    where
        M: Clone,
    {
        let parts = self.shared.pmap.num_partitions();
        if parts == 1 {
            self.scratch.buffered_fanout += to.len() as u64;
            self.scratch.out_multicasts[0].push(Envelope::Multicast(to.to_vec(), msg));
            return;
        }
        let mut per_part: Vec<Vec<VertexId>> = vec![Vec::new(); parts];
        for &v in to {
            per_part[self.shared.pmap.partition_of(v)].push(v);
        }
        for (p, vs) in per_part.into_iter().enumerate() {
            if !vs.is_empty() {
                self.scratch.buffered_fanout += vs.len() as u64;
                self.scratch.out_multicasts[p].push(Envelope::Multicast(vs, msg.clone()));
            }
        }
    }

    /// Registers the current vertex for `run_on_iteration_end` at the
    /// end of this iteration.
    pub fn notify_iteration_end(&mut self) {
        let dest = self.shared.pmap.partition_of(self.current);
        self.scratch.notifies[dest].push(self.current);
    }
}
