//! The vertex-centric programming interface (§3.4, Figure 3).
//!
//! # Figure 3 → API mapping
//!
//! The paper's `graph_engine` / `compute_vertex` interface maps onto
//! this crate as follows:
//!
//! | Paper (Figure 3, §3.4) | This crate |
//! |---|---|
//! | `compute_vertex::run(graph)` | [`VertexProgram::run`] |
//! | `run_on_vertex(graph, vertex)` | [`VertexProgram::run_on_vertex`] with a [`PageVertex`] slice |
//! | `run_on_message(graph, msg)` | [`VertexProgram::run_on_message`] |
//! | `run_on_iteration_end(graph)` | [`VertexProgram::run_on_iteration_end`] |
//! | `request_vertices(ids)` | [`VertexContext::request`] with [`Request::edges`](crate::Request::edges) (any vertex's list, not just the caller's) |
//! | *part of* a vertex (partial edge list) | [`Request::range`](crate::Request::range) — edge positions `[start, start + len)`; oversized lists also arrive chunked under `EngineConfig::max_request_edges` |
//! | edge attributes (separate sections, §3.5.2) | [`Request::with_attrs`](crate::Request::with_attrs) / [`PageVertex::attr`] |
//! | `send_msg(v, msg)` / multicast (§3.4.1) | [`VertexContext::send`] / [`VertexContext::multicast`] |
//! | vertex activation | [`VertexContext::activate`] / [`VertexContext::activate_many`] |
//! | end-of-iteration registration | [`VertexContext::notify_iteration_end`] |
//! | *(extension)* dense-iteration block scan (M-Flash's bimodal model) | `EngineConfig::scan_mode` — programs are unaffected: `run_on_vertex` sees the same slices whether an iteration was served selectively or by a streaming sweep |
//! | *(extension)* compact external-memory layout (§3.5's motivation, pushed further) | `fg_format::ImageFormat::Compressed` — delta-varint edge blocks decoded inside [`PageVertex`]; programs are unaffected: same callbacks, same slices, strictly fewer device bytes per iteration |
//! | *(extension)* pipelined callback scheduling (§3.4's async user tasks, taken to its conclusion) | `EngineConfig::pipeline` (default on) — `run_on_vertex` fires the moment its pages land, possibly on another worker, while later covers are already queued on the device; per-vertex callbacks stay serialized (never concurrent for one vertex), but *order across vertices and vertical passes is not global* — programs must not assume one pass's deliveries finish before the next pass's `run` |
//! | *(extension)* sharded execution (scale-out of §3: one engine per image shard) | [`ShardedEngine`](crate::ShardedEngine) over a `fg_safs::ShardSet` — programs are unaffected: a vertex's handlers still run exclusively on its owning shard against the shared state vector; sends/multicasts/activations to foreign vertices travel as batched packets over the shard bus and are delivered at the same iteration barrier local ones are, and foreign edge-list requests are served from the owning shard's mount |
//! | *(extension)* cooperative cancellation (serving-layer QoS) | `Engine::with_cancel` / `GraphService::run_opts` with a `fg_types::CancelToken` — programs are unaffected and need no cancellation hooks |
//! | *(extension)* mutable graphs (LSM-style delta ingest) | `GraphService::ingest` + `Engine::with_deltas` — an overlaid vertex's [`PageVertex`] is backed by a third edge source (`EdgeData::Overlay`: the on-SSD list merged with the query's pinned delta run); programs are unaffected: same callbacks, same slices, `edges()`/`attr()`/`contains()` see the merged list and `edges_delivered` counts merged degrees exactly |
//!
//! # Cancellation semantics
//!
//! Cancellation is *cooperative and iteration-aligned*: the engine
//! polls the query's `CancelToken` only at iteration boundaries
//! (sharded runs fold the token into the same rendezvous vote that
//! decides termination, so every shard stops at the same iteration).
//! A handler that has started always finishes; a cancelled run never
//! interrupts `run`/`run_on_vertex` mid-flight. Consequently the
//! state a cancelled run leaves behind is exactly the state after its
//! last *completed* iteration — messages delivered, activations
//! folded, session I/O drained, admission slot released — and shared
//! structures (page cache, I/O threads, in-flight read table) carry
//! no trace of the dead query. Programs therefore need no
//! cancellation handling of their own: there is no partially-applied
//! iteration to repair. The caller sees
//! `fg_types::FgError::Cancelled` / `DeadlineExpired` instead of a
//! result; per-vertex state vectors are dropped with the run.

use fg_types::VertexId;

use crate::context::VertexContext;
use crate::vertex::PageVertex;

/// A vertex program: user-defined per-vertex state plus the four
/// event handlers of the paper's Figure 3.
///
/// The handlers receive `&self` (the program is shared read-only
/// across workers; algorithm parameters live here) and `&mut State`
/// for the *one* vertex the event belongs to. The engine guarantees a
/// vertex's handlers never run concurrently with each other, so state
/// access needs no synchronization — cross-vertex effects go through
/// messages and activation, exactly the discipline §3.4.1 argues for.
///
/// Handler semantics:
///
/// * [`run`](VertexProgram::run) — entry point, called once per
///   active vertex per iteration (per vertical pass when vertical
///   partitioning is on). Runs with *no edge data*: a vertex must
///   explicitly request edge lists, because many algorithms activate
///   vertices that end up doing nothing and reading their lists
///   eagerly would waste I/O bandwidth.
/// * [`run_on_vertex`](VertexProgram::run_on_vertex) — delivery of a
///   requested edge-list slice (the *user task* executing against the
///   page cache). `vertex.id()` may differ from the receiving vertex
///   `v`: programs like triangle counting request neighbours' lists.
///   One callback arrives per delivered slice — the whole list for
///   plain requests, or each range/chunk of a partial or chunked
///   request, identified by [`PageVertex::offset`]/[`PageVertex::range`].
/// * [`run_on_message`](VertexProgram::run_on_message) — delivery of
///   a message, at the iteration barrier, even if the vertex was not
///   active this iteration.
/// * [`run_on_iteration_end`](VertexProgram::run_on_iteration_end) —
///   end-of-iteration notification; a vertex opts in by calling
///   [`VertexContext::notify_iteration_end`] during the iteration.
pub trait VertexProgram: Sync {
    /// Per-vertex algorithmic state. Semi-external memory keeps one
    /// of these in RAM per vertex, so it should be a small constant
    /// size (most of the paper's algorithms use ≤ 8 bytes).
    type State: Send + Default;

    /// The message payload vertices exchange. Use `()` when the
    /// algorithm only activates.
    type Msg: Send + Clone;

    /// Iteration entry point for an active vertex.
    fn run(&self, v: VertexId, state: &mut Self::State, ctx: &mut VertexContext<'_, Self::Msg>);

    /// A requested edge list arrived.
    fn run_on_vertex(
        &self,
        v: VertexId,
        state: &mut Self::State,
        vertex: &PageVertex<'_>,
        ctx: &mut VertexContext<'_, Self::Msg>,
    ) {
        let _ = (v, state, vertex, ctx);
    }

    /// A message arrived (delivered at the iteration barrier).
    fn run_on_message(
        &self,
        v: VertexId,
        state: &mut Self::State,
        msg: &Self::Msg,
        ctx: &mut VertexContext<'_, Self::Msg>,
    ) {
        let _ = (v, state, msg, ctx);
    }

    /// The iteration in which this vertex called
    /// [`VertexContext::notify_iteration_end`] is over.
    fn run_on_iteration_end(
        &self,
        v: VertexId,
        state: &mut Self::State,
        ctx: &mut VertexContext<'_, Self::Msg>,
    ) {
        let _ = (v, state, ctx);
    }

    /// Initial state of vertex `v`; defaults to `State::default()`.
    fn init_state(&self, v: VertexId) -> Self::State {
        let _ = v;
        Self::State::default()
    }
}
