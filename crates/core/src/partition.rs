//! Horizontal range partitioning (§3.8).
//!
//! The partition function is the paper's:
//!
//! ```text
//! range_id     = vid >> r
//! partition_id = range_id % n
//! ```
//!
//! so a partition is a union of vertex-id *ranges* of size `2^r`.
//! Ranges keep the edge lists of a partition's vertices mostly
//! adjacent on SSDs (lists are sorted by id), which is what lets a
//! per-thread scheduler issue large merged reads (§3.8).
//!
//! Sharded execution adds a *window*: a shard's engine partitions only
//! its own contiguous global id range `[lo, hi)` across its workers,
//! applying the formula to the window-relative id `vid - lo`. The
//! classic whole-graph map is the `[0, n)` window.

use fg_types::VertexId;

/// The horizontal partition map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    /// First global vertex id of the window.
    lo: usize,
    /// One past the last global vertex id of the window.
    hi: usize,
    num_partitions: usize,
    range_shift: u32,
}

impl PartitionMap {
    /// Builds a map for `num_vertices` over `num_partitions` with
    /// range size `2^range_shift`.
    #[allow(dead_code)] // the unwindowed form; engine runs always window
    pub fn new(num_vertices: usize, num_partitions: usize, range_shift: u32) -> Self {
        Self::new_window(0, num_vertices, num_partitions, range_shift)
    }

    /// Builds a map over the global id window `[lo, hi)` — the form a
    /// shard's engine uses so its workers only ever own (and collect)
    /// the shard's vertices.
    pub fn new_window(lo: usize, hi: usize, num_partitions: usize, range_shift: u32) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        assert!(lo <= hi, "window bounds out of order");
        PartitionMap {
            lo,
            hi,
            num_partitions,
            range_shift,
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Range size in vertices.
    #[inline]
    pub fn range_len(&self) -> usize {
        1usize << self.range_shift
    }

    /// The partition owning `v` (which must lie inside the window).
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> usize {
        debug_assert!(
            (self.lo..self.hi).contains(&v.index()),
            "{v} outside partition window {}..{}",
            self.lo,
            self.hi
        );
        ((v.index() - self.lo) >> self.range_shift) % self.num_partitions
    }

    /// The window-relative range (region) index of `v` — what the
    /// streaming scan keys its cover-sealing on, so covers never
    /// bridge from one partition's id-range into the next.
    #[inline]
    pub fn region_of(&self, v: VertexId) -> u64 {
        debug_assert!((self.lo..self.hi).contains(&v.index()));
        ((v.index() - self.lo) >> self.range_shift) as u64
    }

    /// Iterates over the half-open global vertex-index ranges of
    /// partition `p`, ascending.
    pub fn ranges_of(&self, p: usize) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        let rl = self.range_len();
        let (lo, hi) = (self.lo, self.hi);
        (p..)
            .step_by(self.num_partitions)
            .map(move |range_id| {
                let start = lo + range_id * rl;
                start..((start + rl).min(hi))
            })
            .take_while(move |r| r.start < hi)
    }

    /// Total vertices assigned to partition `p` — the denominator of
    /// the adaptive scan mode's per-partition density decision.
    pub fn partition_len(&self, p: usize) -> usize {
        self.ranges_of(p).map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_function_matches_paper_formula() {
        let m = PartitionMap::new(1000, 4, 5);
        for vid in [0u32, 31, 32, 63, 64, 999] {
            let expect = ((vid >> 5) % 4) as usize;
            assert_eq!(m.partition_of(VertexId(vid)), expect);
        }
    }

    #[test]
    fn ranges_cover_every_vertex_exactly_once() {
        let m = PartitionMap::new(1003, 3, 4);
        let mut seen = vec![0u32; 1003];
        for p in 0..3 {
            for r in m.ranges_of(p) {
                for v in r {
                    seen[v] += 1;
                    assert_eq!(m.partition_of(VertexId(v as u32)), p);
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn partition_lens_sum_to_n() {
        let m = PartitionMap::new(12345, 7, 6);
        let total: usize = (0..7).map(|p| m.partition_len(p)).sum();
        assert_eq!(total, 12345);
    }

    #[test]
    fn partitions_are_balanced_within_one_range() {
        let m = PartitionMap::new(1 << 16, 4, 8);
        let lens: Vec<usize> = (0..4).map(|p| m.partition_len(p)).collect();
        let max = *lens.iter().max().unwrap();
        let min = *lens.iter().min().unwrap();
        assert!(max - min <= m.range_len());
    }

    #[test]
    fn single_partition_owns_everything() {
        let m = PartitionMap::new(100, 1, 3);
        assert_eq!(m.partition_len(0), 100);
        for v in 0..100u32 {
            assert_eq!(m.partition_of(VertexId(v)), 0);
        }
    }

    #[test]
    fn empty_graph_has_empty_ranges() {
        let m = PartitionMap::new(0, 2, 4);
        assert_eq!(m.ranges_of(0).count(), 0);
        assert_eq!(m.partition_len(1), 0);
    }

    #[test]
    fn window_map_covers_exactly_the_window() {
        let m = PartitionMap::new_window(100, 357, 3, 4);
        let mut seen = vec![0u32; 357];
        for p in 0..3 {
            for r in m.ranges_of(p) {
                assert!(r.start >= 100 && r.end <= 357);
                for v in r {
                    seen[v] += 1;
                    assert_eq!(m.partition_of(VertexId(v as u32)), p);
                }
            }
        }
        assert!(seen[..100].iter().all(|&c| c == 0));
        assert!(seen[100..].iter().all(|&c| c == 1));
        let total: usize = (0..3).map(|p| m.partition_len(p)).sum();
        assert_eq!(total, 257);
    }

    #[test]
    fn window_map_matches_shifted_global_map() {
        // A `[lo, hi)` window behaves exactly like a `[0, hi - lo)`
        // map on shifted ids — the invariant that makes a 1-shard run
        // reproduce the unsharded partitioning bit for bit.
        let global = PartitionMap::new(500, 4, 5);
        let window = PartitionMap::new_window(1000, 1500, 4, 5);
        for v in 0..500u32 {
            assert_eq!(
                global.partition_of(VertexId(v)),
                window.partition_of(VertexId(v + 1000))
            );
            assert_eq!(
                global.region_of(VertexId(v)),
                window.region_of(VertexId(v + 1000))
            );
        }
        for p in 0..4 {
            let a: Vec<_> = global.ranges_of(p).collect();
            let b: Vec<_> = window
                .ranges_of(p)
                .map(|r| r.start - 1000..r.end - 1000)
                .collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_window_has_no_ranges() {
        let m = PartitionMap::new_window(64, 64, 2, 3);
        assert_eq!(m.ranges_of(0).count(), 0);
        assert_eq!(m.partition_len(1), 0);
    }
}
