//! Engine configuration.

use fg_types::EdgeDir;

/// How a worker thread orders the active vertices of its partition
/// before processing them (§3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Ascending vertex id — matches edge-list order on SSDs, so the
    /// request stream is (mostly) sequential and merges well. The
    /// paper's default.
    ById,
    /// Ascending id on even iterations, descending on odd ones: pages
    /// touched at the end of one iteration are touched first in the
    /// next, helping the page cache (§3.7). Used for algorithms whose
    /// convergence is order-independent.
    Alternating,
    /// Deterministic pseudo-random order seeded per iteration — the
    /// "random execution" configuration of Figure 12, which shows how
    /// much performance sequential I/O ordering buys.
    Random(u64),
    /// Descending degree in the given direction-of-interest: scan
    /// statistics schedules large vertices first so it can prune the
    /// rest (§3.7, §4). [`EdgeDir::Both`] (the conservative default)
    /// ranks by total degree; algorithms that only ever read one
    /// list — scan statistics and triangle counting read out-lists —
    /// pass that direction so hubs are ranked by the degree that
    /// actually drives their I/O and pruning power.
    DegreeDescending(EdgeDir),
}

/// How the semi-external engine turns a frontier into device I/O.
///
/// FlashGraph's *selective* access wins when frontiers are sparse,
/// but a dense iteration — PageRank every iteration, WCC or BFS
/// mid-run — touches nearly the whole edge-list file anyway, and
/// per-vertex requests then only add sort/merge overhead and
/// page-cache churn over what a sequential sweep would cost (the
/// dense/sparse bimodality M-Flash builds its block model around).
/// The streaming scan is that sweep: a worker whose partition is
/// dense issues large fixed-stride sequential covers over its
/// partition's edge-list byte extent and delivers only the active
/// vertices' slices out of each arriving stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Always per-vertex selective requests (the paper's behaviour;
    /// the default).
    Selective,
    /// Always stream: every partition with any active vertex sweeps
    /// its extent with stride-sized covers. Best for algorithms that
    /// are dense every iteration (PageRank until convergence).
    Stream,
    /// Decide per worker per iteration: stream when the fraction of
    /// active vertices in the worker's partition exceeds
    /// `threshold` percent, stay selective otherwise. BFS and WCC
    /// runs flip mode across their sparse→dense→sparse life cycle.
    Adaptive {
        /// Density threshold in percent of the partition's vertices
        /// (`50` streams above half-active). `0` streams whenever
        /// anything is active; `100` never streams.
        threshold: u32,
    },
}

impl ScanMode {
    /// The adaptive mode at the 50 % density crossover — a good
    /// default for frontier algorithms whose density varies.
    pub fn adaptive() -> Self {
        ScanMode::Adaptive { threshold: 50 }
    }
}

/// Tunables of an [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads. Zero means use available parallelism.
    pub num_threads: usize,
    /// Range shift `r` of the horizontal partition function
    /// `(vid >> r) % num_threads` (§3.8). Zero means pick
    /// automatically from the graph size. The paper found 12–18 works
    /// well for 100 M-vertex graphs.
    pub range_shift: u32,
    /// Maximum outstanding edge-list requests per worker. The paper
    /// saw no benefit past 4000 running vertices per thread.
    pub max_pending: usize,
    /// Requests accumulated before a sort-and-merge flush.
    pub issue_batch: usize,
    /// Merge requests inside the engine before they reach SAFS
    /// (§3.6). Turning this off reproduces the "merge in SAFS" and
    /// "no merging" rows of Figure 12.
    pub merge_in_engine: bool,
    /// Upper bound in bytes on one merged I/O request. Without a cap a
    /// well-sorted issue batch coalesces into a single giant device
    /// read that lands on one drive and serializes the array; the cap
    /// splits such covers so they stripe. A single request larger than
    /// the cap still issues whole. Zero means unlimited.
    pub max_merge_bytes: u64,
    /// Upper bound in *edges* on one delivered edge-list slice. A
    /// request longer than this (a hub's full list, or an oversized
    /// range) is transparently split into chunked deliveries — one
    /// `run_on_vertex` callback per chunk, each reporting its slice
    /// via `PageVertex::offset`/`range` — so a program's per-callback
    /// working set is bounded by the chunk size instead of the hub's
    /// degree. Zero means deliver whole lists (the paper's behaviour).
    pub max_request_edges: u64,
    /// Vertex ordering policy.
    pub scheduler: SchedulerKind,
    /// Dense-iteration execution mode (semi-external only; the
    /// in-memory backend has no device I/O to restructure and ignores
    /// this). Only *own-list* requests of the streaming worker's
    /// partition ride the sweep — cross-vertex requests (another
    /// vertex's list, a stolen vertex) stay selective so hot hub
    /// lists keep flowing through the page cache. Streaming covers
    /// are sized by [`EngineConfig::stream_stride_bytes`], issued in
    /// partition id-range order, and submitted with the cache-bypass
    /// policy ([`fg_safs::IoSession::submit_stream`]): resident pages
    /// are used but swept pages are not inserted, so a scan cannot
    /// evict the hot working set. Results are identical across
    /// modes — only the device access pattern changes. Every mode is
    /// also image-format-transparent: covers and slices are byte
    /// ranges from the `GraphIndex`, so raw and delta-varint
    /// compressed images (`fg_format::ImageFormat`) behave
    /// identically up to the (fewer) device bytes a compressed image
    /// moves.
    pub scan_mode: ScanMode,
    /// Vertical passes per iteration (§3.8): programs see
    /// `ctx.vertical_part()` and can restrict each pass to a slice of
    /// the neighbour space, improving cache reuse for hub-heavy
    /// algorithms like triangle counting.
    pub vertical_parts: u32,
    /// Hard iteration cap (safety net; algorithms normally converge).
    pub max_iterations: u32,
    /// Enable cursor-based work stealing between workers (§3.8.1).
    pub work_stealing: bool,
    /// Run iterations through the completion-counted pipelined
    /// scheduler (the default): workers issue merged covers without
    /// waiting, execute `run_on_vertex` deliveries the moment pages
    /// land — their own or stolen from other workers' ready queues —
    /// and synchronize only at the iteration boundary, so the device
    /// stays fed while CPUs compute. `false` restores the lock-step
    /// phase-barrier loop (one barrier per vertical pass), which is
    /// what `fig_pipeline` and the scheduler-equivalence properties
    /// diff against. Results are bit-identical between the two.
    pub pipeline: bool,
}

impl EngineConfig {
    /// Scales `max_pending` and batch sizes down for unit tests.
    pub fn small() -> Self {
        EngineConfig {
            num_threads: 2,
            max_pending: 16,
            issue_batch: 4,
            ..Self::default()
        }
    }

    /// Builder-style: sets the worker-thread count.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builder-style: sets the scheduler.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Builder-style: toggles engine-side merging.
    pub fn with_engine_merge(mut self, on: bool) -> Self {
        self.merge_in_engine = on;
        self
    }

    /// Builder-style: sets the merged-request size cap (0 =
    /// unlimited).
    pub fn with_max_merge_bytes(mut self, bytes: u64) -> Self {
        self.max_merge_bytes = bytes;
        self
    }

    /// The merged-request cap as [`crate::merge::merge_requests`]
    /// expects it: the configured bytes, or effectively-infinite when
    /// the knob is 0.
    pub fn resolved_max_merge_bytes(&self) -> u64 {
        if self.max_merge_bytes == 0 {
            crate::merge::UNLIMITED_MERGE_BYTES
        } else {
            self.max_merge_bytes
        }
    }

    /// Builder-style: sets the chunked-delivery bound in edges (0 =
    /// whole lists).
    pub fn with_max_request_edges(mut self, edges: u64) -> Self {
        self.max_request_edges = edges;
        self
    }

    /// Builder-style: sets the dense-iteration scan mode.
    pub fn with_scan_mode(mut self, mode: ScanMode) -> Self {
        self.scan_mode = mode;
        self
    }

    /// The stride of one streaming-scan cover in bytes: the merge cap
    /// when one is configured (the cap exists so large reads stripe
    /// across the SSD array, and stream covers should stripe the same
    /// way), else 4 MiB.
    pub fn stream_stride_bytes(&self) -> u64 {
        if self.max_merge_bytes == 0 {
            4 << 20
        } else {
            self.max_merge_bytes
        }
    }

    /// Builder-style: sets vertical passes.
    pub fn with_vertical_parts(mut self, v: u32) -> Self {
        self.vertical_parts = v.max(1);
        self
    }

    /// Builder-style: selects the pipelined (`true`, default) or
    /// phase-barrier (`false`) scheduler.
    pub fn with_pipeline(mut self, on: bool) -> Self {
        self.pipeline = on;
        self
    }

    /// Resolved thread count.
    pub fn threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.num_threads
        }
    }

    /// Resolved range shift for a graph of `n` vertices: the paper's
    /// guidance adapted to small graphs — enough ranges per partition
    /// (≥ 8) for stealing granularity, ranges at least 256 vertices
    /// when the graph affords it.
    pub fn resolve_range_shift(&self, n: usize) -> u32 {
        if self.range_shift != 0 {
            return self.range_shift;
        }
        let threads = self.threads().max(1);
        let target_ranges = threads * 8;
        let mut r = 0u32;
        while (n >> (r + 1)) >= target_ranges && r < 18 {
            r += 1;
        }
        r
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_threads: 0,
            range_shift: 0,
            max_pending: 4000,
            issue_batch: 256,
            merge_in_engine: true,
            // A few MB: large enough that merging still amortizes
            // request overhead, small enough that one cover cannot
            // monopolize a drive (a couple of stripes on the paper's
            // array geometry).
            max_merge_bytes: 4 << 20,
            max_request_edges: 0,
            scheduler: SchedulerKind::Alternating,
            scan_mode: ScanMode::Selective,
            vertical_parts: 1,
            max_iterations: u32::MAX,
            work_stealing: true,
            pipeline: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_resolves_threads() {
        assert!(EngineConfig::default().threads() >= 1);
        assert_eq!(EngineConfig::default().with_threads(3).threads(), 3);
    }

    #[test]
    fn explicit_range_shift_wins() {
        let c = EngineConfig {
            range_shift: 14,
            ..EngineConfig::default()
        };
        assert_eq!(c.resolve_range_shift(1 << 20), 14);
    }

    #[test]
    fn auto_range_shift_scales_with_graph() {
        let c = EngineConfig::default().with_threads(4);
        let small = c.resolve_range_shift(1 << 10);
        let large = c.resolve_range_shift(1 << 24);
        assert!(large > small);
        assert!(large <= 18, "paper's upper guidance");
        // Enough ranges for stealing even on tiny graphs.
        assert!((1usize << 10) >> small >= 4 * 4);
    }

    #[test]
    fn merge_cap_defaults_and_resolves() {
        let c = EngineConfig::default();
        assert_eq!(c.max_merge_bytes, 4 << 20);
        assert_eq!(c.resolved_max_merge_bytes(), 4 << 20);
        assert_eq!(
            c.with_max_merge_bytes(0).resolved_max_merge_bytes(),
            crate::merge::UNLIMITED_MERGE_BYTES
        );
    }

    #[test]
    fn chunk_bound_defaults_off() {
        assert_eq!(EngineConfig::default().max_request_edges, 0);
        assert_eq!(
            EngineConfig::default()
                .with_max_request_edges(64)
                .max_request_edges,
            64
        );
    }

    #[test]
    fn scan_mode_defaults_selective() {
        assert_eq!(EngineConfig::default().scan_mode, ScanMode::Selective);
        assert_eq!(
            EngineConfig::default()
                .with_scan_mode(ScanMode::adaptive())
                .scan_mode,
            ScanMode::Adaptive { threshold: 50 }
        );
    }

    #[test]
    fn stream_stride_follows_merge_cap() {
        let c = EngineConfig::default();
        assert_eq!(c.stream_stride_bytes(), 4 << 20);
        assert_eq!(
            c.with_max_merge_bytes(1 << 16).stream_stride_bytes(),
            1 << 16
        );
        assert_eq!(c.with_max_merge_bytes(0).stream_stride_bytes(), 4 << 20);
    }

    #[test]
    fn pipeline_defaults_on() {
        assert!(EngineConfig::default().pipeline);
        assert!(!EngineConfig::default().with_pipeline(false).pipeline);
    }

    #[test]
    fn vertical_parts_never_zero() {
        assert_eq!(
            EngineConfig::default()
                .with_vertical_parts(0)
                .vertical_parts,
            1
        );
    }
}
