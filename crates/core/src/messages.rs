//! Message passing between vertices (§3.4.1).
//!
//! Worker threads send and receive messages *on behalf of* their
//! vertices: outgoing messages are buffered per destination partition
//! and posted to the destination's inbox in blocks (bundling "multiple
//! messages in a single packet to reduce synchronization overhead").
//! Unicasts travel as packed `(vertex, payload)` arrays — the lean
//! representation matters because PageRank-class algorithms send one
//! message per edge per iteration. Multicast is first-class: one
//! payload plus a recipient list per destination partition, instead
//! of N copies.
//!
//! Delivery is bulk-synchronous: inboxes drain at the iteration
//! barrier, on the partition owner's thread, which is what makes
//! lock-free vertex-state mutation safe. Messages posted *during*
//! delivery (by `run_on_message` handlers) stay queued for the next
//! iteration, and the engine keeps running while any are pending.
//! This boundary survives the pipelined scheduler unchanged: compute
//! only reaches the drain once every partition's claims are
//! exhausted and the delivery-obligation count is zero, so however
//! callbacks interleaved (or migrated across workers) during the
//! iteration, every message they posted is in its inbox before the
//! drain starts.

use fg_types::sync::Counter;
use fg_types::VertexId;
use parking_lot::Mutex;

/// A bundle of buffered messages bound for one partition.
#[derive(Debug)]
pub(crate) enum Batch<M> {
    /// Point-to-point messages, packed.
    Unicasts(Vec<(VertexId, M)>),
    /// One payload for many vertices of the destination partition.
    Multicast(Vec<VertexId>, M),
}

impl<M> Batch<M> {
    /// Number of per-vertex deliveries this batch produces.
    pub(crate) fn fanout(&self) -> u64 {
        match self {
            Batch::Unicasts(v) => v.len() as u64,
            Batch::Multicast(v, _) => v.len() as u64,
        }
    }
}

/// Per-partition inboxes shared by all workers.
#[derive(Debug)]
pub(crate) struct MessageBoard<M> {
    inboxes: Vec<Mutex<Vec<Batch<M>>>>,
    /// Batches currently stored. Read by the termination check at
    /// the iteration boundary, where the quiesce barrier has already
    /// synchronized all posts — a relaxed [`Counter`] by contract.
    pending: Counter,
    /// Total per-vertex deliveries ever posted (statistics).
    total_sent: Counter,
}

impl<M: Send> MessageBoard<M> {
    pub(crate) fn new(partitions: usize) -> Self {
        let mut inboxes = Vec::with_capacity(partitions);
        inboxes.resize_with(partitions, || Mutex::new(Vec::new()));
        MessageBoard {
            inboxes,
            pending: Counter::default(),
            total_sent: Counter::default(),
        }
    }

    /// Posts one batch to partition `dest`.
    pub(crate) fn post(&self, dest: usize, batch: Batch<M>) {
        let fanout = batch.fanout();
        if fanout == 0 {
            return;
        }
        self.pending.inc();
        self.total_sent.add(fanout);
        self.inboxes[dest].lock().push(batch);
    }

    /// Takes everything queued for partition `dest`.
    pub(crate) fn drain(&self, dest: usize) -> Vec<Batch<M>> {
        let mut inbox = self.inboxes[dest].lock();
        let got = std::mem::take(&mut *inbox);
        self.pending.sub(got.len() as u64);
        got
    }

    /// Batches currently queued anywhere.
    pub(crate) fn pending(&self) -> u64 {
        self.pending.get()
    }

    /// Total per-vertex deliveries posted since construction.
    pub(crate) fn total_sent(&self) -> u64 {
        self.total_sent.get()
    }
}

/// One batched cross-shard transfer: what a worker's foreign outbox
/// serializes into when its destination vertex lives on another
/// shard's engine. Mirrors [`Batch`] plus activation (which local
/// execution performs as a direct bitmap OR but a foreign shard must
/// be *told* about).
#[derive(Debug)]
pub(crate) enum ShardPacket<M> {
    /// Point-to-point messages, packed.
    Unicasts(Vec<(VertexId, M)>),
    /// One payload for many vertices of the destination shard.
    Multicast(Vec<VertexId>, M),
    /// Activations for the destination shard's next frontier.
    Activate(Vec<VertexId>),
}

impl<M> ShardPacket<M> {
    /// Serialized size of the packet on the (in-process) wire — the
    /// cross-shard traffic `RunStats::shard_msg_bytes` accounts.
    pub(crate) fn wire_bytes(&self) -> u64 {
        let id = std::mem::size_of::<VertexId>() as u64;
        match self {
            ShardPacket::Unicasts(v) => {
                v.len() as u64 * std::mem::size_of::<(VertexId, M)>() as u64
            }
            ShardPacket::Multicast(v, _) => v.len() as u64 * id + std::mem::size_of::<M>() as u64,
            ShardPacket::Activate(v) => v.len() as u64 * id,
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            ShardPacket::Unicasts(v) => v.is_empty(),
            ShardPacket::Multicast(v, _) => v.is_empty(),
            ShardPacket::Activate(v) => v.is_empty(),
        }
    }
}

/// The in-process bus connecting a sharded run's engines: one lane of
/// batched [`ShardPacket`]s per destination shard.
///
/// Workers post packets whenever their foreign outboxes flush (same
/// bundling threshold as local boards); each shard drains its own
/// lane at the two cross-shard synchronization points of an iteration
/// — after compute (so foreign messages are delivered at the same
/// barrier a local send would reach) and at the termination check (so
/// barrier-phase sends stay pending into the next iteration, exactly
/// like a local board).
#[derive(Debug)]
pub(crate) struct ShardBus<M> {
    lanes: Vec<Mutex<Vec<ShardPacket<M>>>>,
    /// Packets currently queued anywhere (termination diagnostics;
    /// exact reads happen at the shard rendezvous).
    pending: Counter,
    /// Serialized bytes ever posted (statistics).
    bytes: Counter,
}

impl<M: Send> ShardBus<M> {
    pub(crate) fn new(shards: usize) -> Self {
        let mut lanes = Vec::with_capacity(shards);
        lanes.resize_with(shards, || Mutex::new(Vec::new()));
        ShardBus {
            lanes,
            pending: Counter::default(),
            bytes: Counter::default(),
        }
    }

    /// Posts one packet to shard `dest`'s lane.
    pub(crate) fn post(&self, dest: usize, packet: ShardPacket<M>) {
        if packet.is_empty() {
            return;
        }
        self.pending.inc();
        self.bytes.add(packet.wire_bytes());
        self.lanes[dest].lock().push(packet);
    }

    /// Takes everything queued for shard `dest`.
    pub(crate) fn drain(&self, dest: usize) -> Vec<ShardPacket<M>> {
        let mut lane = self.lanes[dest].lock();
        let got = std::mem::take(&mut *lane);
        self.pending.sub(got.len() as u64);
        got
    }

    /// Packets currently queued anywhere.
    pub(crate) fn pending(&self) -> u64 {
        self.pending.get()
    }

    /// Serialized bytes posted since construction.
    pub(crate) fn bytes_sent(&self) -> u64 {
        self.bytes.get()
    }
}

/// Per-partition registrations for end-of-iteration callbacks.
#[derive(Debug)]
pub(crate) struct NotifyBoard {
    slots: Vec<Mutex<Vec<VertexId>>>,
}

impl NotifyBoard {
    pub(crate) fn new(partitions: usize) -> Self {
        let mut slots = Vec::with_capacity(partitions);
        slots.resize_with(partitions, || Mutex::new(Vec::new()));
        NotifyBoard { slots }
    }

    pub(crate) fn post(&self, dest: usize, mut vids: Vec<VertexId>) {
        if vids.is_empty() {
            return;
        }
        self.slots[dest].lock().append(&mut vids);
    }

    pub(crate) fn drain(&self, dest: usize) -> Vec<VertexId> {
        std::mem::take(&mut *self.slots[dest].lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_drain_round_trip() {
        let b: MessageBoard<u32> = MessageBoard::new(2);
        b.post(0, Batch::Unicasts(vec![(VertexId(1), 10)]));
        b.post(1, Batch::Multicast(vec![VertexId(2), VertexId(3)], 20));
        assert_eq!(b.pending(), 2);
        assert_eq!(b.total_sent(), 3);
        let got0 = b.drain(0);
        assert_eq!(got0.len(), 1);
        assert_eq!(b.pending(), 1);
        let got1 = b.drain(1);
        assert_eq!(got1[0].fanout(), 2);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn empty_post_is_noop() {
        let b: MessageBoard<u32> = MessageBoard::new(1);
        b.post(0, Batch::Unicasts(Vec::new()));
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn drain_empties_only_target() {
        let b: MessageBoard<()> = MessageBoard::new(3);
        for p in 0..3 {
            b.post(p, Batch::Unicasts(vec![(VertexId(0), ())]));
        }
        b.drain(1);
        assert_eq!(b.pending(), 2);
        assert_eq!(b.drain(0).len(), 1);
        assert_eq!(b.drain(2).len(), 1);
    }

    #[test]
    fn concurrent_posts_all_arrive() {
        let b: std::sync::Arc<MessageBoard<u64>> = std::sync::Arc::new(MessageBoard::new(2));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let b = std::sync::Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    b.post(
                        (i % 2) as usize,
                        Batch::Unicasts(vec![(VertexId(i as u32), t)]),
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.pending(), 400);
        assert_eq!(b.drain(0).len() + b.drain(1).len(), 400);
        assert_eq!(b.total_sent(), 400);
    }

    #[test]
    fn unicast_entries_are_packed() {
        // The dominant message shape must stay small: one id + one
        // payload, no per-message enum or allocation.
        assert_eq!(
            std::mem::size_of::<(VertexId, f32)>(),
            8,
            "unicast entries must pack to 8 bytes for f32 payloads"
        );
    }

    #[test]
    fn shard_bus_round_trip_and_accounting() {
        let bus: ShardBus<u32> = ShardBus::new(3);
        bus.post(
            1,
            ShardPacket::Unicasts(vec![(VertexId(9), 7), (VertexId(10), 8)]),
        );
        bus.post(
            2,
            ShardPacket::Multicast(vec![VertexId(1), VertexId(2), VertexId(3)], 5),
        );
        bus.post(0, ShardPacket::Activate(vec![VertexId(4)]));
        bus.post(0, ShardPacket::Activate(Vec::new())); // no-op
        assert_eq!(bus.pending(), 3);
        // 2 packed (id, u32) pairs + 3 ids + 1 payload + 1 id.
        assert_eq!(bus.bytes_sent(), 2 * 8 + (3 * 4 + 4) + 4);
        assert_eq!(bus.drain(1).len(), 1);
        assert_eq!(bus.pending(), 2);
        assert_eq!(bus.drain(2).len(), 1);
        assert_eq!(bus.drain(0).len(), 1);
        assert_eq!(bus.pending(), 0);
        assert!(bus.drain(0).is_empty());
    }

    #[test]
    fn notify_board_round_trip() {
        let nb = NotifyBoard::new(2);
        nb.post(0, vec![VertexId(5), VertexId(6)]);
        nb.post(0, vec![VertexId(7)]);
        assert_eq!(nb.drain(0).len(), 3);
        assert!(nb.drain(0).is_empty());
        assert!(nb.drain(1).is_empty());
    }
}
