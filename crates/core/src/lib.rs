//! FlashGraph: a semi-external-memory, vertex-centric graph engine.
//!
//! This crate is the paper's primary contribution (§3): algorithmic
//! vertex state stays in RAM, edge lists stay on the SSD array and are
//! read *selectively* through SAFS. The pieces:
//!
//! * **Programming model** ([`VertexProgram`], §3.4): per-vertex
//!   `run` / `run_on_vertex` / `run_on_message` /
//!   `run_on_iteration_end` callbacks. A vertex must explicitly
//!   request an edge list (its own or — unusually among graph engines
//!   — *any other vertex's*) before touching edges, which is what
//!   lets FlashGraph avoid reading edge lists of vertices that are
//!   activated but do no work. Requests are first-class [`Request`]
//!   values and may name a *part* of an edge list
//!   (`Request::edges(dir).range(start, len)`), so algorithms probing
//!   high-degree hubs never pay for bytes they won't use.
//! * **Execution model** (§3.3): iterations over an active frontier;
//!   vertices interact by message passing (applied at iteration
//!   barriers, Pregel-style) and multicast activation.
//! * **I/O path** (§3.6): requests from an issue batch are sorted by
//!   SSD offset and merged when they touch the same or adjacent
//!   pages, then submitted asynchronously; completions run the
//!   user's code directly over the page cache. Dense iterations can
//!   switch to a **streaming scan** ([`ScanMode`]): stride-sized
//!   sequential covers over each partition's edge-list extent, with
//!   cache-bypass so a sweep never evicts the hot working set.
//! * **Scheduling** (§3.7): per-thread schedulers process vertices in
//!   vertex-id order (matching edge-list order on SSDs), alternating
//!   scan direction between iterations; custom orders are pluggable
//!   ([`SchedulerKind`]), e.g. degree-descending for scan statistics.
//! * **2-D partitioning and load balancing** (§3.8): range-based
//!   horizontal partitions (`(vid >> r) % n`), optional vertical
//!   passes for hub vertices, and cursor-based work stealing.
//! * **Two execution modes**: semi-external memory over
//!   [`fg_safs::Safs`] and a drop-in in-memory mode over
//!   [`fg_graph::Graph`] — the paper's FG-mem baseline.
//! * **Concurrent serving** ([`GraphService`], [`serve`]): one SAFS
//!   mount and one index shared by many simultaneous queries, with
//!   priority-class + weighted-fair-share admission, per-query
//!   deadlines/cancellation ([`CancelToken`]), and cross-tenant
//!   in-flight read dedup — the multi-tenant layer over §3.1's
//!   shared cache and I/O threads.
//!
//! # Example: breadth-first search (the paper's Figure 4)
//!
//! ```
//! use fg_types::{EdgeDir, VertexId};
//! use flashgraph::{
//!     Engine, EngineConfig, Init, PageVertex, Request, VertexContext, VertexProgram,
//! };
//!
//! struct Bfs;
//!
//! #[derive(Default, Clone)]
//! struct BfsState {
//!     visited: bool,
//! }
//!
//! impl VertexProgram for Bfs {
//!     type State = BfsState;
//!     type Msg = ();
//!
//!     fn run(&self, v: VertexId, state: &mut BfsState, ctx: &mut VertexContext<'_, ()>) {
//!         if !state.visited {
//!             state.visited = true;
//!             // `Request::edges(dir)` asks for the whole list; add
//!             // `.range(start, len)` for a slice of a hub's list or
//!             // `.with_attrs()` for edge weights.
//!             ctx.request(v, Request::edges(EdgeDir::Out));
//!         }
//!     }
//!
//!     fn run_on_vertex(
//!         &self,
//!         _v: VertexId,
//!         _state: &mut BfsState,
//!         vertex: &PageVertex<'_>,
//!         ctx: &mut VertexContext<'_, ()>,
//!     ) {
//!         for dst in vertex.edges() {
//!             ctx.activate(dst);
//!         }
//!     }
//! }
//!
//! let g = fg_graph::fixtures::path(5);
//! let engine = Engine::new_mem(&g, EngineConfig::default());
//! let (states, stats) = engine.run(&Bfs, Init::Seeds(vec![VertexId(0)])).unwrap();
//! assert!(states.iter().all(|s| s.visited));
//! assert_eq!(stats.iterations, 5);
//! ```

mod config;
mod context;
mod engine;
pub mod merge;
mod messages;
mod partition;
mod program;
pub mod serve;
mod shard;
mod state;
mod stats;
mod vertex;

pub use config::{EngineConfig, ScanMode, SchedulerKind};
pub use context::{Request, VertexContext};
pub use engine::{Engine, GraphEngine, Init};
pub use program::VertexProgram;
pub use serve::{
    Compactor, GraphService, Priority, QueryOpts, ServiceConfig, ServiceStatsSnapshot, TenantConfig,
};
pub use shard::ShardedEngine;
pub use stats::{IterStats, RunStats};
pub use vertex::PageVertex;

// Re-exported so service callers can build tokens without naming
// `fg_types` directly.
pub use fg_types::{CancelCause, CancelToken};
