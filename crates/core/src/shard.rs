//! Sharded execution: one engine per vertex-range shard, in lockstep.
//!
//! A sharded image (see `fg_format::write_sharded_image`) splits the
//! vertex range into N contiguous shards, each a complete image on
//! its own array. [`ShardedEngine`] mounts run one [`crate::Engine`]
//! per shard — each with its own mount, page cache, and I/O threads —
//! so N arrays stream concurrently and the run sustains their
//! *aggregate* device bandwidth.
//!
//! The engines cooperate through exactly two mechanisms:
//!
//! * the [`ShardBus`](crate::messages): messages/activations whose
//!   destination vertex lives on a foreign shard buffer in per-worker
//!   outboxes and travel as batched packets, drained by the owner at
//!   the same iteration boundary a local send would reach;
//! * a [`ShardGroup`]: a tiny rendezvous barrier worker 0 of every
//!   shard meets at twice per iteration — once after compute (so all
//!   of the iteration's packets are on the bus before anyone drains)
//!   and once at the termination check, where the per-shard "quiet"
//!   flags AND-reduce so every shard stops on the same iteration.
//!
//! Vertex *state* is never transferred: all shard engines run against
//! one global [`SharedStates`], sound because each vertex's callbacks
//! run only on its owning shard — the same exclusivity discipline the
//! busy bitmap enforces inside one engine, extended across engines.
//! Foreign *edge lists* (TC-style neighbour reads) are served by a
//! synchronous read of the owner's mount, routed by the
//! [`ShardedIndex`].

use std::sync::{Arc, Condvar, Mutex};

use fg_format::ShardedIndex;
use fg_graph::DeltaView;
use fg_safs::ShardSet;
use fg_types::{CancelToken, FgError, Result, VertexId};

use crate::config::EngineConfig;
use crate::engine::{Engine, Init};
use crate::messages::ShardBus;
use crate::program::VertexProgram;
use crate::state::SharedStates;
use crate::stats::RunStats;

/// The rendezvous barrier of a sharded run: worker 0 of every shard
/// meets here at the two cross-shard sync points of an iteration.
/// Vote rounds AND-reduce a per-shard flag (the termination check);
/// plain rendezvous rounds are votes whose result nobody reads.
///
/// A thread panic on any shard poisons the group (via the driver's
/// guard), and every waiter panics instead of deadlocking on a peer
/// that will never arrive.
///
/// Model-checked as `fg_check`'s `rendezvous` model: waiting on the
/// *generation* (not the `arrived` counter, which the next round
/// reuses) and notifying on poison are both load-bearing — the seeded
/// `ArrivedPredicate` and `PoisonNoNotify` mutations each deadlock.
/// See `crates/check` and `tests/check_models.rs`.
pub(crate) struct ShardGroup {
    shards: usize,
    state: Mutex<GroupState>,
    cv: Condvar,
}

struct GroupState {
    arrived: usize,
    generation: u64,
    /// AND-accumulator of the in-progress round.
    acc: bool,
    /// Result of the last completed round.
    result: bool,
    poisoned: bool,
}

impl ShardGroup {
    pub(crate) fn new(shards: usize) -> Self {
        assert!(shards > 0);
        ShardGroup {
            shards,
            state: Mutex::new(GroupState {
                arrived: 0,
                generation: 0,
                acc: true,
                result: true,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until every shard arrives. Rounds are totally ordered:
    /// all shards execute the same sequence of sync points, so one
    /// generation counter serves rendezvous and vote rounds alike.
    pub(crate) fn rendezvous(&self) {
        self.vote(true);
    }

    /// Contributes `flag` to this round's AND-reduction and blocks
    /// until every shard has; returns the reduction.
    pub(crate) fn vote(&self, flag: bool) -> bool {
        // Lock poisoning is folded into the group's own flag: a peer
        // that panicked mid-round is exactly the "peer shard
        // panicked" case, and `poison` must still work during unwind.
        let mut g = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(!g.poisoned, "peer shard panicked");
        g.acc &= flag;
        g.arrived += 1;
        if g.arrived == self.shards {
            g.arrived = 0;
            g.result = g.acc;
            g.acc = true;
            g.generation = g.generation.wrapping_add(1);
            self.cv.notify_all();
            g.result
        } else {
            let gen = g.generation;
            while g.generation == gen && !g.poisoned {
                g = self
                    .cv
                    .wait(g)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            assert!(!g.poisoned, "peer shard panicked");
            g.result
        }
    }

    /// Marks the group dead and wakes every waiter (who then panic).
    fn poison(&self) {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .poisoned = true;
        self.cv.notify_all();
    }
}

/// Poisons the group if its shard's thread unwinds, so peers blocked
/// in a rendezvous fail fast instead of waiting forever.
struct PoisonGuard<'a>(&'a ShardGroup);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// What a shard engine needs to reach its peers: the message bus and
/// the rendezvous group. Handed into [`Engine::run_inner`] by the
/// sharded driver; `None` for ordinary single-engine runs.
pub(crate) struct ShardLink<'a, M> {
    pub bus: &'a ShardBus<M>,
    pub group: &'a ShardGroup,
}

/// N cooperating engines over a sharded image — the scale-out driver.
///
/// Mirrors the [`Engine`] surface (`run`, `run_with_states`, `config`,
/// `reconfigured`) so applications run unchanged; results are
/// bit-identical to a single engine over the unsharded image, and a
/// 1-shard set reproduces it exactly.
pub struct ShardedEngine<'g> {
    set: &'g ShardSet,
    index: Arc<ShardedIndex>,
    cfg: EngineConfig,
    /// One token shared by every shard engine of a run; each shard
    /// votes its observation into the stop rendezvous (see
    /// [`Engine::with_cancel`]), so all shards stop on one iteration.
    cancel: Option<CancelToken>,
    /// One pinned delta view shared by every shard engine (see
    /// [`Engine::with_deltas`]); each shard overlays the subset of
    /// ops touching subjects it reads.
    deltas: Option<Arc<DeltaView>>,
}

impl std::fmt::Debug for ShardedEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("vertices", &self.index.num_vertices())
            .field("shards", &self.index.num_shards())
            .finish_non_exhaustive()
    }
}

impl<'g> ShardedEngine<'g> {
    /// A sharded engine over one mount per shard of `index`.
    ///
    /// # Panics
    ///
    /// Panics when the mount count differs from the shard count.
    pub fn new(set: &'g ShardSet, index: ShardedIndex, cfg: EngineConfig) -> Self {
        Self::new_shared(set, Arc::new(index), cfg)
    }

    /// Like [`ShardedEngine::new`] but sharing an already-`Arc`ed
    /// index.
    pub fn new_shared(set: &'g ShardSet, index: Arc<ShardedIndex>, cfg: EngineConfig) -> Self {
        assert_eq!(
            set.len(),
            index.num_shards(),
            "one mount per shard of the index"
        );
        ShardedEngine {
            set,
            index,
            cfg,
            cancel: None,
            deltas: None,
        }
    }

    /// Global number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.index.num_vertices()
    }

    /// Number of shards (= cooperating engines per run).
    pub fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    /// The engine configuration every shard runs under.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// A new driver over the same mounts with a different
    /// configuration.
    pub fn reconfigured(&self, cfg: EngineConfig) -> ShardedEngine<'g> {
        ShardedEngine {
            set: self.set,
            index: Arc::clone(&self.index),
            cfg,
            cancel: self.cancel.clone(),
            deltas: self.deltas.clone(),
        }
    }

    /// Attaches a cancellation token shared by every shard of a run.
    /// Cancellation travels through the stop rendezvous exactly like
    /// termination, so every shard stops on the same iteration and no
    /// shard blocks on a cancelled peer; the run then errors with
    /// [`FgError::Cancelled`] / [`FgError::DeadlineExpired`].
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a pinned delta view, forwarded to every shard engine
    /// of a run — see [`Engine::with_deltas`]. An empty view is
    /// dropped so frozen-image runs keep their fast paths.
    #[must_use]
    pub fn with_deltas(mut self, view: Arc<DeltaView>) -> Self {
        self.deltas = (!view.is_empty()).then_some(view);
        self
    }

    /// Executes `program` to convergence across all shards, returning
    /// the global state vector and the aggregate statistics.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::VertexOutOfRange`] for bad seeds.
    pub fn run<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
    ) -> Result<(Vec<P::State>, RunStats)> {
        let n = self.num_vertices();
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            states.push(program.init_state(VertexId::from_index(i)));
        }
        self.run_with_states(program, init, states)
    }

    /// Like [`ShardedEngine::run`] but resuming from caller-provided
    /// states.
    ///
    /// # Errors
    ///
    /// Returns [`FgError::VertexOutOfRange`] for bad seeds and
    /// [`FgError::InvalidRequest`] for a state vector of the wrong
    /// length.
    pub fn run_with_states<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
        states: Vec<P::State>,
    ) -> Result<(Vec<P::State>, RunStats)> {
        let (states, total, _) = self.run_detailed(program, init, states)?;
        Ok((states, total))
    }

    /// The full-detail run: global states, the aggregate
    /// [`RunStats`] roll-up, and each shard's own stats (whose
    /// summed counters equal the aggregate's — the invariant
    /// `RunStats::absorb` maintains).
    ///
    /// # Errors
    ///
    /// See [`ShardedEngine::run_with_states`].
    pub fn run_detailed<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
        states: Vec<P::State>,
    ) -> Result<(Vec<P::State>, RunStats, Vec<RunStats>)> {
        let n = self.num_vertices();
        let shards = self.num_shards();
        // Every validation an engine performs must happen *before*
        // the shard threads start: an engine that errors out before
        // its first rendezvous would leave its peers waiting forever.
        if states.len() != n {
            return Err(FgError::InvalidRequest(format!(
                "state vector has {} entries for {} vertices",
                states.len(),
                n
            )));
        }
        if let Init::Seeds(seeds) = &init {
            for s in seeds {
                if s.index() >= n {
                    return Err(FgError::VertexOutOfRange {
                        vertex: s.0 as u64,
                        num_vertices: n as u64,
                    });
                }
            }
        }

        let shared = SharedStates::new(states);
        let bus: ShardBus<P::Msg> = ShardBus::new(shards);
        let group = ShardGroup::new(shards);
        let per_shard: Mutex<Vec<Option<RunStats>>> = Mutex::new(vec![None; shards]);

        std::thread::scope(|scope| {
            for s in 0..shards {
                let init = init.clone();
                let (shared, bus, group, per_shard) = (&shared, &bus, &group, &per_shard);
                scope.spawn(move || {
                    let _guard = PoisonGuard(group);
                    let mut engine =
                        Engine::new_shard(self.set, Arc::clone(&self.index), s, self.cfg);
                    if let Some(token) = &self.cancel {
                        engine = engine.with_cancel(token.clone());
                    }
                    if let Some(view) = &self.deltas {
                        engine = engine.with_deltas(Arc::clone(view));
                    }
                    let link = ShardLink { bus, group };
                    let stats = engine
                        .run_inner(program, init, shared, Some(&link))
                        .expect("sharded runs are pre-validated");
                    per_shard.lock().unwrap()[s] = Some(stats);
                });
            }
        });

        let per_shard: Vec<RunStats> = per_shard
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|s| s.expect("every shard reports"))
            .collect();
        let mut total = per_shard[0].clone();
        for s in &per_shard[1..] {
            total.absorb(s);
        }
        debug_assert_eq!(bus.pending(), 0, "bus drained at termination");
        debug_assert_eq!(
            total.shard_msg_bytes,
            bus.bytes_sent(),
            "per-engine byte accounting covers exactly the bus traffic"
        );
        // Cancellation surfaces here — *after* every shard thread has
        // joined and the group is retired — never inside a shard
        // thread, where an early `Err` would poison peers mid-round.
        if let Some(cause) = total.cancelled {
            return Err(cause.into());
        }
        Ok((shared.into_inner(), total, per_shard))
    }
}

impl crate::engine::GraphEngine for ShardedEngine<'_> {
    fn num_vertices(&self) -> usize {
        ShardedEngine::num_vertices(self)
    }

    fn config(&self) -> &EngineConfig {
        ShardedEngine::config(self)
    }

    fn reconfigured(&self, cfg: EngineConfig) -> Self {
        ShardedEngine::reconfigured(self, cfg)
    }

    fn run<P: VertexProgram>(&self, program: &P, init: Init) -> Result<(Vec<P::State>, RunStats)> {
        ShardedEngine::run(self, program, init)
    }

    fn run_with_states<P: VertexProgram>(
        &self,
        program: &P,
        init: Init,
        states: Vec<P::State>,
    ) -> Result<(Vec<P::State>, RunStats)> {
        ShardedEngine::run_with_states(self, program, init, states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_rendezvous_releases_all() {
        let g = Arc::new(ShardGroup::new(3));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    g.rendezvous();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn vote_is_an_and_reduction() {
        let g = Arc::new(ShardGroup::new(2));
        let g2 = Arc::clone(&g);
        let t = std::thread::spawn(move || {
            let r1 = g2.vote(true);
            let r2 = g2.vote(true);
            let r3 = g2.vote(false);
            (r1, r2, r3)
        });
        let r1 = g.vote(false);
        let r2 = g.vote(true);
        let r3 = g.vote(true);
        let (o1, o2, o3) = t.join().unwrap();
        assert_eq!((r1, r2, r3), (false, true, false));
        assert_eq!((o1, o2, o3), (false, true, false));
    }

    #[test]
    fn poisoned_group_panics_waiters() {
        let g = Arc::new(ShardGroup::new(2));
        let g2 = Arc::clone(&g);
        let waiter = std::thread::spawn(move || g2.rendezvous());
        // Give the waiter time to block, then poison.
        std::thread::sleep(std::time::Duration::from_millis(20));
        g.poison();
        assert!(waiter.join().is_err(), "waiter must panic, not hang");
    }

    fn sharded_fixture(g: &fg_graph::Graph, shards: usize) -> (ShardSet, ShardedIndex) {
        use fg_format::{required_shard_capacities, write_sharded_image, WriteOptions};
        let opts = WriteOptions::default();
        let arrays: Vec<fg_ssdsim::SsdArray> = required_shard_capacities(g, &opts, shards)
            .into_iter()
            .map(|cap| {
                fg_ssdsim::SsdArray::new_mem(fg_ssdsim::ArrayConfig::small_test(), cap.max(4096))
                    .unwrap()
            })
            .collect();
        write_sharded_image(g, &arrays, &opts).unwrap();
        let (_, index) = ShardedIndex::load(&arrays).unwrap();
        let set = ShardSet::new(fg_safs::SafsConfig::default(), arrays).unwrap();
        (set, index)
    }

    /// Min-label propagation over out-edges: messages, activations,
    /// and edge-list requests all in one program, so a sharded run
    /// exercises every bus packet kind.
    struct MinLabel;

    #[derive(Clone)]
    struct MlState {
        label: u32,
        pushed: u32,
    }

    impl Default for MlState {
        fn default() -> Self {
            MlState {
                label: u32::MAX,
                pushed: u32::MAX,
            }
        }
    }

    impl VertexProgram for MinLabel {
        type State = MlState;
        type Msg = u32;

        fn init_state(&self, v: VertexId) -> MlState {
            MlState {
                label: v.0,
                pushed: u32::MAX,
            }
        }

        fn run(
            &self,
            v: VertexId,
            state: &mut MlState,
            ctx: &mut crate::context::VertexContext<'_, u32>,
        ) {
            if state.label < state.pushed {
                state.pushed = state.label;
                ctx.request(v, crate::context::Request::edges(fg_types::EdgeDir::Out));
            }
        }

        fn run_on_vertex(
            &self,
            _v: VertexId,
            state: &mut MlState,
            vertex: &crate::vertex::PageVertex<'_>,
            ctx: &mut crate::context::VertexContext<'_, u32>,
        ) {
            for dst in vertex.edges() {
                ctx.send(dst, state.label);
            }
        }

        fn run_on_message(
            &self,
            v: VertexId,
            state: &mut MlState,
            msg: &u32,
            ctx: &mut crate::context::VertexContext<'_, u32>,
        ) {
            if *msg < state.label {
                state.label = *msg;
                ctx.activate(v);
            }
        }
    }

    #[test]
    fn sharded_label_propagation_matches_single_engine() {
        let g = fg_graph::gen::rmat(7, 4, fg_graph::gen::RmatSkew::default(), 9);
        let cfg = EngineConfig::small();
        let mem = Engine::new_mem(&g, cfg);
        let (mem_states, mem_stats) = mem.run(&MinLabel, Init::All).unwrap();
        let mem_labels: Vec<u32> = mem_states.iter().map(|s| s.label).collect();
        for shards in [1usize, 2, 3] {
            let (set, index) = sharded_fixture(&g, shards);
            let engine = ShardedEngine::new(&set, index, cfg);
            let (states, stats) = engine.run(&MinLabel, Init::All).unwrap();
            let labels: Vec<u32> = states.iter().map(|s| s.label).collect();
            assert_eq!(labels, mem_labels, "{shards}-shard labels");
            assert_eq!(
                stats.iterations, mem_stats.iterations,
                "{shards}-shard iters"
            );
            assert_eq!(
                stats.edges_delivered, mem_stats.edges_delivered,
                "{shards}-shard edges"
            );
            assert_eq!(
                stats.messages_sent, mem_stats.messages_sent,
                "{shards}-shard messages"
            );
            if shards == 1 {
                assert_eq!(stats.shard_msg_bytes, 0, "no peers, no bus traffic");
            } else {
                assert!(stats.shard_msg_bytes > 0, "cross-shard run must message");
            }
        }
    }

    /// Touches every active vertex's out-list once, then stops.
    struct TouchAll;

    impl VertexProgram for TouchAll {
        type State = ();
        type Msg = ();

        fn run(
            &self,
            v: VertexId,
            _state: &mut (),
            ctx: &mut crate::context::VertexContext<'_, ()>,
        ) {
            ctx.request(v, crate::context::Request::edges(fg_types::EdgeDir::Out));
        }
    }

    #[test]
    fn per_shard_stats_sum_to_total() {
        let g = fg_graph::gen::rmat(6, 5, fg_graph::gen::RmatSkew::default(), 3);
        let (set, index) = sharded_fixture(&g, 3);
        let engine = ShardedEngine::new(&set, index, EngineConfig::small());
        let n = engine.num_vertices();
        let states = vec![(); n];
        let (_, total, per_shard) = engine.run_detailed(&TouchAll, Init::All, states).unwrap();
        assert_eq!(per_shard.len(), 3);
        let mut sum = per_shard[0].clone();
        for s in &per_shard[1..] {
            sum.absorb(s);
        }
        assert_eq!(sum.vertices_processed, total.vertices_processed);
        assert_eq!(sum.edges_delivered, total.edges_delivered);
        assert_eq!(sum.bytes_requested, total.bytes_requested);
    }
}
