//! Shared vertex-state storage.
//!
//! FlashGraph keeps one small user-defined state per vertex in a flat
//! array. Workers mutate states without locks under the engine's
//! exclusivity discipline (§3.4.1, §3.8.1):
//!
//! 1. during the compute phase every callback for a vertex runs
//!    under that vertex's *busy bit* (`AtomicBitmap::set_sync` /
//!    `clear_sync`, an AcqRel fetch-or/fetch-and pair). Under the
//!    lock-step scheduler the bit is uncontended — a vertex is
//!    claimed by exactly one worker via an atomic cursor and all its
//!    callbacks run there. Under the pipelined scheduler a delivery
//!    may execute on *any* worker (pulled from the shared ready
//!    pool), so the bit is load-bearing twice over: it makes
//!    callbacks for one vertex mutually exclusive, and its
//!    release/acquire pair publishes each callback's state writes to
//!    whichever worker runs the next one;
//! 2. during the barrier phases (message delivery, iteration-end
//!    callbacks) only the owning partition's worker touches it;
//! 3. phases are separated by barriers (the pipelined scheduler
//!    keeps exactly the iteration-boundary ones).
//!
//! `SharedStates` encodes that contract in one `unsafe` spot instead
//! of sprinkling `unsafe` through the engine.
//!
//! The busy-bit half of the contract is model-checked: `fg_check`'s
//! `busy_bit` model explores the set_sync/clear_sync claim protocol
//! over all bounded interleavings, and its seeded `RelaxedSync`
//! mutation shows the AcqRel pair is load-bearing — downgrading it
//! keeps mutual exclusion but loses publication (a data race on the
//! protected state). See `crates/check` and `tests/check_models.rs`.
//!
//! The contract is strictly *per run*: every run — including each of
//! the many concurrent queries a [`crate::GraphService`] multiplexes
//! over one shared mount — owns its own `SharedStates` and its own
//! worker pool. Nothing here is ever shared across runs; the state
//! vector is the per-query half of the serving layer's
//! shared-backend/private-state split.

use std::cell::UnsafeCell;

/// A fixed-size array of per-vertex states, mutably shareable across
/// the engine's workers under the exclusivity discipline above.
pub(crate) struct SharedStates<S> {
    cells: UnsafeCell<Vec<S>>,
}

// SAFETY: access discipline documented on the type; the engine's
// barrier structure makes all cross-thread access to a given element
// happen-before ordered, and no two threads access one element
// concurrently.
unsafe impl<S: Send> Sync for SharedStates<S> {}

impl<S> SharedStates<S> {
    /// Wraps a pre-initialized state vector.
    pub(crate) fn new(states: Vec<S>) -> Self {
        SharedStates {
            cells: UnsafeCell::new(states),
        }
    }

    /// Number of states.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        // SAFETY: the Vec's length never changes after construction.
        unsafe { (*self.cells.get()).len() }
    }

    /// Mutable access to vertex `idx`'s state.
    ///
    /// # Safety
    ///
    /// The caller must hold the engine's exclusivity for `idx`: no
    /// other thread may access element `idx` until the borrow ends.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self, idx: usize) -> &mut S {
        let vec: &mut Vec<S> = &mut *self.cells.get();
        &mut vec[idx]
    }

    /// Recovers the state vector once all workers are joined.
    pub(crate) fn into_inner(self) -> Vec<S> {
        self.cells.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_mutation() {
        let n = 10_000usize;
        let states = SharedStates::new(vec![0u64; n]);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let states = &states;
                scope.spawn(move || {
                    for i in (t..n).step_by(4) {
                        // SAFETY: each index is touched by exactly one
                        // thread (i % 4 == t partitioning).
                        unsafe {
                            *states.get_mut(i) = i as u64;
                        }
                    }
                });
            }
        });
        let v = states.into_inner();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn len_and_into_inner() {
        let s = SharedStates::new(vec![1i32, 2, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.into_inner(), vec![1, 2, 3]);
    }
}
